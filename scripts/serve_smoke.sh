#!/usr/bin/env bash
# serve-smoke — end-to-end crash drill for the save-serve daemon, the way
# an operator would drive it from the shell (the in-process version lives
# in crates/serve/tests/service.rs):
#
#   1. start a daemon, submit the quick surface sweep over TCP, and check
#      the bits against a purely local run;
#   2. resubmit with a KillWorker fault injected into the first cell — the
#      respawn monitor must recover it and the bits must not change;
#   3. SIGTERM the daemon: graceful drain, exit code 0;
#   4. restart on the same cache dir: the whole sweep must be served from
#      the recovered journal (every cell a cache hit), bit-identically.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q -p save-serve --bin save-serve -p save-bench --bin surface
SERVE=target/debug/save-serve
SURFACE=target/debug/surface

WORK=$(mktemp -d)
CACHE="$WORK/cache"
trap 'kill "$DPID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

start_daemon() {
  "$SERVE" --listen 127.0.0.1:0 --cache-dir "$CACHE" --workers 2 \
    > "$WORK/daemon.out" 2> "$WORK/daemon.err" &
  DPID=$!
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^save-serve listening on //p' "$WORK/daemon.out")
    [ -n "$ADDR" ] && return 0
    sleep 0.1
  done
  echo "daemon never printed its listen address" >&2
  cat "$WORK/daemon.err" >&2
  exit 1
}

# `resumed` counts daemon cache hits, which legitimately differ between
# runs; everything else (grid, secs_bits, cycles) must be bit-identical.
normalize() { sed 's/"resumed":[0-9]*/"resumed":_/' "$1"; }

echo "== local reference sweep =="
"$SURFACE" --quick > "$WORK/local.json"

echo "== 1: remote sweep matches local bits =="
start_daemon
"$SURFACE" --quick --serve "$ADDR" > "$WORK/serve1.json"
diff <(normalize "$WORK/local.json") <(normalize "$WORK/serve1.json")

echo "== 2: killed worker is recovered, bits unchanged =="
"$SURFACE" --quick --serve "$ADDR" --fault-first > "$WORK/serve2.json"
diff <(normalize "$WORK/local.json") <(normalize "$WORK/serve2.json")

echo "== 3: SIGTERM drains gracefully (exit 0) =="
kill -TERM "$DPID"
CODE=0; wait "$DPID" || CODE=$?
if [ "$CODE" -ne 0 ]; then
  echo "expected graceful-drain exit 0, got $CODE" >&2
  cat "$WORK/daemon.err" >&2
  exit 1
fi

echo "== 4: restarted daemon serves the journal-recovered cache =="
start_daemon
"$SURFACE" --quick --serve "$ADDR" > "$WORK/serve3.json"
diff <(normalize "$WORK/local.json") <(normalize "$WORK/serve3.json")
CELLS=$(grep -o '"secs_bits":\[[^]]*\]' "$WORK/local.json" | tr -cd ',' | wc -c)
CELLS=$((CELLS + 1))
if ! grep -q "\"resumed\":$CELLS" "$WORK/serve3.json"; then
  echo "expected all $CELLS cells cache-served after restart:" >&2
  cat "$WORK/serve3.json" >&2
  exit 1
fi

kill -TERM "$DPID"
wait "$DPID" || true
echo "serve-smoke: OK"
