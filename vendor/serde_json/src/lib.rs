//! Vendored minimal `serde_json` replacement for the offline build.
//!
//! Provides exactly the surface the workspace uses: [`to_string`],
//! [`to_string_pretty`] and [`from_str`], backed by the vendored `serde`
//! crate's [`Value`] tree model. Number literals are preserved verbatim, so
//! integers and floats round-trip bit-exactly.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Never fails for the supported data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
/// Never fails for the supported data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
/// Returns an [`Error`] on malformed JSON or a tree that does not match
/// `T`'s shape.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = JsonParser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize(&v).map_err(Error::from)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => out.push_str(n),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("expected , or ] at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("expected , or }} at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                _ => break,
            }
        }
        if start == self.pos {
            return Err(Error(format!("empty number at byte {start}")));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(e.to_string()))?;
        Ok(Value::Num(text.to_string()))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error("truncated \\u escape".to_string()));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                    .map_err(|e| Error(e.to_string()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                b => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| Error(e.to_string()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_numbers_bitexact() {
        let xs = vec![1.7f64, 0.1, 1e-9, 123456.789, -2.5e10];
        let s = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        for (a, b) in xs.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "he\"llo\n\\world\u{1f600}".to_string();
        let j = to_string(&s).unwrap();
        let back: String = from_str(&j).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_output_parses() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let j = to_string_pretty(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&j).unwrap();
        assert_eq!(v, back);
    }
}
