//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the workspace vendors the small slice of serde it
//! actually uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums (externally tagged), `#[serde(default)]` / `#[serde(default =
//! "path")]` field attributes, and the `serde_json` string functions.
//!
//! The design trades serde's zero-copy visitor architecture for a simple
//! tree-shaped [`Value`] data model: `Serialize` renders a value tree,
//! `Deserialize` reads one back. Numbers keep their original literal text so
//! that every integer and float round-trips bit-exactly through JSON
//! (floats are formatted with Rust's shortest-roundtrip `Display`).

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// A JSON number, kept as its literal text for lossless round-trips.
    Num(String),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Seq(Vec<Value>),
    /// A JSON object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }
    /// The elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    /// The number literal if this is a number.
    pub fn as_num(&self) -> Option<&str> {
        match self {
            Value::Num(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up `key` in a map's entries (helper used by derived code).
pub fn value_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from a message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Alias so `DeserializeOwned` bounds keep compiling.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// `serde::de` facade: the deserialization trait under its usual path.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned, Error};
}
/// `serde::ser` facade: the serialization trait under its usual path.
pub mod ser {
    pub use super::{Error, Serialize};
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(format!("{}", self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let s = v
                    .as_num()
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))?;
                s.parse::<$t>().map_err(Error::custom)
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                if self.is_finite() {
                    Value::Num(format!("{}", self))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(Error::custom),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::custom("expected string"))
    }
}
impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items: Vec<T>| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let mut it = s.iter();
                let out = ($(
                    {
                        let _ = $n;
                        $t::deserialize(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                    },
                )+);
                Ok(out)
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        // Sort by the rendered key for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = match k.serialize() {
                    Value::Str(s) => s,
                    Value::Num(s) => s,
                    other => panic!("unsupported map key: {other:?}"),
                };
                (key, v.serialize())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
