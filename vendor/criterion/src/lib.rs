//! Vendored minimal stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset the workspace's `harness = false` benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], `criterion_group!`
//! (both the plain and the `name/config/targets` forms) and
//! `criterion_main!`. Instead of criterion's statistical machinery it runs
//! a fixed number of timed batches and reports the fastest mean iteration
//! time — enough to compare hot-path changes locally and in CI.

use std::time::{Duration, Instant};

/// Re-export spot for `criterion::black_box` users.
pub use std::hint::black_box;

/// Benchmark driver (minimal `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: calibrates an iteration count to roughly 10 ms
    /// per sample, takes `sample_size` samples, and prints the best mean.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration pass.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            let mean = b.elapsed / (iters as u32);
            if mean < best {
                best = mean;
            }
        }
        println!("bench {name:<40} {:>12.1} ns/iter (best of {})", best.as_nanos() as f64, self.sample_size);
        self
    }

    /// Compatibility no-op (`criterion` finalizes reports here).
    pub fn final_summary(&mut self) {}
}

/// Per-benchmark timing context (minimal `criterion::Bencher`).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function (minimal `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point (minimal `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
