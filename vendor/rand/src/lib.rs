//! Vendored minimal stand-in for the `rand` crate (offline build).
//!
//! Implements the slice of the `rand 0.8` API this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_bool` and `Rng::gen_range` over
//! half-open ranges. The generator is xoshiro256++ seeded via splitmix64 —
//! high-quality, deterministic, and stable across platforms, which is what
//! the seeded kernel builders require. It makes no attempt to match the
//! real `rand` crate's output streams.

use std::ops::Range;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a sample in `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Random-value methods (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform draw from the half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_half_open(self, range.start, range.end)
    }
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f32 = r.gen_range(0.125..1.0);
            assert!((0.125..1.0).contains(&x));
            let n = r.gen_range(3usize..17);
            assert!((3..17).contains(&n));
        }
    }
}
