//! Vendored minimal stand-in for the `proptest` crate (offline build).
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: ranges, `any`, tuples, `Just`, `prop_map` / `prop_filter` /
//! `prop_flat_map`, `prop_oneof!`, `prop::array::uniform{16,32}`,
//! `prop::collection::vec`, and the `proptest!` / `prop_assert*` macros.
//! There is no shrinking: failing cases are reported with their generated
//! inputs (`Debug`) and the panic is re-raised. Case generation is
//! deterministic per test name, so failures reproduce.

use std::fmt::Debug;
use std::ops::Range;

/// Runner configuration (minimal `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the cycle-level
        // simulator fuzz tests within a reasonable wall-clock budget.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic test-case RNG (xoshiro256++ seeded from the test name).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator whose stream is a pure function of `name`.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values (minimal `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: Clone + Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerating up to a retry cap).
    fn prop_filter<P: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: P,
    ) -> Filter<Self, P>
    where
        Self: Sized,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Chains into a value-dependent follow-up strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Clone + Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, P> {
    inner: S,
    reason: String,
    pred: P,
}

impl<S: Strategy, P: Fn(&S::Value) -> bool> Strategy for Filter<S, P> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 10000 consecutive candidates", self.reason);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice between type-erased strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: Clone + Debug> Union<T> {
    /// Builds a weighted union; weights must not all be zero.
    #[must_use]
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(options.iter().any(|(w, _)| *w > 0), "prop_oneof: all weights zero");
        Union { options }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut r = rng.next_u64() % total;
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if r < w {
                return s.generate(rng);
            }
            r -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Types with a canonical full-domain strategy (minimal `Arbitrary`).
pub trait Arbitrary: Clone + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for `T` (minimal `proptest::arbitrary::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K, 11 L)
}

/// Fixed-size array strategies (minimal `proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Runs one element strategy for every slot of an `[T; N]`.
    pub struct UniformArray<S, const N: usize> {
        elem: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N>
    where
        S::Value: Clone + Debug,
    {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.elem.generate(rng))
        }
    }

    /// `[T; 16]` with every lane drawn from `elem`.
    pub fn uniform16<S: Strategy>(elem: S) -> UniformArray<S, 16> {
        UniformArray { elem }
    }

    /// `[T; 32]` with every lane drawn from `elem`.
    pub fn uniform32<S: Strategy>(elem: S) -> UniformArray<S, 32> {
        UniformArray { elem }
    }
}

/// Collection strategies (minimal `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification: an exact size or a half-open range.
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// `Vec` of `elem` values with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.start < self.len.end {
                self.len.start + (rng.next_u64() as usize) % (self.len.end - self.len.start)
            } else {
                self.len.start
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, len: len.into().0 }
    }
}

/// The usual glob-import surface (minimal `proptest::prelude`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::Union::weighted(::std::vec![
            $(($w as u32, $crate::Strategy::boxed($s))),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::Union::weighted(::std::vec![
            $((1u32, $crate::Strategy::boxed($s))),+
        ])
    };
}

/// Declares property tests (minimal `proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$fmeta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$fmeta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    let __vals = ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                    let __res = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        let ($($arg,)+) = ::std::clone::Clone::clone(&__vals);
                        $body
                    }));
                    if let ::std::result::Result::Err(e) = __res {
                        ::std::eprintln!(
                            "proptest {} failed on case #{} with inputs: {:?}",
                            stringify!($name),
                            __case,
                            __vals
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}
