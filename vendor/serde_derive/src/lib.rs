//! Vendored minimal `#[derive(Serialize, Deserialize)]` implementation.
//!
//! Parses the item's token stream directly (no `syn`/`quote` in the offline
//! build) and emits impls of the vendored `serde` crate's tree-model traits.
//! Supported shapes: non-generic structs (named, tuple, unit) and enums with
//! unit / tuple / struct variants (externally tagged, matching serde's JSON
//! layout). Supported attributes: `#[serde(default)]` and
//! `#[serde(default = "path")]` on named fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled during deserialization.
#[derive(Clone)]
enum DefaultAttr {
    Std,
    Path(String),
}

#[derive(Clone)]
struct Field {
    name: String,
    default: Option<DefaultAttr>,
}

#[derive(Clone)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(ts: TokenStream) -> Self {
        Parser { tokens: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn at_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    /// Consumes a run of outer attributes, returning any `#[serde(...)]`
    /// default directives found among them.
    fn skip_attrs(&mut self) -> Option<DefaultAttr> {
        let mut found = None;
        while self.at_punct('#') {
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("expected [...] after # in attribute");
            };
            if let Some(d) = parse_serde_attr(g.stream()) {
                found = Some(d);
            }
        }
        found
    }

    /// Consumes `pub`, `pub(...)` if present.
    fn skip_vis(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected identifier, got {other:?}"),
        }
    }

    /// Skips a type (or any token run) up to a top-level `,`, tracking
    /// angle-bracket depth; the comma itself is consumed.
    fn skip_until_top_comma(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

/// Parses the inside of a `#[...]` attribute group, returning a default
/// directive if it is `serde(default)` or `serde(default = "path")`.
fn parse_serde_attr(ts: TokenStream) -> Option<DefaultAttr> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None,
    }
    let Some(TokenTree::Group(g)) = tokens.get(1) else {
        return None;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(i)) if i.to_string() == "default" => {}
        Some(other) => panic!("unsupported serde attribute starting at {other}"),
        None => return None,
    }
    match inner.get(1) {
        None => Some(DefaultAttr::Std),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
            let Some(TokenTree::Literal(lit)) = inner.get(2) else {
                panic!("expected string literal in #[serde(default = ...)]");
            };
            let s = lit.to_string();
            let path = s.trim_matches('"').to_string();
            Some(DefaultAttr::Path(path))
        }
        Some(other) => panic!("unsupported serde attribute token {other}"),
    }
}

/// Counts the fields of a tuple shape from the tokens inside its parens.
fn tuple_arity(ts: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for t in ts {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                fields += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        fields += 1;
    }
    fields
}

/// Parses the named fields inside a brace group.
fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut p = Parser::new(ts);
    let mut fields = Vec::new();
    while p.peek().is_some() {
        let default = p.skip_attrs();
        p.skip_vis();
        let name = p.expect_ident();
        match p.next() {
            Some(TokenTree::Punct(pp)) if pp.as_char() == ':' => {}
            other => panic!("expected : after field {name}, got {other:?}"),
        }
        p.skip_until_top_comma();
        fields.push(Field { name, default });
    }
    fields
}

/// Parses the variants inside an enum's brace group.
fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut p = Parser::new(ts);
    let mut variants = Vec::new();
    while p.peek().is_some() {
        p.skip_attrs();
        let name = p.expect_ident();
        let shape = match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                p.next();
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                p.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip a possible discriminant, then the trailing comma.
        if p.at_punct('=') {
            p.next();
            p.skip_until_top_comma();
        } else if p.at_punct(',') {
            p.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut p = Parser::new(input);
    p.skip_attrs();
    p.skip_vis();
    let kw = p.expect_ident();
    let name = p.expect_ident();
    if p.at_punct('<') {
        panic!("derive stub does not support generic type {name}");
    }
    match kw.as_str() {
        "struct" => {
            let shape = match p.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(tuple_arity(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = p.next() else {
                panic!("expected enum body for {name}");
            };
            Item::Enum { name, variants: parse_variants(g.stream()) }
        }
        other => panic!("derive stub supports only struct/enum, got {other}"),
    }
}

fn default_expr(name: &str, ty_name: &str, d: &Option<DefaultAttr>) -> String {
    match d {
        Some(DefaultAttr::Std) => "::core::default::Default::default()".to_string(),
        Some(DefaultAttr::Path(p)) => format!("{p}()"),
        None => format!(
            "return ::core::result::Result::Err(::serde::Error::custom(\
             \"missing field `{name}` in {ty_name}\"))"
        ),
    }
}

/// Serialize expression for a named-field set reachable through `prefix`
/// (e.g. `&self.` for structs, `` for bound match variables).
fn ser_named(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::serialize({a}))",
                n = f.name,
                a = access(&f.name)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn de_named(ty: &str, ctor: &str, fields: &[Field], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{n}: match ::serde::value_get({src}, \"{n}\") {{ \
                   ::core::option::Option::Some(x) => ::serde::Deserialize::deserialize(x)?, \
                   ::core::option::Option::None => {d}, \
                 }}",
                n = f.name,
                d = default_expr(&f.name, ty, &f.default)
            )
        })
        .collect();
    format!("::core::result::Result::Ok({ctor} {{ {} }})", inits.join(", "))
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, shape } => {
            let expr = match &shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => ser_named(fields, |f| format!("&self.{f}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn serialize(&self) -> ::serde::Value {{ {expr} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::serialize(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({bl}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), {inner})]),",
                                bl = binds.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = ser_named(fields, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {bl} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), {inner})]),",
                                bl = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn serialize(&self) -> ::serde::Value {{ \
                     match self {{ {} }} \
                   }} \
                 }}",
                arms.join(" ")
            )
        }
    };
    body.parse().expect("derived Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, shape } => {
            let expr = match &shape {
                Shape::Unit => format!("::core::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))"
                ),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&s[{i}])?"))
                        .collect();
                    format!(
                        "{{ let s = v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                         \"expected sequence for {name}\"))?; \
                         if s.len() != {n} {{ return ::core::result::Result::Err(\
                         ::serde::Error::custom(\"wrong tuple arity for {name}\")); }} \
                         ::core::result::Result::Ok({name}({items})) }}",
                        items = items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inner = de_named(&name, &name, fields, "m");
                    format!(
                        "{{ let m = v.as_map().ok_or_else(|| ::serde::Error::custom(\
                         \"expected map for {name}\"))?; {inner} }}"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn deserialize(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ \
                     {expr} \
                   }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),", vn = v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(inner)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::deserialize(&s[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let s = inner.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected sequence for {name}::{vn}\"))?; \
                                 if s.len() != {n} {{ return ::core::result::Result::Err(\
                                 ::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }} \
                                 ::core::result::Result::Ok({name}::{vn}({items})) }}",
                                items = items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let ctor = format!("{name}::{vn}");
                            let inner_expr = de_named(&name, &ctor, fields, "mm");
                            Some(format!(
                                "\"{vn}\" => {{ let mm = inner.as_map().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected map for {name}::{vn}\"))?; \
                                 {inner_expr} }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn deserialize(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ \
                     if let ::core::option::Option::Some(s) = v.as_str() {{ \
                       return match s {{ {unit} \
                         other => ::core::result::Result::Err(::serde::Error::custom(\
                           ::std::format!(\"unknown {name} variant {{other}}\"))), }}; \
                     }} \
                     let m = v.as_map().ok_or_else(|| ::serde::Error::custom(\
                       \"expected string or map for {name}\"))?; \
                     if m.len() != 1 {{ return ::core::result::Result::Err(\
                       ::serde::Error::custom(\"expected single-key map for {name}\")); }} \
                     let (k, inner) = &m[0]; \
                     let _ = inner; \
                     match k.as_str() {{ {payload} \
                       other => ::core::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown {name} variant {{other}}\"))), }} \
                   }} \
                 }}",
                unit = unit_arms.join(" "),
                payload = payload_arms.join(" ")
            )
        }
    };
    body.parse().expect("derived Deserialize impl must parse")
}
