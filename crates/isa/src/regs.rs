//! Logical (architectural) register names.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of architectural 512-bit vector registers (AVX-512 has 32; the
/// paper sizes the broadcast cache and the combination window from this,
/// §III and §IV-A).
pub const NUM_VREGS: usize = 32;

/// Number of architectural write-mask registers (AVX-512 `k0`-`k7`).
pub const NUM_KREGS: usize = 8;

/// A logical 512-bit vector register (`zmm0`..`zmm31`).
///
/// The rotate-vertical-coalescing scheme derives a VFMA's rotational state
/// from its accumulator's *logical* register number (`reg % 3`, paper §IV-B),
/// so this index is architecturally meaningful to SAVE.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VReg(pub u8);

impl VReg {
    /// Returns the register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rotational state in `{-1, 0, +1}` assigned by SAVE's rotate-vertical
    /// coalescing: `reg % 3` mapped to a rotation amount (paper §IV-B).
    pub fn rotation_state(self) -> i8 {
        match self.0 % 3 {
            0 => 0,
            1 => 1,
            _ => -1,
        }
    }
}

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zmm{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zmm{}", self.0)
    }
}

/// A logical write-mask register (`k0`..`k7`) used for VFMA predication,
/// e.g. masks marking dropped weights during pruned training (§III).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KReg(pub u8);

impl KReg {
    /// Returns the register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for KReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for KReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_states_cycle_through_three_values() {
        assert_eq!(VReg(0).rotation_state(), 0);
        assert_eq!(VReg(1).rotation_state(), 1);
        assert_eq!(VReg(2).rotation_state(), -1);
        assert_eq!(VReg(3).rotation_state(), 0);
        assert_eq!(VReg(31).rotation_state(), 1);
    }

    #[test]
    fn same_logical_acc_same_rotation() {
        // The invariant SAVE relies on to keep one copy per accumulator.
        for r in 0..NUM_VREGS as u8 {
            assert_eq!(VReg(r).rotation_state(), VReg(r).rotation_state());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", VReg(5)), "zmm5");
        assert_eq!(format!("{}", KReg(2)), "k2");
    }
}
