//! Software BF16 (Brain Floating Point) arithmetic.
//!
//! BF16 is the upper 16 bits of an IEEE-754 FP32 value: 1 sign bit, 8
//! exponent bits (same dynamic range as FP32) and 7 mantissa bits. The
//! paper's mixed-precision VFMAs multiply BF16 operands and accumulate in
//! FP32 (§II-B, Fig 2); the multiply itself is performed by widening both
//! operands to FP32, which is exact because a 7-bit mantissa product fits in
//! an FP32 mantissa.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 16-bit brain floating-point number stored as raw bits.
///
/// Conversion from [`f32`] uses round-to-nearest-even, matching the x86
/// `VCVTNEPS2BF16` instruction. NaNs are quieted.
///
/// ```
/// use save_isa::Bf16;
/// let x = Bf16::from_f32(1.0);
/// assert_eq!(x.to_f32(), 1.0);
/// assert!(Bf16::from_f32(0.0).is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);

    /// One.
    pub const ONE: Bf16 = Bf16(0x3f80);

    /// Builds a `Bf16` from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an [`f32`] to `Bf16` with round-to-nearest-even.
    pub fn from_f32(v: f32) -> Self {
        let bits = v.to_bits();
        if v.is_nan() {
            // Quiet NaN, preserving sign.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the truncated 16 bits: ties (low half
        // exactly 0x8000) round to an even mantissa.
        let lower = bits & 0xffff;
        let mut upper = (bits >> 16) as u16;
        if lower > 0x8000 || (lower == 0x8000 && upper & 1 == 1) {
            upper = upper.wrapping_add(1);
        }
        Bf16(upper)
    }

    /// Converts to [`f32`] exactly (every BF16 value is representable).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Returns `true` for either signed zero.
    ///
    /// This is the predicate the SAVE Mask Generation Units apply to BF16
    /// multiplicand lanes (§V): a lane is ineffectual when the multiplicand
    /// is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 & 0x7fff == 0
    }

    /// Returns `true` if the value is NaN.
    pub fn is_nan(self) -> bool {
        self.0 & 0x7f80 == 0x7f80 && self.0 & 0x007f != 0
    }
}

impl From<Bf16> for f32 {
    fn from(v: Bf16) -> f32 {
        v.to_f32()
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 128.0, -3.5] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn zero_detection() {
        assert!(Bf16::from_f32(0.0).is_zero());
        assert!(Bf16::from_f32(-0.0).is_zero());
        assert!(!Bf16::from_f32(1.0e-30).is_zero());
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 and the next BF16 up;
        // ties go to even (1.0 has even mantissa).
        let halfway = f32::from_bits(0x3f80_8000);
        assert_eq!(Bf16::from_f32(halfway).to_bits(), 0x3f80);
        // Just above halfway rounds up.
        let above = f32::from_bits(0x3f80_8001);
        assert_eq!(Bf16::from_f32(above).to_bits(), 0x3f81);
        // 1.0 + 3*2^-9: halfway between 0x3f81 and 0x3f82 -> ties to even 0x3f82.
        let halfway_odd = f32::from_bits(0x3f81_8000);
        assert_eq!(Bf16::from_f32(halfway_odd).to_bits(), 0x3f82);
    }

    #[test]
    fn nan_is_preserved_and_quiet() {
        let nan = Bf16::from_f32(f32::NAN);
        assert!(nan.is_nan());
        assert!(nan.to_f32().is_nan());
    }

    #[test]
    fn rounding_error_is_bounded() {
        // Relative error of a single conversion is at most 2^-8.
        for i in 0..1000 {
            let v = 0.37f32 + i as f32 * 0.013;
            let r = Bf16::from_f32(v).to_f32();
            assert!(((r - v) / v).abs() <= 1.0 / 256.0, "v={v} r={r}");
        }
    }

    #[test]
    fn infinity_roundtrips() {
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(Bf16::from_f32(f32::NEG_INFINITY).to_f32(), f32::NEG_INFINITY);
    }
}
