//! A flat functional memory arena.
//!
//! The simulator is execute-driven: kernels read and write real values so
//! that GEMM results can be checked against a scalar reference. Timing is
//! modelled separately in `save-mem`; this arena is only the *functional*
//! backing store.

use crate::{Bf16, VecBf16, VecF32, LANES, ML_LANES};

/// A byte-addressed functional memory of fixed size.
///
/// Addresses are plain offsets; kernel generators allocate matrix regions
/// with [`Memory::alloc`]. All vector accesses in our kernels are 64-byte
/// aligned, but the arena itself supports any 4-byte-aligned access.
///
/// ```
/// use save_isa::Memory;
/// let mut mem = Memory::new(1024);
/// mem.write_f32(16, 2.5);
/// assert_eq!(mem.read_f32(16), 2.5);
/// let v = mem.read_vec_f32(0);
/// assert_eq!(v.lane(4), 2.5);
/// ```
#[derive(Clone, Debug)]
pub struct Memory {
    data: Vec<u8>,
    next_alloc: u64,
}

impl Memory {
    /// Creates a zero-filled memory of `bytes` bytes.
    pub fn new(bytes: usize) -> Self {
        Memory { data: vec![0; bytes], next_alloc: 0 }
    }

    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Allocates a 64-byte-aligned region of `bytes` bytes and returns its
    /// base address, growing the arena if needed.
    pub fn alloc(&mut self, bytes: usize) -> u64 {
        let base = (self.next_alloc + 63) & !63;
        self.next_alloc = base + bytes as u64;
        if self.next_alloc as usize > self.data.len() {
            self.data.resize(self.next_alloc as usize, 0);
        }
        base
    }

    /// Reads an `f32` at `addr`.
    ///
    /// # Panics
    /// Panics if `addr + 4` exceeds the arena.
    pub fn read_f32(&self, addr: u64) -> f32 {
        let a = addr as usize;
        f32::from_bits(u32::from_le_bytes(self.data[a..a + 4].try_into().unwrap()))
    }

    /// Writes an `f32` at `addr`.
    ///
    /// # Panics
    /// Panics if `addr + 4` exceeds the arena.
    pub fn write_f32(&mut self, addr: u64, v: f32) {
        let a = addr as usize;
        self.data[a..a + 4].copy_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Reads a BF16 value at `addr`.
    ///
    /// # Panics
    /// Panics if `addr + 2` exceeds the arena.
    pub fn read_bf16(&self, addr: u64) -> Bf16 {
        let a = addr as usize;
        Bf16::from_bits(u16::from_le_bytes(self.data[a..a + 2].try_into().unwrap()))
    }

    /// Writes a BF16 value at `addr`.
    ///
    /// # Panics
    /// Panics if `addr + 2` exceeds the arena.
    pub fn write_bf16(&mut self, addr: u64, v: Bf16) {
        let a = addr as usize;
        self.data[a..a + 2].copy_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Reads a full 16-lane FP32 vector at `addr`.
    pub fn read_vec_f32(&self, addr: u64) -> VecF32 {
        let mut out = [0.0f32; LANES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.read_f32(addr + 4 * i as u64);
        }
        VecF32::from_lanes(out)
    }

    /// Writes a full 16-lane FP32 vector at `addr`.
    pub fn write_vec_f32(&mut self, addr: u64, v: VecF32) {
        for i in 0..LANES {
            self.write_f32(addr + 4 * i as u64, v.lane(i));
        }
    }

    /// Reads a 32-lane BF16 vector at `addr`.
    pub fn read_vec_bf16(&self, addr: u64) -> VecBf16 {
        let mut out = [Bf16::ZERO; ML_LANES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.read_bf16(addr + 2 * i as u64);
        }
        VecBf16::from_lanes(out)
    }

    /// Writes a 32-lane BF16 vector at `addr`.
    pub fn write_vec_bf16(&mut self, addr: u64, v: VecBf16) {
        for i in 0..ML_LANES {
            self.write_bf16(addr + 2 * i as u64, v.lane(i));
        }
    }

    /// Reads the broadcast of the FP32 scalar at `addr` to all lanes.
    pub fn read_bcast_f32(&self, addr: u64) -> VecF32 {
        VecF32::splat(self.read_f32(addr))
    }

    /// Reads the broadcast of the 32-bit BF16 pair at `addr` to all lane
    /// groups (the `VDPBF16PS` embedded-broadcast form).
    pub fn read_bcast_bf16_pair(&self, addr: u64) -> VecBf16 {
        VecBf16::splat_pair(self.read_bf16(addr), self.read_bf16(addr + 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_grows() {
        let mut m = Memory::new(0);
        let a = m.alloc(10);
        let b = m.alloc(100);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
        assert!(m.size() >= (b + 100) as usize);
    }

    #[test]
    fn f32_roundtrip() {
        let mut m = Memory::new(256);
        m.write_f32(12, -7.25);
        assert_eq!(m.read_f32(12), -7.25);
    }

    #[test]
    fn vector_roundtrip() {
        let mut m = Memory::new(256);
        let mut v = VecF32::splat(1.0);
        v.set_lane(5, 42.0);
        m.write_vec_f32(64, v);
        assert_eq!(m.read_vec_f32(64), v);
    }

    #[test]
    fn bf16_vector_roundtrip() {
        let mut m = Memory::new(256);
        let mut lanes = [Bf16::ZERO; ML_LANES];
        for (i, l) in lanes.iter_mut().enumerate() {
            *l = Bf16::from_f32(i as f32);
        }
        let v = VecBf16::from_lanes(lanes);
        m.write_vec_bf16(128, v);
        assert_eq!(m.read_vec_bf16(128), v);
    }

    #[test]
    fn broadcast_reads() {
        let mut m = Memory::new(256);
        m.write_f32(8, 3.0);
        assert_eq!(m.read_bcast_f32(8), VecF32::splat(3.0));
        m.write_bf16(32, Bf16::from_f32(1.5));
        m.write_bf16(34, Bf16::from_f32(2.5));
        let v = m.read_bcast_bf16_pair(32);
        assert_eq!(v.lane(0).to_f32(), 1.5);
        assert_eq!(v.lane(1).to_f32(), 2.5);
        assert_eq!(v.lane(30).to_f32(), 1.5);
    }
}
