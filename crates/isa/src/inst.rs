//! The instruction vocabulary of register-tiled GEMM micro-kernels.

use crate::{KReg, VReg};
use serde::{Deserialize, Serialize};

/// A VFMA multiplicand operand: a register, an embedded broadcast from
/// memory, or a full-vector memory operand (paper §II-B).
///
/// Embedded broadcasts (`MemBcast`) are the *embedded broadcast pattern*;
/// kernels that pre-load scalars with [`Inst::BroadcastLoad`] and then use
/// `Reg` operands follow the *explicit broadcast pattern*.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum VOperand {
    /// A vector register operand.
    Reg(VReg),
    /// A scalar loaded from `addr` and broadcast to all lanes (for FP32) or
    /// a 32-bit BF16 pair broadcast to all lane groups (for mixed precision).
    MemBcast(u64),
    /// A full 64-byte vector loaded from `addr`.
    MemVec(u64),
}

impl VOperand {
    /// Returns the memory address if this operand reads memory.
    pub fn addr(&self) -> Option<u64> {
        match self {
            VOperand::Reg(_) => None,
            VOperand::MemBcast(a) | VOperand::MemVec(a) => Some(*a),
        }
    }

    /// Returns `true` for the embedded-broadcast form.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, VOperand::MemBcast(_))
    }
}

/// One macro-instruction of the kernel stream.
///
/// The core's front end cracks instructions with memory operands into a load
/// µop plus a compute µop, like x86 µop cracking (see `save-core`).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum Inst {
    /// `vxorps dst, dst, dst` — zero an accumulator.
    Zero {
        /// Destination register.
        dst: VReg,
    },
    /// `vbroadcastss dst, [addr]` — explicit broadcast load of a 32-bit
    /// element to all lanes. Served by the broadcast cache when present.
    BroadcastLoad {
        /// Destination register.
        dst: VReg,
        /// Byte address of the scalar.
        addr: u64,
    },
    /// `vmovups dst, [addr]` — full 64-byte vector load.
    VecLoad {
        /// Destination register.
        dst: VReg,
        /// Byte address of the vector (64-byte aligned in our kernels).
        addr: u64,
    },
    /// A ZCOMP-style compressed vector load (§VIII of the paper: ZCOMP's
    /// "memory reduction is proportional to SAVE's computation reduction,
    /// and SAVE can directly use the vector loaded by ZCOMP"). The vector's
    /// *values* live at `addr` as usual; its *memory footprint* is the
    /// compressed image at `timing_addr` (bitmap + packed non-zeros), which
    /// is what the caches and DRAM see.
    CompressedVecLoad {
        /// Destination register.
        dst: VReg,
        /// Byte address of the uncompressed values (functional).
        addr: u64,
        /// Byte address of the compressed image (timing).
        timing_addr: u64,
    },
    /// `vmovups [addr], src` — full 64-byte vector store.
    VecStore {
        /// Source register.
        src: VReg,
        /// Byte address of the destination.
        addr: u64,
    },
    /// `vfmadd231ps acc{mask}, a, b` — FP32 fused multiply-add:
    /// `acc[i] += a[i] * b[i]` for unmasked lanes (paper Eq. 1).
    VfmaF32 {
        /// Accumulator register (both source and destination).
        acc: VReg,
        /// First multiplicand.
        a: VOperand,
        /// Second multiplicand (at most one of `a`/`b` may be memory).
        b: VOperand,
        /// Optional write mask; masked-out lanes keep the accumulator value.
        mask: Option<KReg>,
    },
    /// `vdpbf16ps acc, a, b` — mixed-precision dot-product FMA:
    /// `acc[i] += a[2i]*b[2i] + a[2i+1]*b[2i+1]` with BF16 multiplicands and
    /// FP32 accumulation, computed as two chained MACs (paper Eq. 2, Fig 2).
    VdpBf16 {
        /// FP32 accumulator register.
        acc: VReg,
        /// First BF16 multiplicand vector.
        a: VOperand,
        /// Second BF16 multiplicand vector.
        b: VOperand,
    },
    /// `kmovw dst, imm` — load an immediate write mask.
    SetMask {
        /// Destination mask register.
        dst: KReg,
        /// Immediate 16-bit mask value.
        value: u16,
    },
    /// A scalar loop-overhead µop (address arithmetic, branch). Occupies an
    /// allocation slot and a ROB entry but executes on a scalar port with
    /// single-cycle latency; it models the non-vector instruction overhead of
    /// real kernels.
    ScalarOp,
    /// A front-end redirect bubble: allocation stalls for `cycles` cycles.
    /// Used to model branch mispredictions in trace form — e.g. the
    /// data-dependent skip branches of SparseTrain-style software
    /// zero-skipping, whose outcomes are unpredictable at random sparsity.
    FrontEndBubble {
        /// Stall length in cycles.
        cycles: u8,
    },
}

/// Classification of an instruction for stats and scheduling.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum InstKind {
    /// FP32 VFMA.
    FmaF32,
    /// Mixed-precision (BF16) VFMA.
    FmaBf16,
    /// Broadcast load.
    BcastLoad,
    /// Full-vector load.
    Load,
    /// Vector store.
    Store,
    /// Mask setup.
    MaskSetup,
    /// Register zeroing.
    Zero,
    /// Scalar overhead.
    Scalar,
}

impl Inst {
    /// Returns the instruction's [`InstKind`].
    pub fn kind(&self) -> InstKind {
        match self {
            Inst::Zero { .. } => InstKind::Zero,
            Inst::BroadcastLoad { .. } => InstKind::BcastLoad,
            Inst::VecLoad { .. } | Inst::CompressedVecLoad { .. } => InstKind::Load,
            Inst::VecStore { .. } => InstKind::Store,
            Inst::VfmaF32 { .. } => InstKind::FmaF32,
            Inst::VdpBf16 { .. } => InstKind::FmaBf16,
            Inst::SetMask { .. } => InstKind::MaskSetup,
            Inst::ScalarOp | Inst::FrontEndBubble { .. } => InstKind::Scalar,
        }
    }

    /// Returns `true` for either flavor of VFMA.
    pub fn is_fma(&self) -> bool {
        matches!(self, Inst::VfmaF32 { .. } | Inst::VdpBf16 { .. })
    }
}

impl std::fmt::Display for VOperand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VOperand::Reg(r) => write!(f, "{r}"),
            VOperand::MemBcast(a) => write!(f, "[0x{a:x}]{{1to16}}"),
            VOperand::MemVec(a) => write!(f, "[0x{a:x}]"),
        }
    }
}

impl std::fmt::Display for Inst {
    /// AVX-512-assembly-flavoured disassembly, for traces and debugging.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inst::Zero { dst } => write!(f, "vxorps {dst}, {dst}, {dst}"),
            Inst::BroadcastLoad { dst, addr } => write!(f, "vbroadcastss {dst}, [0x{addr:x}]"),
            Inst::VecLoad { dst, addr } => write!(f, "vmovups {dst}, [0x{addr:x}]"),
            Inst::CompressedVecLoad { dst, addr, timing_addr } => {
                write!(f, "zcomp.load {dst}, [0x{addr:x}] (compressed@0x{timing_addr:x})")
            }
            Inst::VecStore { src, addr } => write!(f, "vmovups [0x{addr:x}], {src}"),
            Inst::VfmaF32 { acc, a, b, mask } => match mask {
                Some(k) => write!(f, "vfmadd231ps {acc}{{{k}}}, {a}, {b}"),
                None => write!(f, "vfmadd231ps {acc}, {a}, {b}"),
            },
            Inst::VdpBf16 { acc, a, b } => write!(f, "vdpbf16ps {acc}, {a}, {b}"),
            Inst::SetMask { dst, value } => write!(f, "kmovw {dst}, 0x{value:x}"),
            Inst::ScalarOp => write!(f, "scalar"),
            Inst::FrontEndBubble { cycles } => write!(f, "bubble {cycles}"),
        }
    }
}

/// A complete kernel instruction stream with a human-readable name.
///
/// ```
/// use save_isa::{Program, Inst, VReg};
/// let mut p = Program::new("demo");
/// p.push(Inst::Zero { dst: VReg(0) });
/// assert_eq!(p.len(), 1);
/// assert_eq!(p.fma_count(), 0);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// Kernel name (e.g. `"ResNet2_2 fwd"`).
    pub name: String,
    /// The instruction stream in program order.
    pub insts: Vec<Inst>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program { name: name.into(), insts: Vec::new() }
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Number of VFMA instructions (both precisions).
    pub fn fma_count(&self) -> usize {
        self.insts.iter().filter(|i| i.is_fma()).count()
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Inst> {
        self.insts.iter()
    }
}

impl Extend<Inst> for Program {
    fn extend<T: IntoIterator<Item = Inst>>(&mut self, iter: T) {
        self.insts.extend(iter);
    }
}

impl FromIterator<Inst> for Program {
    fn from_iter<T: IntoIterator<Item = Inst>>(iter: T) -> Self {
        Program { name: String::new(), insts: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert_eq!(Inst::ScalarOp.kind(), InstKind::Scalar);
        assert_eq!(
            Inst::VfmaF32 {
                acc: VReg(0),
                a: VOperand::Reg(VReg(1)),
                b: VOperand::MemVec(0),
                mask: None
            }
            .kind(),
            InstKind::FmaF32
        );
        assert_eq!(
            Inst::VdpBf16 { acc: VReg(0), a: VOperand::Reg(VReg(1)), b: VOperand::Reg(VReg(2)) }
                .kind(),
            InstKind::FmaBf16
        );
    }

    #[test]
    fn operand_addr() {
        assert_eq!(VOperand::Reg(VReg(0)).addr(), None);
        assert_eq!(VOperand::MemBcast(64).addr(), Some(64));
        assert_eq!(VOperand::MemVec(128).addr(), Some(128));
        assert!(VOperand::MemBcast(0).is_broadcast());
        assert!(!VOperand::MemVec(0).is_broadcast());
    }

    #[test]
    fn disassembly_strings() {
        let fma = Inst::VfmaF32 {
            acc: VReg(0),
            a: VOperand::Reg(VReg(1)),
            b: VOperand::MemBcast(0x40),
            mask: Some(KReg(2)),
        };
        assert_eq!(fma.to_string(), "vfmadd231ps zmm0{k2}, zmm1, [0x40]{1to16}");
        assert_eq!(Inst::Zero { dst: VReg(3) }.to_string(), "vxorps zmm3, zmm3, zmm3");
        assert_eq!(
            Inst::VdpBf16 { acc: VReg(0), a: VOperand::Reg(VReg(1)), b: VOperand::MemVec(0x80) }
                .to_string(),
            "vdpbf16ps zmm0, zmm1, [0x80]"
        );
        assert_eq!(Inst::SetMask { dst: KReg(1), value: 0xff }.to_string(), "kmovw k1, 0xff");
    }

    #[test]
    fn program_counts_fmas() {
        let p: Program = vec![
            Inst::Zero { dst: VReg(0) },
            Inst::VfmaF32 {
                acc: VReg(0),
                a: VOperand::Reg(VReg(1)),
                b: VOperand::Reg(VReg(2)),
                mask: None,
            },
            Inst::ScalarOp,
            Inst::VdpBf16 { acc: VReg(0), a: VOperand::Reg(VReg(1)), b: VOperand::Reg(VReg(2)) },
        ]
        .into_iter()
        .collect();
        assert_eq!(p.fma_count(), 2);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }
}
