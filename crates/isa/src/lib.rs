//! # save-isa — the vector ISA substrate of the SAVE reproduction
//!
//! This crate models an abstract AVX-512-like instruction set at the level of
//! detail the SAVE micro-architecture (Gong et al., MICRO 2020) needs:
//!
//! * 512-bit vector values with 16 FP32 lanes, or 32 BF16 multiplicand lanes
//!   feeding 16 FP32 accumulator lanes for mixed-precision dot-product FMAs
//!   (the `VDPBF16PS` pattern from §II-B of the paper);
//! * software [`Bf16`] arithmetic with round-to-nearest-even conversion;
//! * logical vector ([`VReg`]) and write-mask ([`KReg`]) registers;
//! * the small instruction vocabulary of a register-tiled GEMM micro-kernel
//!   ([`Inst`]): broadcasts, vector loads/stores, FP32 VFMAs, BF16 dot-product
//!   VFMAs, write-mask setup and scalar loop-overhead placeholders;
//! * a flat functional [`Memory`] arena the simulator executes against.
//!
//! The crate is purely functional (no timing); the cycle-level machinery
//! lives in `save-core` and `save-mem`.
//!
//! ## Example
//!
//! ```
//! use save_isa::{Inst, VOperand, VReg, VecF32, Memory};
//!
//! let mut mem = Memory::new(4096);
//! mem.write_f32(0, 2.0);
//! let program = vec![
//!     Inst::Zero { dst: VReg(0) },
//!     Inst::BroadcastLoad { dst: VReg(1), addr: 0 },
//!     Inst::VfmaF32 { acc: VReg(0), a: VOperand::Reg(VReg(1)), b: VOperand::Reg(VReg(1)), mask: None },
//! ];
//! assert_eq!(program.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bf16;
mod inst;
mod memory;
mod regs;
mod vector;

pub use bf16::Bf16;
pub use inst::{Inst, InstKind, Program, VOperand};
pub use memory::Memory;
pub use regs::{KReg, VReg, NUM_KREGS, NUM_VREGS};
pub use vector::{VecBf16, VecF32, LANES, ML_LANES};

/// Cache-line size in bytes, shared by the whole model (§IV-A assumes 64 B
/// lines with 4 B elements).
pub const LINE_BYTES: usize = 64;

/// Number of FP32 elements in one cache line.
pub const F32_PER_LINE: usize = LINE_BYTES / 4;
