//! 512-bit vector values.
//!
//! The same 512-bit register is viewed either as 16 FP32 lanes ([`VecF32`])
//! or as 32 BF16 multiplicand lanes ([`VecBf16`]). Mixed-precision VFMAs map
//! two adjacent BF16 multiplicand lanes (MLs) onto one FP32 accumulator lane
//! (AL) — ML `2i` and `2i+1` feed AL `i` (paper §II-B, Eq. 2).

use crate::Bf16;
use serde::{Deserialize, Serialize};

/// Number of FP32 lanes in a 512-bit vector (and of mixed-precision
/// accumulator lanes).
pub const LANES: usize = 16;

/// Number of BF16 multiplicand lanes in a 512-bit vector.
pub const ML_LANES: usize = 32;

/// A 512-bit vector viewed as 16 FP32 lanes.
///
/// ```
/// use save_isa::VecF32;
/// let v = VecF32::splat(3.0);
/// assert_eq!(v.lane(7), 3.0);
/// assert_eq!(v.zero_mask(), 0); // no zero lanes
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct VecF32(pub [f32; LANES]);

impl VecF32 {
    /// All-zero vector.
    pub const ZERO: VecF32 = VecF32([0.0; LANES]);

    /// Builds a vector with every lane equal to `v` (the result of a
    /// broadcast load).
    pub fn splat(v: f32) -> Self {
        VecF32([v; LANES])
    }

    /// Builds a vector from an array of lane values.
    pub fn from_lanes(lanes: [f32; LANES]) -> Self {
        VecF32(lanes)
    }

    /// Reads lane `i`.
    ///
    /// # Panics
    /// Panics if `i >= LANES`.
    pub fn lane(&self, i: usize) -> f32 {
        self.0[i]
    }

    /// Writes lane `i`.
    ///
    /// # Panics
    /// Panics if `i >= LANES`.
    pub fn set_lane(&mut self, i: usize, v: f32) {
        self.0[i] = v;
    }

    /// Bitmask with bit `i` set iff lane `i` is exactly (signed) zero.
    ///
    /// This is the per-element zero comparison performed by the Mask
    /// Generation Units (paper Fig 4) and by the mask-design broadcast cache
    /// (paper Fig 6b).
    pub fn zero_mask(&self) -> u16 {
        let mut m = 0u16;
        for (i, v) in self.0.iter().enumerate() {
            if *v == 0.0 {
                m |= 1 << i;
            }
        }
        m
    }

    /// Bitmask with bit `i` set iff lane `i` is non-zero (complement of
    /// [`zero_mask`](Self::zero_mask)).
    pub fn nonzero_mask(&self) -> u16 {
        !self.zero_mask()
    }

    /// Fraction of zero lanes, useful for sparsity assertions in tests.
    pub fn sparsity(&self) -> f64 {
        self.zero_mask().count_ones() as f64 / LANES as f64
    }

    /// Interprets the same 512 bits as 32 BF16 multiplicand lanes.
    ///
    /// Lane `2i` is the low half of FP32 slot `i`, lane `2i+1` the high half,
    /// matching the little-endian packing of `VDPBF16PS` operands.
    pub fn as_bf16(&self) -> VecBf16 {
        let mut out = [Bf16::ZERO; ML_LANES];
        for (i, v) in self.0.iter().enumerate() {
            let bits = v.to_bits();
            out[2 * i] = Bf16::from_bits(bits as u16);
            out[2 * i + 1] = Bf16::from_bits((bits >> 16) as u16);
        }
        VecBf16(out)
    }
}

/// A 512-bit vector viewed as 32 BF16 multiplicand lanes.
///
/// ```
/// use save_isa::{Bf16, VecBf16};
/// let v = VecBf16::splat_pair(Bf16::from_f32(1.0), Bf16::ZERO);
/// // Odd multiplicand lanes are zero:
/// assert_eq!(v.zero_mask() & 0b10, 0b10);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct VecBf16(pub [Bf16; ML_LANES]);

impl Default for VecBf16 {
    fn default() -> Self {
        VecBf16([Bf16::ZERO; ML_LANES])
    }
}

impl VecBf16 {
    /// Builds a vector from an array of BF16 lanes.
    pub fn from_lanes(lanes: [Bf16; ML_LANES]) -> Self {
        VecBf16(lanes)
    }

    /// Broadcasts a (low, high) BF16 pair to every accumulator-lane group,
    /// the embedded-broadcast form of a mixed-precision VFMA (a 32-bit
    /// element broadcast).
    pub fn splat_pair(lo: Bf16, hi: Bf16) -> Self {
        let mut out = [Bf16::ZERO; ML_LANES];
        for i in 0..LANES {
            out[2 * i] = lo;
            out[2 * i + 1] = hi;
        }
        VecBf16(out)
    }

    /// Reads multiplicand lane `i` (`0 <= i < 32`).
    ///
    /// # Panics
    /// Panics if `i >= ML_LANES`.
    pub fn lane(&self, i: usize) -> Bf16 {
        self.0[i]
    }

    /// 32-bit mask with bit `i` set iff ML `i` is zero.
    pub fn zero_mask(&self) -> u32 {
        let mut m = 0u32;
        for (i, v) in self.0.iter().enumerate() {
            if v.is_zero() {
                m |= 1 << i;
            }
        }
        m
    }

    /// Repacks the 32 BF16 lanes into 16 FP32 raw slots (the storage format
    /// inside a 512-bit register).
    pub fn to_vec_f32_bits(&self) -> VecF32 {
        let mut out = [0.0f32; LANES];
        for (i, o) in out.iter_mut().enumerate() {
            let bits =
                (self.0[2 * i].to_bits() as u32) | ((self.0[2 * i + 1].to_bits() as u32) << 16);
            *o = f32::from_bits(bits);
        }
        VecF32(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mask_matches_lanes() {
        let mut v = VecF32::splat(1.0);
        v.set_lane(3, 0.0);
        v.set_lane(9, -0.0);
        assert_eq!(v.zero_mask(), (1 << 3) | (1 << 9));
        assert_eq!(v.nonzero_mask(), !((1 << 3) | (1 << 9)));
    }

    #[test]
    fn bf16_roundtrip_through_f32_bits() {
        let mut lanes = [Bf16::ZERO; ML_LANES];
        for (i, l) in lanes.iter_mut().enumerate() {
            *l = Bf16::from_f32(i as f32 * 0.25 - 2.0);
        }
        let v = VecBf16::from_lanes(lanes);
        let packed = v.to_vec_f32_bits();
        let back = packed.as_bf16();
        assert_eq!(v, back);
    }

    #[test]
    fn splat_pair_layout() {
        let v = VecBf16::splat_pair(Bf16::from_f32(2.0), Bf16::from_f32(3.0));
        for i in 0..LANES {
            assert_eq!(v.lane(2 * i).to_f32(), 2.0);
            assert_eq!(v.lane(2 * i + 1).to_f32(), 3.0);
        }
    }

    #[test]
    fn sparsity_fraction() {
        let mut v = VecF32::splat(1.0);
        for i in 0..8 {
            v.set_lane(i, 0.0);
        }
        assert_eq!(v.sparsity(), 0.5);
    }
}
