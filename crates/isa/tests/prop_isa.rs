//! Property-based tests for the ISA substrate.

use proptest::prelude::*;
use save_isa::{Bf16, Memory, VecBf16, VecF32, LANES, ML_LANES};

proptest! {
    /// BF16 conversion is within half a ULP (2^-8 relative) for normal
    /// values and is idempotent.
    #[test]
    fn bf16_roundtrip_error_bounded(x in -1.0e30f32..1.0e30f32) {
        prop_assume!(x.is_finite() && x.abs() > f32::MIN_POSITIVE);
        let r = Bf16::from_f32(x).to_f32();
        let rel = ((r - x) / x).abs();
        prop_assert!(rel <= 1.0 / 256.0, "x={x} r={r} rel={rel}");
        // Idempotence: converting an exact BF16 value changes nothing.
        let again = Bf16::from_f32(r);
        prop_assert_eq!(again.to_f32().to_bits(), r.to_bits());
    }

    /// Round-to-nearest-even is monotone on same-sign inputs.
    #[test]
    fn bf16_conversion_is_monotone(a in 0.0f32..1.0e20, b in 0.0f32..1.0e20) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Bf16::from_f32(lo).to_f32() <= Bf16::from_f32(hi).to_f32());
    }

    /// `is_zero` agrees with the float comparison.
    #[test]
    fn bf16_zero_detection(bits in any::<u16>()) {
        let v = Bf16::from_bits(bits);
        if !v.is_nan() {
            prop_assert_eq!(v.is_zero(), v.to_f32() == 0.0);
        }
    }

    /// The zero mask marks exactly the zero lanes.
    #[test]
    fn vec_zero_mask_matches_lanes(lanes in prop::array::uniform16(-4.0f32..4.0)) {
        let v = VecF32::from_lanes(lanes);
        let m = v.zero_mask();
        for (i, l) in lanes.iter().enumerate() {
            prop_assert_eq!(m >> i & 1 == 1, *l == 0.0);
        }
        prop_assert_eq!(m, !v.nonzero_mask());
        prop_assert!((v.sparsity() - m.count_ones() as f64 / LANES as f64).abs() < 1e-12);
    }

    /// BF16 lane packing round-trips through the raw FP32 storage view.
    #[test]
    fn bf16_vector_packing_roundtrip(raw in prop::array::uniform32(any::<u16>())) {
        let lanes: [Bf16; ML_LANES] = raw.map(Bf16::from_bits);
        let v = VecBf16::from_lanes(lanes);
        prop_assert_eq!(v.to_vec_f32_bits().as_bf16(), v);
    }

    /// Memory reads return the last write, across interleaved scalar and
    /// vector accesses.
    #[test]
    fn memory_read_your_writes(
        writes in prop::collection::vec((0u64..960, -100.0f32..100.0), 1..64)
    ) {
        let mut mem = Memory::new(1024);
        let mut model = std::collections::HashMap::new();
        for (slot, v) in writes {
            let addr = slot / 4 * 4; // 4-byte aligned
            mem.write_f32(addr, v);
            model.insert(addr, v);
        }
        for (addr, v) in model {
            prop_assert_eq!(mem.read_f32(addr).to_bits(), v.to_bits());
        }
    }

    /// Allocations are 64-byte aligned and never overlap.
    #[test]
    fn memory_alloc_disjoint(sizes in prop::collection::vec(1usize..500, 1..20)) {
        let mut mem = Memory::new(0);
        let mut regions: Vec<(u64, usize)> = Vec::new();
        for s in sizes {
            let base = mem.alloc(s);
            prop_assert_eq!(base % 64, 0);
            for &(b, len) in &regions {
                let disjoint = base >= b + len as u64 || b >= base + s as u64;
                prop_assert!(disjoint, "overlap: ({b},{len}) vs ({base},{s})");
            }
            regions.push((base, s));
        }
    }

    /// Vector store/load round-trips bit-exactly.
    #[test]
    fn memory_vector_roundtrip(lanes in prop::array::uniform16(-1.0e10f32..1.0e10)) {
        let mut mem = Memory::new(256);
        let v = VecF32::from_lanes(lanes);
        mem.write_vec_f32(64, v);
        prop_assert_eq!(mem.read_vec_f32(64), v);
    }
}
