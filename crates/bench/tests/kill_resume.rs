//! Kill-and-resume integration test for the durable sweep layer
//! (DESIGN.md §5f): SIGKILL the `surface` binary mid-sweep, resume from
//! its journal, and require the resumed output to be **bit-identical** to
//! an uninterrupted run — same `secs_bits`, same total simulated cycles.
//! A second test covers graceful cancellation: SIGINT must produce exit
//! code 130 with a resumable journal.

use serde::Deserialize;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Mirrors the `surface` binary's output line.
#[derive(Debug, Deserialize)]
struct Out {
    secs_bits: Vec<u64>,
    total_cycles: u64,
    resumed: u64,
}

/// Sweep sizing: 16 quick-grid cells, single-threaded, each cell large
/// enough (~100ms+) that the process reliably dies mid-sweep.
const SWEEP_ARGS: &[&str] = &["--quick", "--threads", "1", "--k", "256", "--tiles", "96"];

fn surface_cmd(extra: &[&str]) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_surface"));
    c.args(SWEEP_ARGS).args(extra).stdout(Stdio::piped()).stderr(Stdio::piped());
    c
}

fn run_to_out(extra: &[&str]) -> Out {
    let out = surface_cmd(extra).output().expect("spawn surface");
    assert!(
        out.status.success(),
        "surface {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let line = stdout.lines().last().expect("surface printed a JSON line");
    serde_json::from_str(line).expect("parse surface JSON")
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("save-killres-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn journal_lines(dir: &Path) -> usize {
    std::fs::read_to_string(dir.join("sweep").join("journal.jsonl"))
        .map(|s| s.lines().count())
        .unwrap_or(0)
}

/// Polls until the sweep journal holds at least `want` complete cells (the
/// signal that the run is genuinely mid-flight), then returns the count.
fn wait_for_journal(dir: &Path, want: usize, child: &mut Child) -> usize {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let lines = journal_lines(dir);
        if lines >= want {
            return lines;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("surface exited ({status}) before journaling {want} cells");
        }
        assert!(Instant::now() < deadline, "no journal progress within 60s");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn sigkill_then_resume_is_bit_identical() {
    let reference = run_to_out(&[]);
    assert_eq!(reference.secs_bits.len(), 16, "quick grid is 4x4");
    assert!(reference.secs_bits.iter().all(|&b| !f64::from_bits(b).is_nan()));

    let dir = tmpdir("sigkill");
    let dir_s = dir.display().to_string();
    let mut child = surface_cmd(&["--checkpoint-dir", &dir_s]).spawn().expect("spawn");
    wait_for_journal(&dir, 2, &mut child);
    // SIGKILL: no destructors, no flush beyond what the journal already
    // forced — the worst-case crash the layer promises to survive.
    child.kill().expect("kill");
    let status = child.wait().expect("wait");
    assert!(!status.success(), "killed run must not report success");

    let journaled = journal_lines(&dir);
    assert!(journaled >= 2, "at least the awaited cells are durable");

    let resumed = run_to_out(&["--checkpoint-dir", &dir_s, "--resume"]);
    assert!(
        resumed.resumed >= 2,
        "resume must restore the journaled cells, restored {}",
        resumed.resumed
    );
    assert_eq!(
        resumed.secs_bits, reference.secs_bits,
        "resumed surface must be bit-identical to an uninterrupted run"
    );
    assert_eq!(
        resumed.total_cycles, reference.total_cycles,
        "total simulated cycles are resume-invariant"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn sigint_exits_130_and_leaves_a_resumable_journal() {
    let dir = tmpdir("sigint");
    let dir_s = dir.display().to_string();
    let mut child = surface_cmd(&["--checkpoint-dir", &dir_s]).spawn().expect("spawn");
    wait_for_journal(&dir, 1, &mut child);
    let sent = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(sent.success(), "kill -INT failed");
    let status = child.wait().expect("wait");
    assert_eq!(status.code(), Some(130), "cancelled-but-resumable exit code");

    // The journal survives and the resumed run completes cleanly.
    let resumed = run_to_out(&["--checkpoint-dir", &dir_s, "--resume"]);
    assert!(resumed.resumed >= 1);
    assert!(resumed.secs_bits.iter().all(|&b| !f64::from_bits(b).is_nan()));
    let _ = std::fs::remove_dir_all(&dir);
}
