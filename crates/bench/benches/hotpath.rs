//! Criterion micro-benchmarks of the cycle-loop hot path itself: whole
//! small kernels driven through `run_kernel_custom`, which exercises the
//! scheduler (window masks + select), rename/allocate, the MGU sync path,
//! and write-back every cycle. The `_ff_off` variants pin the raw cost of
//! an executed cycle; the `_ff_on` variants show what event-driven
//! fast-forward recovers on idle-heavy workloads. Tracked over time via
//! `perfstat` (see BENCH_PERF.json); these exist to localize a regression
//! the trajectory only detects in aggregate.

use criterion::{criterion_group, criterion_main, Criterion};
use save_core::CoreConfig;
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_sim::runner::{run_kernel_custom, ConfigKind, MachineConfig};

fn spec() -> GemmKernelSpec {
    GemmKernelSpec {
        m_tiles: 6,
        n_vecs: 4,
        pattern: BroadcastPattern::Explicit,
        precision: Precision::F32,
    }
}

/// Compute-bound: B panels resident, nearly every cycle does work, so
/// fast-forward barely engages and the number measures the step loop.
fn compute_workload() -> GemmWorkload {
    GemmWorkload::dense("hot-compute", spec(), 32, 2).with_sparsity(0.3, 0.5)
}

/// Memory-streaming: B panels stream from DRAM, leaving long inert
/// stretches — the fast-forward target case.
fn stream_workload() -> GemmWorkload {
    GemmWorkload {
        b_panel_tiles: 1,
        ..GemmWorkload::dense("hot-stream", spec(), 32, 2).with_sparsity(0.6, 0.6)
    }
}

fn run(w: &GemmWorkload, cfg: &CoreConfig) -> u64 {
    let m = MachineConfig::default();
    run_kernel_custom(w, cfg, &m, 7, false).expect("bench kernel must run clean").cycles
}

fn bench_step_loop(c: &mut Criterion) {
    let on = ConfigKind::Save2Vpu.core_config();
    let off = CoreConfig { fast_forward: false, ..on };
    let compute = compute_workload();
    let stream = stream_workload();
    c.bench_function("hotpath/compute_step_loop", |b| {
        b.iter(|| std::hint::black_box(run(&compute, &off)))
    });
    c.bench_function("hotpath/stream_step_loop_ff_off", |b| {
        b.iter(|| std::hint::black_box(run(&stream, &off)))
    });
    c.bench_function("hotpath/stream_step_loop_ff_on", |b| {
        b.iter(|| std::hint::black_box(run(&stream, &on)))
    });
}

fn bench_baseline_vs_save(c: &mut Criterion) {
    // Scheduler cost comparison: the Baseline selector walks a plain ready
    // scan, the SAVE selector additionally coalesces and compresses — both
    // go through the same zero-allocation scratch, so their gap is the
    // price of sparsity awareness, not of the harness.
    let compute = compute_workload();
    c.bench_function("hotpath/select_baseline", |b| {
        let cfg = ConfigKind::Baseline.core_config();
        b.iter(|| std::hint::black_box(run(&compute, &cfg)))
    });
    c.bench_function("hotpath/select_save2vpu", |b| {
        let cfg = ConfigKind::Save2Vpu.core_config();
        b.iter(|| std::hint::black_box(run(&compute, &cfg)))
    });
}

criterion_group! {
    name = hotpath;
    config = Criterion::default().sample_size(10);
    targets = bench_step_loop, bench_baseline_vs_save
}
criterion_main!(hotpath);
