//! Criterion benchmarks — one group per table/figure of the paper.
//!
//! Each group runs a single representative point of the corresponding
//! experiment (the full sweeps live in the `figN`/`tableN` regeneration
//! binaries) so `cargo bench` exercises every experiment's code path with
//! statistical timing of the simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use save_core::CoreConfig;
use save_kernels::{Phase, Precision};
use save_mem::energy::{PrecisionSupport, StorageModel};
use save_sim::runner::{run_kernel, run_kernel_custom};
use save_sim::{ConfigKind, MachineConfig, Network};
use save_sparsity::{ActivationModel, NetKind, PruningSchedule};

fn quick_machine() -> MachineConfig {
    MachineConfig::default()
}

fn small(name: &str, phase: Phase, prec: Precision, a: f64, b: f64) -> save_kernels::GemmWorkload {
    let mut w = save_kernels::shapes::conv_by_name(name)
        .expect("shape")
        .workload(phase, prec)
        .with_sparsity(a, b);
    w.tiles = 2;
    w.k_total = 32;
    w
}

fn bench_table1_table2(c: &mut Criterion) {
    c.bench_function("table2/storage_model", |b| {
        let m = StorageModel::default();
        b.iter(|| {
            std::hint::black_box(
                m.temp_bytes(PrecisionSupport::Fp32AndMixed)
                    + m.bcast_mask_bytes(PrecisionSupport::Fp32Only)
                    + m.bcast_data_bytes(PrecisionSupport::Fp32Only),
            )
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3/sparsity_roles", |b| {
        let net = Network::build(NetKind::ResNet50Pruned);
        b.iter(|| {
            let mut acc = 0.0;
            for phase in Phase::ALL {
                let p = net.sparsity_point(5, phase, 1.0);
                acc += p.a + p.b;
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_fig12_fig13(c: &mut Criterion) {
    c.bench_function("fig12/activation_series", |b| {
        let m = ActivationModel::new(NetKind::Vgg16Dense);
        b.iter(|| std::hint::black_box(m.series(12, 13, 90)))
    });
    c.bench_function("fig13/pruning_schedule", |b| {
        let s = PruningSchedule::gnmt();
        b.iter(|| std::hint::black_box(s.series(5_000)))
    });
}

fn bench_fig14(c: &mut Criterion) {
    c.bench_function("fig14/inference_layer_point", |b| {
        let w = small("ResNet3_2", Phase::Forward, Precision::F32, 0.4, 0.8);
        let m = quick_machine();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(run_kernel(&w, ConfigKind::Save2Vpu, &m, seed, false).map(|r| r.cycles))
        })
    });
}

fn bench_fig15(c: &mut Criterion) {
    c.bench_function("fig15/mp_forward_sweep_point", |b| {
        let w = small("ResNet2_2", Phase::Forward, Precision::Mixed, 0.4, 0.4);
        let m = quick_machine();
        b.iter(|| std::hint::black_box(run_kernel(&w, ConfigKind::Save1Vpu, &m, 1, false).map(|r| r.cycles)))
    });
}

fn bench_fig16(c: &mut Criterion) {
    c.bench_function("fig16/speedup_cap_point", |b| {
        let w = small("VGG3_2", Phase::Forward, Precision::F32, 0.9, 0.9);
        let m = quick_machine();
        b.iter(|| std::hint::black_box(run_kernel(&w, ConfigKind::Save1Vpu, &m, 1, false).map(|r| r.cycles)))
    });
}

fn bench_fig17(c: &mut Criterion) {
    c.bench_function("fig17/embedded_broadcast_with_bcache", |b| {
        let w = small("ResNet3_2", Phase::BackwardWeights, Precision::F32, 0.4, 0.4);
        let m = quick_machine();
        b.iter(|| std::hint::black_box(run_kernel(&w, ConfigKind::Save2Vpu, &m, 1, false).map(|r| r.cycles)))
    });
}

fn bench_fig18(c: &mut Criterion) {
    let m = quick_machine();
    for (label, cfg) in [
        ("vc", CoreConfig { rotate: false, lane_wise: false, ..CoreConfig::save_1vpu() }),
        ("rvc_lwd", CoreConfig::save_1vpu()),
        (
            "hc",
            CoreConfig {
                scheduler: save_core::SchedulerKind::Horizontal,
                ..CoreConfig::save_1vpu()
            },
        ),
    ] {
        c.bench_function(&format!("fig18/{label}"), |b| {
            let w = small("ResNet3_2", Phase::BackwardInput, Precision::F32, 0.0, 0.5);
            b.iter(|| std::hint::black_box(run_kernel_custom(&w, &cfg, &m, 1, false).map(|r| r.cycles)))
        });
    }
}

fn bench_fig19(c: &mut Criterion) {
    let m = quick_machine();
    for (label, compress) in [("without_mp_technique", false), ("with_mp_technique", true)] {
        let cfg = CoreConfig { mp_compress: compress, ..CoreConfig::save_1vpu() };
        c.bench_function(&format!("fig19/{label}"), |b| {
            let w = small("ResNet4_1a", Phase::BackwardInput, Precision::Mixed, 0.0, 0.6);
            b.iter(|| std::hint::black_box(run_kernel_custom(&w, &cfg, &m, 1, false).map(|r| r.cycles)))
        });
    }
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_table1_table2, bench_table3, bench_fig12_fig13, bench_fig14,
              bench_fig15, bench_fig16, bench_fig17, bench_fig18, bench_fig19
}
criterion_main!(experiments);
