//! Criterion micro-benchmarks of the simulator's hot components: cache
//! probes, DRAM channel model, ELM generation, BF16 conversion, and the
//! bilinear surface interpolation used by the §VI methodology.

use criterion::{criterion_group, criterion_main, Criterion};
use save_core::mgu;
use save_isa::{Bf16, VecF32};
use save_mem::{Cache, CacheConfig, Dram, DramConfig, Replacement};
use save_sim::Surface;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("components/l1_probe_hit", |b| {
        let mut cache = Cache::new(CacheConfig {
            capacity_bytes: 32 * 1024,
            ways: 8,
            replacement: Replacement::Lru,
        });
        for l in 0..256 {
            cache.fill(l);
        }
        let mut l = 0u64;
        b.iter(|| {
            l = (l + 1) % 256;
            std::hint::black_box(cache.access(l))
        })
    });
    c.bench_function("components/srrip_fill_evict", |b| {
        let mut cache = Cache::new(CacheConfig {
            capacity_bytes: 64 * 64,
            ways: 16,
            replacement: Replacement::Srrip,
        });
        let mut l = 0u64;
        b.iter(|| {
            l += 1;
            std::hint::black_box(cache.fill(l))
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("components/dram_access", |b| {
        let mut d = Dram::new(DramConfig::default());
        let mut l = 0u64;
        b.iter(|| {
            l += 1;
            std::hint::black_box(d.access_line(l, l as f64, false))
        })
    });
}

fn bench_mgu(c: &mut Criterion) {
    let mut a = VecF32::splat(1.5);
    a.set_lane(3, 0.0);
    a.set_lane(9, 0.0);
    let bvec = VecF32::splat(2.0);
    c.bench_function("components/elm_f32", |b| {
        b.iter(|| std::hint::black_box(mgu::elm_f32(&a, &bvec, u16::MAX)))
    });
    c.bench_function("components/elm_mixed", |b| {
        b.iter(|| std::hint::black_box(mgu::elm_mp(&a, &bvec)))
    });
}

fn bench_bf16(c: &mut Criterion) {
    c.bench_function("components/bf16_roundtrip", |b| {
        let mut x = 0.1f32;
        b.iter(|| {
            x += 0.001;
            std::hint::black_box(Bf16::from_f32(x).to_f32())
        })
    });
}

fn bench_surface(c: &mut Criterion) {
    let levels: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
    let secs: Vec<f64> = (0..100).map(|i| 1.0 / (1.0 + i as f64 * 0.01)).collect();
    let s = Surface { a_levels: levels.clone(), b_levels: levels, secs };
    c.bench_function("components/surface_interp", |b| {
        let mut x = 0.0;
        b.iter(|| {
            x = (x + 0.013) % 0.9;
            std::hint::black_box(s.interp(x, 0.9 - x))
        })
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_dram, bench_mgu, bench_bf16, bench_surface
}
criterion_main!(components);
