//! # save-bench — regeneration harness for every table and figure
//!
//! One binary per experiment (`table1`-`table3`, `fig12`-`fig19`), each
//! printing the same rows/series the paper reports and writing a
//! machine-readable JSON copy under `target/experiments/` for
//! EXPERIMENTS.md. Criterion micro-benchmarks cover the simulator's hot
//! paths and one representative kernel per experiment.
//!
//! Sweeps run through [`SweepSession`]: each simulated cell is a recorded
//! job, a cell that fails (typed [`SimError`] or a panic) becomes a `NaN`
//! entry instead of aborting the figure, and [`SweepSession::finish`]
//! dumps a [`FailureReport`] JSON next to the results and maps a lossy run
//! to a non-zero process exit code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use save_sim::error::SimError;
use save_sim::parallel::{FailureReport, JobFailure};
use serde::Serialize;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;

/// Directory experiment JSON results are written to.
///
/// # Errors
/// [`SimError::Io`] if the directory cannot be created.
pub fn experiments_dir() -> Result<PathBuf, SimError> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir)
        .map_err(|e| SimError::Io { what: format!("create {}: {e}", dir.display()) })?;
    Ok(dir)
}

/// Writes `value` as pretty JSON to `target/experiments/<name>.json`.
///
/// # Errors
/// [`SimError::Io`] on serialization or filesystem failure.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Result<(), SimError> {
    let path = experiments_dir()?.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)
        .map_err(|e| SimError::Io { what: format!("create {}: {e}", path.display()) })?;
    let s = serde_json::to_string_pretty(value)
        .map_err(|e| SimError::Io { what: format!("serialize {name}: {e}") })?;
    f.write_all(s.as_bytes())
        .map_err(|e| SimError::Io { what: format!("write {}: {e}", path.display()) })?;
    eprintln!("[saved {}]", path.display());
    Ok(())
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// `true` when `--quick` was passed (reduced sweeps) and the grid /
/// machine scale to use.
pub struct HarnessArgs {
    /// Reduced sweep sizes.
    pub quick: bool,
    /// Use the paper's full 10-level grid.
    pub full: bool,
}

impl HarnessArgs {
    /// Parses `--quick` / `--full` from the command line.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        HarnessArgs {
            quick: args.iter().any(|a| a == "--quick"),
            full: args.iter().any(|a| a == "--full"),
        }
    }

    /// The sparsity grid implied by the flags.
    pub fn grid(&self) -> Vec<f64> {
        if self.full {
            save_sim::surface::paper_grid()
        } else if self.quick {
            vec![0.0, 0.3, 0.6, 0.9]
        } else {
            save_sim::surface::coarse_grid()
        }
    }
}

/// Fault-isolating harness for one experiment binary.
///
/// Every simulated cell goes through [`SweepSession::run`] (or the
/// [`SweepSession::seconds`] convenience): the job runs behind
/// `catch_unwind`, a typed failure or panic is recorded instead of
/// propagated, and the sweep continues with the remaining cells. At the
/// end, [`SweepSession::finish`] prints and persists the failure report
/// and turns a lossy run into exit code 1.
pub struct SweepSession {
    name: String,
    jobs: usize,
    failures: Vec<JobFailure>,
}

impl SweepSession {
    /// Starts a session for the experiment called `name` (used for the
    /// `<name>-failures.json` dump).
    pub fn new(name: &str) -> Self {
        SweepSession { name: name.to_string(), jobs: 0, failures: Vec::new() }
    }

    /// Runs one labelled job with panic isolation. Returns `None` (and
    /// records the failure) when the job fails.
    pub fn run<R>(
        &mut self,
        label: &str,
        f: impl FnOnce() -> Result<R, SimError>,
    ) -> Option<R> {
        let job = self.jobs;
        self.jobs += 1;
        let result = match catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => r,
            Err(payload) => {
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(SimError::WorkerPanic { job, message })
            }
        };
        match result {
            Ok(r) => Some(r),
            Err(error) => {
                eprintln!("[{}] job {job} ({label}) failed: [{}] {error}", self.name, error.kind());
                self.failures.push(JobFailure {
                    job,
                    label: Some(label.to_string()),
                    attempts: 1,
                    error,
                });
                None
            }
        }
    }

    /// Like [`SweepSession::run`] for jobs producing a duration: a failed
    /// cell reports as `NaN` so tables and JSON keep their shape.
    pub fn seconds(&mut self, label: &str, f: impl FnOnce() -> Result<f64, SimError>) -> f64 {
        self.run(label, f).unwrap_or(f64::NAN)
    }

    /// The failure report accumulated so far.
    pub fn report(&self) -> FailureReport {
        FailureReport {
            total_jobs: self.jobs,
            succeeded: self.jobs - self.failures.len(),
            failures: self.failures.clone(),
        }
    }

    /// `true` when no job has failed yet.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Prints the failure report, persists it as
    /// `target/experiments/<name>-failures.json` when lossy, and returns
    /// the process exit code: success only for a clean sweep.
    pub fn finish(self) -> ExitCode {
        let report = self.report();
        if report.is_clean() {
            return ExitCode::SUCCESS;
        }
        eprintln!("[{}] sweep completed with failures: {report}", self.name);
        if let Err(e) = write_json(&format!("{}-failures", self.name), &report) {
            eprintln!("[{}] could not persist failure report: {e}", self.name);
        }
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_isolates_failures_and_reports() {
        let mut s = SweepSession::new("unit");
        assert_eq!(s.run("ok", || Ok(41)), Some(41));
        assert_eq!(s.run::<u32>("typed", || Err(SimError::InvalidConfig { what: "x".into() })), None);
        assert_eq!(s.run::<u32>("panic", || panic!("cell exploded")), None);
        assert!(s.seconds("nan", || Err(SimError::InvalidConfig { what: "y".into() })).is_nan());
        let r = s.report();
        assert_eq!(r.total_jobs, 4);
        assert_eq!(r.succeeded, 1);
        assert_eq!(r.failures.len(), 3);
        assert!(matches!(r.failures[1].error, SimError::WorkerPanic { job: 2, .. }));
        assert_eq!(r.exit_code(), 1);
        assert!(!s.is_clean());
    }

    #[test]
    fn clean_session_exits_zero() {
        let mut s = SweepSession::new("clean");
        assert!((s.seconds("ok", || Ok(1.5)) - 1.5).abs() < 1e-12);
        assert!(s.is_clean());
        assert_eq!(s.report().exit_code(), 0);
    }
}
