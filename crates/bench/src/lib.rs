//! # save-bench — regeneration harness for every table and figure
//!
//! One binary per experiment (`table1`-`table3`, `fig12`-`fig19`), each
//! printing the same rows/series the paper reports and writing a
//! machine-readable JSON copy under `target/experiments/` for
//! EXPERIMENTS.md. Criterion micro-benchmarks cover the simulator's hot
//! paths and one representative kernel per experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// Directory experiment JSON results are written to.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes `value` as pretty JSON to `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = experiments_dir().join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create result file");
    let s = serde_json::to_string_pretty(value).expect("serialize result");
    f.write_all(s.as_bytes()).expect("write result");
    eprintln!("[saved {}]", path.display());
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// `true` when `--quick` was passed (reduced sweeps) and the grid /
/// machine scale to use.
pub struct HarnessArgs {
    /// Reduced sweep sizes.
    pub quick: bool,
    /// Use the paper's full 10-level grid.
    pub full: bool,
}

impl HarnessArgs {
    /// Parses `--quick` / `--full` from the command line.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        HarnessArgs {
            quick: args.iter().any(|a| a == "--quick"),
            full: args.iter().any(|a| a == "--full"),
        }
    }

    /// The sparsity grid implied by the flags.
    pub fn grid(&self) -> Vec<f64> {
        if self.full {
            save_sim::surface::paper_grid()
        } else if self.quick {
            vec![0.0, 0.3, 0.6, 0.9]
        } else {
            save_sim::surface::coarse_grid()
        }
    }
}
