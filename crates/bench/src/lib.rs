//! # save-bench — regeneration harness for every table and figure
//!
//! One binary per experiment (`table1`-`table3`, `fig12`-`fig19`, plus the
//! reports), each printing the same rows/series the paper reports and
//! writing a machine-readable JSON copy under `target/experiments/` for
//! EXPERIMENTS.md. Criterion micro-benchmarks cover the simulator's hot
//! paths and one representative kernel per experiment.
//!
//! Every binary funnels through [`run_main`], which parses the uniform
//! durable-execution flags ([`BenchCli`]: `--checkpoint-dir`, `--resume`,
//! `--cell-deadline`, `--retries`, …), installs the SIGINT/SIGTERM
//! supervisor, and maps the run's outcome to one process exit code
//! convention (0 clean / 1 lossy / 2 usage / 130 cancelled-resumable).
//!
//! Sweeps run through [`SweepSession`]: each simulated cell is a recorded
//! job executed under the per-cell retry/deadline policy of
//! [`save_sim::durable`], a cell that fails (typed [`SimError`] or a
//! panic) becomes a `NaN` entry instead of aborting the figure, and
//! [`SweepSession::finish`] dumps a [`FailureReport`] JSON next to the
//! results. With `--checkpoint-dir`, every [`SweepSession::seconds`] cell
//! is journaled by label hash, so a killed run resumed with `--resume`
//! restores finished cells bit-identically instead of recomputing them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use save_serve::{CellResult, Client, NamedCell};
use save_sim::checkpoint::{fnv1a, CellRecord, Checkpoint, SweepManifest};
use save_sim::durable::{exit_code_for, run_cell, RetryPolicy, EXIT_FAILURES, EXIT_USAGE};
use save_sim::error::{RetryClass, SimError};
use save_sim::parallel::{FailureReport, JobFailure};
use save_sim::spec::CellSpec;
use save_sim::{CancelToken, Supervisor, SupervisorHandle, TraceStore};
use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Directory experiment JSON results are written to.
///
/// # Errors
/// [`SimError::Io`] if the directory cannot be created.
pub fn experiments_dir() -> Result<PathBuf, SimError> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir)
        .map_err(|e| SimError::Io { what: format!("create {}: {e}", dir.display()) })?;
    Ok(dir)
}

/// Writes `value` as pretty JSON to `target/experiments/<name>.json`.
///
/// # Errors
/// [`SimError::Io`] on serialization or filesystem failure.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Result<(), SimError> {
    let path = experiments_dir()?.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)
        .map_err(|e| SimError::Io { what: format!("create {}: {e}", path.display()) })?;
    let s = serde_json::to_string_pretty(value)
        .map_err(|e| SimError::Io { what: format!("serialize {name}: {e}") })?;
    f.write_all(s.as_bytes())
        .map_err(|e| SimError::Io { what: format!("write {}: {e}", path.display()) })?;
    eprintln!("[saved {}]", path.display());
    Ok(())
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Uniform command line shared by every experiment binary.
///
/// Durable-execution flags (`--checkpoint-dir`, `--resume`,
/// `--cell-deadline`, `--retries`) are understood identically everywhere;
/// anything unrecognised lands in [`BenchCli::rest`] for binaries with
/// extra arguments of their own (`netreport`, `simulate`, `perfstat`).
#[derive(Clone, Debug, Default)]
pub struct BenchCli {
    /// Reduced sweep sizes (`--quick`).
    pub quick: bool,
    /// Use the paper's full 10-level grid (`--full`).
    pub full: bool,
    /// Journal completed cells here (`--checkpoint-dir DIR`).
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from an existing journal (`--resume`).
    pub resume: bool,
    /// Per-cell wall-clock deadline in milliseconds (`--cell-deadline MS`).
    pub cell_deadline_ms: Option<u64>,
    /// Extra attempts per transiently-failing cell (`--retries N`).
    pub retries: u32,
    /// Worker threads for surface sweeps (`--threads N`).
    pub threads: Option<usize>,
    /// Submit spec-based cells to a running save-serve daemon at this
    /// address instead of simulating locally (`--serve ADDR`). Transport
    /// failures degrade gracefully back to local execution.
    pub serve_addr: Option<String>,
    /// Positional / binary-specific arguments, in order.
    pub rest: Vec<String>,
}

/// The usage text appended to flag-parse errors.
pub const BENCH_USAGE: &str = "uniform flags: [--quick] [--full] \
     [--checkpoint-dir DIR] [--resume] [--cell-deadline MS] [--retries N] \
     [--threads N] [--serve ADDR]";

impl BenchCli {
    /// Parses the process command line (without the program name).
    ///
    /// # Errors
    /// A human-readable usage message when a flag value is missing or
    /// malformed.
    pub fn parse() -> Result<Self, String> {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (for tests and child processes).
    ///
    /// # Errors
    /// A human-readable usage message when a flag value is missing or
    /// malformed.
    pub fn parse_from<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let args: Vec<String> = args.into_iter().map(Into::into).collect();
        let mut cli = BenchCli { retries: 2, ..BenchCli::default() };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next().ok_or_else(|| format!("{flag} needs a value\n{BENCH_USAGE}"))
            };
            match arg.as_str() {
                "--quick" => cli.quick = true,
                "--full" => cli.full = true,
                "--resume" => cli.resume = true,
                "--checkpoint-dir" => cli.checkpoint_dir = Some(PathBuf::from(value(&arg)?)),
                "--cell-deadline" => {
                    let v = value(&arg)?;
                    cli.cell_deadline_ms = Some(v.parse().map_err(|_| {
                        format!("--cell-deadline takes milliseconds, got {v:?}\n{BENCH_USAGE}")
                    })?);
                }
                "--retries" => {
                    let v = value(&arg)?;
                    cli.retries = v.parse().map_err(|_| {
                        format!("--retries takes a count, got {v:?}\n{BENCH_USAGE}")
                    })?;
                }
                "--threads" => {
                    let v = value(&arg)?;
                    cli.threads = Some(v.parse().map_err(|_| {
                        format!("--threads takes a count, got {v:?}\n{BENCH_USAGE}")
                    })?);
                }
                "--serve" => cli.serve_addr = Some(value(&arg)?),
                _ => cli.rest.push(arg),
            }
        }
        if cli.resume && cli.checkpoint_dir.is_none() {
            return Err(format!("--resume requires --checkpoint-dir\n{BENCH_USAGE}"));
        }
        Ok(cli)
    }

    /// The sparsity grid implied by the flags.
    pub fn grid(&self) -> Vec<f64> {
        if self.full {
            save_sim::surface::paper_grid()
        } else if self.quick {
            vec![0.0, 0.3, 0.6, 0.9]
        } else {
            save_sim::surface::coarse_grid()
        }
    }

    /// The per-cell retry/deadline policy implied by the flags.
    pub fn policy(&self) -> RetryPolicy {
        RetryPolicy {
            retries: self.retries,
            deadline: self.cell_deadline_ms.map(Duration::from_millis),
            ..RetryPolicy::default()
        }
    }

    /// Worker threads for sweeps: `--threads` or the host's parallelism.
    pub fn threads_or_default(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
    }
}

/// Backwards-compatible alias used by older call sites: `--quick`/`--full`
/// only. Prefer [`BenchCli`] via [`run_main`].
pub struct HarnessArgs {
    /// Reduced sweep sizes.
    pub quick: bool,
    /// Use the paper's full 10-level grid.
    pub full: bool,
}

impl HarnessArgs {
    /// Parses `--quick` / `--full` from the command line.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        HarnessArgs {
            quick: args.iter().any(|a| a == "--quick"),
            full: args.iter().any(|a| a == "--full"),
        }
    }

    /// The sparsity grid implied by the flags.
    pub fn grid(&self) -> Vec<f64> {
        BenchCli { quick: self.quick, full: self.full, ..BenchCli::default() }.grid()
    }
}

/// Fault-isolating, durable harness for one experiment binary.
///
/// Every simulated cell goes through [`SweepSession::run`] (or the
/// [`SweepSession::seconds`] convenience): the job runs under the
/// session's [`RetryPolicy`] via [`save_sim::durable::run_cell`] — panic
/// isolation, per-attempt wall-clock deadline, bounded retries with
/// exponential backoff — and a cell that still fails is recorded instead
/// of propagated, so the sweep continues with the remaining cells.
///
/// When built with a checkpoint (through [`run_main`] and
/// `--checkpoint-dir`), each [`SweepSession::seconds`] cell is journaled
/// under the FNV-1a hash of its label; on `--resume`, journaled cells are
/// restored bit-identically without recomputation. A global cancel
/// (Ctrl-C / SIGTERM) stops claiming cells, leaves the journal flushed,
/// and turns into exit code 130 from [`SweepSession::finish`].
pub struct SweepSession {
    name: String,
    jobs: usize,
    failures: Vec<JobFailure>,
    /// Owns the supervisor for standalone sessions ([`SweepSession::new`]);
    /// sessions built by [`run_main`] share the binary-wide supervisor.
    _own: Option<Supervisor>,
    sup: SupervisorHandle,
    policy: RetryPolicy,
    checkpoint: Option<Checkpoint>,
    resumed: usize,
    cancelled: bool,
    /// `--serve ADDR`: submit [`SweepSession::spec_seconds`] cells to a
    /// save-serve daemon instead of simulating locally.
    serve_addr: Option<String>,
    /// Lazily-opened connection to the daemon.
    serve_client: Option<Client>,
    /// Latched after a transport failure: all further cells run locally.
    serve_degraded: bool,
    /// Cells answered by the daemon (including its cache hits).
    served: usize,
}

impl SweepSession {
    /// Starts a standalone session for the experiment called `name` (used
    /// for the `<name>-failures.json` dump): private supervisor, no signal
    /// handlers, no checkpoint, default retry policy.
    pub fn new(name: &str) -> Self {
        let own = Supervisor::start(false);
        let sup = own.handle();
        SweepSession {
            name: name.to_string(),
            jobs: 0,
            failures: Vec::new(),
            _own: Some(own),
            sup,
            policy: RetryPolicy::default(),
            checkpoint: None,
            resumed: 0,
            cancelled: false,
            serve_addr: None,
            serve_client: None,
            serve_degraded: false,
            served: 0,
        }
    }

    /// Builds the durable session [`run_main`] hands to the binary body:
    /// shared supervisor, the CLI's retry policy, and — when
    /// `--checkpoint-dir` was given — an open [`Checkpoint`] whose
    /// manifest fingerprints the session name and grid flags.
    ///
    /// # Errors
    /// Checkpoint-directory errors: manifest mismatch on `--resume`, an
    /// existing journal without `--resume`, or plain I/O failure.
    pub fn durable(name: &str, cli: &BenchCli, sup: SupervisorHandle) -> Result<Self, SimError> {
        let checkpoint = match &cli.checkpoint_dir {
            None => None,
            Some(dir) => {
                // Session journals key cells by label hash, not index, so
                // the manifest's cell count is 0; the fingerprint still
                // pins the experiment and its grid flags so two different
                // sweeps can't share a journal.
                let manifest = SweepManifest::new(
                    &format!("session:{name}"),
                    "label-keyed experiment session journal",
                    0,
                    [
                        name.to_string(),
                        format!("quick={}", cli.quick),
                        format!("full={}", cli.full),
                    ],
                );
                Some(Checkpoint::open(dir, &manifest, cli.resume)?)
            }
        };
        let resumed = checkpoint.as_ref().map(|c| c.resumed_cells()).unwrap_or(0);
        Ok(SweepSession {
            name: name.to_string(),
            jobs: 0,
            failures: Vec::new(),
            _own: None,
            sup,
            policy: cli.policy(),
            checkpoint,
            resumed,
            cancelled: false,
            serve_addr: cli.serve_addr.clone(),
            serve_client: None,
            serve_degraded: false,
            served: 0,
        })
    }

    /// The supervisor handle, for threading into [`save_sim::surface::DurableSweep`]
    /// or [`save_sim::EstimatorDurability`].
    pub fn supervisor(&self) -> &SupervisorHandle {
        &self.sup
    }

    /// `true` once a global cancel has been observed; remaining cells
    /// return `None`/`NaN` immediately.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Number of cells restored from the journal instead of recomputed.
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// Marks the whole session cancelled (used when a nested durable sweep
    /// reports cancellation).
    pub fn note_cancelled(&mut self) {
        self.cancelled = true;
    }

    /// Records a failure that happened outside any labelled cell (e.g. a
    /// result-serialization error at the end of a binary). A cancellation
    /// error flips the cancelled flag instead of counting as a failure.
    pub fn note_failure(&mut self, label: &str, error: SimError) {
        if error.retry_class() == RetryClass::Cancelled {
            self.cancelled = true;
            return;
        }
        let job = self.jobs;
        self.jobs += 1;
        eprintln!("[{}] {label} failed: [{}] {error}", self.name, error.kind());
        self.failures.push(JobFailure { job, label: Some(label.to_string()), attempts: 1, error });
    }

    /// Runs one labelled job under the retry/deadline policy with panic
    /// isolation. Returns `None` when the job ultimately fails (recording
    /// the failure) or when the session is cancelled (recording nothing —
    /// the cell is resumable, not failed).
    ///
    /// Generic-result cells are *not* journaled; only
    /// [`SweepSession::seconds`] cells participate in checkpoint/resume.
    pub fn run<R>(
        &mut self,
        label: &str,
        f: impl Fn(&CancelToken) -> Result<R, SimError>,
    ) -> Option<R> {
        let job = self.jobs;
        self.jobs += 1;
        if self.cancelled || self.sup.global().is_cancelled() {
            self.cancelled = true;
            return None;
        }
        let run = run_cell(&self.sup, &self.policy, label, job, f);
        match run.result {
            Ok(r) => Some(r),
            Err(error) => {
                if error.retry_class() == RetryClass::Cancelled {
                    self.cancelled = true;
                    return None;
                }
                eprintln!(
                    "[{}] job {job} ({label}) failed after {} attempt(s): [{}] {error}",
                    self.name,
                    run.attempts,
                    error.kind()
                );
                self.failures.push(JobFailure {
                    job,
                    label: Some(label.to_string()),
                    attempts: run.attempts as usize,
                    error,
                });
                None
            }
        }
    }

    /// Like [`SweepSession::run`] for jobs producing a duration: a failed
    /// cell reports as `NaN` so tables and JSON keep their shape.
    ///
    /// This is the journaled path: with a checkpoint, a finished cell is
    /// appended to the journal (keyed by the FNV-1a hash of `label`) and a
    /// resumed run restores it bit-identically — including journaled
    /// *failures*, which are re-reported without burning their deadline
    /// again. Cancelled cells are never journaled, so they re-run.
    pub fn seconds(&mut self, label: &str, f: impl Fn(&CancelToken) -> Result<f64, SimError>) -> f64 {
        let cell = fnv1a(label.as_bytes());
        if let Some(rec) = self.checkpoint.as_ref().and_then(|c| c.done(cell)).cloned() {
            self.jobs += 1;
            if rec.ok() {
                return rec.secs();
            }
            self.failures.push(JobFailure {
                job: self.jobs - 1,
                label: Some(label.to_string()),
                attempts: rec.attempts as usize,
                error: SimError::Io {
                    what: format!(
                        "journaled failure from a previous run (kind: {})",
                        rec.error_kind
                    ),
                },
            });
            return f64::NAN;
        }

        let job = self.jobs;
        self.jobs += 1;
        if self.cancelled || self.sup.global().is_cancelled() {
            self.cancelled = true;
            return f64::NAN;
        }
        let run = run_cell(&self.sup, &self.policy, label, job, f);
        let (secs, error_kind) = match run.result {
            Ok(s) => (s, String::new()),
            Err(error) => {
                if error.retry_class() == RetryClass::Cancelled {
                    // Cancelled cells are never journaled: they re-run on
                    // resume rather than count as failures.
                    self.cancelled = true;
                    return f64::NAN;
                }
                eprintln!(
                    "[{}] job {job} ({label}) failed after {} attempt(s): [{}] {error}",
                    self.name,
                    run.attempts,
                    error.kind()
                );
                let kind = error.kind().to_string();
                self.failures.push(JobFailure {
                    job,
                    label: Some(label.to_string()),
                    attempts: run.attempts as usize,
                    error,
                });
                (f64::NAN, kind)
            }
        };
        // Journal successes so a resume skips them, and failures so a
        // resume fails fast instead of burning the deadline again.
        if let Some(ck) = self.checkpoint.as_mut() {
            let rec = CellRecord {
                cell,
                secs_bits: secs.to_bits(),
                cycles: 0,
                attempts: run.attempts,
                error_kind,
            };
            if let Err(e) = ck.record(rec) {
                eprintln!("[{}] journal append failed: {e}", self.name);
            }
        }
        secs
    }

    /// Like [`SweepSession::seconds`] for a self-describing [`CellSpec`]
    /// cell: with `--serve ADDR`, the cell is submitted to a save-serve
    /// daemon (which memoizes it by content hash across *all* clients and
    /// restarts) and the streamed result is journaled locally exactly as a
    /// local run would be. Any transport failure — refused connection,
    /// daemon draining, torn stream — degrades the whole session to local
    /// execution with a warning; the result is bit-identical either way
    /// because the simulator is deterministic.
    pub fn spec_seconds(&mut self, label: &str, spec: &CellSpec) -> f64 {
        if self.serve_addr.is_some() && !self.serve_degraded {
            // A locally-journaled cell never needs the network; fall through
            // to `seconds`, which replays it without calling the closure.
            let journaled = self
                .checkpoint
                .as_ref()
                .and_then(|c| c.done(fnv1a(label.as_bytes())))
                .is_some();
            if !journaled {
                if let Some(secs) = self.remote_seconds(label, spec) {
                    return secs;
                }
            }
        }
        let spec = spec.clone();
        self.seconds(label, move |tok| spec.run(Some(tok)).map(|r| r.seconds))
    }

    /// Batched [`SweepSession::spec_seconds`]: resolves every
    /// `(label, spec)` cell and returns their seconds in submission order.
    ///
    /// With `--serve`, every not-yet-journaled cell goes to the daemon in
    /// **one** submission — one round trip for the whole batch instead of
    /// one per cell — so the daemon's content-hash memo deduplicates
    /// shared cells (fig16's per-panel baseline resubmissions, repeated
    /// VGG shapes) server-side within the batch. Locally — no daemon, or
    /// after degrading — the batch runs through one shared [`TraceStore`],
    /// so each distinct functional key is executed once and every other
    /// cell replays its trace or is served from the full-result memo,
    /// bit-identically (DESIGN.md §5h).
    pub fn spec_seconds_batch(&mut self, cells: &[(String, CellSpec)]) -> Vec<f64> {
        let mut out = vec![f64::NAN; cells.len()];
        let mut resolved = vec![false; cells.len()];

        // Journaled cells replay from the checkpoint without network or
        // execution (the closure below never runs for them).
        for (i, (label, spec)) in cells.iter().enumerate() {
            let journaled = self
                .checkpoint
                .as_ref()
                .and_then(|c| c.done(fnv1a(label.as_bytes())))
                .is_some();
            if journaled {
                let spec = spec.clone();
                out[i] = self.seconds(label, move |tok| {
                    spec.run(Some(tok)).map(|r| r.seconds)
                });
                resolved[i] = true;
            }
        }

        if self.serve_addr.is_some() && !self.serve_degraded {
            let pending: Vec<usize> =
                (0..cells.len()).filter(|&i| !resolved[i]).collect();
            if !pending.is_empty() {
                for (slot, secs) in self.remote_seconds_batch(cells, &pending) {
                    out[slot] = secs;
                    resolved[slot] = true;
                }
            }
        }

        // Local execution for whatever the daemon didn't answer, sharing
        // one bounded trace store across the batch.
        let store = TraceStore::with_capacity(8);
        for (i, (label, spec)) in cells.iter().enumerate() {
            if resolved[i] {
                continue;
            }
            let spec = spec.clone();
            let store = &store;
            out[i] = self.seconds(label, move |tok| {
                spec.run_traced(Some(tok), store).map(|r| r.seconds)
            });
        }
        out
    }

    /// One batched submission of `pending` (indices into `cells`) to the
    /// daemon. Returns definitive `(index, secs)` outcomes; results the
    /// daemon never delivered — transport failure mid-stream, refused
    /// connection — are simply absent, and the caller runs them locally
    /// (transport failures latch degraded mode exactly like
    /// [`SweepSession::remote_seconds`]). Delivered results are journaled
    /// and counted identically to the one-cell path.
    fn remote_seconds_batch(
        &mut self,
        cells: &[(String, CellSpec)],
        pending: &[usize],
    ) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        if self.cancelled || self.sup.global().is_cancelled() {
            self.cancelled = true;
            self.jobs += pending.len();
            return pending.iter().map(|&s| (s, f64::NAN)).collect();
        }
        let Some(addr) = self.serve_addr.clone() else {
            return out;
        };
        if self.serve_client.is_none() {
            match Client::connect(&addr) {
                Ok(c) => self.serve_client = Some(c),
                Err(e) => {
                    eprintln!(
                        "[{}] --serve {addr} unavailable ([{}] {e}); degrading to local execution",
                        self.name,
                        e.kind()
                    );
                    self.serve_degraded = true;
                    return out;
                }
            }
        }
        let named: Vec<NamedCell> = pending
            .iter()
            .map(|&i| NamedCell {
                label: cells[i].0.clone(),
                spec: cells[i].1.clone(),
                fault: None,
            })
            .collect();
        let mut got: Vec<Option<CellResult>> = vec![None; named.len()];
        let outcome = self
            .serve_client
            .as_mut()
            .expect("connected above")
            .submit(&format!("{}:batch", self.name), &named, |r| {
                if let Some(slot) = got.get_mut(r.index as usize) {
                    *slot = Some(r.clone());
                }
            });
        let done = match outcome {
            Ok(done) => Some(done),
            Err(e) => {
                eprintln!(
                    "[{}] --serve {addr} failed ([{}] {e}); degrading to local execution",
                    self.name,
                    e.kind()
                );
                self.serve_degraded = true;
                self.serve_client = None;
                None
            }
        };
        let daemon_cancelled = done.as_ref().is_some_and(|d| d.cancelled);
        for (k, result) in got.into_iter().enumerate() {
            let slot = pending[k];
            let label = &cells[slot].0;
            let Some(result) = result else {
                if daemon_cancelled {
                    // Daemon cancelled before this cell ran: resumable,
                    // not journaled, not run locally.
                    self.cancelled = true;
                    self.jobs += 1;
                    out.push((slot, f64::NAN));
                }
                continue;
            };
            self.served += 1;
            let job = self.jobs;
            self.jobs += 1;
            if result.error_kind == "cancelled" {
                self.cancelled = true;
                out.push((slot, f64::NAN));
                continue;
            }
            if !result.ok() {
                eprintln!(
                    "[{}] job {job} ({label}) failed on daemon after {} attempt(s): [{}]",
                    self.name, result.attempts, result.error_kind
                );
                self.failures.push(JobFailure {
                    job,
                    label: Some(label.to_string()),
                    attempts: result.attempts.max(1) as usize,
                    error: SimError::Io {
                        what: format!("remote cell failed (kind: {})", result.error_kind),
                    },
                });
            }
            if let Some(ck) = self.checkpoint.as_mut() {
                let rec = CellRecord {
                    cell: fnv1a(label.as_bytes()),
                    secs_bits: result.secs_bits,
                    cycles: result.cycles,
                    attempts: result.attempts,
                    error_kind: result.error_kind.clone(),
                };
                if let Err(e) = ck.record(rec) {
                    eprintln!("[{}] journal append failed: {e}", self.name);
                }
            }
            out.push((slot, result.secs()));
        }
        out
    }

    /// Number of cells answered by the daemon so far (`--serve` mode).
    pub fn served(&self) -> usize {
        self.served
    }

    /// One-cell submission to the daemon. `None` means "transport-level
    /// failure, run locally instead" (and latches degraded mode);
    /// `Some(secs)` is a definitive outcome — success, remote failure
    /// (recorded + journaled like a local one), or cancellation.
    fn remote_seconds(&mut self, label: &str, spec: &CellSpec) -> Option<f64> {
        if self.cancelled || self.sup.global().is_cancelled() {
            self.cancelled = true;
            self.jobs += 1;
            return Some(f64::NAN);
        }
        let addr = self.serve_addr.clone()?;
        if self.serve_client.is_none() {
            match Client::connect(&addr) {
                Ok(c) => self.serve_client = Some(c),
                Err(e) => {
                    eprintln!(
                        "[{}] --serve {addr} unavailable ([{}] {e}); degrading to local execution",
                        self.name,
                        e.kind()
                    );
                    self.serve_degraded = true;
                    return None;
                }
            }
        }
        let cells =
            vec![NamedCell { label: label.to_string(), spec: spec.clone(), fault: None }];
        let mut got: Option<CellResult> = None;
        let outcome = self
            .serve_client
            .as_mut()
            .expect("connected above")
            .submit(&format!("{}:{label}", self.name), &cells, |r| got = Some(r.clone()));
        let result = match (outcome, got) {
            (Ok(_), Some(r)) => r,
            (Ok(done), None) => {
                // Daemon cancelled the job before our cell ran: resumable.
                if done.cancelled {
                    self.cancelled = true;
                    self.jobs += 1;
                    return Some(f64::NAN);
                }
                eprintln!(
                    "[{}] --serve {addr}: job done without a cell result; degrading to local",
                    self.name
                );
                self.serve_degraded = true;
                self.serve_client = None;
                return None;
            }
            (Err(e), _) => {
                eprintln!(
                    "[{}] --serve {addr} failed ([{}] {e}); degrading to local execution",
                    self.name,
                    e.kind()
                );
                self.serve_degraded = true;
                self.serve_client = None;
                return None;
            }
        };
        self.served += 1;
        let job = self.jobs;
        self.jobs += 1;
        if result.error_kind == "cancelled" {
            // Daemon-side cancellation: not journaled, resumable.
            self.cancelled = true;
            return Some(f64::NAN);
        }
        if !result.ok() {
            eprintln!(
                "[{}] job {job} ({label}) failed on daemon after {} attempt(s): [{}]",
                self.name, result.attempts, result.error_kind
            );
            self.failures.push(JobFailure {
                job,
                label: Some(label.to_string()),
                attempts: result.attempts.max(1) as usize,
                error: SimError::Io {
                    what: format!("remote cell failed (kind: {})", result.error_kind),
                },
            });
        }
        // Journal the remote result under the same label key a local run
        // would use, so `--resume` replays it without the daemon.
        if let Some(ck) = self.checkpoint.as_mut() {
            let rec = CellRecord {
                cell: fnv1a(label.as_bytes()),
                secs_bits: result.secs_bits,
                cycles: result.cycles,
                attempts: result.attempts,
                error_kind: result.error_kind.clone(),
            };
            if let Err(e) = ck.record(rec) {
                eprintln!("[{}] journal append failed: {e}", self.name);
            }
        }
        Some(result.secs())
    }

    /// The failure report accumulated so far.
    pub fn report(&self) -> FailureReport {
        FailureReport {
            total_jobs: self.jobs,
            succeeded: self.jobs - self.failures.len(),
            failures: self.failures.clone(),
        }
    }

    /// `true` when no job has failed yet.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The exit code [`SweepSession::finish`] will map to: cancellation
    /// outranks failures (the run is resumable, not broken). Delegates to
    /// [`save_sim::durable::exit_code_for`] so every binary — and the
    /// save-serve daemon — shares one mapping.
    fn exit_code(&self) -> u8 {
        exit_code_for(self.cancelled, self.failures.is_empty())
    }

    /// Prints the failure report, persists it as
    /// `target/experiments/<name>-failures.json` when lossy, and returns
    /// the process exit code: 0 clean, 1 lossy, 130 cancelled-but-resumable.
    pub fn finish(self) -> ExitCode {
        let code = self.exit_code();
        if self.cancelled {
            eprintln!(
                "[{}] cancelled; journal flushed{}",
                self.name,
                match self.checkpoint.as_ref() {
                    Some(ck) => format!(
                        " — resume with --checkpoint-dir {} --resume",
                        ck.dir().display()
                    ),
                    None => " (no --checkpoint-dir: completed cells are lost)".to_string(),
                }
            );
            return ExitCode::from(code);
        }
        let report = self.report();
        if report.is_clean() {
            return ExitCode::from(code);
        }
        eprintln!("[{}] sweep completed with failures: {report}", self.name);
        if let Err(e) = write_json(&format!("{}-failures", self.name), &report) {
            eprintln!("[{}] could not persist failure report: {e}", self.name);
        }
        ExitCode::from(code)
    }
}

/// Entry point shared by every experiment binary: parses the uniform
/// [`BenchCli`] flags (usage errors exit 2), installs SIGINT/SIGTERM
/// handlers via the process supervisor, opens the optional checkpoint, runs
/// `body`, and maps the session outcome to the exit-code convention
/// (0 clean / 1 lossy / 2 usage / 130 cancelled).
pub fn run_main(
    name: &str,
    body: impl FnOnce(&BenchCli, &mut SweepSession) -> Result<(), SimError>,
) -> ExitCode {
    let cli = match BenchCli::parse() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{name}: {msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let sup = Supervisor::start(true);
    let mut session = match SweepSession::durable(name, &cli, sup.handle()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{name}: [{}] {e}", e.kind());
            return ExitCode::from(EXIT_FAILURES);
        }
    };
    if session.resumed() > 0 {
        eprintln!("[{name}] resuming: {} journaled cell(s) restored", session.resumed());
    }
    if let Err(e) = body(&cli, &mut session) {
        session.note_failure("main", e);
    }
    session.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use save_sim::durable::EXIT_CANCELLED;

    #[test]
    fn session_isolates_failures_and_reports() {
        let mut s = SweepSession::new("unit");
        assert_eq!(s.run("ok", |_| Ok(41)), Some(41));
        assert_eq!(
            s.run::<u32>("typed", |_| Err(SimError::InvalidConfig { what: "x".into() })),
            None
        );
        assert_eq!(s.run::<u32>("panic", |_| panic!("cell exploded")), None);
        assert!(s.seconds("nan", |_| Err(SimError::InvalidConfig { what: "y".into() })).is_nan());
        let r = s.report();
        assert_eq!(r.total_jobs, 4);
        assert_eq!(r.succeeded, 1);
        assert_eq!(r.failures.len(), 3);
        assert!(matches!(r.failures[1].error, SimError::WorkerPanic { job: 2, .. }));
        assert_eq!(r.exit_code(), 1);
        assert!(!s.is_clean());
    }

    #[test]
    fn clean_session_exits_zero() {
        let mut s = SweepSession::new("clean");
        assert!((s.seconds("ok", |_| Ok(1.5)) - 1.5).abs() < 1e-12);
        assert!(s.is_clean());
        assert_eq!(s.report().exit_code(), 0);
    }

    #[test]
    fn transient_failures_are_retried_by_the_session() {
        let mut s = SweepSession::new("retry");
        let calls = std::sync::atomic::AtomicU32::new(0);
        let v = s.run("flaky", |_| {
            if calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
                Err(SimError::Io { what: "first try flaky".into() })
            } else {
                Ok(5u32)
            }
        });
        assert_eq!(v, Some(5));
        assert!(s.is_clean(), "healed cells are not failures");
    }

    #[test]
    fn cancelled_session_skips_cells_without_recording_failures() {
        let mut s = SweepSession::new("cancel");
        s.sup.cancel_global();
        assert_eq!(s.run("skipped", |_| Ok(1u32)), None);
        assert!(s.seconds("also skipped", |_| Ok(2.0)).is_nan());
        assert!(s.is_cancelled());
        assert!(s.is_clean(), "cancelled cells are resumable, not failures");
        assert_eq!(s.exit_code(), EXIT_CANCELLED);
    }

    #[test]
    fn cli_parses_durable_flags_and_rest() {
        let cli = BenchCli::parse_from([
            "--quick",
            "--checkpoint-dir",
            "/tmp/ck",
            "--resume",
            "--cell-deadline",
            "250",
            "--retries",
            "4",
            "--threads",
            "3",
            "resnet50",
            "--mp",
        ])
        .unwrap();
        assert!(cli.quick && !cli.full);
        assert_eq!(cli.checkpoint_dir.as_deref(), Some(std::path::Path::new("/tmp/ck")));
        assert!(cli.resume);
        assert_eq!(cli.cell_deadline_ms, Some(250));
        assert_eq!(cli.retries, 4);
        assert_eq!(cli.threads, Some(3));
        assert_eq!(cli.rest, vec!["resnet50".to_string(), "--mp".to_string()]);
        let p = cli.policy();
        assert_eq!(p.retries, 4);
        assert_eq!(p.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn cli_rejects_malformed_values() {
        assert!(BenchCli::parse_from(["--cell-deadline"]).is_err());
        assert!(BenchCli::parse_from(["--retries", "many"]).is_err());
        assert!(BenchCli::parse_from(["--resume"]).is_err(), "--resume needs a directory");
    }

    #[test]
    fn durable_session_journals_seconds_cells_by_label() {
        let dir = std::env::temp_dir()
            .join(format!("save-bench-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cli = BenchCli::parse_from([
            "--checkpoint-dir".to_string(),
            dir.display().to_string(),
        ])
        .unwrap();

        let sup = Supervisor::start(false);
        let mut s = SweepSession::durable("unit", &cli, sup.handle()).unwrap();
        let secs = 1.0_f64 / 3.0;
        assert_eq!(s.seconds("cell-a", |_| Ok(secs)).to_bits(), secs.to_bits());
        assert!(s
            .seconds("cell-b", |_| Err(SimError::InvalidConfig { what: "bad".into() }))
            .is_nan());
        drop(s);

        // Without --resume, the journal refuses to be overwritten.
        let err = SweepSession::durable("unit", &cli, sup.handle()).err().expect("journal must refuse overwrite");
        assert!(err.to_string().contains("--resume"), "{err}");

        let cli2 = BenchCli { resume: true, ..cli.clone() };
        let mut s = SweepSession::durable("unit", &cli2, sup.handle()).unwrap();
        assert_eq!(s.resumed(), 2);
        let called = std::sync::atomic::AtomicU32::new(0);
        let restored = s.seconds("cell-a", |_| {
            called.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(0.0)
        });
        assert_eq!(called.load(std::sync::atomic::Ordering::SeqCst), 0, "no recompute");
        assert_eq!(restored.to_bits(), secs.to_bits(), "bit-identical restore");
        assert!(s.seconds("cell-b", |_| Ok(1.0)).is_nan(), "journaled failure fails fast");
        assert_eq!(s.report().failures.len(), 1);

        // A different experiment may not reuse the directory.
        let err = SweepSession::durable("other", &cli2, sup.handle()).err().expect("manifest must mismatch");
        assert!(err.to_string().contains("different sweep"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
