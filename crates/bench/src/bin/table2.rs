//! Table II — storage structures in SAVE modelled at 22 nm.

use save_bench::print_table;
use save_mem::energy::{PrecisionSupport, StorageModel};

fn main() -> std::process::ExitCode {
    save_bench::run_main("table2", |_cli, _session| body())
}

fn body() -> Result<(), save_sim::SimError> {
    let m = StorageModel::default();
    let mut rows = Vec::new();
    for (label, support) in [
        ("Only supports FP32", PrecisionSupport::Fp32Only),
        ("FP32 and mixed-precision", PrecisionSupport::Fp32AndMixed),
    ] {
        rows.push(vec![
            format!("T per VPU ({label})"),
            format!("{}B", m.temp_bytes(support)),
            "N/A".into(),
            "N/A".into(),
        ]);
        let e = m.bcast_mask_energy(support);
        rows.push(vec![
            format!("B$ w/ mask ({label})"),
            format!("{}B", m.bcast_mask_bytes(support)),
            format!("{}mW", e.leakage_mw),
            format!("{:.1E}nJ", e.access_nj),
        ]);
        let e = m.bcast_data_energy(support);
        rows.push(vec![
            format!("B$ w/ data ({label})"),
            format!("{}B", m.bcast_data_bytes(support)),
            format!("{}mW", e.leakage_mw),
            format!("{:.1E}nJ", e.access_nj),
        ]);
    }
    print_table(
        "Table II: SAVE storage structures at 22nm",
        &["Structure", "Size", "P_leak", "E_access"],
        &rows,
    );
    save_bench::write_json("table2", &rows)?;
    // Paper check: 56B / 276B / 2260B (FP32) and 168B / 340B / 2260B (MP).
    assert_eq!(m.temp_bytes(PrecisionSupport::Fp32Only), 56);
    assert_eq!(m.temp_bytes(PrecisionSupport::Fp32AndMixed), 168);
    assert_eq!(m.bcast_mask_bytes(PrecisionSupport::Fp32Only), 276);
    assert_eq!(m.bcast_mask_bytes(PrecisionSupport::Fp32AndMixed), 340);
    assert_eq!(m.bcast_data_bytes(PrecisionSupport::Fp32Only), 2260);
    println!("\nAll sizes match Table II of the paper exactly.");
    Ok(())
}
