//! Fig 16 — histogram of per-kernel speedup caps.
//!
//! The 93 studied kernels (62 convolution kernels: all VGG16 layers across
//! the phases that exhibit sparsity, plus the 24 unique ResNet-50 shapes
//! forward; and 31 LSTM cell kernels: the GNMT cells across phases and
//! batch-reuse configurations) are each swept to high sparsity; the *cap*
//! is the best speedup over the high-sparsity corner points. Histograms are
//! reported for FP32 and mixed precision with 2 VPUs @ 1.7 GHz and 1 VPU @
//! 2.1 GHz.
//!
//! Paper landmarks (geometric means of the caps): FP32 1.39x (2 VPUs) /
//! 1.62x (1 VPU); MP 1.48x / 1.77x; using 1 VPU at higher frequency lifts
//! the caps; LSTM kernels cap lower than conv kernels (memory bound).

use save_bench::print_table;
use save_kernels::{GemmWorkload, Phase, Precision};
use save_sim::{CellSpec, ConfigKind, MachineConfig, SimError};
use serde::Serialize;
use std::process::ExitCode;

struct KernelDef {
    name: String,
    is_lstm: bool,
    make: Box<dyn Fn(Precision) -> GemmWorkload>,
}

fn kernel_set() -> Vec<KernelDef> {
    let mut set: Vec<KernelDef> = Vec::new();
    // 38 VGG16 kernels: 13 fwd + 12 bwd-input (no first layer) + 13 bwd-w.
    for (i, s) in save_kernels::shapes::vgg16().into_iter().enumerate() {
        for phase in Phase::ALL {
            if phase == Phase::BackwardInput && i == 0 {
                continue;
            }
            let sh = s.clone();
            set.push(KernelDef {
                name: format!("{} {phase}", s.name),
                is_lstm: false,
                make: Box::new(move |p| sh.workload(phase, p)),
            });
        }
    }
    // 24 unique ResNet-50 shapes, forward.
    for s in save_kernels::shapes::resnet50() {
        let sh = s.clone();
        set.push(KernelDef {
            name: format!("{} fwd", s.name),
            is_lstm: false,
            make: Box::new(move |p| sh.workload(Phase::Forward, p)),
        });
    }
    // 31 LSTM kernels: 3 GNMT cells x {fwd, bwd} x 5 batch-reuse settings,
    // plus one long-sequence decoder variant.
    for cell in save_kernels::shapes::gnmt(64) {
        for phase in [Phase::Forward, Phase::BackwardInput] {
            for reuse in [1usize, 2, 4, 8, 16] {
                let c = cell.clone();
                set.push(KernelDef {
                    name: format!("{} {phase} r{reuse}", cell.name),
                    is_lstm: true,
                    make: Box::new(move |p| {
                        let mut w = c.workload(phase, p);
                        w.b_panel_tiles = reuse;
                        w
                    }),
                });
            }
        }
    }
    let Some(dec) = save_kernels::shapes::gnmt(64).pop() else {
        return set;
    };
    set.push(KernelDef {
        name: "GNMT dec fwd long".into(),
        is_lstm: true,
        make: Box::new(move |p| {
            let mut w = dec.workload(Phase::Forward, p);
            w.tiles = 24;
            w.b_panel_tiles = 8;
            w
        }),
    });
    set
}

#[derive(Serialize)]
// Fields are consumed via `Serialize` in the session JSON dump only.
#[allow(dead_code)]
struct CapRecord {
    name: String,
    is_lstm: bool,
    precision: String,
    vpus: usize,
    cap: f64,
}

fn main() -> ExitCode {
    save_bench::run_main("fig16", body)
}

fn body(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let corners: Vec<(f64, f64)> =
        if cli.quick { vec![(0.8, 0.8)] } else { vec![(0.6, 0.6), (0.8, 0.8), (0.9, 0.9)] };
    let machine = MachineConfig::default();
    let set = kernel_set();
    println!("kernel set: {} kernels ({} conv, {} LSTM)",
        set.len(),
        set.iter().filter(|k| !k.is_lstm).count(),
        set.iter().filter(|k| k.is_lstm).count());

    // Build the whole sweep as one batched cell list, kernel-major so the
    // cells sharing a functional trace (one kernel x corner across the
    // baseline and both VPU panels) are adjacent — the local trace store
    // is FIFO-bounded, and a daemon sees the entire figure in a single
    // round trip instead of one per cell. The baseline cell's label is
    // shared across the 2-VPU and 1-VPU panels (it appears once in the
    // batch), so each baseline is computed exactly once wherever the
    // batch lands: checkpoint journal, daemon memo, or local memo.
    let mut cells: Vec<(String, CellSpec)> = Vec::new();
    for prec in [Precision::F32, Precision::Mixed] {
        for k in &set {
            let w0 = (k.make)(prec);
            for (i, &(a, b)) in corners.iter().enumerate() {
                let w = w0.clone().with_sparsity(a, b);
                let seed = 1000 + i as u64;
                cells.push((
                    format!("{} {prec} base corner{i}", k.name),
                    CellSpec::new(w.clone(), ConfigKind::Baseline, machine, seed),
                ));
                for (vpus, kind) in [(2usize, ConfigKind::Save2Vpu), (1, ConfigKind::Save1Vpu)] {
                    cells.push((
                        format!("{} {prec} {vpus}vpu corner{i}", k.name),
                        CellSpec::new(w.clone(), kind, machine, seed),
                    ));
                }
            }
        }
    }
    let secs = session.spec_seconds_batch(&cells);
    let by_label: std::collections::HashMap<&str, f64> =
        cells.iter().map(|(l, _)| l.as_str()).zip(secs).collect();

    let mut records: Vec<CapRecord> = Vec::new();
    for prec in [Precision::F32, Precision::Mixed] {
        for (vpus, _) in [(2usize, ConfigKind::Save2Vpu), (1, ConfigKind::Save1Vpu)] {
            for k in &set {
                let mut cap = 0.0f64;
                for i in 0..corners.len() {
                    let tb = by_label[format!("{} {prec} base corner{i}", k.name).as_str()];
                    let ts =
                        by_label[format!("{} {prec} {vpus}vpu corner{i}", k.name).as_str()];
                    let ratio = tb / ts;
                    if ratio.is_finite() {
                        cap = cap.max(ratio);
                    }
                }
                records.push(CapRecord {
                    name: k.name.clone(),
                    is_lstm: k.is_lstm,
                    precision: prec.to_string(),
                    vpus,
                    cap,
                });
            }
        }
    }

    // Histogram, conv vs LSTM, per panel.
    let bins = [(1.0, 1.2), (1.2, 1.4), (1.4, 1.6), (1.6, 1.8), (1.8, 2.0), (2.0, f64::MAX)];
    let mut rows = Vec::new();
    for prec in ["FP32", "MP"] {
        for vpus in [2usize, 1] {
            let sel: Vec<&CapRecord> = records
                .iter()
                .filter(|r| r.precision == prec && r.vpus == vpus)
                .collect();
            let mut conv_counts = vec![0usize; bins.len()];
            let mut lstm_counts = vec![0usize; bins.len()];
            for r in &sel {
                let b = bins
                    .iter()
                    .position(|&(lo, hi)| r.cap >= lo && r.cap < hi)
                    .unwrap_or(0);
                if r.is_lstm {
                    lstm_counts[b] += 1;
                } else {
                    conv_counts[b] += 1;
                }
            }
            let geomean = (sel.iter().map(|r| r.cap.max(1e-9).ln()).sum::<f64>()
                / sel.len() as f64)
                .exp();
            let mut row = vec![format!("{prec} {vpus} VPU(s)")];
            for i in 0..bins.len() {
                row.push(format!("{}+{}", conv_counts[i], lstm_counts[i]));
            }
            row.push(format!("{geomean:.2}x"));
            rows.push(row);
        }
    }
    print_table(
        "Fig 16: speedup-cap histogram (cells are conv+LSTM kernel counts)",
        &["panel", "1.0-1.2x", "1.2-1.4x", "1.4-1.6x", "1.6-1.8x", "1.8-2.0x", ">2.0x", "geomean"],
        &rows,
    );
    save_bench::write_json("fig16", &records)
}
