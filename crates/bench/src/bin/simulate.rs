//! General-purpose kernel simulator CLI: run any GEMM workload described as
//! JSON on any machine operating point, and print (or emit as JSON) the
//! full statistics — the entry point for exploring configurations beyond
//! the paper's experiments.
//!
//! Usage:
//!   simulate --spec workload.json [--config baseline|save2|save1]
//!            [--cores N] [--detailed] [--seed S] [--json] [--example]
//!            [--sanitize off|periodic[:N]|full]
//!
//! `--example` prints a template workload JSON and exits. `--sanitize`
//! enables the cycle-level microarchitectural sanitizer (overriding the
//! `SAVE_SANITIZE` environment variable); a violation aborts the run with a
//! typed `invariant-violation` error carrying the sanitizer's witness.
//!
//! Every failure path (unreadable spec, malformed JSON, bad flag value,
//! rejected config, stalled or mismatching run) surfaces as a typed
//! [`SimError`] through `main`'s `Result`, which the runtime renders as a
//! readable message with a non-zero exit code.

use save_core::SanitizeLevel;
use save_sim::runner::{run_kernel_cancel, run_kernel_custom_cancel};
use save_sim::{ConfigKind, MachineConfig, MachineMode, SimError};

fn usage() -> ! {
    eprintln!(
        "usage: simulate --spec <workload.json> [--config baseline|save2|save1]\n\
         \x20               [--cores N] [--detailed] [--seed S] [--json]\n\
         \x20               [--sanitize off|periodic[:N]|full]\n\
         \x20      simulate --example   # print a template workload\n\
         plus the uniform durable flags ({})",
        save_bench::BENCH_USAGE
    );
    std::process::exit(2)
}

fn template() -> save_kernels::GemmWorkload {
    save_kernels::GemmWorkload::dense(
        "my-kernel",
        save_kernels::GemmKernelSpec {
            m_tiles: 7,
            n_vecs: 3,
            pattern: save_kernels::BroadcastPattern::Explicit,
            precision: save_kernels::Precision::F32,
        },
        128,
        6,
    )
    .with_sparsity(0.4, 0.6)
}

fn main() -> std::process::ExitCode {
    save_bench::run_main("simulate", body)
}

fn body(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let args = &cli.rest;
    if args.iter().any(|a| a == "--example") {
        let s = serde_json::to_string_pretty(&template())
            .map_err(|e| SimError::Io { what: format!("serialize template: {e}") })?;
        println!("{s}");
        return Ok(());
    }
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let Some(spec_path) = get("--spec") else { usage() };
    let spec = std::fs::read_to_string(&spec_path)
        .map_err(|e| SimError::Io { what: format!("cannot read {spec_path}: {e}") })?;
    let workload: save_kernels::GemmWorkload = serde_json::from_str(&spec)
        .map_err(|e| SimError::InvalidConfig { what: format!("invalid workload JSON: {e}") })?;

    let kind = match get("--config").as_deref() {
        None | Some("save2") => ConfigKind::Save2Vpu,
        Some("save1") => ConfigKind::Save1Vpu,
        Some("baseline") => ConfigKind::Baseline,
        Some(other) => {
            return Err(SimError::InvalidConfig {
                what: format!("unknown config {other} (expected baseline|save2|save1)"),
            })
        }
    };
    let mut machine = MachineConfig::default();
    if let Some(c) = get("--cores") {
        machine.cores = c.parse().map_err(|_| SimError::InvalidConfig {
            what: format!("--cores takes a number, got {c:?}"),
        })?;
    }
    if args.iter().any(|a| a == "--detailed") {
        machine.mode = MachineMode::Detailed;
    }
    let seed = match get("--seed") {
        Some(s) => s.parse().map_err(|_| SimError::InvalidConfig {
            what: format!("--seed takes a number, got {s:?}"),
        })?,
        None => 1,
    };

    // The single simulated kernel still runs as a supervised cell, so
    // `--cell-deadline`, `--retries` and Ctrl-C behave exactly as in the
    // sweep binaries.
    let sanitize = match get("--sanitize") {
        Some(level) => Some(SanitizeLevel::parse(&level).map_err(|e| SimError::InvalidConfig {
            what: format!("--sanitize: {e}"),
        })?),
        None => None,
    };
    let Some(result) = session.run(&workload.name.clone(), |tok| match sanitize {
        Some(sanitize) => {
            let cfg = save_core::CoreConfig { sanitize, ..kind.core_config() };
            run_kernel_custom_cancel(&workload, &cfg, &machine, seed, true, Some(tok))
        }
        None => run_kernel_cancel(&workload, kind, &machine, seed, true, Some(tok)),
    }) else {
        return Ok(());
    };
    if args.iter().any(|a| a == "--json") {
        let s = serde_json::to_string_pretty(&result)
            .map_err(|e| SimError::Io { what: format!("serialize result: {e}") })?;
        println!("{s}");
        return Ok(());
    }
    let s = &result.stats;
    println!("kernel    : {}", workload.name);
    println!("machine   : {} cores ({:?}), {}", machine.cores, machine.mode, kind.label());
    println!("cycles    : {}   ({:.3} µs)", result.cycles, result.seconds * 1e6);
    println!("µops      : {}   (IPC {:.2})", s.uops_committed, s.ipc());
    println!("VFMAs     : {}   -> {} VPU ops (compaction {:.2}x)", s.fma_uops, s.vpu_ops, s.compaction_ratio());
    println!("lanes     : {} effectual of {} ({:.1}%), {:.1}/16 per op",
        s.lanes_effectual, s.lanes_total, s.effectual_fraction() * 100.0, s.mean_lanes_per_op());
    println!("BS skips  : {}", s.fmas_skipped_bs);
    println!("loads     : {} ({} broadcast, {} B$-served)", s.loads_issued, s.bcast_loads, s.bcast_hits);
    println!("mean CW   : {:.1}", s.mean_cw());
    println!("verified  : {}", result.verified);
    Ok(())
}
