//! Table III — types of sparsity (BS / NBS) present per network and phase,
//! derived from the live role mapping in `save-sim` rather than hard-coded.

use save_bench::print_table;
use save_kernels::Phase;
use save_sim::Network;
use save_sparsity::NetKind;

fn mark(level: f64) -> &'static str {
    if level > 1e-9 {
        "X"
    } else {
        ""
    }
}

fn main() -> std::process::ExitCode {
    save_bench::run_main("table3", |_cli, _session| body())
}

fn body() -> Result<(), save_sim::SimError> {
    let mut rows = Vec::new();
    for kind in [NetKind::Vgg16Dense, NetKind::ResNet50Dense, NetKind::ResNet50Pruned] {
        let net = Network::build(kind);
        // A representative non-first layer at end of training.
        let li = 5;
        let mut row = vec![kind.label().to_string()];
        for phase in [Phase::Forward, Phase::BackwardInput, Phase::BackwardWeights] {
            let p = net.sparsity_point(li, phase, 1.0);
            row.push(mark(p.a).into());
            row.push(mark(p.b).into());
        }
        rows.push(row);
    }
    print_table(
        "Table III (CNNs): sparsity types per phase",
        &["network", "fwd BS", "fwd NBS", "bwd-in BS", "bwd-in NBS", "bwd-w BS", "bwd-w NBS"],
        &rows,
    );

    let net = Network::build(NetKind::GnmtPruned);
    let mut lstm_rows = Vec::new();
    let mut row = vec![NetKind::GnmtPruned.label().to_string()];
    for phase in [Phase::Forward, Phase::BackwardInput] {
        let p = net.sparsity_point(1, phase, 1.0);
        row.push(mark(p.a).into());
        row.push(mark(p.b).into());
    }
    lstm_rows.push(row);
    print_table(
        "Table III (LSTM): sparsity types per phase",
        &["network", "fwd BS", "fwd NBS", "bwd BS", "bwd NBS"],
        &lstm_rows,
    );
    save_bench::write_json("table3", &(rows, lstm_rows))?;
    Ok(())
}
