//! perfstat — host-throughput measurement for the simulator itself.
//!
//! Runs a pinned reference GEMM sweep (compute-bound, memory-bound and
//! mixed-precision points across the three paper operating points, plus one
//! detailed 4-core point) and reports **simulated kilocycles per host
//! second** — the number that bounds how many sweep scenarios (Figs 12-19)
//! the repo can cover. Records append to `BENCH_PERF.json` at the repo
//! root, forming the host-performance trajectory EXPERIMENTS.md documents.
//!
//! Flags:
//! * `--quick`    smaller sweep (used by the CI perf-smoke job);
//! * `--update`   append this measurement to `BENCH_PERF.json`;
//! * `--check`    compare against the last committed record of the same
//!   sweep size and exit non-zero on a >25% throughput regression;
//! * `--scaling`  also measure the detailed-multicore scaling curve
//!   (cores × relaxed-sync quantum, DESIGN.md §5i) and gate the 28-core
//!   relaxed-vs-lockstep wall-clock speedup against a floor;
//! * `--label L`  free-form label stored with the record.
//!
//! Each record also stores the `git` revision it was measured at
//! (`SAVE_GIT_REV` overrides the `git rev-parse` probe for hermetic CI
//! runs), so the trajectory in `BENCH_PERF.json` can be correlated with
//! the commits that produced it.

use save_bench::print_table;
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_sim::runner::{
    run_kernel, run_kernel_cancel, ConfigKind, MachineConfig, MachineMode, MulticoreConfig,
};
use save_sim::{host_parallelism, CancelToken, CellSpec, SimError, TraceStore};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// One (workload, operating point) measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct PerfPoint {
    workload: String,
    config: String,
    cycles: u64,
    host_seconds: f64,
    kcycles_per_host_sec: f64,
}

/// Sweep-level "execute once, time N" measurement: one fig16-style cell
/// list timed twice — every cell executed directly, then the same cells
/// through a shared [`TraceStore`] (record once per distinct functional
/// key, replay/memoize the rest). Total simulated cycles are asserted
/// bit-identical between the two runs before the record is produced.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ReplaySweep {
    /// Number of cells in the sweep.
    cells: usize,
    /// Best-of-reps host seconds executing every cell directly.
    direct_host_seconds: f64,
    /// Best-of-reps host seconds through the trace store.
    traced_host_seconds: f64,
    /// `direct / traced` — the sweep-level speedup.
    speedup: f64,
    /// Total simulated cycles (identical for both runs by construction).
    total_cycles: u64,
    /// Trace-store replay hits in the traced run.
    trace_hits: u64,
    /// Full-result memo hits in the traced run.
    memo_hits: u64,
    /// The gate the measurement was checked against.
    floor: f64,
}

/// One cell of the multicore scaling curve: the reference streaming kernel
/// on a detailed `cores`-core mesh at one relaxed-sync quantum
/// (`quantum == 1` is the lockstep engine).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ScalingPoint {
    cores: usize,
    quantum: u64,
    /// Slowest-core simulated cycles (the run's timing verdict).
    cycles: u64,
    /// Best-of-reps wall-clock for the whole machine.
    host_seconds: f64,
    /// Wall-clock speedup over the same machine under lockstep.
    speedup_vs_lockstep: f64,
}

/// The multicore scaling record (ISSUE 10): cores × quantum wall-clock
/// curve for the reference streaming workload, plus the gated 28-core
/// (or largest measured mesh's) relaxed-vs-lockstep speedup.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct MulticoreScaling {
    points: Vec<ScalingPoint>,
    /// Relaxed-engine speedup over lockstep at the largest measured mesh
    /// (best quantum): the number the floor gates.
    speedup_28: f64,
    /// The gate the measurement was checked against.
    floor: f64,
    /// `std::thread::available_parallelism` on the measuring host — the
    /// curve is only comparable between hosts of similar width.
    host_threads: usize,
}

/// One appended trajectory record. `git_rev` defaults to empty so records
/// written before the field existed keep parsing; `replay_sweep` and
/// `multicore_scaling` likewise.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct PerfRecord {
    schema: u32,
    label: String,
    quick: bool,
    unix_time: u64,
    #[serde(default)]
    git_rev: String,
    points: Vec<PerfPoint>,
    total_cycles: u64,
    total_host_seconds: f64,
    total_kcycles_per_host_sec: f64,
    #[serde(default)]
    replay_sweep: Option<ReplaySweep>,
    #[serde(default)]
    multicore_scaling: Option<MulticoreScaling>,
}

/// The short git revision of the working tree: the `SAVE_GIT_REV`
/// environment variable when set (hermetic CI), else `git rev-parse
/// --short HEAD`, else `"unknown"`.
fn git_rev() -> String {
    if let Ok(rev) = std::env::var("SAVE_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Throughput ratio below which `--check` fails (the >25% regression gate).
const CHECK_FLOOR: f64 = 0.75;

fn trajectory_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PERF.json")
}

/// The pinned reference sweep. Changing these points invalidates trajectory
/// comparability — add new points under new workload names instead.
fn reference_workloads(quick: bool) -> Vec<GemmWorkload> {
    let scale = if quick { 1 } else { 4 };
    let spec_f32 = GemmKernelSpec {
        m_tiles: 6,
        n_vecs: 4,
        pattern: BroadcastPattern::Explicit,
        precision: Precision::F32,
    };
    let spec_mp = GemmKernelSpec { precision: Precision::Mixed, ..spec_f32 };
    let compute = GemmWorkload::dense("ref-compute", spec_f32, 32, 8 * scale)
        .with_sparsity(0.3, 0.5);
    let stream = GemmWorkload {
        b_panel_tiles: 1, // stream B panels: DRAM-bound, long idle stretches
        ..GemmWorkload::dense("ref-stream", spec_f32, 32, 8 * scale).with_sparsity(0.6, 0.6)
    };
    let mixed = GemmWorkload::dense("ref-mixed", spec_mp, 32, 8 * scale)
        .with_sparsity(0.5, 0.5);
    vec![compute, stream, mixed]
}

/// Repetitions per point; the fastest is recorded. The simulation is
/// deterministic, so reps differ only in host noise (scheduling, frequency
/// ramp) — taking the minimum measures the host's ceiling, which is the
/// quantity the `--check` ratio needs to be stable run-to-run.
const REPS: usize = 3;

/// Times `run_kernel` `REPS` times and returns (cycles, best host seconds).
fn time_point(
    w: &GemmWorkload,
    kind: ConfigKind,
    machine: &MachineConfig,
    tok: &CancelToken,
) -> Result<(u64, f64), SimError> {
    let mut cycles = 0;
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = run_kernel_cancel(w, kind, machine, 7, false, Some(tok))?;
        let host = t0.elapsed().as_secs_f64();
        cycles = r.cycles;
        if host < best {
            best = host;
        }
    }
    Ok((cycles, best))
}

fn measure(quick: bool, tok: &CancelToken) -> Result<Vec<PerfPoint>, SimError> {
    let sym = MachineConfig::default();
    let det = MachineConfig { cores: 4, mode: MachineMode::Detailed, ..MachineConfig::default() };
    let mut points = Vec::new();
    for w in reference_workloads(quick) {
        for kind in ConfigKind::ALL {
            let (cycles, host) = time_point(&w, kind, &sym, tok)?;
            points.push(PerfPoint {
                workload: w.name.clone(),
                config: kind.label().to_string(),
                cycles,
                host_seconds: host,
                kcycles_per_host_sec: cycles as f64 / host.max(1e-9) / 1e3,
            });
        }
    }
    // One detailed multicore point: exercises the lockstep interleaving
    // (and its coordinated fast-forward) rather than the symmetric runner.
    let w = &reference_workloads(quick)[1];
    let (cycles, host) = time_point(w, ConfigKind::Save2Vpu, &det, tok)?;
    points.push(PerfPoint {
        workload: format!("{}-4core", w.name),
        config: ConfigKind::Save2Vpu.label().to_string(),
        cycles,
        host_seconds: host,
        kcycles_per_host_sec: cycles as f64 / host.max(1e-9) / 1e3,
    });
    Ok(points)
}

/// Sweep-level speedup the replay benchmark must clear: a two-config quick
/// sweep has less sharing to exploit than the full four-panel sweep.
fn replay_floor(quick: bool) -> f64 {
    if quick {
        1.3
    } else {
        2.0
    }
}

/// The fig16-shaped cell list for the replay benchmark: five layer
/// instances drawn from three distinct shapes (VGG16 genuinely repeats
/// conv3_2/conv3_3, conv4_2/conv4_3, conv5_1..conv5_3 under different
/// names), submitted the way `fig16` submits them — one shared baseline
/// cell *per VPU panel* plus that panel's SAVE cell. Direct execution
/// runs every cell; the trace store records each distinct functional key
/// once and serves the rest by replay or full-result memo.
fn replay_sweep_cells(quick: bool) -> Vec<CellSpec> {
    let shape = |name: &str, m_tiles: usize, n_vecs: usize, k: usize| {
        GemmWorkload::dense(
            name,
            GemmKernelSpec {
                m_tiles,
                n_vecs,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            k,
            4,
        )
        .with_sparsity(0.6, 0.6)
    };
    let instances = [
        shape("rs-conv-a.1", 6, 4, 32),
        shape("rs-conv-a.2", 6, 4, 32),
        shape("rs-conv-b.1", 4, 4, 48),
        shape("rs-conv-b.2", 4, 4, 48),
        shape("rs-conv-c.1", 6, 2, 64),
    ];
    let panels: &[ConfigKind] = if quick {
        &[ConfigKind::Save2Vpu]
    } else {
        &[ConfigKind::Save2Vpu, ConfigKind::Save1Vpu]
    };
    let machine = MachineConfig::default();
    let mut cells = Vec::new();
    for w in &instances {
        for &save in panels {
            cells.push(CellSpec::new(w.clone(), ConfigKind::Baseline, machine, 1000));
            cells.push(CellSpec::new(w.clone(), save, machine, 1000));
        }
    }
    cells
}

/// Times the replay benchmark (best of [`REPS`] sweeps each way, a fresh
/// trace store per traced rep) and asserts the purity invariant: total
/// simulated cycles must be bit-identical with and without the store.
fn replay_sweep(quick: bool, tok: &CancelToken) -> Result<ReplaySweep, SimError> {
    let cells = replay_sweep_cells(quick);
    let mut direct_best = f64::INFINITY;
    let mut direct_cycles = 0u64;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut cycles = 0u64;
        for c in &cells {
            cycles += c.run(Some(tok))?.cycles;
        }
        direct_best = direct_best.min(t0.elapsed().as_secs_f64());
        direct_cycles = cycles;
    }
    let mut traced_best = f64::INFINITY;
    let mut traced_cycles = 0u64;
    let (mut trace_hits, mut memo_hits) = (0u64, 0u64);
    for _ in 0..REPS {
        // Traces for fig16-class cells are a few MB each; a small FIFO
        // bound is what the real sweeps use, and the kernel-major cell
        // order keeps the live trace in store until its last replay.
        let store = TraceStore::with_capacity(8);
        let t0 = Instant::now();
        let mut cycles = 0u64;
        for c in &cells {
            cycles += c.run_traced(Some(tok), &store)?.cycles;
        }
        traced_best = traced_best.min(t0.elapsed().as_secs_f64());
        traced_cycles = cycles;
        trace_hits = store.hits();
        memo_hits = store.result_hits();
    }
    if direct_cycles != traced_cycles {
        return Err(SimError::Io {
            what: format!(
                "replay purity violation: direct sweep simulated {direct_cycles} cycles \
                 but the traced sweep simulated {traced_cycles}"
            ),
        });
    }
    Ok(ReplaySweep {
        cells: cells.len(),
        direct_host_seconds: direct_best,
        traced_host_seconds: traced_best,
        speedup: direct_best / traced_best.max(1e-9),
        total_cycles: direct_cycles,
        trace_hits,
        memo_hits,
        floor: replay_floor(quick),
    })
}

/// Speedup the largest mesh must reach under the relaxed engine, as a
/// function of host width. Lockstep and relaxed pay the *same* cost for
/// active core cycles and both skip inert stretches (lockstep per-core,
/// relaxed per-quantum), so on a serial host only the fast-forward
/// component remains (measured ~1.1-1.3x). The headline win is host
/// parallelism — 28 lanes spread over the worker threads — which an
/// `n`-thread host can only express up to `n`-fold. The gate therefore
/// scales with the host (0.6 per thread ≈ parallel efficiency after
/// barrier + reconcile costs) and reaches the full 2x (quick) / 4x (full)
/// targets on hosts with 8+ threads; a serial host just requires relaxed
/// to be no slower than lockstep.
fn scaling_floor(quick: bool, host_threads: usize) -> f64 {
    let target: f64 = if quick { 2.0 } else { 4.0 };
    target.min(0.6 * host_threads as f64).max(1.0)
}

/// The scaling reference workload: B streams from DRAM, so cores spend
/// most cycles waiting on memory at *per-core-divergent* times (distinct
/// data seeds → distinct sparsity patterns → drifting stall schedules).
/// Lockstep can only fast-forward when every core is simultaneously inert,
/// which drifting stalls defeat; the relaxed engine fast-forwards each
/// core independently inside its quantum — precisely the gap the scaling
/// curve measures.
fn scaling_workload(quick: bool) -> GemmWorkload {
    let spec = GemmKernelSpec {
        m_tiles: 6,
        n_vecs: 4,
        pattern: BroadcastPattern::Explicit,
        precision: Precision::F32,
    };
    let tiles = if quick { 8 } else { 16 };
    GemmWorkload {
        b_panel_tiles: 1,
        ..GemmWorkload::dense("scaling-stream", spec, 32, tiles).with_sparsity(0.6, 0.6)
    }
}

/// The measured grid. Quick keeps CI fast: the two mesh sizes that bound
/// the curve and the two quanta that matter (lockstep vs the default
/// relaxed quantum).
fn scaling_grid(quick: bool) -> (Vec<usize>, Vec<u64>) {
    if quick {
        (vec![4, 28], vec![1, 1000])
    } else {
        (vec![1, 4, 14, 28], vec![1, 100, 1000])
    }
}

/// Measures the cores × quantum wall-clock curve (best of [`REPS`] per
/// cell) and gates the largest mesh's relaxed-vs-lockstep speedup.
fn measure_scaling(quick: bool, tok: &CancelToken) -> Result<MulticoreScaling, SimError> {
    let w = scaling_workload(quick);
    let (cores_axis, quanta) = scaling_grid(quick);
    let mut points = Vec::new();
    for &cores in &cores_axis {
        let mut lockstep_host = f64::NAN;
        for &quantum in &quanta {
            let machine = MachineConfig {
                cores,
                mode: MachineMode::Detailed,
                mc: MulticoreConfig { quantum, threads: 0 },
                ..MachineConfig::default()
            };
            let mut cycles = 0;
            let mut best = f64::INFINITY;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let r = run_kernel_cancel(&w, ConfigKind::Save2Vpu, &machine, 7, false, Some(tok))?;
                best = best.min(t0.elapsed().as_secs_f64());
                cycles = r.cycles;
            }
            if quantum == 1 {
                lockstep_host = best;
            }
            points.push(ScalingPoint {
                cores,
                quantum,
                cycles,
                host_seconds: best,
                speedup_vs_lockstep: lockstep_host / best.max(1e-9),
            });
        }
    }
    let top_cores = cores_axis.iter().copied().max().unwrap_or(0);
    let speedup_28 = points
        .iter()
        .filter(|p| p.cores == top_cores && p.quantum > 1)
        .map(|p| p.speedup_vs_lockstep)
        .fold(0.0, f64::max);
    let host_threads = host_parallelism();
    Ok(MulticoreScaling {
        points,
        speedup_28,
        floor: scaling_floor(quick, host_threads),
        host_threads,
    })
}

fn load_trajectory(path: &PathBuf) -> Vec<PerfRecord> {
    match std::fs::read_to_string(path) {
        Ok(s) => serde_json::from_str(&s).unwrap_or_else(|e| {
            eprintln!("[perfstat] could not parse {}: {e}; starting fresh", path.display());
            Vec::new()
        }),
        Err(_) => Vec::new(),
    }
}

fn main() -> ExitCode {
    save_bench::run_main("perfstat", body)
}

fn body(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let quick = cli.quick;
    let update = cli.rest.iter().any(|a| a == "--update");
    let check = cli.rest.iter().any(|a| a == "--check");
    let scaling = cli.rest.iter().any(|a| a == "--scaling");
    let label = cli
        .rest
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| cli.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "perfstat".to_string());

    // Warm-up: JIT-free, but first-touch page faults and frequency ramp
    // would otherwise land in the first measured point.
    let warm = GemmWorkload::dense(
        "warmup",
        GemmKernelSpec {
            m_tiles: 4,
            n_vecs: 2,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        16,
        2,
    )
    .with_sparsity(0.3, 0.3);
    let _ = run_kernel(&warm, ConfigKind::Save2Vpu, &MachineConfig::default(), 7, false);

    let Some(points) = session.run("reference sweep", |tok| measure(quick, tok)) else {
        return Ok(());
    };
    let Some(replay) = session.run("replay sweep", |tok| replay_sweep(quick, tok)) else {
        return Ok(());
    };
    let mc_scaling = if scaling {
        match session.run("multicore scaling", |tok| measure_scaling(quick, tok)) {
            Some(s) => Some(s),
            None => return Ok(()),
        }
    } else {
        None
    };
    let total_cycles: u64 = points.iter().map(|p| p.cycles).sum();
    let total_host: f64 = points.iter().map(|p| p.host_seconds).sum();
    let total_kcps = total_cycles as f64 / total_host.max(1e-9) / 1e3;
    let record = PerfRecord {
        schema: 1,
        label,
        quick,
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        git_rev: git_rev(),
        points: points.clone(),
        total_cycles,
        total_host_seconds: total_host,
        total_kcycles_per_host_sec: total_kcps,
        replay_sweep: Some(replay.clone()),
        multicore_scaling: mc_scaling.clone(),
    };

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workload.clone(),
                p.config.clone(),
                p.cycles.to_string(),
                format!("{:.3}", p.host_seconds),
                format!("{:.0}", p.kcycles_per_host_sec),
            ]
        })
        .collect();
    print_table(
        "perfstat — simulated kilocycles per host second",
        &["workload", "config", "sim cycles", "host s", "kcyc/s"],
        &rows,
    );
    println!(
        "\ntotal: {total_cycles} cycles in {total_host:.3} s = {total_kcps:.0} kcycles/s"
    );
    println!(
        "replay sweep: {} cells, direct {:.3} s vs traced {:.3} s = {:.2}x \
         (floor {:.1}x; {} replay hits, {} memo hits, {} cycles bit-identical)",
        replay.cells,
        replay.direct_host_seconds,
        replay.traced_host_seconds,
        replay.speedup,
        replay.floor,
        replay.trace_hits,
        replay.memo_hits,
        replay.total_cycles,
    );
    if replay.speedup < replay.floor {
        return Err(SimError::Io {
            what: format!(
                "replay sweep speedup {:.2}x below the {:.1}x floor — \
                 'execute once, time N' is not paying for itself",
                replay.speedup, replay.floor
            ),
        });
    }
    if let Some(sc) = &mc_scaling {
        let rows: Vec<Vec<String>> = sc
            .points
            .iter()
            .map(|p| {
                vec![
                    p.cores.to_string(),
                    if p.quantum == 1 { "1 (lockstep)".to_string() } else { p.quantum.to_string() },
                    p.cycles.to_string(),
                    format!("{:.3}", p.host_seconds),
                    format!("{:.2}x", p.speedup_vs_lockstep),
                ]
            })
            .collect();
        print_table(
            &format!("multicore scaling — relaxed sync vs lockstep ({} host threads)", sc.host_threads),
            &["cores", "quantum", "sim cycles", "host s", "vs lockstep"],
            &rows,
        );
        println!(
            "largest mesh: relaxed engine {:.2}x over lockstep (floor {:.1}x)",
            sc.speedup_28, sc.floor
        );
        if sc.speedup_28 < sc.floor {
            return Err(SimError::Io {
                what: format!(
                    "28-core relaxed-sync speedup {:.2}x below the {:.1}x floor — \
                     the quantum engine is not paying for itself",
                    sc.speedup_28, sc.floor
                ),
            });
        }
    }

    let path = trajectory_path();
    let mut trajectory = load_trajectory(&path);

    if check {
        // Baseline = the *best* committed record measuring the same sweep:
        // same quick flag and the identical (workload, config) point set.
        // Comparing against the latest record instead lets one slow
        // measurement silently ratchet the floor down (the seed trajectory
        // did exactly that: a 931 kcyc/s record quietly became the bar
        // after a ~1100 kcyc/s one) — and comparing against a record of a
        // *different* point set is meaningless.
        let mine: Vec<(&str, &str)> =
            points.iter().map(|p| (p.workload.as_str(), p.config.as_str())).collect();
        let base = trajectory
            .iter()
            .filter(|r| {
                r.quick == quick
                    && r.points.len() == mine.len()
                    && r.points
                        .iter()
                        .zip(&mine)
                        .all(|(p, m)| (p.workload.as_str(), p.config.as_str()) == *m)
            })
            .max_by(|a, b| {
                a.total_kcycles_per_host_sec.total_cmp(&b.total_kcycles_per_host_sec)
            });
        match base {
            Some(base) => {
                let rev = if base.git_rev.is_empty() { "?" } else { &base.git_rev };
                let ratio = total_kcps / base.total_kcycles_per_host_sec;
                println!(
                    "check: {:.0} kcyc/s vs best committed {:.0} kcyc/s ({} @ {} rev {rev}) = {ratio:.2}x",
                    total_kcps, base.total_kcycles_per_host_sec, base.label, base.unix_time,
                );
                if ratio < CHECK_FLOOR {
                    return Err(SimError::Io {
                        what: format!(
                            "throughput regressed more than {:.0}% \
                             ({ratio:.2}x < {CHECK_FLOOR}x baseline)",
                            (1.0 - CHECK_FLOOR) * 100.0
                        ),
                    });
                }
            }
            None => {
                println!(
                    "check: no committed record matches this sweep's point set \
                     (quick={quick}); passing trivially"
                );
            }
        }
    }
    if update {
        trajectory.push(record);
        let s = serde_json::to_string_pretty(&trajectory)
            .map_err(|e| SimError::Io { what: format!("serialize trajectory: {e}") })?;
        std::fs::write(&path, s + "\n")
            .map_err(|e| SimError::Io { what: format!("write {}: {e}", path.display()) })?;
        println!("appended record to {}", path.display());
    }
    Ok(())
}
