//! mesh — the paper's 28-core NUCA/mesh machine, end to end.
//!
//! Runs a reference kernel pair (compute-bound and DRAM-streaming) on the
//! *detailed* multicore machine at each operating point under the
//! relaxed-sync engine (DESIGN.md §5i), and reports both the paper-facing
//! speedups and the uncore contention signals only the detailed mesh can
//! surface: per-link flit occupancy, per-slice MSHR conflicts and DRAM
//! queue depths. Results land in `target/experiments/mesh.json`.
//!
//! Flags (after the standard bench flags):
//! * `--cores N`            mesh size (default 28, the paper's Skylake-SP);
//! * `--quantum Q`          relaxed-sync quantum in core cycles (default 1000);
//! * `--threads T`          host threads (default 0 = shared budget);
//! * `--compare-lockstep`   also run `quantum = 1` (the lockstep engine) and
//!   report the relaxed engine's timing drift and wall-clock speedup.

use save_bench::print_table;
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_sim::runner::run_kernel_full;
use save_sim::{
    ConfigKind, KernelRun, MachineConfig, MachineMode, MulticoreConfig, SimError,
};
use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;

/// One (workload, operating point) detailed-mesh measurement.
#[derive(Serialize)]
struct MeshPoint {
    workload: String,
    config: String,
    cores: usize,
    quantum: u64,
    cycles: u64,
    seconds: f64,
    host_seconds: f64,
    l3_hit_rate: f64,
    mshr_conflicts: u64,
    max_link_flits: u64,
    mean_link_flits: f64,
    dram_max_queue: u64,
    dram_mean_queue: f64,
    /// Relaxed-vs-lockstep simulated-cycle ratio (1.0 = no drift); only
    /// present under `--compare-lockstep`.
    lockstep_cycle_ratio: Option<f64>,
    /// Lockstep wall-clock divided by relaxed wall-clock; only present
    /// under `--compare-lockstep`.
    lockstep_speedup: Option<f64>,
}

/// The two reference kernels: one compute-bound (B panels resident in L2),
/// one streaming B from DRAM (the mesh/DRAM-contention worst case).
fn workloads() -> Vec<GemmWorkload> {
    let spec = GemmKernelSpec {
        m_tiles: 6,
        n_vecs: 4,
        pattern: BroadcastPattern::Explicit,
        precision: Precision::F32,
    };
    let compute = GemmWorkload::dense("mesh-compute", spec, 32, 4).with_sparsity(0.4, 0.5);
    let stream = GemmWorkload {
        b_panel_tiles: 1,
        ..GemmWorkload::dense("mesh-stream", spec, 32, 4).with_sparsity(0.6, 0.6)
    };
    vec![compute, stream]
}

fn machine(cores: usize, quantum: u64, threads: usize) -> MachineConfig {
    MachineConfig {
        cores,
        mode: MachineMode::Detailed,
        mc: MulticoreConfig { quantum, threads },
        ..Default::default()
    }
}

fn flag_value(rest: &[String], flag: &str) -> Option<u64> {
    let i = rest.iter().position(|a| a == flag)?;
    rest.get(i + 1)?.parse().ok()
}

/// Runs one cell and wall-clocks it.
fn timed_run(
    w: &GemmWorkload,
    kind: ConfigKind,
    m: &MachineConfig,
    tok: &save_sim::CancelToken,
) -> Result<(KernelRun, f64), SimError> {
    let t0 = Instant::now();
    let run = run_kernel_full(w, kind, m, 1, false, Some(tok))?;
    Ok((run, t0.elapsed().as_secs_f64()))
}

fn main() -> ExitCode {
    save_bench::run_main("mesh", body)
}

fn body(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let cores = flag_value(&cli.rest, "--cores").unwrap_or(28) as usize;
    let quantum = flag_value(&cli.rest, "--quantum").unwrap_or(1000).max(1);
    let threads = flag_value(&cli.rest, "--threads").unwrap_or(0) as usize;
    let compare = cli.rest.iter().any(|a| a == "--compare-lockstep");
    let relaxed = machine(cores, quantum, threads);
    let lockstep = machine(cores, 1, 0);

    let mut points: Vec<MeshPoint> = Vec::new();
    for w in workloads() {
        for kind in ConfigKind::ALL {
            let label = format!("{}-{}", w.name, kind.label());
            let Some(point) = session.run(&label, |tok| {
                let (run, host) = timed_run(&w, kind, &relaxed, tok)?;
                let (ratio, speedup) = if compare {
                    let (lock, lock_host) = timed_run(&w, kind, &lockstep, tok)?;
                    (
                        Some(run.result.cycles as f64 / lock.result.cycles.max(1) as f64),
                        Some(lock_host / host.max(1e-9)),
                    )
                } else {
                    (None, None)
                };
                let u = &run.uncore;
                let l3_total = (u.l3_hits + u.l3_misses).max(1);
                Ok(MeshPoint {
                    workload: w.name.clone(),
                    config: kind.label().to_string(),
                    cores,
                    quantum,
                    cycles: run.result.cycles,
                    seconds: run.result.seconds,
                    host_seconds: host,
                    l3_hit_rate: u.l3_hits as f64 / l3_total as f64,
                    mshr_conflicts: u.total_mshr_conflicts(),
                    max_link_flits: u.max_link_flits,
                    mean_link_flits: u.mean_link_flits,
                    dram_max_queue: u.dram.max_queue_depth,
                    dram_mean_queue: u.dram.queue_depth_sum as f64
                        / u.dram.queue_samples.max(1) as f64,
                    lockstep_cycle_ratio: ratio,
                    lockstep_speedup: speedup,
                })
            }) else {
                continue;
            };
            points.push(point);
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workload.clone(),
                p.config.clone(),
                format!("{:.3e}", p.seconds),
                format!("{:.1}%", p.l3_hit_rate * 100.0),
                format!("{}", p.mshr_conflicts),
                format!("{}", p.max_link_flits),
                format!("{}", p.dram_max_queue),
                match p.lockstep_cycle_ratio {
                    Some(r) => format!("{r:.3}"),
                    None => "-".to_string(),
                },
                match p.lockstep_speedup {
                    Some(s) => format!("{s:.2}x"),
                    None => "-".to_string(),
                },
            ]
        })
        .collect();
    print_table(
        &format!("Detailed mesh: {cores} cores, quantum {quantum}"),
        &[
            "workload",
            "config",
            "seconds",
            "L3 hit",
            "MSHR conf",
            "max flits",
            "DRAM maxQ",
            "vs lockstep",
            "speedup",
        ],
        &rows,
    );

    // Paper-facing speedups per workload (baseline / SAVE seconds).
    for w in workloads() {
        let sec = |cfg: ConfigKind| {
            points
                .iter()
                .find(|p| p.workload == w.name && p.config == cfg.label())
                .map(|p| p.seconds)
        };
        if let (Some(b), Some(s2), Some(s1)) =
            (sec(ConfigKind::Baseline), sec(ConfigKind::Save2Vpu), sec(ConfigKind::Save1Vpu))
        {
            println!(
                "{}: 2 VPUs {:.2}x | 1 VPU {:.2}x over baseline at {cores} cores",
                w.name,
                b / s2,
                b / s1
            );
        }
    }
    save_bench::write_json("mesh", &points)?;
    Ok(())
}
