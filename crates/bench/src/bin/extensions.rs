//! Related-work synergies from §VIII, made quantitative:
//!
//! 1. **SparseTrain** (software BS skipping, Gong et al. PACT'20): branches
//!    around zero-broadcast VFMA groups in software. Exploits BS only, on
//!    unmodified hardware — and *composes* with SAVE because it relieves
//!    the front-end bandwidth SAVE is bound by at high BS.
//! 2. **ZCOMP** (compressed vector loads, Akin et al. MICRO'19): stores
//!    streamed panels compressed, so memory traffic shrinks proportionally
//!    to NBS — exactly the reduction SAVE makes in computation, lifting the
//!    bandwidth cap of memory-bound (LSTM-like) kernels.

use save_bench::print_table;
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_sim::runner::run_kernel_cancel;
use save_sim::{ConfigKind, MachineConfig, SimError};
use std::process::ExitCode;

fn explicit_spec() -> GemmKernelSpec {
    GemmKernelSpec {
        m_tiles: 6,
        n_vecs: 3,
        pattern: BroadcastPattern::Explicit,
        precision: Precision::F32,
    }
}

fn main() -> ExitCode {
    save_bench::run_main("extensions", body)
}

fn body(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let grid = cli.grid();
    let machine = MachineConfig::default();

    // 1. SparseTrain-style software skipping vs / with SAVE, across BS,
    // under uniform-random and clustered (ReLU-like) sparsity.
    let mut rows = Vec::new();
    for (label, software, kind, cluster) in [
        ("software skip, uniform zeros", true, ConfigKind::Baseline, 1usize),
        ("software skip, clustered zeros", true, ConfigKind::Baseline, 16),
        ("SAVE (hardware), uniform", false, ConfigKind::Save2Vpu, 1),
        ("SAVE (hardware), clustered", false, ConfigKind::Save2Vpu, 16),
        ("SAVE + software skip, clustered", true, ConfigKind::Save2Vpu, 16),
    ] {
        let mut row = vec![label.to_string()];
        for &bs in &grid {
            let plain = GemmWorkload {
                a_cluster: cluster,
                ..GemmWorkload::dense("st", explicit_spec(), 64, 3).with_sparsity(bs, 0.0)
            };
            let w = GemmWorkload { software_bs_skip: software, ..plain.clone() };
            let seed = (bs * 100.0) as u64;
            let speedup = session.seconds(&format!("{label} bs={bs:.1}"), |tok| {
                let tb =
                    run_kernel_cancel(&plain, ConfigKind::Baseline, &machine, seed, false, Some(tok))?
                        .seconds;
                let ts = run_kernel_cancel(&w, kind, &machine, seed, false, Some(tok))?.seconds;
                Ok(tb / ts)
            });
            row.push(format!("{speedup:.2}"));
        }
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["approach".into()];
    headers.extend(grid.iter().map(|b| format!("BS {:.0}%", b * 100.0)));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Extension: SparseTrain-style software skipping vs SAVE (speedup over baseline)",
        &hrefs,
        &rows,
    );

    // 2. ZCOMP compressed streaming on a bandwidth-bound kernel, across NBS.
    let streaming = |nbs: f64, compressed: bool| GemmWorkload {
        b_panel_tiles: 1,
        compressed_b: compressed,
        ..GemmWorkload::dense("zc", explicit_spec(), 64, 8).with_sparsity(0.2, nbs)
    };
    let mut rows = Vec::new();
    for (label, compressed, kind) in [
        ("SAVE 2 VPUs", false, ConfigKind::Save2Vpu),
        ("SAVE 2 VPUs + ZCOMP", true, ConfigKind::Save2Vpu),
        ("SAVE 1 VPU", false, ConfigKind::Save1Vpu),
        ("SAVE 1 VPU + ZCOMP", true, ConfigKind::Save1Vpu),
    ] {
        let mut row = vec![label.to_string()];
        for &nbs in &grid {
            let seed = (nbs * 100.0) as u64;
            let speedup = session.seconds(&format!("{label} nbs={nbs:.1}"), |tok| {
                let tb = run_kernel_cancel(
                    &streaming(nbs, false), ConfigKind::Baseline, &machine, seed, false, Some(tok),
                )?
                .seconds;
                let ts = run_kernel_cancel(
                    &streaming(nbs, compressed), kind, &machine, seed, false, Some(tok),
                )?
                .seconds;
                Ok(tb / ts)
            });
            row.push(format!("{speedup:.2}"));
        }
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["approach".into()];
    headers.extend(grid.iter().map(|b| format!("NBS {:.0}%", b * 100.0)));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Extension: ZCOMP compressed streaming on a bandwidth-bound kernel (speedup over baseline)",
        &hrefs,
        &rows,
    );
    println!("\nReadings: software zero-skipping lives and dies by branch prediction —");
    println!("clustered (ReLU-like) zeros predict well, uniform random zeros do not —");
    println!("while SAVE is insensitive to sparsity structure; and ZCOMP keeps");
    println!("memory-bound kernels scaling with NBS where SAVE alone hits the");
    println!("bandwidth roof (§VIII).");
    Ok(())
}
