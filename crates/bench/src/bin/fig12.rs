//! Fig 12 — activation sparsity during end-to-end training: per-layer
//! series from the first epoch to the last.

use save_sim::SimError;
use save_sparsity::{ActivationModel, NetKind};

fn panel(kind: NetKind, layers: usize, epochs: usize, segments: usize) -> Result<(), SimError> {
    println!("\n== Fig 12: {} training, input-activation sparsity ==", kind.label());
    println!("(each segment is one layer; within a segment, first epoch -> last epoch)");
    let m = ActivationModel::new(kind);
    // Sub-sample 5 epochs per segment for readable text output; the JSON
    // carries the full series.
    let mut all = Vec::new();
    for layer in 1..=segments {
        let series = m.series(layer, layers, epochs);
        let pick: Vec<String> = [0, epochs / 4, epochs / 2, 3 * epochs / 4, epochs - 1]
            .iter()
            .map(|&e| format!("{:>4.0}%", series[e] * 100.0))
            .collect();
        println!("layer {layer:>2}: {}", pick.join(" -> "));
        all.push(series);
    }
    save_bench::write_json(&format!("fig12_{:?}", kind), &all)
}

fn main() -> std::process::ExitCode {
    save_bench::run_main("fig12", |_cli, _session| {
        // VGG16: 12 segments (13 convs minus the dense-input first layer).
        panel(NetKind::Vgg16Dense, 13, 90, 12)?;
        // ResNet-50: 49 segments in the paper (conv layers along the main path).
        panel(NetKind::ResNet50Dense, 50, 90, 49)?;
        panel(NetKind::ResNet50Pruned, 50, 102, 49)?;
        println!("\n(GNMT omitted as in the paper: its activation sparsity is constant 20%.)");
        Ok(())
    })
}
