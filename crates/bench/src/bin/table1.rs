//! Table I — architecture configuration of the simulated machine.

use save_bench::print_table;
use save_core::CoreConfig;
use save_mem::energy::StorageModel;
use save_sim::MachineConfig;

fn main() -> std::process::ExitCode {
    save_bench::run_main("table1", |_cli, _session| body())
}

fn body() -> Result<(), save_sim::SimError> {
    let core = CoreConfig::default();
    let m = MachineConfig::default();
    let mem = m.mem;
    let storage = StorageModel::default();
    let rows = vec![
        vec![
            "Core".into(),
            format!(
                "{} cores, no SMT, {} RS entries, {} ROB entries, {}-issue, 1 VPU at 2.1GHz or 2 VPUs at 1.7GHz",
                m.cores, core.rs_entries, core.rob_entries, core.issue_width
            ),
        ],
        vec![
            "B$".into(),
            format!("{} lines direct-mapped, with data or with masks", storage.bcast_entries),
        ],
        vec![
            "L1-D/I".into(),
            format!(
                "{}KB/core private, {}-way, LRU ({}-cycle)",
                mem.l1.capacity_bytes / 1024,
                mem.l1.ways,
                mem.l1_hit_cycles
            ),
        ],
        vec![
            "L2".into(),
            format!(
                "{}MB/core private, inclusive, {}-way, LRU ({}-cycle)",
                mem.l2.capacity_bytes / (1024 * 1024),
                mem.l2.ways,
                mem.l2_hit_cycles
            ),
        ],
        vec![
            "L3".into(),
            format!(
                "{:.3}MB/core, shared, inclusive, {}-way, SRRIP, NUCA",
                mem.l3_slice.capacity_bytes as f64 / (1024.0 * 1024.0),
                mem.l3_slice.ways
            ),
        ],
        vec![
            "NoC".into(),
            format!("2D-mesh, XY routing, {}-cycle hop", mem.noc_hop_cycles),
        ],
        vec![
            "Memory".into(),
            format!(
                "{}GB/s BW, {} channels, {}ns latency",
                mem.dram.bandwidth_gbps, mem.dram.channels, mem.dram.latency_ns
            ),
        ],
        vec![
            "VFMA".into(),
            format!(
                "FP32 latency {} cycles, mixed-precision latency {} cycles",
                core.fp32_fma_cycles, core.mp_fma_cycles
            ),
        ],
    ];
    print_table("Table I: architecture configuration", &["Component", "Configuration"], &rows);
    save_bench::write_json("table1", &rows)?;
    Ok(())
}
