//! Fig 17 — broadcast-cache designs on an embedded-broadcast kernel:
//! SAVE speedups on the FP32 backward-weights kernel of ResNet3_2 with two
//! VPUs, with no B$, a mask-design B$, and a data-design B$, at 0% and 40%
//! broadcasted sparsity across non-broadcasted sparsity levels.
//!
//! Paper landmarks: without a B$ there is no speedup at any sparsity; both
//! designs help as BS grows; only the data design keeps improving with NBS
//! (the mask design still burns an L1-D port on non-zero broadcasts).

use save_bench::print_table;
use save_core::CoreConfig;
use save_kernels::{Phase, Precision};
use save_mem::BcastDesign;
use save_sim::runner::run_kernel_custom_cancel;
use save_sim::{MachineConfig, SimError};
use serde::Serialize;
use std::process::ExitCode;

#[derive(Serialize)]
// Fields are consumed via `Serialize` in the session JSON dump only.
#[allow(dead_code)]
struct Point {
    design: String,
    bs: f64,
    nbs: f64,
    speedup: f64,
}

fn main() -> ExitCode {
    save_bench::run_main("fig17", body)
}

fn body(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let grid = cli.grid();
    let shape = save_kernels::shapes::conv_by_name("ResNet3_2").ok_or_else(|| {
        SimError::InvalidConfig { what: "fig17: ResNet3_2 missing from the shape table".into() }
    })?;
    let w0 = shape.workload(Phase::BackwardWeights, Precision::F32);
    assert_eq!(w0.spec.pattern, save_kernels::BroadcastPattern::Embedded);

    let designs: [(&str, Option<BcastDesign>); 3] =
        [("No B$", None), ("B$ w/ masks", Some(BcastDesign::Masks)), ("B$ w/ data", Some(BcastDesign::Data))];

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for bs in [0.0, 0.4] {
        for (label, design) in designs {
            let mut row = vec![format!("{label} @ {:.0}% BS", bs * 100.0)];
            for &nbs in &grid {
                let mut machine = MachineConfig::default();
                machine.mem.bcast = design;
                let w = w0.clone().with_sparsity(bs, nbs);
                let seed = ((bs * 100.0) as u64) << 8 | (nbs * 100.0) as u64;
                // Baseline never has a B$ (it is a SAVE structure).
                let mut base_machine = MachineConfig::default();
                base_machine.mem.bcast = None;
                let cell = format!("{label} bs={bs:.1} nbs={nbs:.1}");
                let speedup = session.seconds(&cell, |tok| {
                    let tb = run_kernel_custom_cancel(
                        &w, &CoreConfig::baseline(), &base_machine, seed, false, Some(tok),
                    )?
                    .seconds;
                    let ts = run_kernel_custom_cancel(
                        &w, &CoreConfig::save_2vpu(), &machine, seed, false, Some(tok),
                    )?
                    .seconds;
                    Ok(tb / ts)
                });
                row.push(format!("{speedup:.2}"));
                points.push(Point { design: label.into(), bs, nbs, speedup });
            }
            rows.push(row);
        }
    }
    let mut headers: Vec<String> = vec!["config".into()];
    headers.extend(grid.iter().map(|b| format!("NBS {:.0}%", b * 100.0)));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("Fig 17: ResNet3_2 FP32 bwd-weights (embedded broadcast), 2 VPUs", &hrefs, &rows);
    save_bench::write_json("fig17", &points)
}
