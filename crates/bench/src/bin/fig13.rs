//! Fig 13 — weight-pruning schedules for ResNet-50 and GNMT training.

use save_sim::SimError;
use save_sparsity::PruningSchedule;

fn main() -> std::process::ExitCode {
    save_bench::run_main("fig13", |_cli, _session| body())
}

fn body() -> Result<(), SimError> {
    let rn = PruningSchedule::resnet50();
    println!("== Fig 13 (top): ResNet-50 training with pruning ==");
    println!("epoch: weight sparsity");
    for (t, s) in rn.series(6) {
        println!("{:>6.0}: {:>5.1}%", t, s * 100.0);
    }
    save_bench::write_json("fig13_resnet50", &rn.series(1))?;

    let g = PruningSchedule::gnmt();
    println!("\n== Fig 13 (bottom): GNMT training with pruning ==");
    println!("iteration: weight sparsity");
    for (t, s) in g.series(20_000) {
        println!("{:>9.1E}: {:>5.1}%", t, s * 100.0);
    }
    save_bench::write_json("fig13_gnmt", &g.series(5_000))?;

    assert!((rn.final_sparsity() - 0.8).abs() < 1e-9);
    assert!((g.final_sparsity() - 0.9).abs() < 1e-9);
    println!("\nFinal sparsities: ResNet-50 80%, GNMT 90% — matching §VI.");
    Ok(())
}
