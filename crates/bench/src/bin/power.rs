//! Power/energy report (extension of §IV-D): energy per kernel and mean
//! power for the three operating points across sparsity levels, using the
//! Table II B$ figures and a documented core power model. Shows the §IV-D
//! claim quantitatively: at high sparsity, disabling one VPU saves energy
//! at little or no performance cost.

use save_bench::print_table;
use save_kernels::{Phase, Precision};
use save_sim::runner::run_kernel_cancel;
use save_sim::{ConfigKind, MachineConfig, PowerModel, SimError};
use std::process::ExitCode;

fn main() -> ExitCode {
    save_bench::run_main("power", body)
}

fn body(
    _cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let machine = MachineConfig::default();
    let pm = PowerModel::default();
    let shape = save_kernels::shapes::conv_by_name("ResNet3_2").ok_or_else(|| {
        SimError::InvalidConfig { what: "power: ResNet3_2 missing from the shape table".into() }
    })?;
    let w0 = shape.workload(Phase::Forward, Precision::F32);

    let mut rows = Vec::new();
    for sparsity in [0.0, 0.3, 0.6, 0.9] {
        let w = w0.clone().with_sparsity(sparsity, sparsity);
        for (kind, vpus) in
            [(ConfigKind::Baseline, 2), (ConfigKind::Save2Vpu, 2), (ConfigKind::Save1Vpu, 1)]
        {
            let label = format!("{} @ {:.0}%", kind.label(), sparsity * 100.0);
            let Some(r) =
                session.run(&label, |tok| run_kernel_cancel(&w, kind, &machine, 2, false, Some(tok)))
            else {
                continue;
            };
            let e = pm.estimate(&r, vpus);
            rows.push(vec![
                format!("{:.0}%", sparsity * 100.0),
                kind.label().to_string(),
                format!("{:.2} µJ", e.total_j() * 1e6),
                format!("{:.2} W", e.mean_power_w(r.seconds)),
                format!("{:.2} µs", r.seconds * 1e6),
                format!("{:.1}%", 100.0 * e.vpu_j / e.total_j()),
            ]);
        }
    }
    print_table(
        "Power report: ResNet3_2 fwd FP32 (energy per scaled-down kernel run)",
        &["sparsity", "config", "energy", "mean power", "time", "VPU share"],
        &rows,
    );
    save_bench::write_json("power", &rows)?;
    println!("\n§IV-D takeaway: at high sparsity the 1-VPU point matches or beats the");
    println!("2-VPU point in time while drawing less power — the frequency boost is free.");
    Ok(())
}
