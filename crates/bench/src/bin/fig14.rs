//! Fig 14 — whole-network performance at realistic sparsity: normalized
//! execution time of all conv layers / LSTM cells for inference (a, b) and
//! end-to-end training (c, d), across the baseline and the SAVE operating
//! points (2 VPUs @ 1.7 GHz, 1 VPU @ 2.1 GHz, per-epoch *static* and
//! per-kernel *dynamic* selection).
//!
//! Paper landmarks (dynamic, mixed precision): inference speedups 1.68x
//! (dense VGG16), 1.37x (dense ResNet-50), 1.59x (pruned ResNet-50), 1.39x
//! (pruned GNMT); end-to-end training 1.64x / 1.29x / 1.42x / 1.28x.

use save_bench::print_table;
use save_kernels::Precision;
use save_sim::{Estimator, EstimatorConfig, EstimatorDurability, Network};
use save_sparsity::NetKind;
use serde::Serialize;
use std::process::ExitCode;

#[derive(Serialize)]
// Fields are consumed via `Serialize` in the session JSON dump only.
#[allow(dead_code)]
struct NetResult {
    network: String,
    precision: String,
    inference_norm: Vec<(String, f64)>,
    inference_first_layer_frac: f64,
    training_norm: Vec<(String, f64)>,
    training_breakdown_dynamic: Vec<(String, f64)>,
}

fn main() -> ExitCode {
    save_bench::run_main("fig14", body)
}

fn body(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), save_sim::SimError> {
    let cfg = EstimatorConfig { grid: cli.grid(), ..Default::default() };
    // Surface sweeps inherit the session's durable-execution settings:
    // each distinct surface journals under a content-addressed
    // subdirectory of --checkpoint-dir (None still gives deadlines,
    // retries and cancellation without journaling).
    let est = Estimator::durable(
        cfg,
        EstimatorDurability {
            checkpoint_dir: cli.checkpoint_dir.clone(),
            resume: cli.resume,
            policy: cli.policy(),
            supervisor: session.supervisor().clone(),
        },
    );

    let kinds = [
        NetKind::Vgg16Dense,
        NetKind::ResNet50Dense,
        NetKind::ResNet50Pruned,
        NetKind::GnmtPruned,
    ];
    let precisions = [Precision::F32, Precision::Mixed];

    let mut inf_rows = Vec::new();
    let mut train_rows = Vec::new();
    let mut results = Vec::new();
    for prec in precisions {
        for kind in kinds {
            let net = Network::build(kind);
            eprintln!("[fig14] estimating {} {prec}...", kind.label());
            let label = format!("{} {prec}", kind.label());
            let Some((inf, tr)) = session.run(&label, |_tok| {
                Ok((est.estimate_inference(&net, prec)?, est.estimate_training(&net, prec)?))
            }) else {
                continue;
            };

            let ib = inf.baseline.total();
            let inf_norm = vec![
                ("baseline".to_string(), 1.0),
                ("2 VPUs".to_string(), inf.save2.total() / ib),
                ("1 VPU".to_string(), inf.save1.total() / ib),
                ("dynamic".to_string(), inf.dynamic.total() / ib),
            ];
            inf_rows.push(vec![
                format!("{} {prec}", kind.label()),
                format!("{:.2}x", ib / inf.save2.total()),
                format!("{:.2}x", ib / inf.save1.total()),
                format!("{:.2}x", ib / inf.dynamic.total()),
                format!("{:.0}%", inf.baseline.first_layer / ib * 100.0),
            ]);

            let tb = tr.baseline.total();
            let train_norm = vec![
                ("baseline".to_string(), 1.0),
                ("2 VPUs".to_string(), tr.save2.total() / tb),
                ("1 VPU".to_string(), tr.save1.total() / tb),
                ("static".to_string(), tr.static_.total() / tb),
                ("dynamic".to_string(), tr.dynamic.total() / tb),
            ];
            train_rows.push(vec![
                format!("{} {prec}", kind.label()),
                format!("{:.2}x", tb / tr.save2.total()),
                format!("{:.2}x", tb / tr.save1.total()),
                format!("{:.2}x", tb / tr.static_.total()),
                format!("{:.2}x", tb / tr.dynamic.total()),
            ]);
            let dyn_total = tr.dynamic.total();
            results.push(NetResult {
                network: kind.label().to_string(),
                precision: prec.to_string(),
                inference_norm: inf_norm,
                inference_first_layer_frac: inf.baseline.first_layer / ib,
                training_norm: train_norm,
                training_breakdown_dynamic: vec![
                    ("forward".into(), tr.dynamic.forward / dyn_total),
                    ("backward input".into(), tr.dynamic.backward_input / dyn_total),
                    ("backward weight".into(), tr.dynamic.backward_weights / dyn_total),
                    ("1st layer".into(), tr.dynamic.first_layer / dyn_total),
                ],
            });
        }
    }
    print_table(
        "Fig 14a/b: inference speedup over baseline",
        &["network", "2 VPUs", "1 VPU", "dynamic", "1st-layer share"],
        &inf_rows,
    );
    print_table(
        "Fig 14c/d: end-to-end training speedup over baseline",
        &["network", "2 VPUs", "1 VPU", "static", "dynamic"],
        &train_rows,
    );
    println!(
        "\npaper (dynamic, MP): inference 1.68x VGG16 / 1.37x RN50 dense / 1.59x RN50 pruned / 1.39x GNMT"
    );
    println!(
        "                     training  1.64x        / 1.29x          / 1.42x           / 1.28x"
    );
    println!("surfaces swept: {}", est.surfaces_built());
    save_bench::write_json("fig14", &results)
}
