//! Fig 15 — SAVE speedups on the mixed-precision forward propagation of
//! ResNet2_2 over the full (NBS x BS) sparsity grid, with 2 VPUs @ 1.7 GHz
//! and 1 VPU @ 2.1 GHz.
//!
//! Paper landmarks to compare against: 2-VPU benefit caps ~1.49x once
//! either sparsity type reaches ~60%; 1 VPU is 29% slower when dense,
//! reaches ~1.96x, and overtakes 2 VPUs past ~70% sparsity.

use save_bench::print_table;
use save_kernels::{Phase, Precision};
use save_sim::{CellSpec, ConfigKind, MachineConfig, SimError};
use serde::Serialize;
use std::process::ExitCode;

#[derive(Serialize)]
// Fields are consumed via `Serialize` in the session JSON dump only.
#[allow(dead_code)]
struct Cell {
    bs: f64,
    nbs: f64,
    speedup_2vpu: f64,
    speedup_1vpu: f64,
}

fn main() -> ExitCode {
    save_bench::run_main("fig15", body)
}

fn body(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let grid = cli.grid();
    let shape = save_kernels::shapes::conv_by_name("ResNet2_2").ok_or_else(|| {
        SimError::InvalidConfig { what: "fig15: ResNet2_2 missing from the shape table".into() }
    })?;
    let w0 = shape.workload(Phase::Forward, Precision::Mixed);
    let machine = MachineConfig::default();

    // One journal cell per (sparsity point, operating point): the config
    // is part of the label so resume keys never collide. The whole grid
    // is submitted as one batch — grid-point-major, so the three
    // operating points of a point sit next to each other and share one
    // recorded functional trace locally, or reach a `--serve` daemon in a
    // single round trip instead of one per cell.
    let mut batch: Vec<(String, CellSpec)> = Vec::new();
    for &nbs in &grid {
        for &bs in &grid {
            let w = w0.clone().with_sparsity(bs, nbs);
            let seed = ((bs * 100.0) as u64) << 8 | (nbs * 100.0) as u64;
            for kind in ConfigKind::ALL {
                batch.push((
                    format!("bs={bs:.1} nbs={nbs:.1} {}", kind.label()),
                    CellSpec::new(w.clone(), kind, machine, seed),
                ));
            }
        }
    }
    let secs = session.spec_seconds_batch(&batch);
    let mut secs_iter = secs.into_iter();

    let mut cells = Vec::new();
    let mut rows2 = Vec::new();
    let mut rows1 = Vec::new();
    for &nbs in &grid {
        let mut r2 = vec![format!("NBS {:>3.0}%", nbs * 100.0)];
        let mut r1 = r2.clone();
        for &bs in &grid {
            let tb = secs_iter.next().unwrap_or(f64::NAN);
            let t2 = secs_iter.next().unwrap_or(f64::NAN);
            let t1 = secs_iter.next().unwrap_or(f64::NAN);
            r2.push(format!("{:.2}", tb / t2));
            r1.push(format!("{:.2}", tb / t1));
            cells.push(Cell { bs, nbs, speedup_2vpu: tb / t2, speedup_1vpu: tb / t1 });
        }
        rows2.push(r2);
        rows1.push(r1);
    }
    let mut headers: Vec<String> = vec!["".into()];
    headers.extend(grid.iter().map(|b| format!("BS {:.0}%", b * 100.0)));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("Fig 15a: ResNet2_2 MP fwd speedup, 2 VPUs @ 1.7GHz", &hrefs, &rows2);
    print_table("Fig 15b: ResNet2_2 MP fwd speedup, 1 VPU @ 2.1GHz", &hrefs, &rows1);
    save_bench::write_json("fig15", &cells)?;

    let max2 = cells.iter().map(|c| c.speedup_2vpu).fold(0.0f64, f64::max);
    let max1 = cells.iter().map(|c| c.speedup_1vpu).fold(0.0f64, f64::max);
    let dense1 = cells
        .iter()
        .find(|c| c.bs == 0.0 && c.nbs == 0.0)
        .map(|c| c.speedup_1vpu)
        .unwrap_or(f64::NAN);
    println!("\nlandmarks: 2-VPU cap {max2:.2}x (paper ~1.49x); 1-VPU max {max1:.2}x (paper ~1.96x);");
    println!("           1-VPU dense {dense1:.2}x (paper ~0.71x, i.e. 29% slowdown)");
    Ok(())
}
