//! Fig 15 — SAVE speedups on the mixed-precision forward propagation of
//! ResNet2_2 over the full (NBS x BS) sparsity grid, with 2 VPUs @ 1.7 GHz
//! and 1 VPU @ 2.1 GHz.
//!
//! Paper landmarks to compare against: 2-VPU benefit caps ~1.49x once
//! either sparsity type reaches ~60%; 1 VPU is 29% slower when dense,
//! reaches ~1.96x, and overtakes 2 VPUs past ~70% sparsity.

use save_bench::{print_table, HarnessArgs, SweepSession};
use save_kernels::{Phase, Precision};
use save_sim::runner::run_kernel;
use save_sim::{ConfigKind, MachineConfig};
use serde::Serialize;
use std::process::ExitCode;

#[derive(Serialize)]
// Fields are consumed via `Serialize` in the session JSON dump only.
#[allow(dead_code)]
struct Cell {
    bs: f64,
    nbs: f64,
    speedup_2vpu: f64,
    speedup_1vpu: f64,
}

fn main() -> ExitCode {
    let args = HarnessArgs::parse();
    let grid = args.grid();
    let Some(shape) = save_kernels::shapes::conv_by_name("ResNet2_2") else {
        eprintln!("fig15: ResNet2_2 missing from the shape table");
        return ExitCode::from(1);
    };
    let w0 = shape.workload(Phase::Forward, Precision::Mixed);
    let machine = MachineConfig::default();
    let mut session = SweepSession::new("fig15");

    let mut cells = Vec::new();
    let mut rows2 = Vec::new();
    let mut rows1 = Vec::new();
    for &nbs in &grid {
        let mut r2 = vec![format!("NBS {:>3.0}%", nbs * 100.0)];
        let mut r1 = r2.clone();
        for &bs in &grid {
            let w = w0.clone().with_sparsity(bs, nbs);
            let seed = ((bs * 100.0) as u64) << 8 | (nbs * 100.0) as u64;
            let label = format!("bs={bs:.1} nbs={nbs:.1}");
            let tb = session
                .seconds(&label, || Ok(run_kernel(&w, ConfigKind::Baseline, &machine, seed, false)?.seconds));
            let t2 = session
                .seconds(&label, || Ok(run_kernel(&w, ConfigKind::Save2Vpu, &machine, seed, false)?.seconds));
            let t1 = session
                .seconds(&label, || Ok(run_kernel(&w, ConfigKind::Save1Vpu, &machine, seed, false)?.seconds));
            r2.push(format!("{:.2}", tb / t2));
            r1.push(format!("{:.2}", tb / t1));
            cells.push(Cell { bs, nbs, speedup_2vpu: tb / t2, speedup_1vpu: tb / t1 });
        }
        rows2.push(r2);
        rows1.push(r1);
    }
    let mut headers: Vec<String> = vec!["".into()];
    headers.extend(grid.iter().map(|b| format!("BS {:.0}%", b * 100.0)));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("Fig 15a: ResNet2_2 MP fwd speedup, 2 VPUs @ 1.7GHz", &hrefs, &rows2);
    print_table("Fig 15b: ResNet2_2 MP fwd speedup, 1 VPU @ 2.1GHz", &hrefs, &rows1);
    if let Err(e) = save_bench::write_json("fig15", &cells) {
        eprintln!("fig15: {e}");
        return ExitCode::from(1);
    }

    let max2 = cells.iter().map(|c| c.speedup_2vpu).fold(0.0f64, f64::max);
    let max1 = cells.iter().map(|c| c.speedup_1vpu).fold(0.0f64, f64::max);
    let dense1 = cells
        .iter()
        .find(|c| c.bs == 0.0 && c.nbs == 0.0)
        .map(|c| c.speedup_1vpu)
        .unwrap_or(f64::NAN);
    println!("\nlandmarks: 2-VPU cap {max2:.2}x (paper ~1.49x); 1-VPU max {max1:.2}x (paper ~1.96x);");
    println!("           1-VPU dense {dense1:.2}x (paper ~0.71x, i.e. 29% slowdown)");
    session.finish()
}
