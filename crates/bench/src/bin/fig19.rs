//! Fig 19 — the mixed-precision technique (§V): SAVE speedups on the
//! mixed-precision backward-input kernel of ResNet4_1a with one VPU, with
//! and without multiplicand-lane compression.
//!
//! Without the technique an accumulator lane can only be skipped when both
//! of its BF16 multiplicand lanes are ineffectual, so exploitable sparsity
//! is roughly squared; ML compression recovers it at every level.

use save_bench::print_table;
use save_core::CoreConfig;
use save_kernels::{Phase, Precision};
use save_sim::runner::run_kernel_custom_cancel;
use save_sim::{MachineConfig, SimError};
use serde::Serialize;
use std::process::ExitCode;

#[derive(Serialize)]
// Fields are consumed via `Serialize` in the session JSON dump only.
#[allow(dead_code)]
struct Point {
    mp_technique: bool,
    nbs: f64,
    speedup: f64,
}

fn main() -> ExitCode {
    save_bench::run_main("fig19", body)
}

fn body(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let grid = cli.grid();
    let shape = save_kernels::shapes::conv_by_name("ResNet4_1a").ok_or_else(|| {
        SimError::InvalidConfig { what: "fig19: ResNet4_1a missing from the shape table".into() }
    })?;
    let w0 = shape.workload(Phase::BackwardInput, Precision::Mixed);
    let machine = MachineConfig::default();

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for (label, compress) in [("w/o MP techniques", false), ("w/ MP techniques", true)] {
        let cfg = CoreConfig { mp_compress: compress, ..CoreConfig::save_1vpu() };
        let mut row = vec![label.to_string()];
        for &nbs in &grid {
            let w = w0.clone().with_sparsity(0.0, nbs);
            let seed = (nbs * 100.0) as u64;
            let cell = format!("{label} nbs={nbs:.1}");
            let speedup = session.seconds(&cell, |tok| {
                let tb = run_kernel_custom_cancel(
                    &w, &CoreConfig::baseline(), &machine, seed, false, Some(tok),
                )?
                .seconds;
                let ts =
                    run_kernel_custom_cancel(&w, &cfg, &machine, seed, false, Some(tok))?.seconds;
                Ok(tb / ts)
            });
            row.push(format!("{speedup:.2}"));
            points.push(Point { mp_technique: compress, nbs, speedup });
        }
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["config".into()];
    headers.extend(grid.iter().map(|b| format!("NBS {:.0}%", b * 100.0)));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("Fig 19: ResNet4_1a MP bwd-input, 1 VPU, speedup over 2-VPU baseline", &hrefs, &rows);
    save_bench::write_json("fig19", &points)
}
