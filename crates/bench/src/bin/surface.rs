//! surface — standalone durable 2-D sparsity sweep.
//!
//! Sweeps one GEMM workload over the (BS x NBS) grid under the durable
//! execution layer and prints the resulting surface as one JSON line with
//! `secs_bits` (raw IEEE-754 bits per cell) and the total simulated cycle
//! count, so two runs can be compared for *bit* identity. This is the
//! binary the kill-and-resume integration test (and the CI smoke job)
//! drives: start it with `--checkpoint-dir`, SIGKILL it mid-sweep, rerun
//! with `--resume`, and the output must equal an uninterrupted run's.
//!
//! Usage: `surface [--config baseline|save2|save1] [--cores N] [--k K]
//! [--tiles T]` plus the uniform durable flags. With `--serve ADDR` the
//! whole grid is submitted to a save-serve daemon as one job (the daemon's
//! memo cache makes re-runs free) and the output JSON is identical in
//! shape, with `resumed` counting daemon cache hits.
//!
//! `surface fsck PATH [--repair]` instead audits a checkpoint journal:
//! torn tails, missing final newlines, and duplicate latest-record-wins
//! cells are reported as JSON; with `--repair` the tail damage is fixed in
//! place. Exits 1 when damage is found and left unrepaired.

use save_bench::{run_main, BenchCli, SweepSession};
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_serve::{Client, NamedCell};
use save_sim::surface::DurableSweep;
use save_sim::{fsck_journal, ConfigKind, MachineConfig, SimError, Surface};
use serde::Serialize;
use std::process::ExitCode;

#[derive(Serialize)]
struct Out {
    a_levels: Vec<f64>,
    b_levels: Vec<f64>,
    /// `f64::to_bits` of each cell's seconds, row-major — bit-comparable.
    secs_bits: Vec<u64>,
    total_cycles: u64,
    resumed: usize,
}

fn main() -> ExitCode {
    run_main("surface", body)
}

/// `surface fsck PATH [--repair]`: audit (and optionally repair) a journal.
fn fsck(cli: &BenchCli) -> Result<(), SimError> {
    let repair = cli.rest.iter().any(|a| a == "--repair");
    let path = cli
        .rest
        .iter()
        .skip(1) // the "fsck" token itself
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| SimError::InvalidConfig {
            what: "fsck needs a journal path: surface fsck PATH [--repair]".into(),
        })?;
    let mut path = std::path::PathBuf::from(path);
    if path.is_dir() {
        path = path.join("journal.jsonl");
    }
    let report = fsck_journal(&path, repair)?;
    let line = serde_json::to_string_pretty(&report)
        .map_err(|e| SimError::Io { what: format!("serialize fsck report: {e}") })?;
    println!("{line}");
    if report.dirty() && !report.repaired {
        return Err(SimError::Io {
            what: format!(
                "journal {} has unrepaired damage (rerun with --repair)",
                path.display()
            ),
        });
    }
    Ok(())
}

/// `--serve ADDR`: submit the whole grid to a daemon as one job. With
/// `--fault-first` the first cell carries a [`save_serve::Fault::KillWorker`]
/// injection — the daemon's respawn monitor must recover it, so the output
/// stays identical (this is what the CI serve-smoke job drives).
fn serve_sweep(
    addr: &str,
    session: &mut SweepSession,
    w: &GemmWorkload,
    kind: ConfigKind,
    machine: &MachineConfig,
    grid: &[f64],
    fault_first: bool,
) -> Result<(), SimError> {
    let mut cells = Vec::with_capacity(grid.len() * grid.len());
    for &a in grid {
        for &b in grid {
            cells.push(NamedCell {
                label: format!("cell({a:.3},{b:.3})"),
                spec: save_sim::CellSpec::new(
                    w.clone().with_sparsity(a, b),
                    kind,
                    *machine,
                    Surface::point_seed(a, b),
                ),
                fault: None,
            });
        }
    }
    if fault_first {
        if let Some(first) = cells.first_mut() {
            first.fault = Some(save_serve::Fault::KillWorker);
        }
    }
    let n = cells.len();
    let mut secs_bits = vec![f64::NAN.to_bits(); n];
    let mut total_cycles = 0u64;
    let mut client = Client::connect(addr)?;
    let done = client.submit("surface", &cells, |r| {
        let i = r.index as usize;
        if i < n {
            secs_bits[i] = r.secs_bits;
            total_cycles += r.cycles;
        }
    })?;
    if done.cancelled {
        session.note_cancelled();
        return Ok(());
    }
    if done.failed > 0 {
        session.note_failure(
            "serve-sweep",
            SimError::Io { what: format!("{} remote cell(s) failed", done.failed) },
        );
    }
    let payload = Out {
        a_levels: grid.to_vec(),
        b_levels: grid.to_vec(),
        secs_bits,
        total_cycles,
        resumed: done.cached,
    };
    let line = serde_json::to_string(&payload)
        .map_err(|e| SimError::Io { what: format!("serialize surface: {e}") })?;
    println!("{line}");
    Ok(())
}

fn body(cli: &BenchCli, session: &mut SweepSession) -> Result<(), SimError> {
    if cli.rest.first().map(String::as_str) == Some("fsck") {
        return fsck(cli);
    }
    let get = |flag: &str| {
        cli.rest.iter().position(|a| a == flag).and_then(|i| cli.rest.get(i + 1)).cloned()
    };
    let num = |flag: &str, default: u64| -> Result<u64, SimError> {
        match get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| SimError::InvalidConfig {
                what: format!("{flag} takes a number, got {v:?}"),
            }),
        }
    };
    let kind = match get("--config").as_deref() {
        None | Some("save2") => ConfigKind::Save2Vpu,
        Some("save1") => ConfigKind::Save1Vpu,
        Some("baseline") => ConfigKind::Baseline,
        Some(other) => {
            return Err(SimError::InvalidConfig {
                what: format!("unknown config {other} (expected baseline|save2|save1)"),
            })
        }
    };
    let k_total = num("--k", 64)? as usize;
    let tiles = num("--tiles", 16)? as usize;
    let machine = MachineConfig { cores: num("--cores", 4)? as usize, ..Default::default() };
    let w = GemmWorkload::dense(
        "surface-cli",
        GemmKernelSpec {
            m_tiles: 4,
            n_vecs: 2,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        k_total,
        tiles,
    );
    let grid = cli.grid();

    if let Some(addr) = cli.serve_addr.clone() {
        let fault_first = cli.rest.iter().any(|a| a == "--fault-first");
        return serve_sweep(&addr, session, &w, kind, &machine, &grid, fault_first);
    }

    // The session's own checkpoint (manifest + label journal) lives at the
    // root of --checkpoint-dir; the surface sweep journals its cells in a
    // subdirectory with its own manifest.
    let sub = cli.checkpoint_dir.as_ref().map(|d| d.join("sweep"));
    let out = Surface::sweep_durable(
        &w,
        kind,
        &machine,
        &grid,
        &grid,
        cli.threads_or_default(),
        &DurableSweep {
            name: "surface".to_string(),
            checkpoint_dir: sub.as_deref(),
            resume: cli.resume,
            policy: cli.policy(),
            supervisor: session.supervisor(),
        },
    )?;
    if out.cancelled {
        session.note_cancelled();
        return Ok(());
    }
    for f in out.report.failures {
        let label = f.label.unwrap_or_else(|| format!("cell {}", f.job));
        session.note_failure(&label, f.error);
    }
    let payload = Out {
        a_levels: out.surface.a_levels.clone(),
        b_levels: out.surface.b_levels.clone(),
        secs_bits: out.surface.secs.iter().map(|s| s.to_bits()).collect(),
        total_cycles: out.total_cycles,
        resumed: out.resumed,
    };
    let line = serde_json::to_string(&payload)
        .map_err(|e| SimError::Io { what: format!("serialize surface: {e}") })?;
    println!("{line}");
    Ok(())
}
