//! surface — standalone durable 2-D sparsity sweep.
//!
//! Sweeps one GEMM workload over the (BS x NBS) grid under the durable
//! execution layer and prints the resulting surface as one JSON line with
//! `secs_bits` (raw IEEE-754 bits per cell) and the total simulated cycle
//! count, so two runs can be compared for *bit* identity. This is the
//! binary the kill-and-resume integration test (and the CI smoke job)
//! drives: start it with `--checkpoint-dir`, SIGKILL it mid-sweep, rerun
//! with `--resume`, and the output must equal an uninterrupted run's.
//!
//! Usage: `surface [--config baseline|save2|save1] [--cores N] [--k K]
//! [--tiles T]` plus the uniform durable flags.

use save_bench::{run_main, BenchCli, SweepSession};
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_sim::surface::DurableSweep;
use save_sim::{ConfigKind, MachineConfig, SimError, Surface};
use serde::Serialize;
use std::process::ExitCode;

#[derive(Serialize)]
struct Out {
    a_levels: Vec<f64>,
    b_levels: Vec<f64>,
    /// `f64::to_bits` of each cell's seconds, row-major — bit-comparable.
    secs_bits: Vec<u64>,
    total_cycles: u64,
    resumed: usize,
}

fn main() -> ExitCode {
    run_main("surface", body)
}

fn body(cli: &BenchCli, session: &mut SweepSession) -> Result<(), SimError> {
    let get = |flag: &str| {
        cli.rest.iter().position(|a| a == flag).and_then(|i| cli.rest.get(i + 1)).cloned()
    };
    let num = |flag: &str, default: u64| -> Result<u64, SimError> {
        match get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| SimError::InvalidConfig {
                what: format!("{flag} takes a number, got {v:?}"),
            }),
        }
    };
    let kind = match get("--config").as_deref() {
        None | Some("save2") => ConfigKind::Save2Vpu,
        Some("save1") => ConfigKind::Save1Vpu,
        Some("baseline") => ConfigKind::Baseline,
        Some(other) => {
            return Err(SimError::InvalidConfig {
                what: format!("unknown config {other} (expected baseline|save2|save1)"),
            })
        }
    };
    let k_total = num("--k", 64)? as usize;
    let tiles = num("--tiles", 16)? as usize;
    let machine = MachineConfig { cores: num("--cores", 4)? as usize, ..Default::default() };
    let w = GemmWorkload::dense(
        "surface-cli",
        GemmKernelSpec {
            m_tiles: 4,
            n_vecs: 2,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        k_total,
        tiles,
    );
    let grid = cli.grid();

    // The session's own checkpoint (manifest + label journal) lives at the
    // root of --checkpoint-dir; the surface sweep journals its cells in a
    // subdirectory with its own manifest.
    let sub = cli.checkpoint_dir.as_ref().map(|d| d.join("sweep"));
    let out = Surface::sweep_durable(
        &w,
        kind,
        &machine,
        &grid,
        &grid,
        cli.threads_or_default(),
        &DurableSweep {
            name: "surface".to_string(),
            checkpoint_dir: sub.as_deref(),
            resume: cli.resume,
            policy: cli.policy(),
            supervisor: session.supervisor(),
        },
    )?;
    if out.cancelled {
        session.note_cancelled();
        return Ok(());
    }
    for f in out.report.failures {
        let label = f.label.unwrap_or_else(|| format!("cell {}", f.job));
        session.note_failure(&label, f.error);
    }
    let payload = Out {
        a_levels: out.surface.a_levels.clone(),
        b_levels: out.surface.b_levels.clone(),
        secs_bits: out.surface.secs.iter().map(|s| s.to_bits()).collect(),
        total_cycles: out.total_cycles,
        resumed: out.resumed,
    };
    let line = serde_json::to_string(&payload)
        .map_err(|e| SimError::Io { what: format!("serialize surface: {e}") })?;
    println!("{line}");
    Ok(())
}
