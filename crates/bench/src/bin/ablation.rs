//! Ablation studies for the design choices DESIGN.md calls out — beyond
//! the paper's own ablations (Figs 17-19), these sweep the structures SAVE
//! depends on:
//!
//! * reservation-station size — bounds the combination window (§III says
//!   the CW is capped by the 32 ISA registers at 24-28; a small RS caps it
//!   earlier);
//! * allocation width — the front-end headroom SAVE exploits (§I's
//!   5-wide-allocation vs 2-VPU observation);
//! * broadcast-cache size — the paper picks 32 entries to match the
//!   architectural register count (§IV-A);
//! * stream-prefetch depth — the memory substrate SAVE sits on;
//! * mixed-precision forwarding overlap (§V-B).

use save_bench::print_table;
use save_core::CoreConfig;
use save_kernels::{Phase, Precision};
use save_sim::runner::run_kernel_custom_cancel;
use save_sim::{MachineConfig, SimError};
use std::process::ExitCode;

fn main() -> ExitCode {
    save_bench::run_main("ablation", body)
}

fn body(
    _cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let machine = MachineConfig::default();
    let shape = save_kernels::shapes::conv_by_name("ResNet3_2").ok_or_else(|| {
        SimError::InvalidConfig { what: "ablation: ResNet3_2 missing from the shape table".into() }
    })?;
    let fwd = shape.workload(Phase::Forward, Precision::F32).with_sparsity(0.0, 0.6);
    let base_time = session.seconds("baseline fwd", |tok| {
        Ok(run_kernel_custom_cancel(&fwd, &CoreConfig::baseline(), &machine, 1, false, Some(tok))?
            .seconds)
    });

    // 1. RS size: the combination window is RS-bound until the 32-register
    // limit takes over.
    let mut rows = Vec::new();
    for rs in [24usize, 48, 64, 97, 128] {
        let cfg = CoreConfig { rs_entries: rs, ..CoreConfig::save_2vpu() };
        let Some(r) = session.run(&format!("rs={rs}"), |tok| {
            run_kernel_custom_cancel(&fwd, &cfg, &machine, 1, false, Some(tok))
        }) else {
            continue;
        };
        rows.push(vec![
            format!("{rs}"),
            format!("{:.2}x", base_time / r.seconds),
            format!("{:.1}", r.stats.mean_cw()),
        ]);
    }
    print_table(
        "Ablation: reservation-station size (ResNet3_2 fwd FP32, 60% NBS)",
        &["RS entries", "speedup", "mean CW"],
        &rows,
    );

    // 2. Allocation width.
    let mut rows = Vec::new();
    for width in [3usize, 4, 5, 6] {
        let cfg = CoreConfig { issue_width: width, commit_width: width, ..CoreConfig::save_2vpu() };
        let base = CoreConfig { issue_width: width, commit_width: width, ..CoreConfig::baseline() };
        let speedup = session.seconds(&format!("width={width}"), |tok| {
            let tb = run_kernel_custom_cancel(&fwd, &base, &machine, 1, false, Some(tok))?.seconds;
            let ts = run_kernel_custom_cancel(&fwd, &cfg, &machine, 1, false, Some(tok))?.seconds;
            Ok(tb / ts)
        });
        rows.push(vec![format!("{width}-wide"), format!("{speedup:.2}x")]);
    }
    print_table(
        "Ablation: allocation width (speedup vs same-width baseline)",
        &["front end", "speedup"],
        &rows,
    );

    // 3. Broadcast-cache entries, on the embedded-broadcast wgrad kernel.
    let wgrad = shape.workload(Phase::BackwardWeights, Precision::F32).with_sparsity(0.4, 0.4);
    let mut base_machine = machine;
    base_machine.mem.bcast = None;
    let tb = session.seconds("baseline wgrad", |tok| {
        Ok(run_kernel_custom_cancel(
            &wgrad, &CoreConfig::baseline(), &base_machine, 1, false, Some(tok),
        )?
        .seconds)
    });
    let mut rows = Vec::new();
    for entries in [4usize, 8, 16, 32, 64] {
        let mut m = machine;
        m.mem.bcast_entries = entries;
        let Some(r) = session.run(&format!("bcast={entries}"), |tok| {
            run_kernel_custom_cancel(&wgrad, &CoreConfig::save_2vpu(), &m, 1, false, Some(tok))
        }) else {
            continue;
        };
        let hit_rate = if r.stats.bcast_loads == 0 {
            0.0
        } else {
            r.stats.bcast_hits as f64 / r.stats.bcast_loads as f64
        };
        rows.push(vec![
            format!("{entries}"),
            format!("{:.2}x", tb / r.seconds),
            format!("{:.1}%", hit_rate * 100.0),
        ]);
    }
    print_table(
        "Ablation: B$ entries (ResNet3_2 wgrad FP32, embedded broadcast, 40%/40%)",
        &["B$ entries", "speedup", "B$ hit rate"],
        &rows,
    );

    // 4. Prefetch depth.
    let mut rows = Vec::new();
    for depth in [0u64, 8, 16, 64] {
        let mut m = machine;
        m.mem.prefetch_degree = depth;
        let Some((tbb, ts)) = session.run(&format!("prefetch={depth}"), |tok| {
            let tbb =
                run_kernel_custom_cancel(&fwd, &CoreConfig::baseline(), &m, 1, false, Some(tok))?
                    .seconds;
            let ts =
                run_kernel_custom_cancel(&fwd, &CoreConfig::save_2vpu(), &m, 1, false, Some(tok))?
                    .seconds;
            Ok((tbb, ts))
        }) else {
            continue;
        };
        rows.push(vec![
            format!("{depth}"),
            format!("{:.2}", tbb / base_time),
            format!("{:.2}x", tbb / ts),
        ]);
    }
    print_table(
        "Ablation: stream-prefetch depth (baseline time vs depth-64 baseline; SAVE speedup)",
        &["depth", "baseline slowdown", "SAVE speedup"],
        &rows,
    );

    // 5. MP partial-result forwarding overlap (§V-B).
    let mp_shape = save_kernels::shapes::conv_by_name("ResNet4_1a").ok_or_else(|| {
        SimError::InvalidConfig { what: "ablation: ResNet4_1a missing from the shape table".into() }
    })?;
    let mp = mp_shape.workload(Phase::BackwardInput, Precision::Mixed).with_sparsity(0.0, 0.6);
    let tb = session.seconds("baseline mp", |tok| {
        Ok(run_kernel_custom_cancel(&mp, &CoreConfig::baseline(), &machine, 1, false, Some(tok))?
            .seconds)
    });
    let mut rows = Vec::new();
    for overlap in [0u64, 1, 2, 3] {
        let cfg = CoreConfig { mp_forward_overlap: overlap, ..CoreConfig::save_1vpu() };
        let ts = session.seconds(&format!("overlap={overlap}"), |tok| {
            Ok(run_kernel_custom_cancel(&mp, &cfg, &machine, 1, false, Some(tok))?.seconds)
        });
        rows.push(vec![format!("{overlap} cycles"), format!("{:.2}x", tb / ts)]);
    }
    print_table(
        "Ablation: MP partial-result forwarding overlap (ResNet4_1a MP bwd-input, 1 VPU)",
        &["overlap", "speedup"],
        &rows,
    );
    Ok(())
}
