//! Fig 18 — load-balancing techniques for VPU lanes: vertical coalescing
//! (VC), rotate-vertical coalescing (RVC), lane-wise dependence (LWD),
//! their combination, and the impractical horizontal compression (HC,
//! +6 cycles latency), on the two backward-input kernels of pruned
//! ResNet-50 (the paper's only NBS-without-BS case), with one VPU.
//!
//! Paper landmarks: on ResNet3_2 (28 accumulators, non-broadcast register
//! reused 28x, effective CW ~ 1) RVC dominates VC+LWD; on ResNet5_1a
//! (21 accumulators, reuse 7, effective CW ~ 3) VC+LWD gains more than
//! RVC; RVC+LWD is best everywhere; HC wins slightly at medium sparsity but
//! loses at high sparsity where its extra latency bites.

use save_bench::print_table;
use save_core::{CoreConfig, SchedulerKind};
use save_kernels::{Phase, Precision};
use save_sim::runner::run_kernel_custom_cancel;
use save_sim::{MachineConfig, SimError};
use serde::Serialize;
use std::process::ExitCode;

#[derive(Serialize)]
// Fields are consumed via `Serialize` in the session JSON dump only.
#[allow(dead_code)]
struct Point {
    kernel: String,
    technique: String,
    nbs: f64,
    speedup: f64,
}

fn techniques() -> Vec<(&'static str, CoreConfig)> {
    let base = CoreConfig::save_1vpu();
    vec![
        ("VC", CoreConfig { rotate: false, lane_wise: false, ..base }),
        ("RVC", CoreConfig { rotate: true, lane_wise: false, ..base }),
        ("VC+LWD", CoreConfig { rotate: false, lane_wise: true, ..base }),
        ("RVC+LWD", CoreConfig { rotate: true, lane_wise: true, ..base }),
        (
            "HC",
            CoreConfig {
                scheduler: SchedulerKind::Horizontal,
                rotate: false,
                lane_wise: true,
                ..base
            },
        ),
    ]
}

fn main() -> ExitCode {
    save_bench::run_main("fig18", body)
}

fn body(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let grid = cli.grid();
    let machine = MachineConfig::default();
    let mut points = Vec::new();
    for name in ["ResNet3_2", "ResNet5_1a"] {
        let shape = save_kernels::shapes::conv_by_name(name).ok_or_else(|| {
            SimError::InvalidConfig { what: format!("fig18: {name} missing from the shape table") }
        })?;
        let w0 = shape.workload(Phase::BackwardInput, Precision::F32);
        let (m, n) = shape.blocking(Phase::BackwardInput);
        println!(
            "\nkernel {name} bwd-input: {} accumulators, register reuse {}, effective CW ~ {}",
            m * n,
            m,
            n
        );
        let mut rows = Vec::new();
        for (label, cfg) in techniques() {
            let mut row = vec![label.to_string()];
            for &nbs in &grid {
                let w = w0.clone().with_sparsity(0.0, nbs);
                let seed = (nbs * 100.0) as u64;
                let cell = format!("{name} {label} nbs={nbs:.1}");
                let speedup = session.seconds(&cell, |tok| {
                    let tb = run_kernel_custom_cancel(
                        &w, &CoreConfig::baseline(), &machine, seed, false, Some(tok),
                    )?
                    .seconds;
                    let ts =
                        run_kernel_custom_cancel(&w, &cfg, &machine, seed, false, Some(tok))?.seconds;
                    Ok(tb / ts)
                });
                row.push(format!("{speedup:.2}"));
                points.push(Point {
                    kernel: name.into(),
                    technique: label.into(),
                    nbs,
                    speedup,
                });
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["technique".into()];
        headers.extend(grid.iter().map(|b| format!("NBS {:.0}%", b * 100.0)));
        let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!("Fig 18: {name} FP32 bwd-input, 1 VPU, speedup over 2-VPU baseline"),
            &hrefs,
            &rows,
        );
    }
    save_bench::write_json("fig18", &points)
}
