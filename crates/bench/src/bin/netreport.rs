//! Per-layer network report: for one network and precision, the per-layer
//! inference sparsity and speedups under each SAVE operating point — the
//! layer-resolved view behind Fig 14's aggregates.
//!
//! Usage: `netreport [vgg16|resnet50|resnet50-pruned|gnmt] [--mp]`

use save_bench::print_table;
use save_kernels::{Phase, Precision};
use save_sim::runner::run_kernel_cancel;
use save_sim::{ConfigKind, MachineConfig, Network, SimError};
use save_sparsity::NetKind;
use std::process::ExitCode;

struct LayerRow {
    name: String,
    bs: f64,
    nbs: f64,
    tb: f64,
    t2: f64,
    t1: f64,
}

fn main() -> ExitCode {
    save_bench::run_main("netreport", body)
}

fn body(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let kind = match cli.rest.first().map(|s| s.as_str()) {
        Some("vgg16") => NetKind::Vgg16Dense,
        Some("resnet50") => NetKind::ResNet50Dense,
        Some("gnmt") => NetKind::GnmtPruned,
        _ => NetKind::ResNet50Pruned,
    };
    let precision =
        if cli.rest.iter().any(|a| a == "--mp") { Precision::Mixed } else { Precision::F32 };
    let machine = MachineConfig::default();
    let net = Network::build(kind);

    let mut layers = Vec::new();
    for (li, layer) in net.layers.iter().enumerate() {
        let p = net.inference_point(li);
        let w = layer.workload(Phase::Forward, precision);
        let scale = layer.flops() / w.flops();
        let w = w.with_sparsity(p.a, p.b);
        let Some((tb, t2, t1)) = session.run(layer.name(), |tok| {
            let seed = li as u64;
            let tb =
                run_kernel_cancel(&w, ConfigKind::Baseline, &machine, seed, false, Some(tok))?.seconds;
            let t2 =
                run_kernel_cancel(&w, ConfigKind::Save2Vpu, &machine, seed, false, Some(tok))?.seconds;
            let t1 =
                run_kernel_cancel(&w, ConfigKind::Save1Vpu, &machine, seed, false, Some(tok))?.seconds;
            Ok((tb * scale, t2 * scale, t1 * scale))
        }) else {
            continue;
        };
        layers.push(LayerRow { name: layer.name().to_string(), bs: p.a, nbs: p.b, tb, t2, t1 });
    }
    let total_b: f64 = layers.iter().map(|l| l.tb).sum();
    let total_2: f64 = layers.iter().map(|l| l.t2).sum();
    let total_1: f64 = layers.iter().map(|l| l.t1).sum();
    let total_d: f64 = layers.iter().map(|l| l.t2.min(l.t1)).sum();
    let rows: Vec<Vec<String>> = layers
        .iter()
        .map(|l| {
            vec![
                l.name.clone(),
                format!("{:.0}%", l.bs * 100.0),
                format!("{:.0}%", l.nbs * 100.0),
                format!("{:.2}x", l.tb / l.t2),
                format!("{:.2}x", l.tb / l.t1),
                format!("{:.2}x", l.tb / l.t2.min(l.t1)),
                format!("{:.1}%", l.tb / total_b * 100.0),
            ]
        })
        .collect();
    print_table(
        &format!("Per-layer inference report: {} ({precision})", kind.label()),
        &["layer", "BS", "NBS", "2 VPUs", "1 VPU", "dynamic", "time share"],
        &rows,
    );
    println!(
        "\nwhole network: 2 VPUs {:.2}x | 1 VPU {:.2}x | dynamic {:.2}x",
        total_b / total_2,
        total_b / total_1,
        total_b / total_d
    );
    Ok(())
}
