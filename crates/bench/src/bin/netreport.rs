//! Per-layer network report: for one network and precision, the per-layer
//! inference sparsity and speedups under each SAVE operating point — the
//! layer-resolved view behind Fig 14's aggregates.
//!
//! With `--mesh`, the heaviest layer additionally runs on the detailed
//! NUCA/mesh machine under the relaxed-sync engine and the uncore
//! contention report (per-link flit occupancy, per-slice MSHR conflicts,
//! DRAM queue depth — DESIGN.md §5i) is printed and saved as JSON.
//!
//! Usage: `netreport [vgg16|resnet50|resnet50-pruned|gnmt] [--mp]
//!                   [--mesh] [--cores N] [--quantum Q]`

use save_bench::print_table;
use save_kernels::{GemmWorkload, Phase, Precision};
use save_sim::runner::{run_kernel_cancel, run_kernel_full};
use save_sim::{
    ConfigKind, MachineConfig, MachineMode, MulticoreConfig, Network, SimError,
};
use save_sparsity::NetKind;
use serde::Serialize;
use std::process::ExitCode;

struct LayerRow {
    name: String,
    bs: f64,
    nbs: f64,
    tb: f64,
    t2: f64,
    t1: f64,
}

/// One operating point's mesh-contention measurement (the JSON surface).
#[derive(Serialize)]
struct MeshRecord {
    layer: String,
    kind: String,
    cores: usize,
    quantum: u64,
    seconds: f64,
    l3_hit_rate: f64,
    mshr_conflicts: u64,
    max_link_flits: u64,
    mean_link_flits: f64,
    hottest_links: Vec<(usize, usize, u64)>,
    dram_max_queue: u64,
    dram_mean_queue: f64,
}

/// Parses `--flag N` out of the free argument list.
fn flag_value(rest: &[String], flag: &str) -> Option<u64> {
    let i = rest.iter().position(|a| a == flag)?;
    rest.get(i + 1)?.parse().ok()
}

const DIR_NAMES: [&str; 4] = ["E", "W", "S", "N"];

fn main() -> ExitCode {
    save_bench::run_main("netreport", body)
}

/// Runs the network's heaviest layer on the detailed NUCA/mesh machine at
/// every operating point and surfaces the uncore contention counters.
fn mesh_report(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
    layer_name: &str,
    w: &GemmWorkload,
) -> Result<(), SimError> {
    let cores = flag_value(&cli.rest, "--cores").unwrap_or(28) as usize;
    let quantum = flag_value(&cli.rest, "--quantum").unwrap_or(1000);
    let machine = MachineConfig {
        cores,
        mode: MachineMode::Detailed,
        mc: MulticoreConfig { quantum, threads: 0 },
        ..Default::default()
    };
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for kind in ConfigKind::ALL {
        let Some(run) = session.run(&format!("mesh-{kind:?}"), |tok| {
            run_kernel_full(w, kind, &machine, 1, false, Some(tok))
        }) else {
            continue;
        };
        let u = &run.uncore;
        let l3_total = (u.l3_hits + u.l3_misses).max(1);
        let rec = MeshRecord {
            layer: layer_name.to_string(),
            kind: format!("{kind:?}"),
            cores,
            quantum,
            seconds: run.result.seconds,
            l3_hit_rate: u.l3_hits as f64 / l3_total as f64,
            mshr_conflicts: u.total_mshr_conflicts(),
            max_link_flits: u.max_link_flits,
            mean_link_flits: u.mean_link_flits,
            hottest_links: u.hottest_links(4),
            dram_max_queue: u.dram.max_queue_depth,
            dram_mean_queue: u.dram.queue_depth_sum as f64 / u.dram.queue_samples.max(1) as f64,
        };
        rows.push(vec![
            rec.kind.clone(),
            format!("{:.3e}", rec.seconds),
            format!("{:.1}%", rec.l3_hit_rate * 100.0),
            format!("{}", rec.mshr_conflicts),
            format!("{}", rec.max_link_flits),
            format!("{:.1}", rec.mean_link_flits),
            format!("{}", rec.dram_max_queue),
            format!("{:.2}", rec.dram_mean_queue),
            rec.hottest_links
                .iter()
                .map(|&(tile, dir, f)| format!("t{tile}{}:{f}", DIR_NAMES[dir]))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
        records.push(rec);
    }
    print_table(
        &format!("Mesh contention: {layer_name} ({cores} cores, quantum {quantum})"),
        &[
            "config",
            "seconds",
            "L3 hit",
            "MSHR conf",
            "max flits",
            "mean flits",
            "DRAM maxQ",
            "DRAM meanQ",
            "hottest links",
        ],
        &rows,
    );
    save_bench::write_json("netreport_mesh", &records)?;
    Ok(())
}

fn body(
    cli: &save_bench::BenchCli,
    session: &mut save_bench::SweepSession,
) -> Result<(), SimError> {
    let kind = match cli.rest.first().map(|s| s.as_str()) {
        Some("vgg16") => NetKind::Vgg16Dense,
        Some("resnet50") => NetKind::ResNet50Dense,
        Some("gnmt") => NetKind::GnmtPruned,
        _ => NetKind::ResNet50Pruned,
    };
    let precision =
        if cli.rest.iter().any(|a| a == "--mp") { Precision::Mixed } else { Precision::F32 };
    let machine = MachineConfig::default();
    let net = Network::build(kind);

    let mut layers = Vec::new();
    let mut heaviest: Option<(f64, String, GemmWorkload)> = None;
    for (li, layer) in net.layers.iter().enumerate() {
        let p = net.inference_point(li);
        let w = layer.workload(Phase::Forward, precision);
        let scale = layer.flops() / w.flops();
        let w = w.with_sparsity(p.a, p.b);
        let Some((tb, t2, t1)) = session.run(layer.name(), |tok| {
            let seed = li as u64;
            let tb =
                run_kernel_cancel(&w, ConfigKind::Baseline, &machine, seed, false, Some(tok))?.seconds;
            let t2 =
                run_kernel_cancel(&w, ConfigKind::Save2Vpu, &machine, seed, false, Some(tok))?.seconds;
            let t1 =
                run_kernel_cancel(&w, ConfigKind::Save1Vpu, &machine, seed, false, Some(tok))?.seconds;
            Ok((tb * scale, t2 * scale, t1 * scale))
        }) else {
            continue;
        };
        if heaviest.as_ref().is_none_or(|(t, _, _)| tb > *t) {
            heaviest = Some((tb, layer.name().to_string(), w.clone()));
        }
        layers.push(LayerRow { name: layer.name().to_string(), bs: p.a, nbs: p.b, tb, t2, t1 });
    }
    let total_b: f64 = layers.iter().map(|l| l.tb).sum();
    let total_2: f64 = layers.iter().map(|l| l.t2).sum();
    let total_1: f64 = layers.iter().map(|l| l.t1).sum();
    let total_d: f64 = layers.iter().map(|l| l.t2.min(l.t1)).sum();
    let rows: Vec<Vec<String>> = layers
        .iter()
        .map(|l| {
            vec![
                l.name.clone(),
                format!("{:.0}%", l.bs * 100.0),
                format!("{:.0}%", l.nbs * 100.0),
                format!("{:.2}x", l.tb / l.t2),
                format!("{:.2}x", l.tb / l.t1),
                format!("{:.2}x", l.tb / l.t2.min(l.t1)),
                format!("{:.1}%", l.tb / total_b * 100.0),
            ]
        })
        .collect();
    print_table(
        &format!("Per-layer inference report: {} ({precision})", kind.label()),
        &["layer", "BS", "NBS", "2 VPUs", "1 VPU", "dynamic", "time share"],
        &rows,
    );
    println!(
        "\nwhole network: 2 VPUs {:.2}x | 1 VPU {:.2}x | dynamic {:.2}x",
        total_b / total_2,
        total_b / total_1,
        total_b / total_d
    );
    if cli.rest.iter().any(|a| a == "--mesh") {
        if let Some((_, name, w)) = &heaviest {
            println!();
            mesh_report(cli, session, name, w)?;
        }
    }
    Ok(())
}
