//! Property-based tests for the memory substrate: model-checked LRU,
//! capacity invariants, DRAM queueing, mesh geometry and B$ consistency.

use proptest::prelude::*;
use save_mem::{BcastAccess, BcastDesign, BroadcastCache, Cache, CacheConfig, Dram, DramConfig, Mesh, Replacement, Tlb};
use std::collections::VecDeque;

/// Reference LRU model: per-set recency queues.
struct LruModel {
    sets: usize,
    ways: usize,
    queues: Vec<VecDeque<u64>>,
}

impl LruModel {
    fn new(sets: usize, ways: usize) -> Self {
        LruModel { sets, ways, queues: vec![VecDeque::new(); sets] }
    }
    fn set_of(&self, line: u64) -> usize {
        (line % self.sets as u64) as usize
    }
    fn access(&mut self, line: u64) -> bool {
        let s = self.set_of(line);
        let q = &mut self.queues[s];
        if let Some(pos) = q.iter().position(|&l| l == line) {
            q.remove(pos);
            q.push_back(line);
            true
        } else {
            false
        }
    }
    fn fill(&mut self, line: u64) -> Option<u64> {
        let s = self.set_of(line);
        if self.access(line) {
            return None;
        }
        let ways = self.ways;
        let q = &mut self.queues[s];
        let evicted = if q.len() == ways { q.pop_front() } else { None };
        q.push_back(line);
        evicted
    }
}

#[derive(Clone, Debug)]
enum Op {
    Access(u64),
    Fill(u64),
    Invalidate(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64).prop_map(Op::Access),
        (0u64..64).prop_map(Op::Fill),
        (0u64..64).prop_map(Op::Invalidate),
    ]
}

proptest! {
    /// The LRU cache matches a reference recency-queue model exactly.
    #[test]
    fn lru_cache_matches_model(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let cfg = CacheConfig { capacity_bytes: 16 * 64, ways: 4, replacement: Replacement::Lru };
        let mut cache = Cache::new(cfg);
        let mut model = LruModel::new(cfg.sets(), cfg.ways);
        for op in ops {
            match op {
                Op::Access(l) => {
                    prop_assert_eq!(cache.access(l), model.access(l), "access {}", l);
                }
                Op::Fill(l) => {
                    prop_assert_eq!(cache.fill(l), model.fill(l), "fill {}", l);
                }
                Op::Invalidate(l) => {
                    let present = model.access(l);
                    if present {
                        let s = model.set_of(l);
                        let pos = model.queues[s].iter().position(|&x| x == l).unwrap();
                        model.queues[s].remove(pos);
                    }
                    prop_assert_eq!(cache.invalidate(l), present);
                }
            }
        }
    }

    /// Any replacement policy keeps residency within capacity, and a line
    /// just filled is resident.
    #[test]
    fn capacity_never_exceeded(
        lines in prop::collection::vec(0u64..1000, 1..400),
        srrip in any::<bool>()
    ) {
        let cfg = CacheConfig {
            capacity_bytes: 8 * 64,
            ways: 2,
            replacement: if srrip { Replacement::Srrip } else { Replacement::Lru },
        };
        let mut cache = Cache::new(cfg);
        for l in lines {
            cache.fill(l);
            prop_assert!(cache.contains(l));
            prop_assert!(cache.resident_lines() <= 8);
        }
    }

    /// DRAM: completion is never before `now + latency`, and per-channel
    /// completions are non-decreasing.
    #[test]
    fn dram_completion_ordering(reqs in prop::collection::vec((0u64..60, 0.0f64..1000.0), 1..100)) {
        let mut d = Dram::new(DramConfig::default());
        let mut last_per_channel = [0.0f64; 6];
        let mut reqs = reqs;
        // Issue in time order per the model's contract.
        reqs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for (line, now) in reqs {
            let done = d.access_line(line, now, false);
            prop_assert!(done >= now + 50.0 - 1e-9);
            let ch = (line % 6) as usize;
            prop_assert!(done >= last_per_channel[ch] - 1e-9);
            last_per_channel[ch] = done;
        }
    }

    /// Mesh hop counts are a metric: symmetric, zero on the diagonal, and
    /// satisfy the triangle inequality.
    #[test]
    fn mesh_is_a_metric(cores in 2usize..40, a in 0usize..40, b in 0usize..40, c in 0usize..40) {
        let m = Mesh::for_tiles(cores, 2, 1.7);
        let n = m.tiles();
        let (a, b, c) = (a % n, b % n, c % n);
        prop_assert_eq!(m.hops(a, a), 0);
        prop_assert_eq!(m.hops(a, b), m.hops(b, a));
        prop_assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c));
    }

    /// The TLB charges the walk penalty exactly on first touch of a page
    /// within its capacity window.
    #[test]
    fn tlb_within_capacity_never_rewalks(pages in prop::collection::vec(0u64..8, 1..100)) {
        let mut t = Tlb::new(16, 4096, 20.0);
        let mut seen = std::collections::HashSet::new();
        for p in pages {
            let lat = t.translate(p * 4096);
            // 8 distinct pages < 16 entries: once walked, never again.
            if seen.contains(&p) {
                prop_assert_eq!(lat, 0.0);
            } else {
                prop_assert_eq!(lat, 20.0);
                seen.insert(p);
            }
        }
    }

    /// B$ `peek` is a pure function of state: it always predicts what
    /// `probe` returns, and a fill makes subsequent probes of that line hit.
    #[test]
    fn bcast_peek_predicts_probe(
        addrs in prop::collection::vec(0u64..(64 * 64), 1..200),
        masks in prop::collection::vec(any::<u16>(), 1..200),
        data_design in any::<bool>()
    ) {
        let design = if data_design { BcastDesign::Data } else { BcastDesign::Masks };
        let mut b = BroadcastCache::new(32, design);
        for (addr, mask) in addrs.iter().zip(masks.iter().cycle()) {
            let addr = addr / 4 * 4;
            let peeked = b.peek(addr);
            let probed = b.probe(addr, *mask);
            prop_assert_eq!(peeked, probed);
            if probed == BcastAccess::Miss {
                b.fill(addr, *mask);
                prop_assert_ne!(b.peek(addr), BcastAccess::Miss);
            }
        }
    }
}
