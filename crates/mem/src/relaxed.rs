//! Core-private uncore view for quantum-based relaxed synchronization.
//!
//! The relaxed-sync multicore engine (DESIGN.md §5i) runs each core for a
//! quantum of cycles against a [`QuantumView`] instead of the shared
//! [`Uncore`]. The view predicts access latencies from quantum-start state
//! and logs every request; at the barrier the engine replays all logs into
//! the real uncore in a canonical order ([`Uncore::reconcile`]), so shared
//! state evolves identically no matter how many host threads ran the
//! quantum.
//!
//! Why prediction is nearly exact here: cores never share lines (the uncore
//! salts every line address with the core id), so the only cross-core
//! effects are L3 slice capacity/recency pressure, DRAM channel queueing
//! and NoC hop latency. Within one quantum:
//!
//! * **L3 hit/miss** — predicted by a read-only probe of the quantum-start
//!   L3 plus the set of lines this core itself filled during the quantum.
//!   Error appears only when *another* core's quantum evicts one of our
//!   lines mid-quantum, which the barrier replay repairs for all later
//!   quanta.
//! * **DRAM queueing** — predicted against a private clone of the channel
//!   `next_free` state (a handful of f64s). Cross-core queueing pressure
//!   from the same quantum is invisible until the next barrier; that
//!   under-prediction is the classic relaxed-sync timing error, bounded by
//!   the quantum length.
//! * **NoC latency** — purely topological, exact.

use crate::dram::Dram;
use crate::hierarchy::{Uncore, UncoreAccess, UncoreReq};
use std::collections::HashSet;

/// A core-private, quantum-scoped view of the shared uncore.
///
/// Implements [`UncoreAccess`], so a core's cycle loop is byte-for-byte the
/// same code under lockstep and relaxed execution.
#[derive(Debug)]
pub struct QuantumView<'a> {
    shared: &'a Uncore,
    /// Private clone of DRAM channel state for queue-delay prediction.
    dram: Dram,
    /// Salted lines this core filled (or warmed) during the quantum.
    fills: HashSet<u64>,
    /// Every request issued this quantum, in issue order.
    log: Vec<UncoreReq>,
    seq: u32,
}

impl<'a> QuantumView<'a> {
    /// Opens a view over the shared uncore's quantum-start state.
    pub fn new(shared: &'a Uncore) -> Self {
        QuantumView {
            dram: shared.dram_snapshot(),
            shared,
            fills: HashSet::new(),
            log: Vec::new(),
            seq: 0,
        }
    }

    /// Takes the request log accumulated so far (leaves the view usable,
    /// though a view is normally dropped right after).
    pub fn take_log(&mut self) -> Vec<UncoreReq> {
        std::mem::take(&mut self.log)
    }

    /// Number of requests logged so far.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether no request has been logged yet.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }
}

impl UncoreAccess for QuantumView<'_> {
    fn access(&mut self, core: usize, line: u64, start_ns: f64, prefetch: bool) -> f64 {
        self.log.push(UncoreReq { core, seq: self.seq, line, start_ns, prefetch });
        self.seq += 1;
        let noc = self.shared.noc_latency_ns(core, line);
        let tagged = Uncore::salt(core, line);
        let at_slice = start_ns + noc;
        let l3_ns = self.shared.l3_latency_ns();
        if self.fills.contains(&tagged) || self.shared.contains(core, line) {
            at_slice + l3_ns + noc
        } else {
            let done = self.dram.access_line(tagged, at_slice + l3_ns, prefetch);
            self.fills.insert(tagged);
            done + noc
        }
    }

    fn warm_line(&mut self, core: usize, line: u64) {
        // Warm-up runs against the real uncore before the first quantum
        // (see the relaxed engine); tolerate a mid-run warm by treating the
        // line as locally filled.
        self.fills.insert(Uncore::salt(core, line));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::MemConfig;

    fn cfg() -> MemConfig {
        MemConfig { prefetch_degree: 0, bcast: None, ..MemConfig::default() }
    }

    #[test]
    fn view_predicts_and_reconcile_matches_serial() {
        // Issue the same request stream (a) directly against an uncore and
        // (b) through a view + reconcile; final shared state must agree.
        let c = cfg();
        let mut direct = Uncore::new(&c, 2);
        let mut shared = Uncore::new(&c, 2);
        let reqs: Vec<(usize, u64, f64)> =
            (0..64).map(|i| ((i % 2) as usize, 1000 + i / 2, i as f64 * 10.0)).collect();
        for &(core, line, t) in &reqs {
            direct.access(core, line, t, false);
        }
        let mut log = Vec::new();
        {
            let mut v0 = QuantumView::new(&shared);
            let mut v1 = QuantumView::new(&shared);
            for &(core, line, t) in &reqs {
                let v = if core == 0 { &mut v0 } else { &mut v1 };
                v.access(core, line, t, false);
            }
            log.extend(v0.take_log());
            log.extend(v1.take_log());
        }
        shared.reconcile(&mut log);
        assert!(log.is_empty());
        assert_eq!(shared.l3_stats(), direct.l3_stats());
        assert_eq!(shared.dram_stats().demand_fills, direct.dram_stats().demand_fills);
        for &(core, line, _) in &reqs {
            assert_eq!(shared.contains(core, line), direct.contains(core, line));
        }
    }

    #[test]
    fn view_hits_after_own_fill() {
        let c = cfg();
        let shared = Uncore::new(&c, 1);
        let mut v = QuantumView::new(&shared);
        let cold = v.access(0, 7, 0.0, false);
        let warm = v.access(0, 7, 1000.0, false);
        assert!(cold - 0.0 > warm - 1000.0, "second access must be an L3 hit");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn reconcile_order_is_canonical() {
        // Two interleavings of the same logs must produce identical state.
        let c = cfg();
        let mut a = Uncore::new(&c, 2);
        let mut b = Uncore::new(&c, 2);
        let mk = |core: usize, seq: u32, line: u64, t: f64| UncoreReq {
            core,
            seq,
            line,
            start_ns: t,
            prefetch: false,
        };
        let mut fwd = vec![mk(0, 0, 1, 0.0), mk(1, 0, 2, 0.0), mk(0, 1, 3, 5.0)];
        let mut rev: Vec<_> = fwd.iter().rev().copied().collect();
        a.reconcile(&mut fwd);
        b.reconcile(&mut rev);
        assert_eq!(a.l3_stats(), b.l3_stats());
        assert_eq!(a.dram_stats().demand_queue_ns, b.dram_stats().demand_queue_ns);
    }
}
