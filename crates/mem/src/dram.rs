//! DRAM bandwidth/latency model.
//!
//! Table I: 119.2 GB/s peak bandwidth over 6 channels at 50 ns idle latency.
//! Each channel serializes line transfers: a 64-byte fill occupies its
//! channel for `64 / (BW / channels)` ns, and requests queue behind the
//! channel's next-free time. This token-bucket-per-channel model captures
//! exactly what the paper needs — kernels become memory-bound when SAVE's
//! compute reduction pushes demand past the bandwidth roof (§VII-A, GNMT).

use serde::{Deserialize, Serialize};

/// DRAM configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Aggregate peak bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Number of independent channels (line-interleaved).
    pub channels: usize,
    /// Idle (unloaded) access latency in ns.
    pub latency_ns: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig { bandwidth_gbps: 119.2, channels: 6, latency_ns: 50.0 }
    }
}

/// Counters for DRAM traffic.
#[derive(Clone, Copy, Default, Debug, Serialize, Deserialize)]
pub struct DramStats {
    /// Demand line fills served.
    pub demand_fills: u64,
    /// Prefetch line fills served.
    pub prefetch_fills: u64,
    /// Total queueing delay observed by demand fills, in ns.
    pub demand_queue_ns: f64,
    /// Deepest per-channel queue (in whole line-transfers waiting ahead of a
    /// request at its arrival) observed so far — the many-core contention
    /// signal that is invisible at small core counts.
    #[serde(default)]
    pub max_queue_depth: u64,
    /// Sum of per-request queue depths at arrival (demand + prefetch), for
    /// a mean-depth report alongside the max.
    #[serde(default)]
    pub queue_depth_sum: u64,
    /// Requests sampled into `queue_depth_sum`.
    #[serde(default)]
    pub queue_samples: u64,
}

/// The DRAM model.
///
/// ```
/// use save_mem::{Dram, DramConfig};
/// let mut d = Dram::new(DramConfig::default());
/// let t = d.access_line(0, 0.0, false);
/// assert!(t >= 50.0); // at least the idle latency
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Per-channel next-free time in ns.
    next_free: Vec<f64>,
    /// Service time of one 64-byte line on one channel, in ns.
    line_service_ns: f64,
    stats: DramStats,
}

impl Dram {
    /// Creates an idle DRAM.
    ///
    /// # Panics
    /// Panics if the configuration has zero channels or non-positive
    /// bandwidth.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.channels > 0 && cfg.bandwidth_gbps > 0.0, "invalid DRAM config");
        let per_channel_gbps = cfg.bandwidth_gbps / cfg.channels as f64;
        // GB/s == bytes/ns.
        let line_service_ns = crate::LINE_BYTES as f64 / per_channel_gbps;
        Dram { cfg, next_free: vec![0.0; cfg.channels], line_service_ns, stats: DramStats::default() }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Traffic counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Requests the line containing `line_addr` at time `now_ns`; returns
    /// the completion time in ns. `prefetch` only affects accounting.
    pub fn access_line(&mut self, line_addr: u64, now_ns: f64, prefetch: bool) -> f64 {
        let ch = (line_addr % self.cfg.channels as u64) as usize;
        let start = self.next_free[ch].max(now_ns);
        // Queue depth at arrival: whole line-transfers already committed to
        // this channel that the new request waits behind.
        let depth = ((self.next_free[ch] - now_ns).max(0.0) / self.line_service_ns) as u64;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth);
        self.stats.queue_depth_sum += depth;
        self.stats.queue_samples += 1;
        self.next_free[ch] = start + self.line_service_ns;
        let done = start + self.cfg.latency_ns;
        if prefetch {
            self.stats.prefetch_fills += 1;
        } else {
            self.stats.demand_fills += 1;
            self.stats.demand_queue_ns += start - now_ns;
        }
        done
    }

    /// Resets queue state and counters (between kernel runs).
    pub fn reset(&mut self) {
        self.next_free.iter_mut().for_each(|t| *t = 0.0);
        self.stats = DramStats::default();
    }

    /// Scales effective per-request bandwidth by `1/share` — used by the
    /// symmetric machine mode where one simulated core stands for `share`
    /// identical cores contending for the same channels.
    pub fn set_bandwidth_share(&mut self, share: usize) {
        assert!(share > 0, "share must be positive");
        let per_channel_gbps = self.cfg.bandwidth_gbps / self.cfg.channels as f64 / share as f64;
        self.line_service_ns = crate::LINE_BYTES as f64 / per_channel_gbps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency() {
        let mut d = Dram::new(DramConfig::default());
        assert_eq!(d.access_line(0, 100.0, false), 150.0);
    }

    #[test]
    fn same_channel_queues() {
        let mut d = Dram::new(DramConfig { bandwidth_gbps: 6.0, channels: 6, latency_ns: 50.0 });
        // 1 GB/s per channel -> 64 ns per line.
        let t1 = d.access_line(0, 0.0, false);
        let t2 = d.access_line(6, 0.0, false); // same channel (6 % 6 == 0)
        assert_eq!(t1, 50.0);
        assert_eq!(t2, 114.0); // queued 64 ns behind the first
    }

    #[test]
    fn different_channels_do_not_queue() {
        let mut d = Dram::new(DramConfig { bandwidth_gbps: 6.0, channels: 6, latency_ns: 50.0 });
        let t1 = d.access_line(0, 0.0, false);
        let t2 = d.access_line(1, 0.0, false);
        assert_eq!(t1, t2);
    }

    #[test]
    fn bandwidth_share_slows_service() {
        let mut d = Dram::new(DramConfig { bandwidth_gbps: 6.0, channels: 6, latency_ns: 0.0 });
        d.set_bandwidth_share(4);
        d.access_line(0, 0.0, false);
        let t2 = d.access_line(6, 0.0, false);
        assert_eq!(t2, 256.0); // 64 ns * 4
    }

    #[test]
    fn queue_depth_tracks_backlog() {
        let mut d = Dram::new(DramConfig { bandwidth_gbps: 6.0, channels: 6, latency_ns: 50.0 });
        // 64 ns per line per channel; three back-to-back requests to channel
        // 0 arrive at t=0 with 0, 1 and 2 transfers already queued.
        for _ in 0..3 {
            d.access_line(0, 0.0, false);
        }
        let s = d.stats();
        assert_eq!(s.max_queue_depth, 2);
        assert_eq!(s.queue_depth_sum, 3); // 0 + 1 + 2
        assert_eq!(s.queue_samples, 3);
    }

    #[test]
    fn stats_split_demand_and_prefetch() {
        let mut d = Dram::new(DramConfig::default());
        d.access_line(0, 0.0, false);
        d.access_line(1, 0.0, true);
        assert_eq!(d.stats().demand_fills, 1);
        assert_eq!(d.stats().prefetch_fills, 1);
    }

    #[test]
    fn sustained_bandwidth_matches_config() {
        // Stream 10_000 lines as fast as possible; completion time must
        // approach lines * 64B / BW.
        let mut d = Dram::new(DramConfig::default());
        let mut last = 0.0f64;
        for l in 0..10_000u64 {
            last = last.max(d.access_line(l, 0.0, false));
        }
        let ideal_ns = 10_000.0 * 64.0 / 119.2;
        assert!(last >= ideal_ns * 0.95 && last <= ideal_ns * 1.10 + 50.0, "last={last} ideal={ideal_ns}");
    }
}
