//! 2-D mesh network-on-chip with XY (dimension-ordered) routing.
//!
//! Table I: "2D-mesh, XY routing, 2-cycle hop". The mesh connects cores to
//! the NUCA L3 slices (one slice per core tile) and to the memory
//! controllers. Hops are charged in uncore-reference nanoseconds.

use serde::{Deserialize, Serialize};

/// A `cols x rows` mesh of tiles; tile *i* sits at `(i % cols, i / cols)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mesh {
    /// Number of tile columns.
    pub cols: usize,
    /// Number of tile rows.
    pub rows: usize,
    /// Per-hop latency in uncore cycles.
    pub hop_cycles: u64,
    /// Uncore reference frequency in GHz used to express hop latency in ns.
    pub uncore_ghz: f64,
}

impl Mesh {
    /// Builds a mesh holding at least `tiles` tiles, as square as possible.
    pub fn for_tiles(tiles: usize, hop_cycles: u64, uncore_ghz: f64) -> Self {
        let cols = (tiles as f64).sqrt().ceil() as usize;
        let rows = tiles.div_ceil(cols);
        Mesh { cols, rows, hop_cycles, uncore_ghz }
    }

    /// Number of tiles in the mesh.
    pub fn tiles(&self) -> usize {
        self.cols * self.rows
    }

    /// Manhattan hop count between two tiles under XY routing.
    ///
    /// # Panics
    /// Panics if either tile index is out of range.
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        assert!(from < self.tiles() && to < self.tiles(), "tile out of range");
        let (fx, fy) = (from % self.cols, from / self.cols);
        let (tx, ty) = (to % self.cols, to / self.cols);
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
    }

    /// One-way latency between two tiles in nanoseconds.
    pub fn latency_ns(&self, from: usize, to: usize) -> f64 {
        self.hops(from, to) as f64 * self.hop_cycles as f64 / self.uncore_ghz
    }

    /// Mean one-way latency from a tile to a uniformly random tile, used by
    /// the symmetric (fast) machine mode for NUCA L3 accesses.
    pub fn mean_latency_ns(&self, from: usize) -> f64 {
        let n = self.tiles();
        let total: u64 = (0..n).map(|t| self.hops(from, t)).sum();
        total as f64 / n as f64 * self.hop_cycles as f64 / self.uncore_ghz
    }

    /// Number of directed-link slots: four outgoing directions per tile
    /// (east, west, south, north), indexed by [`Mesh::link_id`]. Edge tiles
    /// simply never use their outward-facing slots.
    pub fn num_links(&self) -> usize {
        self.tiles() * 4
    }

    /// The directed-link slot leaving `tile` in direction `dir`
    /// (0 = east/+x, 1 = west/-x, 2 = south/+y, 3 = north/-y).
    pub fn link_id(&self, tile: usize, dir: usize) -> usize {
        tile * 4 + dir
    }

    /// Decomposes a link id back into `(tile, dir)` — the inverse of
    /// [`Mesh::link_id`], for reporting.
    pub fn link_of(&self, id: usize) -> (usize, usize) {
        (id / 4, id % 4)
    }

    /// Visits the directed link ids a flit traverses from `from` to `to`
    /// under XY routing (all X hops, then all Y hops) — one call per hop.
    ///
    /// # Panics
    /// Panics if either tile index is out of range.
    pub fn xy_route_links(&self, from: usize, to: usize, mut visit: impl FnMut(usize)) {
        assert!(from < self.tiles() && to < self.tiles(), "tile out of range");
        let (mut x, mut y) = (from % self.cols, from / self.cols);
        let (tx, ty) = (to % self.cols, to / self.cols);
        while x != tx {
            let dir = if tx > x { 0 } else { 1 };
            visit(self.link_id(y * self.cols + x, dir));
            if tx > x {
                x += 1;
            } else {
                x -= 1;
            }
        }
        while y != ty {
            let dir = if ty > y { 2 } else { 3 };
            visit(self.link_id(y * self.cols + x, dir));
            if ty > y {
                y += 1;
            } else {
                y -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_layout_for_28_tiles() {
        let m = Mesh::for_tiles(28, 2, 1.7);
        assert!(m.tiles() >= 28);
        assert_eq!(m.cols, 6);
        assert_eq!(m.rows, 5);
    }

    #[test]
    fn xy_hop_count() {
        let m = Mesh { cols: 4, rows: 4, hop_cycles: 2, uncore_ghz: 1.0 };
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 3), 3); // same row
        assert_eq!(m.hops(0, 15), 6); // (0,0) -> (3,3)
        assert_eq!(m.hops(5, 10), 2); // (1,1) -> (2,2)
    }

    #[test]
    fn hops_symmetric() {
        let m = Mesh::for_tiles(28, 2, 1.7);
        for a in 0..28 {
            for b in 0..28 {
                assert_eq!(m.hops(a, b), m.hops(b, a));
            }
        }
    }

    #[test]
    fn latency_scales_with_hops() {
        let m = Mesh { cols: 4, rows: 1, hop_cycles: 2, uncore_ghz: 2.0 };
        assert_eq!(m.latency_ns(0, 2), 2.0); // 2 hops * 2 cycles / 2 GHz
    }

    #[test]
    fn xy_route_links_match_hop_count_and_direction() {
        let m = Mesh { cols: 4, rows: 4, hop_cycles: 2, uncore_ghz: 1.0 };
        let mut links = Vec::new();
        m.xy_route_links(5, 10, |l| links.push(l)); // (1,1) -> (2,2): east then south
        assert_eq!(links.len() as u64, m.hops(5, 10));
        assert_eq!(links, vec![m.link_id(5, 0), m.link_id(6, 2)]);
        let mut none = Vec::new();
        m.xy_route_links(7, 7, |l| none.push(l));
        assert!(none.is_empty());
        // Reverse route uses the opposite directions.
        let mut back = Vec::new();
        m.xy_route_links(10, 5, |l| back.push(l));
        assert_eq!(back, vec![m.link_id(10, 1), m.link_id(9, 3)]);
    }

    #[test]
    fn mean_latency_positive_and_bounded() {
        let m = Mesh::for_tiles(28, 2, 1.7);
        let mean = m.mean_latency_ns(0);
        let max = m.latency_ns(0, m.tiles() - 1);
        assert!(mean > 0.0 && mean < max);
    }
}
