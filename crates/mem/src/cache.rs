//! Generic set-associative cache with pluggable replacement.
//!
//! Timing-only: the cache tracks tags and replacement state; data values live
//! in the functional `save_isa::Memory` arena. Table I uses LRU for L1/L2 and
//! SRRIP for the L3.

use serde::{Deserialize, Serialize};

/// Replacement policy selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Replacement {
    /// Least-recently-used (exact, per-set recency stack).
    Lru,
    /// Static re-reference interval prediction with 2-bit RRPVs
    /// (insert at RRPV 2, promote to 0 on hit, victimize RRPV 3).
    Srrip,
}

/// Geometry and policy of one cache.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Number of sets implied by capacity, ways and the 64-byte line size.
    ///
    /// # Panics
    /// Panics if the geometry does not yield at least one set.
    pub fn sets(&self) -> usize {
        let lines = self.capacity_bytes / crate::LINE_BYTES;
        let sets = lines as usize / self.ways;
        assert!(sets > 0, "cache too small for its associativity");
        sets
    }
}

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Lines evicted to make room for fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Debug)]
struct Way {
    tag: u64,
    valid: bool,
    /// LRU timestamp or SRRIP RRPV depending on policy.
    state: u64,
}

/// A set-associative, tag-only cache.
///
/// ```
/// use save_mem::{Cache, CacheConfig, Replacement};
/// let mut c = Cache::new(CacheConfig {
///     capacity_bytes: 4096,
///     ways: 4,
///     replacement: Replacement::Lru,
/// });
/// assert!(!c.access(0));     // cold miss
/// c.fill(0);
/// assert!(c.access(0));      // now hits
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    ways: Vec<Way>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets,
            ways: vec![Way { tag: 0, valid: false, state: 0 }; sets * cfg.ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets as u64) as usize
    }

    fn set_slice(&mut self, set: usize) -> &mut [Way] {
        let w = self.cfg.ways;
        &mut self.ways[set * w..(set + 1) * w]
    }

    /// Probes for `line` (a *line* address, not a byte address), updating
    /// replacement state and counters. Returns `true` on hit.
    pub fn access(&mut self, line: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let policy = self.cfg.replacement;
        let ways = self.set_slice(set);
        for w in ways.iter_mut() {
            if w.valid && w.tag == line {
                w.state = match policy {
                    Replacement::Lru => tick,
                    Replacement::Srrip => 0,
                };
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Probes for `line` without perturbing replacement state or counters.
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let w = self.cfg.ways;
        self.ways[set * w..(set + 1) * w].iter().any(|x| x.valid && x.tag == line)
    }

    /// Installs `line`, evicting a victim if the set is full. Returns the
    /// evicted line address, if any. Filling a line that is already present
    /// refreshes it and evicts nothing.
    pub fn fill(&mut self, line: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let policy = self.cfg.replacement;
        let ways = self.set_slice(set);
        // Already present: refresh.
        for w in ways.iter_mut() {
            if w.valid && w.tag == line {
                w.state = match policy {
                    Replacement::Lru => tick,
                    Replacement::Srrip => 0,
                };
                return None;
            }
        }
        // Free way?
        if let Some(w) = ways.iter_mut().find(|w| !w.valid) {
            *w = Way {
                tag: line,
                valid: true,
                state: match policy {
                    Replacement::Lru => tick,
                    Replacement::Srrip => 2,
                },
            };
            return None;
        }
        // Victimize.
        let victim_idx = match policy {
            Replacement::Lru => {
                let mut best = 0;
                for (i, w) in ways.iter().enumerate() {
                    if w.state < ways[best].state {
                        best = i;
                    }
                }
                best
            }
            Replacement::Srrip => loop {
                if let Some((i, _)) = ways.iter().enumerate().find(|(_, w)| w.state >= 3) {
                    break i;
                }
                for w in ways.iter_mut() {
                    w.state += 1;
                }
            },
        };
        let evicted = ways[victim_idx].tag;
        ways[victim_idx] = Way {
            tag: line,
            valid: true,
            state: match policy {
                Replacement::Lru => tick,
                Replacement::Srrip => 2,
            },
        };
        self.stats.evictions += 1;
        Some(evicted)
    }

    /// Removes `line` if present (back-invalidation from an inclusive outer
    /// level). Returns `true` if the line was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let w = self.cfg.ways;
        for way in &mut self.ways[set * w..(set + 1) * w] {
            if way.valid && way.tag == line {
                way.valid = false;
                return true;
            }
        }
        false
    }

    /// Invalidates everything (between kernel runs).
    pub fn flush(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(replacement: Replacement) -> Cache {
        Cache::new(CacheConfig { capacity_bytes: 4 * 64, ways: 4, replacement })
        // 1 set, 4 ways.
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(Replacement::Lru);
        assert!(!c.access(7));
        c.fill(7);
        assert!(c.access(7));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small(Replacement::Lru);
        for l in 0..4 {
            c.fill(l);
        }
        // Touch 0 so 1 becomes LRU.
        c.access(0);
        let evicted = c.fill(100).unwrap();
        assert_eq!(evicted, 1);
        assert!(c.contains(0));
        assert!(c.contains(100));
    }

    #[test]
    fn srrip_promotes_on_hit() {
        let mut c = small(Replacement::Srrip);
        for l in 0..4 {
            c.fill(l);
        }
        c.access(2); // RRPV -> 0
        // Fill forces aging: victims are among RRPV-3 lines, never line 2.
        let e1 = c.fill(10).unwrap();
        assert_ne!(e1, 2);
        assert!(c.contains(2));
    }

    #[test]
    fn refill_same_line_evicts_nothing() {
        let mut c = small(Replacement::Lru);
        c.fill(5);
        assert_eq!(c.fill(5), None);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small(Replacement::Lru);
        c.fill(9);
        assert!(c.invalidate(9));
        assert!(!c.invalidate(9));
        assert!(!c.contains(9));
    }

    #[test]
    fn sets_are_independent() {
        // 2 sets x 2 ways.
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 4 * 64,
            ways: 2,
            replacement: Replacement::Lru,
        });
        // Lines 0,2,4 map to set 0; lines 1,3 to set 1.
        c.fill(0);
        c.fill(2);
        c.fill(1);
        let evicted = c.fill(4).unwrap(); // set 0 overflow
        assert_eq!(evicted, 0);
        assert!(c.contains(1)); // set 1 untouched
    }

    #[test]
    fn srrip_is_scan_resistant() {
        // A hot line promoted to RRPV 0 survives a long streaming scan that
        // would evict it under LRU — the reason Table I uses SRRIP at L3.
        let mut srrip = Cache::new(CacheConfig {
            capacity_bytes: 8 * 64,
            ways: 8,
            replacement: Replacement::Srrip,
        });
        let mut lru = Cache::new(CacheConfig {
            capacity_bytes: 8 * 64,
            ways: 8,
            replacement: Replacement::Lru,
        });
        for c in [&mut srrip, &mut lru] {
            c.fill(1000);
            // Re-touch to promote.
            c.access(1000);
            c.access(1000);
        }
        // Stream 12 one-touch lines through the single set: enough to turn
        // the whole set over under LRU, but only one SRRIP aging round.
        for l in 0..12 {
            srrip.fill(l);
            lru.fill(l);
        }
        assert!(srrip.contains(1000), "SRRIP must keep the re-referenced line");
        assert!(!lru.contains(1000), "LRU evicts it under the scan");
    }

    #[test]
    fn srrip_aging_eventually_evicts_stale_lines() {
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 4 * 64,
            ways: 4,
            replacement: Replacement::Srrip,
        });
        c.fill(99);
        c.access(99); // RRPV 0
        // Enough distinct fills age even an RRPV-0 line out.
        for l in 0..64 {
            c.fill(l);
        }
        assert!(!c.contains(99), "stale lines must age out eventually");
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = small(Replacement::Lru);
        c.fill(1);
        c.access(1);
        c.access(2);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = small(Replacement::Lru);
        for l in 0..4 {
            c.fill(l);
        }
        assert_eq!(c.resident_lines(), 4);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }
}
