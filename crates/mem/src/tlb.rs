//! A small fully-associative L1 TLB (Fig 3 shows the L1 TLB on the broadcast
//! path). GEMM working sets are contiguous, so TLB misses are rare; we model
//! a fixed-entry LRU TLB with a page-walk penalty so the cost is represented
//! without a full page-table model.

use serde::{Deserialize, Serialize};

/// TLB counters.
#[derive(Clone, Copy, Default, Debug, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translations that hit.
    pub hits: u64,
    /// Translations that missed (charged the walk penalty).
    pub misses: u64,
}

/// A fully-associative, LRU, fixed-page-size TLB.
///
/// ```
/// use save_mem::Tlb;
/// let mut t = Tlb::new(64, 4096, 20.0);
/// assert!(t.translate(0x1234) > 0.0); // first touch walks
/// assert_eq!(t.translate(0x1000), 0.0); // same page hits
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (vpn, last-use tick)
    capacity: usize,
    page_bytes: u64,
    walk_ns: f64,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries over `page_bytes` pages and a
    /// `walk_ns` miss penalty.
    pub fn new(capacity: usize, page_bytes: u64, walk_ns: f64) -> Self {
        Tlb { entries: Vec::new(), capacity, page_bytes, walk_ns, tick: 0, stats: TlbStats::default() }
    }

    /// Translates `addr`; returns the extra latency in ns (0 on hit).
    pub fn translate(&mut self, addr: u64) -> f64 {
        self.tick += 1;
        let vpn = addr / self.page_bytes;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == vpn) {
            e.1 = self.tick;
            self.stats.hits += 1;
            return 0.0;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.capacity {
            // A full TLB is non-empty (capacity >= 1), so an LRU victim
            // always exists; tolerate a zero-capacity TLB gracefully.
            if let Some(lru) =
                self.entries.iter().enumerate().min_by_key(|(_, (_, t))| *t).map(|(i, _)| i)
            {
                self.entries.swap_remove(lru);
            }
        }
        self.entries.push((vpn, self.tick));
        self.walk_ns
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_same_page() {
        let mut t = Tlb::new(4, 4096, 20.0);
        assert_eq!(t.translate(100), 20.0);
        assert_eq!(t.translate(4000), 0.0);
        assert_eq!(t.translate(4096), 20.0); // next page
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 4096, 20.0);
        t.translate(0); // page 0
        t.translate(4096); // page 1
        t.translate(0); // refresh page 0
        t.translate(8192); // page 2 evicts page 1
        assert_eq!(t.translate(0), 0.0); // page 0 still in
        assert_eq!(t.translate(4096), 20.0); // page 1 was evicted
    }

    #[test]
    fn stats_count() {
        let mut t = Tlb::new(4, 4096, 20.0);
        t.translate(0);
        t.translate(1);
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().hits, 1);
    }
}
