//! # save-mem — memory-hierarchy substrate for the SAVE simulator
//!
//! The SAVE paper (Gong et al., MICRO 2020) evaluates on a simulated 28-core
//! Skylake-class machine (Table I). No off-the-shelf Rust cycle-level memory
//! model exists, so this crate implements the whole hierarchy from scratch:
//!
//! * generic set-associative [`Cache`] with LRU and SRRIP replacement;
//! * a private-L1/L2, shared NUCA L3 composition ([`CoreMemory`] +
//!   [`Uncore`]) with a 2-D mesh [`noc::Mesh`] (XY routing, 2-cycle hops) and
//!   a banked [`dram::Dram`] bandwidth/latency model (119.2 GB/s, 6 channels,
//!   50 ns);
//! * a simple L1 [`tlb::Tlb`] and a stream prefetcher (real DNNL kernels rely
//!   on hardware prefetching; without it every kernel is DRAM-latency-bound
//!   and the paper's compute-bound speedup shapes cannot appear);
//! * the SAVE [`BroadcastCache`] in both of the paper's designs (§IV-A,
//!   Fig 6): lines holding *data*, or lines holding 16-bit *zero masks*;
//! * the storage/energy model behind Table II ([`energy`]).
//!
//! All uncore timing is expressed in nanoseconds: the paper notes "the core
//! frequency affects L1 and L2 but not L3" (§VI), so L1/L2 latencies are in
//! core cycles while L3/NoC/DRAM latencies are wall-clock and are converted
//! at whatever frequency the core runs (1.7 GHz with 2 VPUs, 2.1 GHz with 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bcast_cache;
pub mod cache;
pub mod dram;
pub mod energy;
pub mod hierarchy;
pub mod noc;
pub mod relaxed;
pub mod tlb;

pub use bcast_cache::{BcastAccess, BcastDesign, BroadcastCache};
pub use cache::{Cache, CacheConfig, CacheStats, Replacement};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{
    CoreMemory, LoadClass, LoadResult, MemConfig, Uncore, UncoreAccess, UncoreReport,
    UncoreReq, WarmLevel, SLICE_MSHRS,
};
pub use noc::Mesh;
pub use relaxed::QuantumView;
pub use tlb::Tlb;

/// Cache-line size in bytes (fixed at 64 across the model, matching §IV-A).
pub const LINE_BYTES: u64 = 64;

/// Converts a byte address to a line address.
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}
