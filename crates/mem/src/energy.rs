//! Storage overhead and energy model behind Table II of the paper.
//!
//! The paper sizes SAVE's added storage analytically and models the
//! broadcast-cache leakage power / access energy with CACTI 7.0 at 22 nm.
//! The sizes are pure arithmetic, reproduced exactly here; the CACTI-derived
//! energy numbers are tabulated constants (we cannot re-run CACTI, see
//! DESIGN.md substitutions).

use serde::{Deserialize, Serialize};

/// Whether the configuration supports only FP32 VFMAs or also
/// mixed-precision (BF16) VFMAs — the MP support doubles the per-VPU
/// bookkeeping (32 multiplicand lanes vs 16) and widens the B$ masks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PrecisionSupport {
    /// FP32 only.
    Fp32Only,
    /// FP32 and BF16 mixed precision.
    Fp32AndMixed,
}

/// Inputs of the storage model (defaults match the evaluated machine).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StorageModel {
    /// Vector lanes per VPU for bookkeeping (16 FP32 / 32 BF16 MLs).
    pub fp32_lanes: u32,
    /// VPU pipeline stages for FP32 VFMAs (latency 4).
    pub fp32_stages: u32,
    /// VPU pipeline stages for mixed-precision VFMAs (latency 6).
    pub mp_stages: u32,
    /// Reservation-station entries (Table I: 97).
    pub rs_entries: u32,
    /// Broadcast-cache entries (32).
    pub bcast_entries: u32,
    /// B$ tag bits per entry.
    pub tag_bits: u32,
}

impl Default for StorageModel {
    fn default() -> Self {
        StorageModel {
            fp32_lanes: 16,
            fp32_stages: 4,
            mp_stages: 6,
            rs_entries: 97,
            bcast_entries: 32,
            tag_bits: 53,
        }
    }
}

/// Leakage power (mW) and per-access energy (nJ) of one storage structure,
/// CACTI 7.0 at 22 nm (Table II constants).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyFigures {
    /// Leakage power in mW.
    pub leakage_mw: f64,
    /// Energy per access in nJ.
    pub access_nj: f64,
}

impl StorageModel {
    fn log2_ceil(x: u32) -> u32 {
        32 - (x - 1).leading_zeros()
    }

    /// Per-VPU temp bookkeeping storage in bytes: `V * P * log2(N_RS)` bits
    /// (§III), where MP support tracks all 32 multiplicand lanes across the
    /// 6-stage MP pipeline.
    pub fn temp_bytes(&self, support: PrecisionSupport) -> u64 {
        let idx_bits = Self::log2_ceil(self.rs_entries);
        let bits = match support {
            PrecisionSupport::Fp32Only => self.fp32_lanes * self.fp32_stages * idx_bits,
            PrecisionSupport::Fp32AndMixed => (2 * self.fp32_lanes) * self.mp_stages * idx_bits,
        };
        (bits / 8) as u64
    }

    /// Mask-design B$ storage in bytes: per entry, a tag plus one zero bit
    /// per element (16 elements of 4 B for FP32, 32 elements of 2 B for MP).
    pub fn bcast_mask_bytes(&self, support: PrecisionSupport) -> u64 {
        let mask_bits = match support {
            PrecisionSupport::Fp32Only => 16,
            PrecisionSupport::Fp32AndMixed => 32,
        };
        (self.bcast_entries * (self.tag_bits + mask_bits) / 8) as u64
    }

    /// Data-design B$ storage in bytes: per entry, a tag plus the 64-byte
    /// line (independent of precision support).
    pub fn bcast_data_bytes(&self, _support: PrecisionSupport) -> u64 {
        (self.bcast_entries * (self.tag_bits + 512) / 8) as u64
    }

    /// CACTI-derived energy figures for the mask-design B$ (Table II).
    pub fn bcast_mask_energy(&self, support: PrecisionSupport) -> EnergyFigures {
        match support {
            PrecisionSupport::Fp32Only => EnergyFigures { leakage_mw: 0.24, access_nj: 2.9e-4 },
            PrecisionSupport::Fp32AndMixed => {
                EnergyFigures { leakage_mw: 0.29, access_nj: 3.8e-4 }
            }
        }
    }

    /// CACTI-derived energy figures for the data-design B$ (Table II).
    pub fn bcast_data_energy(&self, _support: PrecisionSupport) -> EnergyFigures {
        EnergyFigures { leakage_mw: 3.2, access_nj: 1.6e-2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_fp32_column() {
        let m = StorageModel::default();
        assert_eq!(m.temp_bytes(PrecisionSupport::Fp32Only), 56);
        assert_eq!(m.bcast_mask_bytes(PrecisionSupport::Fp32Only), 276);
        assert_eq!(m.bcast_data_bytes(PrecisionSupport::Fp32Only), 2260);
    }

    #[test]
    fn table2_mixed_column() {
        let m = StorageModel::default();
        assert_eq!(m.temp_bytes(PrecisionSupport::Fp32AndMixed), 168);
        assert_eq!(m.bcast_mask_bytes(PrecisionSupport::Fp32AndMixed), 340);
        assert_eq!(m.bcast_data_bytes(PrecisionSupport::Fp32AndMixed), 2260);
    }

    #[test]
    fn energy_constants() {
        let m = StorageModel::default();
        let e = m.bcast_mask_energy(PrecisionSupport::Fp32Only);
        assert_eq!(e.leakage_mw, 0.24);
        let e = m.bcast_data_energy(PrecisionSupport::Fp32AndMixed);
        assert_eq!(e.access_nj, 1.6e-2);
    }

    #[test]
    fn log2_of_rs_entries() {
        // 97 RS entries need 7 index bits.
        assert_eq!(StorageModel::log2_ceil(97), 7);
        assert_eq!(StorageModel::log2_ceil(64), 6);
        assert_eq!(StorageModel::log2_ceil(65), 7);
    }
}
