//! Composition of the full memory hierarchy: private L1/L2 per core, shared
//! NUCA L3 slices over a mesh, DRAM, TLB, stream prefetcher and the optional
//! broadcast cache.
//!
//! Two usage modes (see DESIGN.md §2):
//!
//! * **detailed** — one [`CoreMemory`] per core, all sharing one [`Uncore`];
//! * **symmetric** — a single [`CoreMemory`] against an [`Uncore`] built with
//!   [`Uncore::new_symmetric`]: one L3 slice (the per-core share), mean-hop
//!   NoC latency, and DRAM bandwidth divided by the core count. With every
//!   core running an identical tile of the same GEMM — the paper's setting —
//!   this preserves per-core contention at a fraction of the cost.

use crate::bcast_cache::{BcastAccess, BcastDesign, BroadcastCache};
use crate::cache::{Cache, CacheConfig, CacheStats, Replacement};
use crate::dram::{Dram, DramConfig};
use crate::noc::Mesh;
use crate::tlb::Tlb;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Full memory-system configuration (defaults reproduce Table I).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1-D geometry (32 KB, 8-way, LRU).
    pub l1: CacheConfig,
    /// L2 geometry (1 MB, 16-way, LRU, inclusive of L1).
    pub l2: CacheConfig,
    /// One L3 NUCA slice (2.375 MB, 19-way, SRRIP); one slice per core.
    pub l3_slice: CacheConfig,
    /// L1 hit latency in core cycles.
    pub l1_hit_cycles: u64,
    /// L2 hit latency in core cycles (added to L1 miss detection).
    pub l2_hit_cycles: u64,
    /// L3 array latency in ns (NoC hops are added separately).
    pub l3_ns: f64,
    /// DRAM model.
    pub dram: DramConfig,
    /// L1 TLB entries.
    pub tlb_entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Page-walk penalty in ns.
    pub tlb_walk_ns: f64,
    /// Broadcast-cache design, if one is instantiated.
    pub bcast: Option<BcastDesign>,
    /// Broadcast-cache entries (paper: 32).
    pub bcast_entries: usize,
    /// B$ hit latency in core cycles.
    pub bcast_hit_cycles: u64,
    /// Sequential-stream prefetch degree (lines ahead); 0 disables.
    pub prefetch_degree: u64,
    /// NoC per-hop latency in uncore cycles.
    pub noc_hop_cycles: u64,
    /// Uncore reference frequency in GHz.
    pub uncore_ghz: f64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1: CacheConfig {
                capacity_bytes: 32 * 1024,
                ways: 8,
                replacement: Replacement::Lru,
            },
            l2: CacheConfig {
                capacity_bytes: 1024 * 1024,
                ways: 16,
                replacement: Replacement::Lru,
            },
            l3_slice: CacheConfig {
                capacity_bytes: (2.375 * 1024.0 * 1024.0) as u64,
                ways: 19,
                replacement: Replacement::Srrip,
            },
            l1_hit_cycles: 4,
            l2_hit_cycles: 14,
            l3_ns: 18.0,
            dram: DramConfig::default(),
            tlb_entries: 64,
            page_bytes: 4096,
            tlb_walk_ns: 20.0,
            bcast: Some(BcastDesign::Data),
            bcast_entries: 32,
            bcast_hit_cycles: 3,
            prefetch_degree: 64,
            noc_hop_cycles: 2,
            uncore_ghz: 1.7,
        }
    }
}

impl MemConfig {
    /// Rejects memory-system configurations the hierarchy cannot model.
    ///
    /// Each cache level must hold at least one full set of 64-byte lines,
    /// DRAM must have positive bandwidth and at least one channel, and
    /// every latency/frequency must be a finite non-negative number. The
    /// error string names the offending field.
    pub fn validate(&self) -> Result<(), String> {
        fn cache(level: &str, c: &CacheConfig) -> Result<(), String> {
            if c.ways == 0 {
                return Err(format!("mem config: {level} ways must be > 0"));
            }
            if c.capacity_bytes < c.ways as u64 * 64 {
                return Err(format!(
                    "mem config: {level} capacity ({} B) below one {}-way set of 64 B lines",
                    c.capacity_bytes, c.ways
                ));
            }
            Ok(())
        }
        cache("l1", &self.l1)?;
        cache("l2", &self.l2)?;
        cache("l3_slice", &self.l3_slice)?;
        fn finite_pos(what: &str, v: f64) -> Result<(), String> {
            if !v.is_finite() || v <= 0.0 {
                Err(format!("mem config: {what} must be positive and finite, got {v}"))
            } else {
                Ok(())
            }
        }
        finite_pos("dram.bandwidth_gbps", self.dram.bandwidth_gbps)?;
        if self.dram.channels == 0 {
            return Err("mem config: dram.channels must be > 0".to_string());
        }
        if !self.dram.latency_ns.is_finite() || self.dram.latency_ns < 0.0 {
            return Err(format!(
                "mem config: dram.latency_ns must be finite and >= 0, got {}",
                self.dram.latency_ns
            ));
        }
        if self.page_bytes == 0 || self.tlb_entries == 0 {
            return Err("mem config: page_bytes and tlb_entries must be > 0".to_string());
        }
        if !self.tlb_walk_ns.is_finite() || self.tlb_walk_ns < 0.0 {
            return Err(format!(
                "mem config: tlb_walk_ns must be finite and >= 0, got {}",
                self.tlb_walk_ns
            ));
        }
        if !self.l3_ns.is_finite() || self.l3_ns < 0.0 {
            return Err(format!("mem config: l3_ns must be finite and >= 0, got {}", self.l3_ns));
        }
        if self.bcast.is_some() && self.bcast_entries == 0 {
            return Err("mem config: bcast_entries must be > 0 when a B$ is instantiated"
                .to_string());
        }
        finite_pos("uncore_ghz", self.uncore_ghz)?;
        Ok(())
    }
}

/// Where [`CoreMemory::warm`] installs lines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WarmLevel {
    /// L1 + L2 + L3.
    L1,
    /// L2 + L3.
    L2,
    /// L3 only — the paper warms the previous layer's output into L3 (§VI).
    L3,
}

/// What kind of access a load is.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LoadClass {
    /// Full-vector (64-byte) load.
    Vector,
    /// Broadcast load of a 4-byte element. `elem_zero` says whether the
    /// element is zero and `line_zero_mask` is the is-zero mask of the whole
    /// line (used to fill a mask-design B$).
    Broadcast {
        /// The broadcast element is exactly zero.
        elem_zero: bool,
        /// Per-4-byte-element zero mask of the line.
        line_zero_mask: u16,
    },
}

/// Result of a timed load.
#[derive(Clone, Copy, Debug)]
pub struct LoadResult {
    /// Total latency in ns from issue to data ready.
    pub latency_ns: f64,
    /// Whether an L1-D read port was consumed (false when the B$ served it).
    pub used_l1_port: bool,
    /// Whether the broadcast cache served or partially served the access.
    pub bcast_hit: bool,
}

/// Per-core memory statistics.
#[derive(Clone, Copy, Default, Debug, Serialize, Deserialize)]
pub struct CoreMemStats {
    /// L1-D stats.
    pub l1: CacheStats,
    /// L2 stats.
    pub l2: CacheStats,
    /// Demand loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Prefetches issued.
    pub prefetches: u64,
}

/// The interface a core-side memory uses to reach shared uncore state.
///
/// The detailed lockstep engine hands cores the real [`Uncore`]; the
/// quantum-based relaxed-sync engine hands each core a
/// [`crate::relaxed::QuantumView`] — a core-private view that predicts
/// latencies from a quantum-start snapshot and logs every request for
/// deterministic replay at the next barrier (DESIGN.md §5i). Core code is
/// written against this trait so both engines run the identical cycle
/// loop.
pub trait UncoreAccess {
    /// Accesses `line` from `core` at `start_ns` (the time the request
    /// leaves the L2). Returns the completion time in ns.
    fn access(&mut self, core: usize, line: u64, start_ns: f64, prefetch: bool) -> f64;
    /// Installs a line in its home L3 slice without timing (warm-up).
    fn warm_line(&mut self, core: usize, line: u64);
}

/// Maximum concurrent misses a NUCA L3 slice tracks before a new miss
/// counts as an MSHR conflict (observation-only: conflicts are counted,
/// not stalled, so the timing model is unchanged).
pub const SLICE_MSHRS: usize = 16;

/// Aggregated uncore contention report — the NoC/L3/DRAM signals that only
/// become visible at many-core scale (ROADMAP open item 2).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct UncoreReport {
    /// L3 hits across all slices.
    pub l3_hits: u64,
    /// L3 misses across all slices.
    pub l3_misses: u64,
    /// Per-slice MSHR-conflict counts: misses arriving while [`SLICE_MSHRS`]
    /// misses to the same slice were already outstanding.
    pub mshr_conflicts: Vec<u64>,
    /// Flits carried per directed mesh link (see [`Mesh::link_id`]); request
    /// and response traversals both count.
    pub link_flits: Vec<u64>,
    /// The busiest link's flit count.
    pub max_link_flits: u64,
    /// Mean flits over links that carried any traffic.
    pub mean_link_flits: f64,
    /// DRAM traffic and queue-depth counters.
    pub dram: crate::dram::DramStats,
}

impl UncoreReport {
    /// The hottest links as `(tile, dir, flits)`, most-loaded first, for
    /// operator-facing reports. `dir`: 0 east, 1 west, 2 south, 3 north.
    pub fn hottest_links(&self, top: usize) -> Vec<(usize, usize, u64)> {
        let mut loaded: Vec<(usize, u64)> = self
            .link_flits
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, f)| f > 0)
            .collect();
        loaded.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        loaded.into_iter().take(top).map(|(id, f)| (id / 4, id % 4, f)).collect()
    }

    /// Total MSHR conflicts across slices.
    pub fn total_mshr_conflicts(&self) -> u64 {
        self.mshr_conflicts.iter().sum()
    }
}

/// One logged uncore request, replayed into the shared [`Uncore`] at a
/// relaxed-sync barrier. The `(start_ns, core, seq)` triple gives the
/// replay a deterministic total order independent of host threading.
#[derive(Clone, Copy, Debug)]
pub struct UncoreReq {
    /// Requesting core.
    pub core: usize,
    /// Per-core log sequence number within the quantum.
    pub seq: u32,
    /// Line address (un-salted; the uncore salts by core).
    pub line: u64,
    /// Time the request left the requester's L2, in ns.
    pub start_ns: f64,
    /// Prefetch (accounting only).
    pub prefetch: bool,
}

/// Shared uncore: L3 slices, mesh, DRAM.
#[derive(Clone, Debug)]
pub struct Uncore {
    slices: Vec<Cache>,
    mesh: Mesh,
    dram: Dram,
    /// Mean one-way NoC latency used in symmetric mode.
    symmetric_noc_ns: Option<f64>,
    l3_ns: f64,
    l3_hits: u64,
    l3_misses: u64,
    /// Flits per directed mesh link (detailed mode only).
    link_flits: Vec<u64>,
    /// Per-slice outstanding-miss completion times (pruned on access).
    slice_inflight: Vec<Vec<f64>>,
    /// Per-slice conflict counts (miss arrived with >= SLICE_MSHRS pending).
    mshr_conflicts: Vec<u64>,
}

impl Uncore {
    /// Builds a detailed uncore with one L3 slice per core.
    pub fn new(cfg: &MemConfig, cores: usize) -> Self {
        let mesh = Mesh::for_tiles(cores.max(1), cfg.noc_hop_cycles, cfg.uncore_ghz);
        let n = cores.max(1);
        Uncore {
            slices: (0..n).map(|_| Cache::new(cfg.l3_slice)).collect(),
            mesh,
            dram: Dram::new(cfg.dram),
            symmetric_noc_ns: None,
            l3_ns: cfg.l3_ns,
            l3_hits: 0,
            l3_misses: 0,
            link_flits: vec![0; mesh.num_links()],
            slice_inflight: vec![Vec::new(); n],
            mshr_conflicts: vec![0; n],
        }
    }

    /// Builds a symmetric-mode uncore: a single simulated core stands for
    /// `total_cores` identical ones. One slice (the per-core L3 share), mean
    /// NoC hop latency of the full mesh, DRAM bandwidth divided by the core
    /// count.
    pub fn new_symmetric(cfg: &MemConfig, total_cores: usize) -> Self {
        let mesh = Mesh::for_tiles(total_cores.max(1), cfg.noc_hop_cycles, cfg.uncore_ghz);
        let mut dram = Dram::new(cfg.dram);
        dram.set_bandwidth_share(total_cores.max(1));
        let mean = mesh.mean_latency_ns(0);
        Uncore {
            slices: vec![Cache::new(cfg.l3_slice)],
            mesh,
            dram,
            symmetric_noc_ns: Some(mean),
            l3_ns: cfg.l3_ns,
            l3_hits: 0,
            l3_misses: 0,
            // Per-link traffic is meaningless when one core stands for many;
            // symmetric mode keeps the contention counters empty.
            link_flits: Vec::new(),
            slice_inflight: vec![Vec::new()],
            mshr_conflicts: vec![0],
        }
    }

    /// One-way NoC latency from `core` to the home slice of `line`, in ns.
    fn noc_ns(&self, core: usize, line: u64) -> f64 {
        if let Some(mean) = self.symmetric_noc_ns {
            mean
        } else {
            let slice = (line % self.slices.len() as u64) as usize;
            self.mesh.latency_ns(core % self.mesh.tiles(), slice % self.mesh.tiles())
        }
    }

    /// Each core simulates its own kernel over a private functional arena
    /// whose addresses start at zero; salting the line address with the core
    /// id makes the shared L3/DRAM see them as the distinct physical buffers
    /// they represent.
    pub(crate) fn salt(core: usize, line: u64) -> u64 {
        line | ((core as u64) << 42)
    }

    /// Counts request + response flit traversals on the XY route between
    /// the requester tile and the home-slice tile (detailed mode only).
    fn count_route(&mut self, core: usize, slice_idx: usize) {
        let mesh = self.mesh;
        let tiles = mesh.tiles();
        let (from, to) = (core % tiles, slice_idx % tiles);
        mesh.xy_route_links(from, to, |l| self.link_flits[l] += 1);
        mesh.xy_route_links(to, from, |l| self.link_flits[l] += 1);
    }

    /// Accesses `line` from `core` at `start_ns` (the time the request
    /// leaves the L2). Returns the completion time in ns.
    pub fn access(&mut self, core: usize, line: u64, start_ns: f64, prefetch: bool) -> f64 {
        let noc = self.noc_ns(core, line);
        let tagged = Self::salt(core, line);
        let slice_idx = (line % self.slices.len() as u64) as usize;
        if self.symmetric_noc_ns.is_none() {
            self.count_route(core, slice_idx);
        }
        let at_slice = start_ns + noc;
        let hit = self.slices[slice_idx].access(tagged);
        if hit {
            self.l3_hits += 1;
            at_slice + self.l3_ns + noc
        } else {
            self.l3_misses += 1;
            // Observation-only MSHR model: track outstanding misses per slice
            // and count (but do not stall) arrivals past the MSHR budget.
            let inflight = &mut self.slice_inflight[slice_idx];
            inflight.retain(|&t| t > at_slice);
            if inflight.len() >= SLICE_MSHRS {
                self.mshr_conflicts[slice_idx] += 1;
            }
            let done = self.dram.access_line(tagged, at_slice + self.l3_ns, prefetch);
            self.slice_inflight[slice_idx].push(done);
            self.slices[slice_idx].fill(tagged);
            done + noc
        }
    }

    /// Installs a line in its home L3 slice without timing (warm-up).
    pub fn warm_line(&mut self, core: usize, line: u64) {
        let tagged = Self::salt(core, line);
        let slice_idx = (line % self.slices.len() as u64) as usize;
        self.slices[slice_idx].fill(tagged);
    }

    /// Probes the L3 without side effects.
    pub fn contains(&self, core: usize, line: u64) -> bool {
        let tagged = Self::salt(core, line);
        let slice_idx = (line % self.slices.len() as u64) as usize;
        self.slices[slice_idx].contains(tagged)
    }

    /// (hits, misses) seen by the L3 so far.
    pub fn l3_stats(&self) -> (u64, u64) {
        (self.l3_hits, self.l3_misses)
    }

    /// DRAM traffic counters.
    pub fn dram_stats(&self) -> crate::dram::DramStats {
        self.dram.stats()
    }

    /// The mesh (for topology queries).
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// One-way NoC latency from `core` to the home slice of `line`, in ns —
    /// the public probe [`crate::relaxed::QuantumView`] predicts with.
    pub fn noc_latency_ns(&self, core: usize, line: u64) -> f64 {
        self.noc_ns(core, line)
    }

    /// L3 array latency in ns.
    pub fn l3_latency_ns(&self) -> f64 {
        self.l3_ns
    }

    /// A clone of the DRAM channel state, cheap enough (a handful of f64s
    /// per channel) to snapshot at every quantum boundary.
    pub fn dram_snapshot(&self) -> Dram {
        self.dram.clone()
    }

    /// Aggregated contention report (see [`UncoreReport`]).
    pub fn report(&self) -> UncoreReport {
        let loaded: Vec<u64> =
            self.link_flits.iter().copied().filter(|&f| f > 0).collect();
        let mean = if loaded.is_empty() {
            0.0
        } else {
            loaded.iter().sum::<u64>() as f64 / loaded.len() as f64
        };
        UncoreReport {
            l3_hits: self.l3_hits,
            l3_misses: self.l3_misses,
            mshr_conflicts: self.mshr_conflicts.clone(),
            link_flits: self.link_flits.clone(),
            max_link_flits: self.link_flits.iter().copied().max().unwrap_or(0),
            mean_link_flits: mean,
            dram: self.dram.stats(),
        }
    }

    /// Replays a quantum's logged requests into the shared uncore in the
    /// canonical `(start_ns, core, seq)` order. Predicted latencies were
    /// already consumed inside the quantum; the replay's job is to bring the
    /// shared L3/DRAM/contention state (and its counters) to exactly the
    /// state a serialized execution of those requests would produce —
    /// independent of which host thread ran which core. Drains `reqs`.
    pub fn reconcile(&mut self, reqs: &mut Vec<UncoreReq>) {
        reqs.sort_unstable_by(|a, b| {
            a.start_ns
                .total_cmp(&b.start_ns)
                .then(a.core.cmp(&b.core))
                .then(a.seq.cmp(&b.seq))
        });
        for r in reqs.drain(..) {
            self.access(r.core, r.line, r.start_ns, r.prefetch);
        }
    }
}

impl UncoreAccess for Uncore {
    fn access(&mut self, core: usize, line: u64, start_ns: f64, prefetch: bool) -> f64 {
        Uncore::access(self, core, line, start_ns, prefetch)
    }

    fn warm_line(&mut self, core: usize, line: u64) {
        Uncore::warm_line(self, core, line)
    }
}

/// A 4 KB-region stream-prefetcher entry.
#[derive(Clone, Copy, Debug)]
struct Region {
    last_demand: u64,
    frontier: u64,
    tick: u64,
}

/// Private per-core memory: L1, L2, TLB, prefetcher, optional B$.
#[derive(Clone, Debug)]
pub struct CoreMemory {
    core_id: usize,
    cfg: MemConfig,
    l1: Cache,
    l2: Cache,
    tlb: Tlb,
    bcast: Option<BroadcastCache>,
    /// In-flight prefetch fills: line -> ready time in ns.
    inflight: HashMap<u64, f64>,
    regions: HashMap<u64, Region>,
    region_tick: u64,
    freq_ghz: f64,
    stats: CoreMemStats,
}

const REGION_LINES: u64 = 64; // 4 KB regions
const MAX_REGIONS: usize = 64;

impl CoreMemory {
    /// Creates the private memory of core `core_id` running at `freq_ghz`.
    pub fn new(core_id: usize, cfg: MemConfig, freq_ghz: f64) -> Self {
        CoreMemory {
            core_id,
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            tlb: Tlb::new(cfg.tlb_entries, cfg.page_bytes, cfg.tlb_walk_ns),
            bcast: cfg.bcast.map(|d| BroadcastCache::new(cfg.bcast_entries, d)),
            inflight: HashMap::new(),
            regions: HashMap::new(),
            region_tick: 0,
            freq_ghz,
            cfg,
            stats: CoreMemStats::default(),
        }
    }

    /// Core id (tile index on the mesh).
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// Changes the core frequency (GHz); L1/L2 cycle latencies scale, the
    /// uncore does not (§VI).
    pub fn set_freq(&mut self, ghz: f64) {
        self.freq_ghz = ghz;
    }

    /// Current core frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Per-core statistics.
    pub fn stats(&self) -> CoreMemStats {
        let mut s = self.stats;
        s.l1 = self.l1.stats();
        s.l2 = self.l2.stats();
        s
    }

    /// Earliest in-flight prefetch-fill completion (ns), if any fill is
    /// outstanding. Diagnostics only: fills never gate core progress — a
    /// demand load racing a fill folds the remaining wait into its own
    /// latency at issue time — which is why the core's event-driven
    /// fast-forward needs no memory-side wake-up event (see DESIGN.md).
    pub fn next_inflight_fill_ns(&self) -> Option<f64> {
        self.inflight.values().copied().reduce(f64::min)
    }

    /// Broadcast-cache statistics, if a B$ is instantiated.
    pub fn bcast_stats(&self) -> Option<crate::bcast_cache::BcastStats> {
        self.bcast.as_ref().map(|b| b.stats())
    }

    /// B$ read ports per cycle (0 when no B$).
    pub fn bcast_read_ports(&self) -> usize {
        self.bcast.as_ref().map(|b| b.read_ports()).unwrap_or(0)
    }

    /// Non-mutating B$ probe for port reservation; `None` when no B$ is
    /// instantiated.
    pub fn peek_bcast(&self, addr: u64) -> Option<BcastAccess> {
        self.bcast.as_ref().map(|b| b.peek(addr))
    }

    /// B$ entry count (`None` when no B$); the sanitizer's freshness audit
    /// walks entries round-robin across check cycles.
    pub fn bcast_entries(&self) -> Option<usize> {
        self.bcast.as_ref().map(|b| b.num_entries())
    }

    /// Audits one B$ entry against backing memory (see
    /// [`BroadcastCache::audit_entry`]); `None` when no B$, the entry is
    /// invalid, or it is fresh.
    pub fn audit_bcast_entry(
        &self,
        idx: usize,
        mask_of: impl FnOnce(u64) -> u16,
    ) -> Option<(u64, u16, u16)> {
        self.bcast.as_ref().and_then(|b| b.audit_entry(idx, mask_of))
    }

    /// Fault-injection hook: corrupts the first valid B$ entry. Returns
    /// `false` when no B$ is instantiated or nothing is cached yet.
    pub fn corrupt_bcast_entry(&mut self) -> bool {
        self.bcast.as_mut().map(|b| b.corrupt_first_valid()).unwrap_or(false)
    }

    fn cyc_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_ghz
    }

    /// Fills `line` into L1+L2, back-invalidating L1 on L2 eviction to keep
    /// the hierarchy inclusive.
    fn fill_private(&mut self, line: u64) {
        if let Some(evicted) = self.l2.fill(line) {
            self.l1.invalidate(evicted);
        }
        self.l1.fill(line);
    }

    fn run_prefetcher(&mut self, uncore: &mut dyn UncoreAccess, line: u64, now_ns: f64) {
        let degree = self.cfg.prefetch_degree;
        if degree == 0 {
            return;
        }
        let region = line / REGION_LINES;
        self.region_tick += 1;
        let tick = self.region_tick;
        let ascending = match self.regions.get(&region) {
            Some(r) => line == r.last_demand + 1 || line == r.last_demand,
            None => {
                // A touch at the start of a region after the previous region
                // was streamed also confirms a stream.
                line.is_multiple_of(REGION_LINES) && self.regions.contains_key(&(region.wrapping_sub(1)))
            }
        };
        let entry = self.regions.entry(region).or_insert(Region {
            last_demand: line,
            frontier: line,
            tick,
        });
        entry.tick = tick;
        let confirmed = ascending || entry.frontier > line;
        entry.last_demand = line;
        if confirmed {
            // Hardware stream prefetchers do not cross 4 KB page boundaries;
            // the region-start confirmation above picks the stream back up on
            // the next page.
            let region_end = (region + 1) * REGION_LINES - 1;
            let target = (line + degree).min(region_end);
            let from = entry.frontier.max(line) + 1;
            entry.frontier = entry.frontier.max(target);
            for pf in from..=target {
                if self.l2.contains(pf) || self.inflight.contains_key(&pf) {
                    continue;
                }
                let done = uncore.access(self.core_id, pf, now_ns, true);
                self.inflight.insert(pf, done);
                self.stats.prefetches += 1;
            }
        }
        if self.regions.len() > MAX_REGIONS {
            // Drop the least recently used region entry.
            if let Some((&k, _)) = self.regions.iter().min_by_key(|(_, r)| r.tick) {
                self.regions.remove(&k);
            }
        }
    }

    /// Issues a timed demand load of the data at `addr` at time `now_ns`.
    pub fn load(
        &mut self,
        uncore: &mut dyn UncoreAccess,
        addr: u64,
        now_ns: f64,
        class: LoadClass,
    ) -> LoadResult {
        self.stats.loads += 1;
        let tlb_ns = self.tlb.translate(addr);
        let line = crate::line_of(addr);

        // Broadcast cache probe.
        let mut bcast_hit = false;
        let mut fill_bcast_mask: Option<u16> = None;
        if let (LoadClass::Broadcast { elem_zero: _, line_zero_mask }, Some(b)) =
            (class, self.bcast.as_mut())
        {
            match b.probe(addr, line_zero_mask) {
                BcastAccess::HitNoL1 => {
                    return LoadResult {
                        latency_ns: tlb_ns + self.cyc_ns(self.cfg.bcast_hit_cycles),
                        used_l1_port: false,
                        bcast_hit: true,
                    };
                }
                BcastAccess::HitNeedsL1 => {
                    bcast_hit = true;
                }
                BcastAccess::Miss => {
                    fill_bcast_mask = Some(line_zero_mask);
                }
            }
        }

        let l1_ns = self.cyc_ns(self.cfg.l1_hit_cycles);
        let latency = if self.l1.access(line) {
            l1_ns
        } else {
            let l2_start = now_ns + l1_ns;
            // A pending prefetch fill may be on its way to L2.
            let from_inflight = self.inflight.get(&line).copied();
            
            if let Some(ready) = from_inflight {
                self.inflight.remove(&line);
                self.fill_private(line);
                // Wait for the fill (if still in flight), at least an L2 hit.
                (ready - now_ns).max(l1_ns + self.cyc_ns(self.cfg.l2_hit_cycles))
            } else if self.l2.access(line) {
                self.l1.fill(line);
                let ns = l1_ns + self.cyc_ns(self.cfg.l2_hit_cycles);
                self.run_prefetcher(uncore, line, l2_start);
                ns
            } else {
                let done = uncore.access(
                    self.core_id,
                    line,
                    l2_start + self.cyc_ns(self.cfg.l2_hit_cycles),
                    false,
                );
                self.fill_private(line);
                self.run_prefetcher(uncore, line, l2_start);
                done - now_ns
            }
        };

        if let (Some(mask), Some(b)) = (fill_bcast_mask, self.bcast.as_mut()) {
            b.fill(addr, mask);
        }

        LoadResult { latency_ns: tlb_ns + latency, used_l1_port: true, bcast_hit }
    }

    /// Issues a store (write-allocate into L1/L2; timing is hidden by the
    /// store buffer so only occupancy is modelled).
    pub fn store(&mut self, uncore: &mut dyn UncoreAccess, addr: u64, now_ns: f64) {
        self.stats.stores += 1;
        let line = crate::line_of(addr);
        if !self.l1.access(line) {
            if !self.l2.access(line) {
                uncore.access(self.core_id, line, now_ns, false);
            }
            self.fill_private(line);
        }
    }

    /// Installs every line of `[base, base+bytes)` at the given level
    /// without timing (kernel warm-up, §VI).
    pub fn warm(&mut self, uncore: &mut dyn UncoreAccess, base: u64, bytes: u64, level: WarmLevel) {
        let first = crate::line_of(base);
        let last = crate::line_of(base + bytes.saturating_sub(1));
        for line in first..=last {
            uncore.warm_line(self.core_id, line);
            match level {
                WarmLevel::L3 => {}
                WarmLevel::L2 => {
                    self.l2.fill(line);
                }
                WarmLevel::L1 => {
                    self.fill_private(line);
                }
            }
        }
    }

    /// Direct read-only access to the L1 for tests.
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// Direct read-only access to the L2 for tests.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemConfig {
        MemConfig { prefetch_degree: 0, bcast: None, ..MemConfig::default() }
    }

    #[test]
    fn default_config_validates() {
        MemConfig::default().validate().unwrap();
        cfg().validate().unwrap();
    }

    #[test]
    fn validate_rejects_degenerate_points() {
        let mut c = MemConfig::default();
        c.l1.ways = 0;
        assert!(c.validate().unwrap_err().contains("l1 ways"));

        let mut c = MemConfig::default();
        c.dram.channels = 0;
        assert!(c.validate().unwrap_err().contains("dram.channels"));

        let c = MemConfig { uncore_ghz: 0.0, ..Default::default() };
        assert!(c.validate().unwrap_err().contains("uncore_ghz"));
    }

    #[test]
    fn l1_hit_latency() {
        let c = cfg();
        let mut uncore = Uncore::new(&c, 1);
        let mut m = CoreMemory::new(0, c, 1.7);
        m.warm(&mut uncore, 0, 64, WarmLevel::L1);
        // First load pays the TLB walk; the second is a pure L1 hit.
        m.load(&mut uncore, 0, 0.0, LoadClass::Vector);
        let r = m.load(&mut uncore, 0, 100.0, LoadClass::Vector);
        assert!((r.latency_ns - 4.0 / 1.7).abs() < 1e-9);
        assert!(r.used_l1_port);
    }

    #[test]
    fn miss_escalates_through_levels() {
        let c = cfg();
        let mut uncore = Uncore::new(&c, 1);
        let mut m = CoreMemory::new(0, c, 1.7);
        // Cold: goes to DRAM.
        let cold = m.load(&mut uncore, 4096, 0.0, LoadClass::Vector);
        assert!(cold.latency_ns > 50.0, "cold load {}", cold.latency_ns);
        // Now hot in L1.
        let hot = m.load(&mut uncore, 4096, 1000.0, LoadClass::Vector);
        assert!(hot.latency_ns < 5.0);
    }

    #[test]
    fn l3_warm_faster_than_dram() {
        let c = cfg();
        let mut uncore = Uncore::new(&c, 1);
        let mut m = CoreMemory::new(0, c, 1.7);
        m.warm(&mut uncore, 0, 64, WarmLevel::L3);
        let warm = m.load(&mut uncore, 0, 0.0, LoadClass::Vector);
        let mut uncore2 = Uncore::new(&c, 1);
        let mut m2 = CoreMemory::new(0, c, 1.7);
        let cold = m2.load(&mut uncore2, 0, 0.0, LoadClass::Vector);
        assert!(warm.latency_ns < cold.latency_ns);
    }

    #[test]
    fn inclusive_l2_back_invalidates_l1() {
        // A tiny L2 to force evictions.
        let mut c = cfg();
        c.l2 = CacheConfig { capacity_bytes: 2 * 64, ways: 1, replacement: Replacement::Lru };
        c.l1 = CacheConfig { capacity_bytes: 8 * 64, ways: 8, replacement: Replacement::Lru };
        let mut uncore = Uncore::new(&c, 1);
        let mut m = CoreMemory::new(0, c, 1.7);
        m.load(&mut uncore, 0, 0.0, LoadClass::Vector); // line 0 -> set 0
        m.load(&mut uncore, 128, 0.0, LoadClass::Vector); // line 2 -> set 0, evicts line 0
        assert!(!m.l1().contains(0), "L1 must not hold lines evicted from inclusive L2");
    }

    #[test]
    fn bcast_data_design_spares_l1_port() {
        let mut c = cfg();
        c.bcast = Some(BcastDesign::Data);
        let mut uncore = Uncore::new(&c, 1);
        let mut m = CoreMemory::new(0, c, 1.7);
        m.warm(&mut uncore, 0, 64, WarmLevel::L1);
        let class = LoadClass::Broadcast { elem_zero: false, line_zero_mask: 0 };
        let first = m.load(&mut uncore, 0, 0.0, class);
        assert!(first.used_l1_port); // miss fills B$
        let second = m.load(&mut uncore, 4, 10.0, class);
        assert!(!second.used_l1_port);
        assert!(second.bcast_hit);
    }

    #[test]
    fn bcast_mask_design_only_skips_zeroes() {
        let mut c = cfg();
        c.bcast = Some(BcastDesign::Masks);
        let mut uncore = Uncore::new(&c, 1);
        let mut m = CoreMemory::new(0, c, 1.7);
        m.warm(&mut uncore, 0, 64, WarmLevel::L1);
        let mask = 0b0000_0000_0000_0001u16; // element 0 is zero
        let miss = m.load(
            &mut uncore,
            0,
            0.0,
            LoadClass::Broadcast { elem_zero: true, line_zero_mask: mask },
        );
        assert!(miss.used_l1_port);
        let zero_hit = m.load(
            &mut uncore,
            0,
            1.0,
            LoadClass::Broadcast { elem_zero: true, line_zero_mask: mask },
        );
        assert!(!zero_hit.used_l1_port);
        let nonzero_hit = m.load(
            &mut uncore,
            4,
            2.0,
            LoadClass::Broadcast { elem_zero: false, line_zero_mask: mask },
        );
        assert!(nonzero_hit.used_l1_port);
        assert!(nonzero_hit.bcast_hit);
    }

    #[test]
    fn prefetcher_hides_stream_latency() {
        let mut c = cfg();
        c.prefetch_degree = 8;
        let mut uncore = Uncore::new(&c, 1);
        let mut m = CoreMemory::new(0, c, 1.7);
        // Stream 64 sequential lines; later lines should be L2 hits or
        // in-flight waits far cheaper than DRAM.
        let mut total_late = 0.0;
        for i in 0..64u64 {
            let now = i as f64 * 100.0;
            let r = m.load(&mut uncore, i * 64, now, LoadClass::Vector);
            if i >= 8 {
                total_late += r.latency_ns;
            }
        }
        let avg = total_late / 56.0;
        assert!(avg < 40.0, "prefetched stream should be cheap, avg={avg}");
        assert!(m.stats().prefetches > 30);
    }

    #[test]
    fn symmetric_uncore_shares_bandwidth() {
        let c = cfg();
        let mut u1 = Uncore::new(&c, 1);
        let mut u28 = Uncore::new_symmetric(&c, 28);
        // Stream many lines; the shared-mode finish time must be much later.
        let mut d1: f64 = 0.0;
        let mut d28: f64 = 0.0;
        for l in 0..2000u64 {
            d1 = d1.max(u1.access(0, l, 0.0, false));
            d28 = d28.max(u28.access(0, l + 1_000_000, 0.0, false));
        }
        assert!(d28 > d1 * 10.0, "d1={d1} d28={d28}");
    }
}
