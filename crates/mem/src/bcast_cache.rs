//! The SAVE Broadcast Cache (B$), §IV-A.
//!
//! GEMM broadcasts different scalars from the same cache line close together
//! in time. The B$ is a tiny (32-entry, direct-mapped, 4-read-port) read-only
//! cache that serves broadcast loads so they stop competing with vector loads
//! for the two L1-D read ports. The paper proposes two designs (Fig 6):
//!
//! * **with data** — a B$ line holds the 64 data bytes; any hit avoids L1-D;
//! * **with masks** — a B$ line holds a 16-bit is-zero mask; a hit on a zero
//!   element broadcasts zero without touching L1-D, but a hit on a non-zero
//!   element still needs the L1-D read (Fig 6f). Cheaper storage (Table II),
//!   weaker at high non-broadcasted sparsity (Fig 17).
//!
//! This model is timing/occupancy-only: actual values come from the
//! functional memory; the caller passes in the line's zero mask on fills.

use serde::{Deserialize, Serialize};

/// Which B$ design is instantiated (paper Fig 6 left vs right).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BcastDesign {
    /// Lines hold broadcast data; every hit skips the L1-D.
    Data,
    /// Lines hold 16-bit zero masks; only zero-element hits skip the L1-D.
    Masks,
}

/// Outcome of a broadcast-load probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BcastAccess {
    /// Served entirely by the B$ — no L1-D port consumed.
    HitNoL1,
    /// B$ hit, but the element is non-zero and the design stores only masks:
    /// the data must still be read from L1-D (consumes an L1 port).
    HitNeedsL1,
    /// B$ miss: read from L1-D and fill the B$.
    Miss,
}

/// B$ counters.
#[derive(Clone, Copy, Default, Debug, Serialize, Deserialize)]
pub struct BcastStats {
    /// Probes that hit.
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
    /// Hits that still required an L1-D read (mask design, non-zero value).
    pub hits_needing_l1: u64,
    /// Zero broadcasts served purely from the mask design.
    pub zero_broadcasts: u64,
}

impl BcastStats {
    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    line: u64,
    zero_mask: u16,
    valid: bool,
}

/// The broadcast cache.
///
/// ```
/// use save_mem::{BroadcastCache, BcastDesign, BcastAccess};
/// let mut b = BroadcastCache::new(32, BcastDesign::Data);
/// assert_eq!(b.probe(0, 0), BcastAccess::Miss);
/// b.fill(0, 0);
/// assert_eq!(b.probe(4, 0), BcastAccess::HitNoL1); // same line
/// ```
#[derive(Clone, Debug)]
pub struct BroadcastCache {
    entries: Vec<Entry>,
    design: BcastDesign,
    read_ports: usize,
    stats: BcastStats,
}

impl BroadcastCache {
    /// Number of read ports modelled (paper: "4 read ports are sufficient").
    pub const DEFAULT_READ_PORTS: usize = 4;

    /// Creates a direct-mapped B$ with `entries` lines.
    ///
    /// # Panics
    /// Panics if `entries` is zero.
    pub fn new(entries: usize, design: BcastDesign) -> Self {
        assert!(entries > 0, "B$ needs at least one entry");
        BroadcastCache {
            entries: vec![Entry { line: 0, zero_mask: 0, valid: false }; entries],
            design,
            read_ports: Self::DEFAULT_READ_PORTS,
            stats: BcastStats::default(),
        }
    }

    /// The design variant.
    pub fn design(&self) -> BcastDesign {
        self.design
    }

    /// Read ports per cycle.
    pub fn read_ports(&self) -> usize {
        self.read_ports
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> BcastStats {
        self.stats
    }

    fn index_of(&self, line: u64) -> usize {
        // XOR-folded index: GEMM A-panels place consecutive broadcast rows a
        // power-of-two number of lines apart, which aliases pathologically
        // under a plain modulo index. Folding the upper bits in is the
        // standard single-gate-delay fix and restores the paper's >90% hit
        // rates (§IV-A).
        let n = self.entries.len() as u64;
        ((line ^ (line >> 5) ^ (line >> 10)) % n) as usize
    }

    /// Probes for the broadcast of the 4-byte element at `addr`.
    ///
    /// `elem_zero_bit` is the element's position within its line
    /// (`(addr % 64) / 4`) — computed internally; the caller only supplies
    /// the address. Returns what the load must still do.
    pub fn probe(&mut self, addr: u64, _line_zero_mask_unused: u16) -> BcastAccess {
        let line = crate::line_of(addr);
        let idx = self.index_of(line);
        let e = self.entries[idx];
        if e.valid && e.line == line {
            self.stats.hits += 1;
            match self.design {
                BcastDesign::Data => BcastAccess::HitNoL1,
                BcastDesign::Masks => {
                    let elem = ((addr % crate::LINE_BYTES) / 4) as u16;
                    if e.zero_mask >> elem & 1 == 1 {
                        self.stats.zero_broadcasts += 1;
                        BcastAccess::HitNoL1
                    } else {
                        self.stats.hits_needing_l1 += 1;
                        BcastAccess::HitNeedsL1
                    }
                }
            }
        } else {
            self.stats.misses += 1;
            BcastAccess::Miss
        }
    }

    /// Non-mutating probe: what would [`BroadcastCache::probe`] return?
    /// Used by the load-issue logic to reserve ports before committing to
    /// the access.
    pub fn peek(&self, addr: u64) -> BcastAccess {
        let line = crate::line_of(addr);
        let idx = self.index_of(line);
        let e = self.entries[idx];
        if e.valid && e.line == line {
            match self.design {
                BcastDesign::Data => BcastAccess::HitNoL1,
                BcastDesign::Masks => {
                    let elem = ((addr % crate::LINE_BYTES) / 4) as u16;
                    if e.zero_mask >> elem & 1 == 1 {
                        BcastAccess::HitNoL1
                    } else {
                        BcastAccess::HitNeedsL1
                    }
                }
            }
        } else {
            BcastAccess::Miss
        }
    }

    /// Fills the line containing `addr` after a miss. `zero_mask` has bit
    /// *i* set iff the line's *i*-th 4-byte element is zero (generated from
    /// the L1-D fill data, Fig 6b).
    pub fn fill(&mut self, addr: u64, zero_mask: u16) {
        let line = crate::line_of(addr);
        let idx = self.index_of(line);
        self.entries[idx] = Entry { line, zero_mask, valid: true };
    }

    /// Back-invalidates a line (coherence with L1-D; in GEMM the broadcast
    /// inputs are read-only so this is not expected to fire, §IV-A).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = crate::line_of(addr);
        let idx = self.index_of(line);
        let e = &mut self.entries[idx];
        if e.valid && e.line == line {
            e.valid = false;
            true
        } else {
            false
        }
    }

    /// Clears contents and counters.
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
        self.stats = BcastStats::default();
    }

    /// Number of entries (sanitizer audit walks them round-robin).
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Freshness audit of one entry: recomputes the entry's zero mask from
    /// backing memory via `mask_of(line_number)` and, when it disagrees with
    /// the stored mask, returns `(line, stored, actual)`. `None` for invalid
    /// entries and for fresh ones. Both designs store the mask (the
    /// with-data design derives its served values from the same line, so a
    /// stale mask is exactly a stale line).
    pub fn audit_entry(
        &self,
        idx: usize,
        mask_of: impl FnOnce(u64) -> u16,
    ) -> Option<(u64, u16, u16)> {
        let e = self.entries.get(idx)?;
        if !e.valid {
            return None;
        }
        let actual = mask_of(e.line);
        if e.zero_mask != actual {
            Some((e.line, e.zero_mask, actual))
        } else {
            None
        }
    }

    /// Fault-injection hook: flips the low zero-mask bit of the first valid
    /// entry, making it stale versus backing memory. Returns `false` when
    /// the cache holds no valid entry yet (the injector retries later).
    pub fn corrupt_first_valid(&mut self) -> bool {
        for e in &mut self.entries {
            if e.valid {
                e.zero_mask ^= 1;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_design_hits_regardless_of_value() {
        let mut b = BroadcastCache::new(32, BcastDesign::Data);
        assert_eq!(b.probe(128, 0), BcastAccess::Miss);
        b.fill(128, 0b0101);
        assert_eq!(b.probe(128, 0), BcastAccess::HitNoL1); // elem 0 (zero)
        assert_eq!(b.probe(132, 0), BcastAccess::HitNoL1); // elem 1 (non-zero)
    }

    #[test]
    fn mask_design_distinguishes_zero_elements() {
        let mut b = BroadcastCache::new(32, BcastDesign::Masks);
        b.fill(0, 0b0001); // element 0 is zero, others non-zero
        assert_eq!(b.probe(0, 0), BcastAccess::HitNoL1); // zero broadcast
        assert_eq!(b.probe(4, 0), BcastAccess::HitNeedsL1); // non-zero
        assert_eq!(b.stats().zero_broadcasts, 1);
        assert_eq!(b.stats().hits_needing_l1, 1);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut b = BroadcastCache::new(32, BcastDesign::Data);
        // Find another line that folds onto line 0's entry.
        let conflicting = (1u64..4096)
            .find(|&l| (l ^ (l >> 5) ^ (l >> 10)) % 32 == 0)
            .expect("a conflicting line exists");
        b.fill(0, 0);
        b.fill(conflicting * 64, 0);
        assert_eq!(b.probe(0, 0), BcastAccess::Miss, "direct-mapped entry was stolen");
        assert_eq!(b.probe(conflicting * 64, 0), BcastAccess::HitNoL1);
    }

    #[test]
    fn invalidate_clears_entry() {
        let mut b = BroadcastCache::new(32, BcastDesign::Data);
        b.fill(64, 0);
        assert!(b.invalidate(64));
        assert_eq!(b.probe(64, 0), BcastAccess::Miss);
        assert!(!b.invalidate(64));
    }

    #[test]
    fn hit_rate_tracks_locality() {
        let mut b = BroadcastCache::new(32, BcastDesign::Data);
        // Broadcast all 16 elements of one line, as GEMM does.
        assert_eq!(b.probe(0, 0), BcastAccess::Miss);
        b.fill(0, 0);
        for i in 1..16 {
            assert_eq!(b.probe(i * 4, 0), BcastAccess::HitNoL1);
        }
        assert!(b.stats().hit_rate() > 0.9);
    }
}
