//! # save-signal — SIGINT/SIGTERM to atomic-flag bridge
//!
//! Long sweeps need graceful cancellation: on Ctrl-C or a scheduler's
//! SIGTERM, in-flight simulation cells should stop at their next
//! cycle-quantum boundary, the checkpoint journal should be flushed, and
//! the process should exit with the distinct "cancelled, resumable" code
//! (DESIGN.md §5f). The rest of the workspace forbids `unsafe`; this crate
//! confines the two `libc` calls a signal handler needs to one audited
//! module so `save-sim`/`save-bench` can stay `#![forbid(unsafe_code)]`.
//!
//! The handler itself only performs an atomic store, which is
//! async-signal-safe. Everything else (supervisor threads, journal flushes)
//! happens cooperatively on normal threads that poll [`cancel_requested`].

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Set by the signal handler (or [`request_cancel`]) once a cancellation
/// signal has been observed. Never cleared in production code.
static CANCEL_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Number of cancellation signals observed (SIGINT/SIGTERM deliveries plus
/// [`request_cancel`] calls). A long-running daemon distinguishes "first
/// signal: stop admitting work and drain gracefully" from "second signal:
/// force-cancel in-flight cells and exit with the resumable 130 code" by
/// watching this count; one-shot sweep binaries only care about the flag.
static SIGNAL_COUNT: AtomicU32 = AtomicU32::new(0);

/// `true` once SIGINT/SIGTERM was received (or [`request_cancel`] called).
pub fn cancel_requested() -> bool {
    CANCEL_REQUESTED.load(Ordering::SeqCst)
}

/// How many cancellation signals have been observed so far.
pub fn signal_count() -> u32 {
    SIGNAL_COUNT.load(Ordering::SeqCst)
}

/// Programmatic equivalent of receiving a signal — used by tests and by
/// embedders that have their own shutdown source. Each call counts as one
/// signal delivery for [`signal_count`].
pub fn request_cancel() {
    SIGNAL_COUNT.fetch_add(1, Ordering::SeqCst);
    CANCEL_REQUESTED.store(true, Ordering::SeqCst);
}

/// Test-only reset so independent tests can each observe a fresh flag.
/// Production code must never call this: a user's Ctrl-C is final.
pub fn reset_for_test() {
    CANCEL_REQUESTED.store(false, Ordering::SeqCst);
    SIGNAL_COUNT.store(0, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    //! The one `unsafe` region in the workspace: registering a C signal
    //! handler. The handler body is a single relaxed-to-SeqCst atomic
    //! store, the canonical async-signal-safe operation.

    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        // Both operations are single atomic RMW/stores — async-signal-safe.
        super::SIGNAL_COUNT.fetch_add(1, Ordering::SeqCst);
        super::CANCEL_REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        /// `signal(2)` from libc (already linked by std). The return value
        /// (previous handler) is deliberately opaque; we never restore it.
        fn signal(sig: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        // SAFETY: `signal` is the POSIX API for exactly this; the handler
        // only performs an atomic store (async-signal-safe), and the
        // function pointer has the required `extern "C" fn(i32)` ABI.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal support off unix: cancellation still works through
    /// [`super::request_cancel`], so sweeps degrade to cooperative-only.
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent). After this, a Ctrl-C
/// or SIGTERM no longer kills the process; it latches the flag read by
/// [`cancel_requested`] so sweeps can flush their journals and exit with
/// the "cancelled, resumable" code. A *second* signal while the first is
/// still being honoured is latched into the same flag (the process is
/// already shutting down as fast as its cycle quantum allows).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_latches_counts_and_resets() {
        reset_for_test();
        assert!(!cancel_requested());
        assert_eq!(signal_count(), 0);
        request_cancel();
        assert!(cancel_requested());
        assert_eq!(signal_count(), 1);
        request_cancel();
        assert!(cancel_requested(), "latching is idempotent");
        assert_eq!(signal_count(), 2, "each delivery is counted");
        reset_for_test();
        assert!(!cancel_requested());
        assert_eq!(signal_count(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }
}
