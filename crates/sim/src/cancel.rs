//! Cooperative cancellation and per-cell wall-clock deadlines.
//!
//! Durable sweeps (DESIGN.md §5f) need two interruption sources that share
//! one mechanism:
//!
//! * **global cancellation** — Ctrl-C / SIGTERM (bridged from
//!   [`save_signal`]) or an embedder's programmatic request stops *every*
//!   in-flight cell so the journal can be flushed and the process can exit
//!   with the "cancelled, resumable" code;
//! * **per-cell deadlines** — a cell that exceeds its wall-clock budget is
//!   stopped *alone*; the sweep records a structured
//!   [`crate::SimError::DeadlineExceeded`] (after retries) and keeps going.
//!
//! Both are delivered through a [`CancelToken`]: an `Arc<AtomicBool>` the
//! core polls every [`save_core::CANCEL_QUANTUM`] cycles (and once per
//! fast-forward jump). Nothing is ever killed; interrupted runs return
//! through the normal [`save_core::RunOutcome`] path with
//! `cancelled = true`, so no state is torn mid-cycle.
//!
//! The [`Supervisor`] owns a polling thread (a few-millisecond period) that
//! bridges the process signal flag into the global token and trips each
//! registered watch's token when its deadline passes. Cells register via
//! [`SupervisorHandle::watch`]; the returned [`WatchGuard`] deregisters on
//! drop and remembers *why* its token fired ([`WatchGuard::deadline_expired`])
//! so the runner can tell a deadline from a global cancel.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Shared cancellation flag. Cloning shares the flag (it is an `Arc`);
/// a token never un-cancels.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latches the token. Idempotent; never cleared.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been latched.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// The raw flag, in the form [`save_core::Core::set_cancel`] consumes.
    pub fn as_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// One registered cell: its private token, optional deadline, and the
/// flag recording that the supervisor tripped it *because of the deadline*
/// (as opposed to a global cancel).
struct Watch {
    id: u64,
    token: CancelToken,
    deadline: Option<Instant>,
    expired: Arc<AtomicBool>,
}

struct Inner {
    global: CancelToken,
    watches: Mutex<Vec<Watch>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    /// How many process signals latch the global token. Sweep binaries use
    /// 1 (first Ctrl-C cancels everything); the `save-serve` daemon uses 2
    /// so the *first* signal only stops admission (graceful drain, exit 0)
    /// while the *second* force-cancels in-flight cells (exit 130,
    /// resumable journal).
    bridge_at: u32,
}

impl Inner {
    /// One supervisor tick: bridge the process signal flag, then trip
    /// per-cell tokens whose deadline has passed (or everything, on a
    /// global cancel). Returns whether the global token is latched.
    fn tick(&self, now: Instant) -> bool {
        if save_signal::signal_count() >= self.bridge_at {
            self.global.cancel();
        }
        let global = self.global.is_cancelled();
        let watches = self.watches.lock().expect("supervisor watch list poisoned");
        for w in watches.iter() {
            if global {
                w.token.cancel();
            } else if let Some(dl) = w.deadline {
                if now >= dl && !w.token.is_cancelled() {
                    w.expired.store(true, Ordering::SeqCst);
                    w.token.cancel();
                }
            }
        }
        global
    }
}

/// How often the supervisor thread wakes to check deadlines and the signal
/// flag. Deadline enforcement therefore has ~this much slack, which is
/// negligible against sweep-cell runtimes (milliseconds to minutes).
pub const SUPERVISOR_POLL: Duration = Duration::from_millis(2);

/// Owner of the supervision thread. Dropping it (or calling
/// [`Supervisor::shutdown`]) stops and joins the thread; handles obtained
/// via [`Supervisor::handle`] stay usable for token queries but no new
/// deadline enforcement happens after shutdown.
pub struct Supervisor {
    inner: Arc<Inner>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Spawns the supervision thread. `install_signal_handlers` also
    /// registers the process SIGINT/SIGTERM handlers (binaries want this;
    /// library tests usually do not, to avoid hijacking the test runner's
    /// Ctrl-C).
    pub fn start(install_signal_handlers: bool) -> Self {
        Self::start_with_bridge(install_signal_handlers, 1)
    }

    /// [`Supervisor::start`] with an explicit signal-bridge threshold: the
    /// global token latches once `save_signal::signal_count()` reaches
    /// `bridge_at`. Sweep binaries use 1 (the default); a draining daemon
    /// uses 2 so the first SIGINT/SIGTERM only stops admission while the
    /// second forces cancellation of in-flight cells.
    pub fn start_with_bridge(install_signal_handlers: bool, bridge_at: u32) -> Self {
        if install_signal_handlers {
            save_signal::install();
        }
        let inner = Arc::new(Inner {
            global: CancelToken::new(),
            watches: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            bridge_at: bridge_at.max(1),
        });
        let worker = Arc::clone(&inner);
        let thread = thread::Builder::new()
            .name("save-supervisor".into())
            .spawn(move || {
                while !worker.shutdown.load(Ordering::SeqCst) {
                    worker.tick(Instant::now());
                    thread::sleep(SUPERVISOR_POLL);
                }
                // Final tick so a cancel that raced shutdown still lands.
                worker.tick(Instant::now());
            })
            .expect("spawn supervisor thread");
        Self { inner, thread: Some(thread) }
    }

    /// A cloneable handle for registering watches and querying the global
    /// token.
    pub fn handle(&self) -> SupervisorHandle {
        SupervisorHandle { inner: Arc::clone(&self.inner) }
    }

    /// Stops and joins the supervision thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Cloneable view of a [`Supervisor`].
#[derive(Clone)]
pub struct SupervisorHandle {
    inner: Arc<Inner>,
}

impl SupervisorHandle {
    /// The sweep-wide token: latched by SIGINT/SIGTERM or
    /// [`SupervisorHandle::cancel_global`].
    pub fn global(&self) -> CancelToken {
        self.inner.global.clone()
    }

    /// Programmatic global cancel (same effect as a signal).
    pub fn cancel_global(&self) {
        self.inner.global.cancel();
    }

    /// Registers a cell for supervision: its token fires when `deadline`
    /// (measured from now) elapses or the global token latches. With
    /// `deadline = None` only global cancellation is propagated.
    pub fn watch(&self, deadline: Option<Duration>) -> WatchGuard {
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        let token = CancelToken::new();
        let expired = Arc::new(AtomicBool::new(false));
        // A cancel that happened before registration must still propagate
        // even if the supervisor thread is already gone.
        if self.inner.global.is_cancelled() {
            token.cancel();
        }
        let watch = Watch {
            id,
            token: token.clone(),
            deadline: deadline.map(|d| Instant::now() + d),
            expired: Arc::clone(&expired),
        };
        self.inner.watches.lock().expect("supervisor watch list poisoned").push(watch);
        WatchGuard { inner: Arc::clone(&self.inner), id, token, expired }
    }

    /// Sleeps for `dur` in [`SUPERVISOR_POLL`] slices, returning early
    /// (with `false`) if the global token latches — used for retry backoff
    /// so Ctrl-C is not delayed by a backoff sleep.
    pub fn backoff_sleep(&self, dur: Duration) -> bool {
        let end = Instant::now() + dur;
        loop {
            if self.inner.global.is_cancelled() {
                return false;
            }
            let now = Instant::now();
            if now >= end {
                return true;
            }
            thread::sleep(SUPERVISOR_POLL.min(end - now));
        }
    }
}

/// Registration of one supervised cell; deregisters on drop.
pub struct WatchGuard {
    inner: Arc<Inner>,
    id: u64,
    token: CancelToken,
    expired: Arc<AtomicBool>,
}

impl WatchGuard {
    /// The cell's private token — hand its flag to the core(s) running
    /// this cell.
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Whether the supervisor tripped this cell's token because its
    /// deadline passed (as opposed to a global cancel). This is how the
    /// runner reclassifies a cooperative stop into
    /// [`crate::SimError::DeadlineExceeded`].
    pub fn deadline_expired(&self) -> bool {
        self.expired.load(Ordering::SeqCst)
    }
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        let mut watches = self.inner.watches.lock().expect("supervisor watch list poisoned");
        watches.retain(|w| w.id != self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_latches_and_shares() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled(), "clones share the flag");
        assert!(clone.as_flag().load(Ordering::SeqCst));
    }

    #[test]
    fn deadline_trips_only_its_watch() {
        let sup = Supervisor::start(false);
        let h = sup.handle();
        let fast = h.watch(Some(Duration::from_millis(5)));
        let slow = h.watch(Some(Duration::from_secs(3600)));
        let start = Instant::now();
        while !fast.token().is_cancelled() {
            assert!(start.elapsed() < Duration::from_secs(5), "deadline never fired");
            thread::sleep(Duration::from_millis(1));
        }
        assert!(fast.deadline_expired());
        assert!(!slow.token().is_cancelled(), "other watches are untouched");
        assert!(!slow.deadline_expired());
        assert!(!h.global().is_cancelled(), "a deadline is not a global cancel");
    }

    #[test]
    fn global_cancel_trips_every_watch() {
        let sup = Supervisor::start(false);
        let h = sup.handle();
        let a = h.watch(None);
        let b = h.watch(Some(Duration::from_secs(3600)));
        h.cancel_global();
        let start = Instant::now();
        while !(a.token().is_cancelled() && b.token().is_cancelled()) {
            assert!(start.elapsed() < Duration::from_secs(5), "cancel never propagated");
            thread::sleep(Duration::from_millis(1));
        }
        assert!(!a.deadline_expired(), "global cancel is not a deadline expiry");
        assert!(!b.deadline_expired());
        // A watch registered after the cancel is tripped immediately.
        let late = h.watch(Some(Duration::from_secs(3600)));
        assert!(late.token().is_cancelled());
    }

    #[test]
    fn guard_drop_deregisters() {
        let sup = Supervisor::start(false);
        let h = sup.handle();
        let g = h.watch(Some(Duration::from_secs(3600)));
        assert_eq!(sup.inner.watches.lock().unwrap().len(), 1);
        drop(g);
        assert_eq!(sup.inner.watches.lock().unwrap().len(), 0);
    }

    #[test]
    fn backoff_sleep_interrupts_on_cancel() {
        let sup = Supervisor::start(false);
        let h = sup.handle();
        h.cancel_global();
        let start = Instant::now();
        assert!(!h.backoff_sleep(Duration::from_secs(3600)));
        assert!(start.elapsed() < Duration::from_secs(5));
        let h2 = Supervisor::start(false).handle();
        assert!(h2.backoff_sleep(Duration::from_millis(1)), "uncancelled sleep completes");
    }
}
