//! Self-contained cell specifications — the unit of remote work.
//!
//! A [`CellSpec`] captures *everything* that determines one simulation
//! cell's result: the workload (shape + sparsity + sparsity seed baked
//! into [`GemmWorkload`]), the core operating point, the machine/memory
//! configuration, the RNG seed, and whether numerical verification runs.
//! Because the simulator is deterministic (DESIGN.md §1), two executions
//! of the same spec — on different machines, in different processes, at
//! different times — produce bit-identical seconds. That determinism is
//! what makes the `save-serve` daemon's memo cache sound: results are
//! keyed by [`CellSpec::cache_key`], a content hash over the spec's
//! canonical JSON encoding, so a cache hit *is* a re-execution as far as
//! the numbers are concerned.
//!
//! The bench binaries build specs with [`crate::surface::Surface::point_seed`]
//! so a sweep submitted to a daemon reproduces `sweep_durable`'s bits
//! exactly (the acceptance criterion for this subsystem).

use crate::cancel::CancelToken;
use crate::checkpoint::fnv1a;
use crate::error::SimError;
use crate::runner::{
    run_kernel_cancel, run_kernel_custom_cancel, run_kernel_custom_traced, run_kernel_traced,
    ConfigKind, KernelResult, MachineConfig,
};
use crate::trace::TraceStore;
use save_core::CoreConfig;
use save_kernels::GemmWorkload;
use serde::{Deserialize, Serialize};

/// Which core configuration a cell runs under: one of the paper's three
/// named operating points, or an arbitrary ablation configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum CoreSel {
    /// A named operating point ([`ConfigKind`]).
    Kind {
        /// The operating point.
        kind: ConfigKind,
    },
    /// An explicit core configuration (ablation studies, Figs 17-19).
    Custom {
        /// The full configuration.
        config: Box<CoreConfig>,
    },
}

/// One fully-specified simulation cell (see module docs).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellSpec {
    /// The kernel to run (name, shape, sparsity levels and seed).
    pub workload: GemmWorkload,
    /// Core operating point.
    pub core: CoreSel,
    /// Machine/memory configuration and simulation mode.
    pub machine: MachineConfig,
    /// RNG seed for operand generation.
    pub seed: u64,
    /// Whether to verify numerical output against the reference.
    pub verify: bool,
}

impl CellSpec {
    /// Builds a spec for a named operating point.
    pub fn new(workload: GemmWorkload, kind: ConfigKind, machine: MachineConfig, seed: u64) -> Self {
        CellSpec { workload, core: CoreSel::Kind { kind }, machine, seed, verify: false }
    }

    /// Builds a spec for an explicit core configuration.
    pub fn custom(
        workload: GemmWorkload,
        config: CoreConfig,
        machine: MachineConfig,
        seed: u64,
    ) -> Self {
        CellSpec {
            workload,
            core: CoreSel::Custom { config: Box::new(config) },
            machine,
            seed,
            verify: false,
        }
    }

    /// The spec's canonical JSON encoding — also the wire format.
    pub fn canonical_json(&self) -> Result<String, SimError> {
        serde_json::to_string(self)
            .map_err(|e| SimError::Protocol { what: format!("serialize cell spec: {e}") })
    }

    /// Content address of the cell's *functional* work: everything shared
    /// by all timing configurations of this cell — the workload, the
    /// machine shape (mode + core count) and the data seed. Cells with
    /// equal trace keys share one recorded trace (see [`crate::trace`]).
    pub fn trace_key(&self) -> Result<u64, SimError> {
        crate::trace::trace_key(&self.workload, &self.machine, self.seed)
    }

    /// Content address of the cell's *timing* configuration: the core
    /// operating point, the memory-system configuration, the relaxed-sync
    /// quantum (it bounds the in-quantum timing error, so different quanta
    /// are different timing results) and the verify flag — everything
    /// [`CellSpec::trace_key`] deliberately excludes. The host-thread count
    /// is deliberately NOT hashed: it provably never changes results
    /// (deterministic barrier reconciliation, DESIGN.md §5i), so cached
    /// cells stay valid across machines with different core counts.
    pub fn timing_key(&self) -> Result<u64, SimError> {
        let cj = serde_json::to_string(&self.core)
            .map_err(|e| SimError::Protocol { what: format!("serialize core sel: {e}") })?;
        let mj = serde_json::to_string(&self.machine.mem)
            .map_err(|e| SimError::Protocol { what: format!("serialize mem config: {e}") })?;
        Ok(fnv1a(
            format!("time|{cj}|{mj}|q{}|{}", self.machine.mc.quantum, self.verify).as_bytes(),
        ))
    }

    /// Content hash keying the memo cache: `hash(trace_key ‖ timing_key)`.
    /// Two specs share a key iff every field that can influence the result
    /// is identical — the same contract as the original canonical-JSON
    /// hash, but split along the functional/timing line so that cells
    /// sharing a trace visibly share the functional half of their key.
    pub fn cache_key(&self) -> Result<u64, SimError> {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&self.trace_key()?.to_le_bytes());
        bytes[8..].copy_from_slice(&self.timing_key()?.to_le_bytes());
        Ok(fnv1a(&bytes))
    }

    /// Executes the cell, honouring an optional cooperative cancel token.
    pub fn run(&self, cancel: Option<&CancelToken>) -> Result<KernelResult, SimError> {
        match &self.core {
            CoreSel::Kind { kind } => run_kernel_cancel(
                &self.workload,
                *kind,
                &self.machine,
                self.seed,
                self.verify,
                cancel,
            ),
            CoreSel::Custom { config } => run_kernel_custom_cancel(
                &self.workload,
                config,
                &self.machine,
                self.seed,
                self.verify,
                cancel,
            ),
        }
    }

    /// Executes the cell through a [`TraceStore`]: the first cell for a
    /// given [`CellSpec::trace_key`] records a functional trace, later
    /// cells replay it with bit-identical results (see
    /// [`crate::runner::run_kernel_traced`]). Cells whose *full*
    /// [`CellSpec::cache_key`] already ran through this store are served
    /// from its result memo without entering the core at all — the
    /// simulator is deterministic, so the memoized bits are the bits a
    /// re-execution would produce.
    pub fn run_traced(
        &self,
        cancel: Option<&CancelToken>,
        store: &TraceStore,
    ) -> Result<KernelResult, SimError> {
        let cache_key = self.cache_key()?;
        if let Some(memo) = store.result(cache_key) {
            return Ok(memo);
        }
        let result = match &self.core {
            CoreSel::Kind { kind } => run_kernel_traced(
                &self.workload,
                *kind,
                &self.machine,
                self.seed,
                self.verify,
                cancel,
                store,
            ),
            CoreSel::Custom { config } => run_kernel_custom_traced(
                &self.workload,
                config,
                &self.machine,
                self.seed,
                self.verify,
                cancel,
                store,
            ),
        }?;
        store.record_result(cache_key, result);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::Surface;
    use save_kernels::{BroadcastPattern, GemmKernelSpec, Precision};

    fn tiny() -> GemmWorkload {
        GemmWorkload::dense(
            "tiny",
            GemmKernelSpec {
                m_tiles: 4,
                n_vecs: 2,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            16,
            2,
        )
        .with_sparsity(0.3, 0.3)
    }

    #[test]
    fn cache_key_is_deterministic_and_input_sensitive() {
        let spec = CellSpec::new(tiny(), ConfigKind::Save2Vpu, MachineConfig::default(), 7);
        let k1 = spec.cache_key().unwrap();
        let k2 = spec.clone().cache_key().unwrap();
        assert_eq!(k1, k2, "same spec, same key");

        let mut other = spec.clone();
        other.seed = 8;
        assert_ne!(k1, other.cache_key().unwrap(), "seed is part of the key");

        let other = CellSpec::new(tiny(), ConfigKind::Baseline, MachineConfig::default(), 7);
        assert_ne!(k1, other.cache_key().unwrap(), "operating point is part of the key");

        let other = CellSpec::new(
            tiny().with_sparsity(0.3, 0.4),
            ConfigKind::Save2Vpu,
            MachineConfig::default(),
            7,
        );
        assert_ne!(k1, other.cache_key().unwrap(), "sparsity is part of the key");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = CellSpec::custom(
            tiny(),
            ConfigKind::Save1Vpu.core_config(),
            MachineConfig::default(),
            3,
        );
        let wire = spec.canonical_json().unwrap();
        let back: CellSpec = serde_json::from_str(&wire).unwrap();
        assert_eq!(spec.cache_key().unwrap(), back.cache_key().unwrap());
    }

    /// The bit-identity contract: a spec built with [`Surface::point_seed`]
    /// reproduces the exact bits a local [`Surface::sweep`] records for the
    /// same grid point — this is what lets a daemon-side cache substitute
    /// for local execution.
    #[test]
    fn spec_execution_matches_local_sweep_bits() {
        let w = tiny();
        let (a, b) = (0.5, 0.25);
        let surf =
            Surface::sweep(&w, ConfigKind::Save2Vpu, &MachineConfig::default(), &[a], &[b], 1)
                .unwrap();
        let spec = CellSpec::new(
            w.with_sparsity(a, b),
            ConfigKind::Save2Vpu,
            MachineConfig::default(),
            Surface::point_seed(a, b),
        );
        let remote = spec.run(None).unwrap();
        assert_eq!(
            remote.seconds.to_bits(),
            surf.secs[0].to_bits(),
            "remote execution must be bit-identical to the local sweep"
        );
    }
}
