//! Content-addressed sweep checkpoints: manifest + append-only journal.
//!
//! A durable sweep (DESIGN.md §5f) persists two files in its checkpoint
//! directory:
//!
//! * `manifest.json` — a [`SweepManifest`] identifying *what* is being
//!   swept: sweep name, cell count, and a content fingerprint over the
//!   kernel, grid, and machine-configuration descriptions. Written
//!   atomically (temp file + rename) so a crash can never leave a torn
//!   manifest. On `--resume`, a fingerprint mismatch is a hard error —
//!   resuming someone else's journal would silently mix results from two
//!   different experiments.
//! * `journal.jsonl` — one [`CellRecord`] JSON line per *completed* cell,
//!   appended and flushed as each cell finishes. Timing results are stored
//!   as [`f64::to_bits`] (`secs_bits`) so a resumed run reconstructs the
//!   surface **bit-identically**: no decimal round-trip is involved, and
//!   the vendored JSON layer keeps integer literals as text.
//!
//! A process killed mid-append (SIGKILL) can leave at most one truncated
//! line at the *end* of the journal; [`Checkpoint::open`] tolerates exactly
//! that (the cell is simply recomputed) while a malformed line anywhere
//! else — which no crash can produce — is reported as corruption.

use crate::error::SimError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal/manifest schema version; bump on incompatible layout changes.
pub const CHECKPOINT_SCHEMA: u32 = 1;

/// 64-bit FNV-1a over `bytes` — the workspace's dependency-free content
/// hash. Not cryptographic; it only needs to make accidental manifest
/// collisions (different kernel/grid/config under one checkpoint dir)
/// overwhelmingly unlikely.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a over a sequence of parts with a separator byte between them, so
/// `["ab", "c"]` and `["a", "bc"]` hash differently.
pub fn fingerprint<I, P>(parts: I) -> u64
where
    I: IntoIterator<Item = P>,
    P: AsRef<[u8]>,
{
    let mut buf = Vec::new();
    for p in parts {
        buf.extend_from_slice(p.as_ref());
        buf.push(0x1f);
    }
    fnv1a(&buf)
}

/// Identity of a sweep: what the journal's cell indices mean.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepManifest {
    /// Layout version ([`CHECKPOINT_SCHEMA`]).
    pub schema: u32,
    /// Human-readable sweep name (e.g. the figure/binary name).
    pub name: String,
    /// Hex content fingerprint over kernel + grid + machine configuration.
    pub fingerprint: String,
    /// Total number of cells in the sweep (journal indices are `0..cells`).
    pub cells: usize,
    /// Free-form description shown in mismatch errors.
    pub description: String,
}

impl SweepManifest {
    /// Builds a manifest whose fingerprint covers `parts` (kernel name,
    /// grid rendering, config debug strings, …) plus the cell count.
    pub fn new<I, P>(name: &str, description: &str, cells: usize, parts: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        let mut buf: Vec<Vec<u8>> = vec![format!("cells={cells}").into_bytes()];
        buf.extend(parts.into_iter().map(|p| p.as_ref().to_vec()));
        SweepManifest {
            schema: CHECKPOINT_SCHEMA,
            name: name.to_string(),
            fingerprint: format!("{:016x}", fingerprint(buf)),
            cells,
            description: description.to_string(),
        }
    }
}

/// One completed cell, as journaled. `secs_bits` is the cell's measured
/// seconds as raw IEEE-754 bits; failed cells journal `f64::NAN`'s bits
/// together with the error kind so a resume neither recomputes nor
/// forgets them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Flat cell index in `0..manifest.cells` (row-major over the grid).
    pub cell: u64,
    /// `f64::to_bits` of the cell's seconds value (NaN bits on failure).
    pub secs_bits: u64,
    /// Simulated cycles the cell consumed (0 on failure).
    pub cycles: u64,
    /// How many attempts the cell took (1 = first try).
    pub attempts: u32,
    /// `SimError::kind()` tag when the cell ultimately failed, else empty.
    #[serde(default)]
    pub error_kind: String,
}

impl CellRecord {
    /// The journaled seconds value.
    pub fn secs(&self) -> f64 {
        f64::from_bits(self.secs_bits)
    }

    /// Whether the cell completed successfully.
    pub fn ok(&self) -> bool {
        self.error_kind.is_empty()
    }
}

/// An open checkpoint directory: validated manifest, loaded journal, and
/// an append handle for new records.
#[derive(Debug)]
pub struct Checkpoint {
    dir: PathBuf,
    journal: Mutex<File>,
    done: HashMap<u64, CellRecord>,
    resumed_cells: usize,
}

fn io_err(what: impl std::fmt::Display) -> SimError {
    SimError::Io { what: what.to_string() }
}

impl Checkpoint {
    /// Path of the manifest file inside `dir`.
    pub fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("manifest.json")
    }

    /// Path of the journal file inside `dir`.
    pub fn journal_path(dir: &Path) -> PathBuf {
        dir.join("journal.jsonl")
    }

    /// Opens (creating if needed) the checkpoint at `dir` for `manifest`.
    ///
    /// * Fresh directory: the manifest is written atomically and an empty
    ///   journal is created.
    /// * Existing directory with `resume = true`: the stored manifest must
    ///   match `manifest` exactly (schema, fingerprint, cell count);
    ///   journaled records are loaded so the sweep can skip them.
    /// * Existing directory with a non-empty journal and `resume = false`:
    ///   refused — overwriting a journal silently discards completed work;
    ///   the caller must pass `--resume` or point at a fresh directory.
    pub fn open(dir: &Path, manifest: &SweepManifest, resume: bool) -> Result<Self, SimError> {
        fs::create_dir_all(dir)
            .map_err(|e| io_err(format!("create checkpoint dir {}: {e}", dir.display())))?;
        let mpath = Self::manifest_path(dir);
        let jpath = Self::journal_path(dir);

        if mpath.exists() {
            let text = fs::read_to_string(&mpath)
                .map_err(|e| io_err(format!("read {}: {e}", mpath.display())))?;
            let stored: SweepManifest = serde_json::from_str(&text)
                .map_err(|e| io_err(format!("parse {}: {e}", mpath.display())))?;
            if stored != *manifest {
                return Err(io_err(format!(
                    "checkpoint at {} belongs to a different sweep: stored \
                     {}/{} ({} cells), requested {}/{} ({} cells); use a \
                     fresh --checkpoint-dir",
                    dir.display(),
                    stored.name,
                    stored.fingerprint,
                    stored.cells,
                    manifest.name,
                    manifest.fingerprint,
                    manifest.cells,
                )));
            }
            let journal_len = fs::metadata(&jpath).map(|m| m.len()).unwrap_or(0);
            if !resume && journal_len > 0 {
                return Err(io_err(format!(
                    "checkpoint at {} already has a journal with completed \
                     cells; pass --resume to continue it or choose a fresh \
                     --checkpoint-dir",
                    dir.display(),
                )));
            }
        } else {
            // Atomic create: render to a temp file in the same directory,
            // then rename over the final name. `rename` within one
            // filesystem is atomic, so readers see either no manifest or a
            // complete one.
            let tmp = dir.join("manifest.json.tmp");
            let body = serde_json::to_string_pretty(manifest)
                .map_err(|e| io_err(format!("serialize manifest: {e}")))?;
            fs::write(&tmp, body.as_bytes())
                .map_err(|e| io_err(format!("write {}: {e}", tmp.display())))?;
            fs::rename(&tmp, &mpath)
                .map_err(|e| io_err(format!("rename {} into place: {e}", tmp.display())))?;
        }

        let done = if resume && jpath.exists() { Self::load_journal(&jpath)? } else { HashMap::new() };
        let resumed_cells = done.len();

        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&jpath)
            .map_err(|e| io_err(format!("open {}: {e}", jpath.display())))?;

        Ok(Self { dir: dir.to_path_buf(), journal: Mutex::new(journal), done, resumed_cells })
    }

    /// Parses the journal, tolerating a truncated *final* line (the one
    /// state a SIGKILL mid-append can leave behind). A later record for
    /// the same cell wins — retries append a fresh record rather than
    /// rewriting history.
    fn load_journal(path: &Path) -> Result<HashMap<u64, CellRecord>, SimError> {
        let text =
            fs::read_to_string(path).map_err(|e| io_err(format!("read {}: {e}", path.display())))?;
        let lines: Vec<&str> = text.lines().collect();
        let mut done = HashMap::new();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<CellRecord>(line) {
                Ok(rec) => {
                    done.insert(rec.cell, rec);
                }
                Err(e) if i + 1 == lines.len() => {
                    // Torn tail from an unclean death; the cell re-runs.
                    let _ = e;
                }
                Err(e) => {
                    return Err(io_err(format!(
                        "corrupt journal {}: line {} is malformed ({e}); only \
                         the final line may be truncated by a crash",
                        path.display(),
                        i + 1,
                    )));
                }
            }
        }
        Ok(done)
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The journaled record for `cell`, if one was loaded on resume or
    /// recorded this run.
    pub fn done(&self, cell: u64) -> Option<&CellRecord> {
        self.done.get(&cell)
    }

    /// Number of cells loaded from a prior run's journal at open time.
    pub fn resumed_cells(&self) -> usize {
        self.resumed_cells
    }

    /// Appends `rec` to the journal and flushes it to the OS, so the
    /// record survives any subsequent process death.
    pub fn record(&mut self, rec: CellRecord) -> Result<(), SimError> {
        let line =
            serde_json::to_string(&rec).map_err(|e| io_err(format!("serialize record: {e}")))?;
        {
            let mut f = self.journal.lock().expect("journal handle poisoned");
            f.write_all(line.as_bytes())
                .and_then(|()| f.write_all(b"\n"))
                .and_then(|()| f.flush())
                .map_err(|e| io_err(format!("append journal: {e}")))?;
        }
        self.done.insert(rec.cell, rec);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("save-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn manifest(cells: usize) -> SweepManifest {
        SweepManifest::new("test-sweep", "unit test", cells, ["gemm", "grid=4x4", "cfg"])
    }

    #[test]
    fn fingerprint_separates_parts() {
        assert_ne!(fingerprint(["ab", "c"]), fingerprint(["a", "bc"]));
        assert_eq!(fingerprint(["a", "b"]), fingerprint(["a", "b"]));
    }

    #[test]
    fn record_and_resume_round_trip_bits() {
        let dir = tmpdir("roundtrip");
        let m = manifest(4);
        let mut ck = Checkpoint::open(&dir, &m, false).unwrap();
        let secs = 1.0_f64 / 3.0; // not representable exactly
        ck.record(CellRecord {
            cell: 2,
            secs_bits: secs.to_bits(),
            cycles: 987654321,
            attempts: 1,
            error_kind: String::new(),
        })
        .unwrap();
        drop(ck);

        let ck = Checkpoint::open(&dir, &m, true).unwrap();
        assert_eq!(ck.resumed_cells(), 1);
        let rec = ck.done(2).expect("cell 2 journaled");
        assert_eq!(rec.secs().to_bits(), secs.to_bits(), "bit-identical resume");
        assert_eq!(rec.cycles, 987654321);
        assert!(rec.ok());
        assert!(ck.done(0).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_manifest_is_refused() {
        let dir = tmpdir("mismatch");
        Checkpoint::open(&dir, &manifest(4), false).unwrap();
        let other = SweepManifest::new("test-sweep", "unit test", 4, ["gemm", "grid=5x5", "cfg"]);
        let err = Checkpoint::open(&dir, &other, true).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert!(err.to_string().contains("different sweep"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn nonempty_journal_without_resume_is_refused() {
        let dir = tmpdir("noresume");
        let m = manifest(4);
        let mut ck = Checkpoint::open(&dir, &m, false).unwrap();
        ck.record(CellRecord {
            cell: 0,
            secs_bits: 1.0_f64.to_bits(),
            cycles: 1,
            attempts: 1,
            error_kind: String::new(),
        })
        .unwrap();
        drop(ck);
        let err = Checkpoint::open(&dir, &m, false).unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_tolerated_but_interior_corruption_is_not() {
        let dir = tmpdir("torn");
        let m = manifest(4);
        let mut ck = Checkpoint::open(&dir, &m, false).unwrap();
        for cell in 0..2u64 {
            ck.record(CellRecord {
                cell,
                secs_bits: (cell as f64).to_bits(),
                cycles: cell,
                attempts: 1,
                error_kind: String::new(),
            })
            .unwrap();
        }
        drop(ck);

        // Simulate SIGKILL mid-append: a torn final line.
        let jpath = Checkpoint::journal_path(&dir);
        let mut f = OpenOptions::new().append(true).open(&jpath).unwrap();
        f.write_all(b"{\"cell\": 3, \"secs_b").unwrap();
        drop(f);
        let ck = Checkpoint::open(&dir, &m, true).unwrap();
        assert_eq!(ck.resumed_cells(), 2, "torn tail dropped, intact records kept");
        drop(ck);

        // Interior corruption (cannot come from a crash) is a hard error.
        let text = fs::read_to_string(&jpath).unwrap();
        fs::write(&jpath, format!("garbage-not-json\n{text}")).unwrap();
        let err = Checkpoint::open(&dir, &m, true).unwrap_err();
        assert!(err.to_string().contains("corrupt journal"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retried_cell_latest_record_wins() {
        let dir = tmpdir("latest");
        let m = manifest(2);
        let mut ck = Checkpoint::open(&dir, &m, false).unwrap();
        ck.record(CellRecord {
            cell: 1,
            secs_bits: f64::NAN.to_bits(),
            cycles: 0,
            attempts: 1,
            error_kind: "deadline".into(),
        })
        .unwrap();
        ck.record(CellRecord {
            cell: 1,
            secs_bits: 2.5_f64.to_bits(),
            cycles: 10,
            attempts: 2,
            error_kind: String::new(),
        })
        .unwrap();
        drop(ck);
        let ck = Checkpoint::open(&dir, &m, true).unwrap();
        let rec = ck.done(1).unwrap();
        assert!(rec.ok());
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.secs(), 2.5);
        let _ = fs::remove_dir_all(&dir);
    }
}
