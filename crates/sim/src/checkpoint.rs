//! Content-addressed sweep checkpoints: manifest + append-only journal.
//!
//! A durable sweep (DESIGN.md §5f) persists two files in its checkpoint
//! directory:
//!
//! * `manifest.json` — a [`SweepManifest`] identifying *what* is being
//!   swept: sweep name, cell count, and a content fingerprint over the
//!   kernel, grid, and machine-configuration descriptions. Written
//!   atomically (temp file + rename) so a crash can never leave a torn
//!   manifest. On `--resume`, a fingerprint mismatch is a hard error —
//!   resuming someone else's journal would silently mix results from two
//!   different experiments.
//! * `journal.jsonl` — one [`CellRecord`] JSON line per *completed* cell,
//!   appended and flushed as each cell finishes. Timing results are stored
//!   as [`f64::to_bits`] (`secs_bits`) so a resumed run reconstructs the
//!   surface **bit-identically**: no decimal round-trip is involved, and
//!   the vendored JSON layer keeps integer literals as text.
//!
//! A process killed mid-append (SIGKILL) can leave at most one truncated
//! line at the *end* of the journal; [`Checkpoint::open`] tolerates exactly
//! that (the cell is simply recomputed) while a malformed line anywhere
//! else — which no crash can produce — is reported as corruption.

use crate::error::SimError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal/manifest schema version; bump on incompatible layout changes.
pub const CHECKPOINT_SCHEMA: u32 = 1;

/// 64-bit FNV-1a over `bytes` — the workspace's dependency-free content
/// hash. Not cryptographic; it only needs to make accidental manifest
/// collisions (different kernel/grid/config under one checkpoint dir)
/// overwhelmingly unlikely.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a over a sequence of parts with a separator byte between them, so
/// `["ab", "c"]` and `["a", "bc"]` hash differently.
pub fn fingerprint<I, P>(parts: I) -> u64
where
    I: IntoIterator<Item = P>,
    P: AsRef<[u8]>,
{
    let mut buf = Vec::new();
    for p in parts {
        buf.extend_from_slice(p.as_ref());
        buf.push(0x1f);
    }
    fnv1a(&buf)
}

/// Identity of a sweep: what the journal's cell indices mean.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepManifest {
    /// Layout version ([`CHECKPOINT_SCHEMA`]).
    pub schema: u32,
    /// Human-readable sweep name (e.g. the figure/binary name).
    pub name: String,
    /// Hex content fingerprint over kernel + grid + machine configuration.
    pub fingerprint: String,
    /// Total number of cells in the sweep (journal indices are `0..cells`).
    pub cells: usize,
    /// Free-form description shown in mismatch errors.
    pub description: String,
}

impl SweepManifest {
    /// Builds a manifest whose fingerprint covers `parts` (kernel name,
    /// grid rendering, config debug strings, …) plus the cell count.
    pub fn new<I, P>(name: &str, description: &str, cells: usize, parts: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        let mut buf: Vec<Vec<u8>> = vec![format!("cells={cells}").into_bytes()];
        buf.extend(parts.into_iter().map(|p| p.as_ref().to_vec()));
        SweepManifest {
            schema: CHECKPOINT_SCHEMA,
            name: name.to_string(),
            fingerprint: format!("{:016x}", fingerprint(buf)),
            cells,
            description: description.to_string(),
        }
    }
}

/// One completed cell, as journaled. `secs_bits` is the cell's measured
/// seconds as raw IEEE-754 bits; failed cells journal `f64::NAN`'s bits
/// together with the error kind so a resume neither recomputes nor
/// forgets them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Flat cell index in `0..manifest.cells` (row-major over the grid).
    pub cell: u64,
    /// `f64::to_bits` of the cell's seconds value (NaN bits on failure).
    pub secs_bits: u64,
    /// Simulated cycles the cell consumed (0 on failure).
    pub cycles: u64,
    /// How many attempts the cell took (1 = first try).
    pub attempts: u32,
    /// `SimError::kind()` tag when the cell ultimately failed, else empty.
    #[serde(default)]
    pub error_kind: String,
}

impl CellRecord {
    /// The journaled seconds value.
    pub fn secs(&self) -> f64 {
        f64::from_bits(self.secs_bits)
    }

    /// Whether the cell completed successfully.
    pub fn ok(&self) -> bool {
        self.error_kind.is_empty()
    }
}

/// An open checkpoint directory: validated manifest, loaded journal, and
/// an append handle for new records.
#[derive(Debug)]
pub struct Checkpoint {
    dir: PathBuf,
    journal: Mutex<File>,
    done: HashMap<u64, CellRecord>,
    resumed_cells: usize,
}

fn io_err(what: impl std::fmt::Display) -> SimError {
    SimError::Io { what: what.to_string() }
}

impl Checkpoint {
    /// Path of the manifest file inside `dir`.
    pub fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("manifest.json")
    }

    /// Path of the journal file inside `dir`.
    pub fn journal_path(dir: &Path) -> PathBuf {
        dir.join("journal.jsonl")
    }

    /// Opens (creating if needed) the checkpoint at `dir` for `manifest`.
    ///
    /// * Fresh directory: the manifest is written atomically and an empty
    ///   journal is created.
    /// * Existing directory with `resume = true`: the stored manifest must
    ///   match `manifest` exactly (schema, fingerprint, cell count);
    ///   journaled records are loaded so the sweep can skip them.
    /// * Existing directory with a non-empty journal and `resume = false`:
    ///   refused — overwriting a journal silently discards completed work;
    ///   the caller must pass `--resume` or point at a fresh directory.
    pub fn open(dir: &Path, manifest: &SweepManifest, resume: bool) -> Result<Self, SimError> {
        fs::create_dir_all(dir)
            .map_err(|e| io_err(format!("create checkpoint dir {}: {e}", dir.display())))?;
        let mpath = Self::manifest_path(dir);
        let jpath = Self::journal_path(dir);

        if mpath.exists() {
            let text = fs::read_to_string(&mpath)
                .map_err(|e| io_err(format!("read {}: {e}", mpath.display())))?;
            let stored: SweepManifest = serde_json::from_str(&text)
                .map_err(|e| io_err(format!("parse {}: {e}", mpath.display())))?;
            if stored != *manifest {
                return Err(io_err(format!(
                    "checkpoint at {} belongs to a different sweep: stored \
                     {}/{} ({} cells), requested {}/{} ({} cells); use a \
                     fresh --checkpoint-dir",
                    dir.display(),
                    stored.name,
                    stored.fingerprint,
                    stored.cells,
                    manifest.name,
                    manifest.fingerprint,
                    manifest.cells,
                )));
            }
            let journal_len = fs::metadata(&jpath).map(|m| m.len()).unwrap_or(0);
            if !resume && journal_len > 0 {
                return Err(io_err(format!(
                    "checkpoint at {} already has a journal with completed \
                     cells; pass --resume to continue it or choose a fresh \
                     --checkpoint-dir",
                    dir.display(),
                )));
            }
        } else {
            // Atomic create: render to a temp file in the same directory,
            // then rename over the final name. `rename` within one
            // filesystem is atomic, so readers see either no manifest or a
            // complete one.
            let tmp = dir.join("manifest.json.tmp");
            let body = serde_json::to_string_pretty(manifest)
                .map_err(|e| io_err(format!("serialize manifest: {e}")))?;
            fs::write(&tmp, body.as_bytes())
                .map_err(|e| io_err(format!("write {}: {e}", tmp.display())))?;
            fs::rename(&tmp, &mpath)
                .map_err(|e| io_err(format!("rename {} into place: {e}", tmp.display())))?;
        }

        if resume && jpath.exists() {
            // Repair the tail *before* opening the append handle: without
            // this, the first record appended by a resumed run would be
            // glued onto whatever debris the previous crash left on the
            // final line, turning a tolerated torn tail into interior
            // corruption that hard-fails the *next* resume.
            repair_tail(&jpath)?;
        }
        let done = if resume && jpath.exists() { Self::load_journal(&jpath)? } else { HashMap::new() };
        let resumed_cells = done.len();

        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&jpath)
            .map_err(|e| io_err(format!("open {}: {e}", jpath.display())))?;

        Ok(Self { dir: dir.to_path_buf(), journal: Mutex::new(journal), done, resumed_cells })
    }

    /// Parses the journal, tolerating a truncated *final* line (the one
    /// state a SIGKILL mid-append can leave behind). A later record for
    /// the same cell wins — retries append a fresh record rather than
    /// rewriting history.
    fn load_journal(path: &Path) -> Result<HashMap<u64, CellRecord>, SimError> {
        let text =
            fs::read_to_string(path).map_err(|e| io_err(format!("read {}: {e}", path.display())))?;
        let lines: Vec<&str> = text.lines().collect();
        let mut done = HashMap::new();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<CellRecord>(line) {
                Ok(rec) => {
                    done.insert(rec.cell, rec);
                }
                Err(e) if i + 1 == lines.len() => {
                    // Torn tail from an unclean death; the cell re-runs.
                    let _ = e;
                }
                Err(e) => {
                    return Err(io_err(format!(
                        "corrupt journal {}: line {} is malformed ({e}); only \
                         the final line may be truncated by a crash",
                        path.display(),
                        i + 1,
                    )));
                }
            }
        }
        Ok(done)
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The journaled record for `cell`, if one was loaded on resume or
    /// recorded this run.
    pub fn done(&self, cell: u64) -> Option<&CellRecord> {
        self.done.get(&cell)
    }

    /// All journaled records (resume-loaded plus this run's), keyed by
    /// cell index. The `save-serve` result cache seeds its memo table from
    /// this map when the daemon restarts over an existing cache directory.
    pub fn done_map(&self) -> &HashMap<u64, CellRecord> {
        &self.done
    }

    /// Number of cells loaded from a prior run's journal at open time.
    pub fn resumed_cells(&self) -> usize {
        self.resumed_cells
    }

    /// Appends `rec` to the journal and flushes it to the OS, so the
    /// record survives any subsequent process death.
    pub fn record(&mut self, rec: CellRecord) -> Result<(), SimError> {
        let line =
            serde_json::to_string(&rec).map_err(|e| io_err(format!("serialize record: {e}")))?;
        {
            let mut f = self.journal.lock().expect("journal handle poisoned");
            f.write_all(line.as_bytes())
                .and_then(|()| f.write_all(b"\n"))
                .and_then(|()| f.flush())
                .map_err(|e| io_err(format!("append journal: {e}")))?;
        }
        self.done.insert(rec.cell, rec);
        Ok(())
    }
}

/// Splits journal text into its newline-terminated prefix and the
/// unterminated tail that a crash mid-append can leave behind.
fn split_terminated(text: &str) -> (&str, &str) {
    match text.rfind('\n') {
        Some(i) => text.split_at(i + 1),
        None => ("", text),
    }
}

/// What [`repair_tail`] found (and fixed) at the end of a journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailRepair {
    /// The journal already ends on a record boundary.
    Clean,
    /// A torn partial record was truncated away (the cell re-runs).
    TruncatedTorn,
    /// The final record was complete but its `\n` terminator was missing —
    /// the *zero-length* torn-record case, where the crash landed between
    /// `write_all(line)` and `write_all(b"\n")`. The record is durable, so
    /// the terminator is appended instead of discarding the result.
    Terminated,
}

/// Repairs a journal's tail in place so subsequent appends always start on
/// a fresh line. Interior lines are left untouched; malformed interior
/// content is [`Checkpoint::open`]'s corruption error, not ours to hide.
fn repair_tail(path: &Path) -> Result<TailRepair, SimError> {
    let text =
        fs::read_to_string(path).map_err(|e| io_err(format!("read {}: {e}", path.display())))?;
    let (terminated, tail) = split_terminated(&text);
    if tail.is_empty() {
        return Ok(TailRepair::Clean);
    }
    if serde_json::from_str::<CellRecord>(tail).is_ok() {
        let mut f = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(format!("open {}: {e}", path.display())))?;
        f.write_all(b"\n")
            .and_then(|()| f.flush())
            .map_err(|e| io_err(format!("terminate journal tail {}: {e}", path.display())))?;
        Ok(TailRepair::Terminated)
    } else {
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(format!("open {}: {e}", path.display())))?;
        f.set_len(terminated.len() as u64)
            .map_err(|e| io_err(format!("truncate torn tail of {}: {e}", path.display())))?;
        Ok(TailRepair::TruncatedTorn)
    }
}

/// A cell with more than one journal record (retries append rather than
/// rewrite, so duplicates are normal after a flaky run). Reported by
/// [`fsck_journal`] so operators can see latest-record-wins in action.
#[derive(Clone, Debug, Serialize)]
pub struct DuplicateCell {
    /// Flat cell index.
    pub cell: u64,
    /// How many records the journal holds for it.
    pub records: usize,
    /// `error_kind` of the *winning* (latest) record; empty = succeeded.
    pub final_kind: String,
}

/// Outcome of [`fsck_journal`]: integrity findings plus what (if anything)
/// was repaired.
#[derive(Clone, Debug, Serialize)]
pub struct FsckReport {
    /// Journal path that was checked.
    pub path: String,
    /// Total well-formed records (including the unterminated-but-complete
    /// final record, if any).
    pub records: usize,
    /// Distinct cells covered after latest-record-wins collapsing.
    pub unique_cells: usize,
    /// Cells whose winning record is a failure (`error_kind` non-empty).
    pub failed_cells: usize,
    /// Cells with more than one record, ascending by cell index.
    pub duplicate_cells: Vec<DuplicateCell>,
    /// Bytes of torn partial record at the tail (0 when none).
    pub torn_tail_bytes: u64,
    /// Final record is complete JSON but missing its `\n` terminator.
    pub missing_terminator: bool,
    /// Whether a requested repair rewrote the tail.
    pub repaired: bool,
}

impl FsckReport {
    /// Whether the journal needs (or needed) a tail repair.
    pub fn dirty(&self) -> bool {
        self.torn_tail_bytes > 0 || self.missing_terminator
    }
}

/// Validates `path` as a cell journal and optionally repairs its tail.
///
/// * Well-formed records are tallied; duplicate cells are reported with
///   their latest-record-wins winner.
/// * A torn or unterminated *tail* is reported (and fixed when `repair`),
///   exactly as [`Checkpoint::open`] would on resume.
/// * A malformed line anywhere *else* cannot come from a crash and is a
///   hard error — fsck refuses to guess which experiment the bytes
///   belonged to.
pub fn fsck_journal(path: &Path, repair: bool) -> Result<FsckReport, SimError> {
    let text =
        fs::read_to_string(path).map_err(|e| io_err(format!("read {}: {e}", path.display())))?;
    let (terminated, tail) = split_terminated(&text);

    let mut records = 0usize;
    // cell -> (record count, latest error_kind), plus first-seen order.
    let mut per_cell: HashMap<u64, (usize, String)> = HashMap::new();
    for (i, line) in terminated.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: CellRecord = serde_json::from_str(line).map_err(|e| {
            io_err(format!(
                "corrupt journal {}: line {} is malformed ({e}); only the \
                 final line may be damaged by a crash — this journal needs \
                 manual triage, not fsck --repair",
                path.display(),
                i + 1,
            ))
        })?;
        records += 1;
        let entry = per_cell.entry(rec.cell).or_insert((0, String::new()));
        entry.0 += 1;
        entry.1 = rec.error_kind;
    }

    let mut torn_tail_bytes = 0u64;
    let mut missing_terminator = false;
    if !tail.is_empty() {
        match serde_json::from_str::<CellRecord>(tail) {
            Ok(rec) => {
                missing_terminator = true;
                records += 1;
                let entry = per_cell.entry(rec.cell).or_insert((0, String::new()));
                entry.0 += 1;
                entry.1 = rec.error_kind;
            }
            Err(_) => torn_tail_bytes = tail.len() as u64,
        }
    }

    let mut repaired = false;
    if repair && (torn_tail_bytes > 0 || missing_terminator) {
        repair_tail(path)?;
        repaired = true;
    }

    let mut duplicate_cells: Vec<DuplicateCell> = per_cell
        .iter()
        .filter(|(_, (n, _))| *n > 1)
        .map(|(&cell, (n, kind))| DuplicateCell { cell, records: *n, final_kind: kind.clone() })
        .collect();
    duplicate_cells.sort_by_key(|d| d.cell);
    let failed_cells = per_cell.values().filter(|(_, kind)| !kind.is_empty()).count();

    Ok(FsckReport {
        path: path.display().to_string(),
        records,
        unique_cells: per_cell.len(),
        failed_cells,
        duplicate_cells,
        torn_tail_bytes,
        missing_terminator,
        repaired,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("save-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn manifest(cells: usize) -> SweepManifest {
        SweepManifest::new("test-sweep", "unit test", cells, ["gemm", "grid=4x4", "cfg"])
    }

    #[test]
    fn fingerprint_separates_parts() {
        assert_ne!(fingerprint(["ab", "c"]), fingerprint(["a", "bc"]));
        assert_eq!(fingerprint(["a", "b"]), fingerprint(["a", "b"]));
    }

    #[test]
    fn record_and_resume_round_trip_bits() {
        let dir = tmpdir("roundtrip");
        let m = manifest(4);
        let mut ck = Checkpoint::open(&dir, &m, false).unwrap();
        let secs = 1.0_f64 / 3.0; // not representable exactly
        ck.record(CellRecord {
            cell: 2,
            secs_bits: secs.to_bits(),
            cycles: 987654321,
            attempts: 1,
            error_kind: String::new(),
        })
        .unwrap();
        drop(ck);

        let ck = Checkpoint::open(&dir, &m, true).unwrap();
        assert_eq!(ck.resumed_cells(), 1);
        let rec = ck.done(2).expect("cell 2 journaled");
        assert_eq!(rec.secs().to_bits(), secs.to_bits(), "bit-identical resume");
        assert_eq!(rec.cycles, 987654321);
        assert!(rec.ok());
        assert!(ck.done(0).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_manifest_is_refused() {
        let dir = tmpdir("mismatch");
        Checkpoint::open(&dir, &manifest(4), false).unwrap();
        let other = SweepManifest::new("test-sweep", "unit test", 4, ["gemm", "grid=5x5", "cfg"]);
        let err = Checkpoint::open(&dir, &other, true).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert!(err.to_string().contains("different sweep"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn nonempty_journal_without_resume_is_refused() {
        let dir = tmpdir("noresume");
        let m = manifest(4);
        let mut ck = Checkpoint::open(&dir, &m, false).unwrap();
        ck.record(CellRecord {
            cell: 0,
            secs_bits: 1.0_f64.to_bits(),
            cycles: 1,
            attempts: 1,
            error_kind: String::new(),
        })
        .unwrap();
        drop(ck);
        let err = Checkpoint::open(&dir, &m, false).unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_tolerated_but_interior_corruption_is_not() {
        let dir = tmpdir("torn");
        let m = manifest(4);
        let mut ck = Checkpoint::open(&dir, &m, false).unwrap();
        for cell in 0..2u64 {
            ck.record(CellRecord {
                cell,
                secs_bits: (cell as f64).to_bits(),
                cycles: cell,
                attempts: 1,
                error_kind: String::new(),
            })
            .unwrap();
        }
        drop(ck);

        // Simulate SIGKILL mid-append: a torn final line.
        let jpath = Checkpoint::journal_path(&dir);
        let mut f = OpenOptions::new().append(true).open(&jpath).unwrap();
        f.write_all(b"{\"cell\": 3, \"secs_b").unwrap();
        drop(f);
        let ck = Checkpoint::open(&dir, &m, true).unwrap();
        assert_eq!(ck.resumed_cells(), 2, "torn tail dropped, intact records kept");
        drop(ck);

        // Interior corruption (cannot come from a crash) is a hard error.
        let text = fs::read_to_string(&jpath).unwrap();
        fs::write(&jpath, format!("garbage-not-json\n{text}")).unwrap();
        let err = Checkpoint::open(&dir, &m, true).unwrap_err();
        assert!(err.to_string().contains("corrupt journal"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    /// The bug this PR fixes: resuming over a torn tail used to open the
    /// append handle *after* the partial bytes, so the first new record
    /// was glued onto the debris — tolerated on that resume, then fatal
    /// interior corruption on the next one. Repair must keep appends
    /// line-aligned across any number of crash/resume cycles.
    #[test]
    fn torn_tail_is_truncated_so_appends_stay_line_aligned() {
        let dir = tmpdir("repair-torn");
        let m = manifest(4);
        let mut ck = Checkpoint::open(&dir, &m, false).unwrap();
        ck.record(CellRecord {
            cell: 0,
            secs_bits: 0.5_f64.to_bits(),
            cycles: 7,
            attempts: 1,
            error_kind: String::new(),
        })
        .unwrap();
        drop(ck);
        let jpath = Checkpoint::journal_path(&dir);
        let mut f = OpenOptions::new().append(true).open(&jpath).unwrap();
        f.write_all(b"{\"cell\": 3, \"secs_b").unwrap();
        drop(f);

        let mut ck = Checkpoint::open(&dir, &m, true).unwrap();
        assert_eq!(ck.resumed_cells(), 1, "torn record dropped");
        ck.record(CellRecord {
            cell: 1,
            secs_bits: 1.5_f64.to_bits(),
            cycles: 9,
            attempts: 1,
            error_kind: String::new(),
        })
        .unwrap();
        drop(ck);

        // Second resume: without tail repair this failed with "corrupt
        // journal" because cell 1's record was fused onto the torn bytes.
        let ck = Checkpoint::open(&dir, &m, true).unwrap();
        assert_eq!(ck.resumed_cells(), 2);
        assert_eq!(ck.done(1).unwrap().secs(), 1.5);
        assert!(ck.done(3).is_none(), "torn cell re-runs");
        let _ = fs::remove_dir_all(&dir);
    }

    /// The zero-length torn-record case: the crash landed between writing
    /// the record bytes and the `\n` terminator. The record is complete
    /// and must be *kept* (terminator appended), not truncated away — and
    /// the next append must not fuse onto it.
    #[test]
    fn unterminated_complete_record_is_terminated_not_glued() {
        let dir = tmpdir("repair-unterm");
        let m = manifest(4);
        let mut ck = Checkpoint::open(&dir, &m, false).unwrap();
        for cell in 0..2u64 {
            ck.record(CellRecord {
                cell,
                secs_bits: (cell as f64).to_bits(),
                cycles: cell,
                attempts: 1,
                error_kind: String::new(),
            })
            .unwrap();
        }
        drop(ck);
        // Strip the final newline: complete record, zero-length torn tail.
        let jpath = Checkpoint::journal_path(&dir);
        let text = fs::read_to_string(&jpath).unwrap();
        assert!(text.ends_with('\n'));
        fs::write(&jpath, &text[..text.len() - 1]).unwrap();

        let mut ck = Checkpoint::open(&dir, &m, true).unwrap();
        assert_eq!(ck.resumed_cells(), 2, "complete unterminated record kept");
        ck.record(CellRecord {
            cell: 2,
            secs_bits: 2.0_f64.to_bits(),
            cycles: 2,
            attempts: 1,
            error_kind: String::new(),
        })
        .unwrap();
        drop(ck);

        let ck = Checkpoint::open(&dir, &m, true).unwrap();
        assert_eq!(ck.resumed_cells(), 3, "no record lost, no line fused");
        for cell in 0..3u64 {
            assert_eq!(ck.done(cell).unwrap().secs(), cell as f64);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_reports_duplicates_and_repairs_torn_tail() {
        let dir = tmpdir("fsck");
        let m = manifest(4);
        let mut ck = Checkpoint::open(&dir, &m, false).unwrap();
        ck.record(CellRecord {
            cell: 1,
            secs_bits: f64::NAN.to_bits(),
            cycles: 0,
            attempts: 1,
            error_kind: "deadline".into(),
        })
        .unwrap();
        ck.record(CellRecord {
            cell: 1,
            secs_bits: 2.5_f64.to_bits(),
            cycles: 10,
            attempts: 2,
            error_kind: String::new(),
        })
        .unwrap();
        ck.record(CellRecord {
            cell: 2,
            secs_bits: f64::NAN.to_bits(),
            cycles: 0,
            attempts: 3,
            error_kind: "cycle-budget".into(),
        })
        .unwrap();
        drop(ck);
        let jpath = Checkpoint::journal_path(&dir);
        let mut f = OpenOptions::new().append(true).open(&jpath).unwrap();
        f.write_all(b"{\"cell\": 3,").unwrap();
        drop(f);

        let report = fsck_journal(&jpath, false).unwrap();
        assert_eq!(report.records, 3);
        assert_eq!(report.unique_cells, 2);
        assert_eq!(report.failed_cells, 1, "cell 1 healed by retry, cell 2 failed");
        assert_eq!(report.duplicate_cells.len(), 1);
        assert_eq!(report.duplicate_cells[0].cell, 1);
        assert_eq!(report.duplicate_cells[0].records, 2);
        assert_eq!(report.duplicate_cells[0].final_kind, "", "latest record wins");
        assert_eq!(report.torn_tail_bytes, 11);
        assert!(report.dirty() && !report.repaired, "validate-only leaves the file alone");

        let report = fsck_journal(&jpath, true).unwrap();
        assert!(report.repaired);
        let report = fsck_journal(&jpath, false).unwrap();
        assert!(!report.dirty(), "second fsck finds a clean journal");
        assert_eq!(report.records, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_counts_unterminated_record_and_rejects_interior_corruption() {
        let dir = tmpdir("fsck-unterm");
        let m = manifest(4);
        let mut ck = Checkpoint::open(&dir, &m, false).unwrap();
        ck.record(CellRecord {
            cell: 0,
            secs_bits: 1.0_f64.to_bits(),
            cycles: 1,
            attempts: 1,
            error_kind: String::new(),
        })
        .unwrap();
        drop(ck);
        let jpath = Checkpoint::journal_path(&dir);
        let text = fs::read_to_string(&jpath).unwrap();
        fs::write(&jpath, &text[..text.len() - 1]).unwrap();

        let report = fsck_journal(&jpath, true).unwrap();
        assert_eq!(report.records, 1, "complete unterminated record counted");
        assert!(report.missing_terminator && report.repaired);

        fs::write(&jpath, format!("not-json\n{text}")).unwrap();
        let err = fsck_journal(&jpath, true).unwrap_err();
        assert!(err.to_string().contains("manual triage"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retried_cell_latest_record_wins() {
        let dir = tmpdir("latest");
        let m = manifest(2);
        let mut ck = Checkpoint::open(&dir, &m, false).unwrap();
        ck.record(CellRecord {
            cell: 1,
            secs_bits: f64::NAN.to_bits(),
            cycles: 0,
            attempts: 1,
            error_kind: "deadline".into(),
        })
        .unwrap();
        ck.record(CellRecord {
            cell: 1,
            secs_bits: 2.5_f64.to_bits(),
            cycles: 10,
            attempts: 2,
            error_kind: String::new(),
        })
        .unwrap();
        drop(ck);
        let ck = Checkpoint::open(&dir, &m, true).unwrap();
        let rec = ck.done(1).unwrap();
        assert!(rec.ok());
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.secs(), 2.5);
        let _ = fs::remove_dir_all(&dir);
    }
}
