//! Typed simulation errors.
//!
//! Every fallible entry point in `save-sim` returns [`SimError`] instead of
//! panicking, so figure sweeps can record a failure for one operating point
//! and keep going. The type is serializable (it rides inside the sweep-level
//! [`crate::parallel::FailureReport`]) and keeps only owned strings and
//! plain data so it crosses thread and process boundaries cleanly.

use save_core::{SanitizerReport, StallDiag};
use serde::{Deserialize, Serialize};

/// An error from running or configuring a simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum SimError {
    /// A kernel ran to completion but its output disagreed with the
    /// functional reference at `index`.
    VerifyMismatch {
        /// Kernel / workload name.
        kernel: String,
        /// Core that produced the mismatch, when known (multicore runs).
        core: Option<usize>,
        /// Element index of the first mismatch.
        index: usize,
        /// Value the simulated machine produced.
        got: f32,
        /// Value the reference expected.
        want: f32,
    },
    /// The run stopped before draining: it hit the cycle budget or the
    /// retire-progress watchdog. `diag` says which and names the stalled
    /// resource.
    CycleBudgetExceeded {
        /// Kernel / workload name.
        kernel: String,
        /// Core that stalled, when known (multicore runs).
        core: Option<usize>,
        /// Pipeline snapshot at the moment the run was aborted.
        diag: Box<StallDiag>,
    },
    /// The cycle-level sanitizer detected a microarchitectural invariant
    /// violation (or an internal model-integrity check fired) and the run
    /// was aborted. `report` carries the invariant name, detection cycle
    /// and a witness of the inconsistent state.
    InvariantViolation {
        /// Kernel / workload name.
        kernel: String,
        /// Core that tripped the invariant, when known (multicore runs).
        core: Option<usize>,
        /// The sanitizer's structured witness.
        report: Box<SanitizerReport>,
    },
    /// A core or memory configuration failed validation before the run
    /// started.
    InvalidConfig {
        /// Which field is out of range, verbatim from `validate()`.
        what: String,
    },
    /// A parallel sweep job panicked; the panic was caught at the job
    /// boundary so the rest of the sweep could finish.
    WorkerPanic {
        /// Index of the job in the sweep's item list.
        job: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An I/O or serialization failure (writing results, reading configs).
    Io {
        /// Description of what failed.
        what: String,
    },
}

impl SimError {
    /// Short machine-readable tag for tables and filenames.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::VerifyMismatch { .. } => "verify-mismatch",
            SimError::CycleBudgetExceeded { .. } => "cycle-budget",
            SimError::InvariantViolation { .. } => "invariant-violation",
            SimError::InvalidConfig { .. } => "invalid-config",
            SimError::WorkerPanic { .. } => "worker-panic",
            SimError::Io { .. } => "io",
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::VerifyMismatch { kernel, core, index, got, want } => {
                write!(f, "kernel {kernel}")?;
                if let Some(c) = core {
                    write!(f, " (core {c})")?;
                }
                write!(f, ": output mismatch at {index}: got {got} want {want}")
            }
            SimError::CycleBudgetExceeded { kernel, core, diag } => {
                write!(f, "kernel {kernel}")?;
                if let Some(c) = core {
                    write!(f, " (core {c})")?;
                }
                write!(f, ": did not complete: {diag}")
            }
            SimError::InvariantViolation { kernel, core, report } => {
                write!(f, "kernel {kernel}")?;
                if let Some(c) = core {
                    write!(f, " (core {c})")?;
                }
                write!(f, ": sanitizer abort: {report}")
            }
            SimError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            SimError::WorkerPanic { job, message } => {
                write!(f, "sweep job {job} panicked: {message}")
            }
            SimError::Io { what } => write!(f, "i/o error: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<std::io::Error> for SimError {
    fn from(e: std::io::Error) -> Self {
        SimError::Io { what: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let e = SimError::VerifyMismatch {
            kernel: "gemm".into(),
            core: Some(3),
            index: 7,
            got: 1.0,
            want: 2.0,
        };
        let s = e.to_string();
        assert!(s.contains("gemm") && s.contains("core 3") && s.contains("at 7"), "{s}");
        assert_eq!(e.kind(), "verify-mismatch");
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "no such file");
        let e: SimError = io.into();
        assert_eq!(e.kind(), "io");
        assert!(e.to_string().contains("no such file"));
    }
}
