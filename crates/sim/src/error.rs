//! Typed simulation errors.
//!
//! Every fallible entry point in `save-sim` returns [`SimError`] instead of
//! panicking, so figure sweeps can record a failure for one operating point
//! and keep going. The type is serializable (it rides inside the sweep-level
//! [`crate::parallel::FailureReport`]) and keeps only owned strings and
//! plain data so it crosses thread and process boundaries cleanly.

use save_core::{SanitizerReport, StallDiag};
use serde::{Deserialize, Serialize};

/// An error from running or configuring a simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum SimError {
    /// A kernel ran to completion but its output disagreed with the
    /// functional reference at `index`.
    VerifyMismatch {
        /// Kernel / workload name.
        kernel: String,
        /// Core that produced the mismatch, when known (multicore runs).
        core: Option<usize>,
        /// Element index of the first mismatch.
        index: usize,
        /// Value the simulated machine produced.
        got: f32,
        /// Value the reference expected.
        want: f32,
    },
    /// The run stopped before draining: it hit the cycle budget or the
    /// retire-progress watchdog. `diag` says which and names the stalled
    /// resource.
    CycleBudgetExceeded {
        /// Kernel / workload name.
        kernel: String,
        /// Core that stalled, when known (multicore runs).
        core: Option<usize>,
        /// Pipeline snapshot at the moment the run was aborted.
        diag: Box<StallDiag>,
    },
    /// The cycle-level sanitizer detected a microarchitectural invariant
    /// violation (or an internal model-integrity check fired) and the run
    /// was aborted. `report` carries the invariant name, detection cycle
    /// and a witness of the inconsistent state.
    InvariantViolation {
        /// Kernel / workload name.
        kernel: String,
        /// Core that tripped the invariant, when known (multicore runs).
        core: Option<usize>,
        /// The sanitizer's structured witness.
        report: Box<SanitizerReport>,
    },
    /// A core or memory configuration failed validation before the run
    /// started.
    InvalidConfig {
        /// Which field is out of range, verbatim from `validate()`.
        what: String,
    },
    /// A parallel sweep job panicked; the panic was caught at the job
    /// boundary so the rest of the sweep could finish.
    WorkerPanic {
        /// Index of the job in the sweep's item list.
        job: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An I/O or serialization failure (writing results, reading configs).
    Io {
        /// Description of what failed.
        what: String,
    },
    /// The run was cancelled cooperatively (Ctrl-C / SIGTERM or an embedder's
    /// cancel token): the core stopped at its next cycle-quantum boundary.
    /// Cancelled cells are *not* failures — a resumed sweep recomputes them.
    Cancelled {
        /// Kernel / sweep cell that was interrupted.
        what: String,
    },
    /// A sweep cell exceeded its per-cell wall-clock deadline and was
    /// interrupted by the supervisor. Distinct from [`SimError::Cancelled`]:
    /// only this cell was stopped, the sweep keeps going.
    DeadlineExceeded {
        /// Kernel / sweep cell that was interrupted.
        what: String,
        /// The deadline that was exceeded, in milliseconds.
        millis: u64,
    },
    /// The `save-serve` daemon refused to admit a job because its bounded
    /// queues are full (admission control / backpressure). The client
    /// should retry after `retry_after_ms` instead of queueing unboundedly.
    Overloaded {
        /// What was rejected (job name / cell count).
        what: String,
        /// Suggested client backoff before resubmitting, in milliseconds.
        retry_after_ms: u64,
    },
    /// A malformed or unexpected message on the `save-serve` wire protocol
    /// (bad JSON, wrong response type, version mismatch). Retrying the
    /// same bytes reproduces the same rejection.
    Protocol {
        /// Description of the violation.
        what: String,
    },
    /// A `save-serve` worker died (crashed / was killed) while this cell
    /// was in flight; the cell is journaled as failed-retryable and
    /// requeued to a fresh worker.
    WorkerLost {
        /// The cell that was in flight on the lost worker.
        what: String,
    },
}

/// How a durable sweep should react to a failed cell (DESIGN.md §5f).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetryClass {
    /// Retrying cannot change the outcome (deterministic model error):
    /// record the failure immediately and move on.
    Permanent,
    /// The failure may be environmental (scheduling jitter tripping a
    /// deadline, a panic from resource pressure, a transient I/O error):
    /// retry with exponential backoff up to the policy's attempt budget.
    Transient,
    /// The whole sweep is being cancelled: stop retrying, flush the
    /// journal, and exit with the "cancelled, resumable" code.
    Cancelled,
}

impl SimError {
    /// Short machine-readable tag for tables and filenames.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::VerifyMismatch { .. } => "verify-mismatch",
            SimError::CycleBudgetExceeded { .. } => "cycle-budget",
            SimError::InvariantViolation { .. } => "invariant-violation",
            SimError::InvalidConfig { .. } => "invalid-config",
            SimError::WorkerPanic { .. } => "worker-panic",
            SimError::Io { .. } => "io",
            SimError::Cancelled { .. } => "cancelled",
            SimError::DeadlineExceeded { .. } => "deadline",
            SimError::Overloaded { .. } => "overloaded",
            SimError::Protocol { .. } => "protocol",
            SimError::WorkerLost { .. } => "worker-lost",
        }
    }

    /// Classifies this error for the durable sweep's retry state machine.
    ///
    /// The table is deliberately exhaustive (no `_` arm) so adding a variant
    /// forces a classification decision here; `tests::retry_classification`
    /// asserts every `kind()` tag's class.
    ///
    /// * Model-determined outcomes ([`SimError::VerifyMismatch`],
    ///   [`SimError::InvariantViolation`], [`SimError::InvalidConfig`]) are
    ///   [`RetryClass::Permanent`]: the simulator is deterministic, so
    ///   re-running the same cell reproduces the same error.
    /// * [`SimError::CycleBudgetExceeded`] is [`RetryClass::Transient`]: a
    ///   stall diagnosis depends on the configured budget/horizon, and the
    ///   durable layer's policy may raise them between attempts.
    /// * Host-side failures ([`SimError::WorkerPanic`], [`SimError::Io`],
    ///   [`SimError::DeadlineExceeded`]) are [`RetryClass::Transient`]:
    ///   they can come from resource pressure on the machine, not the model.
    /// * Service-side conditions: [`SimError::Overloaded`] and
    ///   [`SimError::WorkerLost`] are [`RetryClass::Transient`] (the queue
    ///   drains, a fresh worker is respawned), while [`SimError::Protocol`]
    ///   is [`RetryClass::Permanent`] (resending the same malformed message
    ///   reproduces the same rejection).
    pub fn retry_class(&self) -> RetryClass {
        match self {
            SimError::VerifyMismatch { .. } => RetryClass::Permanent,
            SimError::InvariantViolation { .. } => RetryClass::Permanent,
            SimError::InvalidConfig { .. } => RetryClass::Permanent,
            SimError::CycleBudgetExceeded { .. } => RetryClass::Transient,
            SimError::WorkerPanic { .. } => RetryClass::Transient,
            SimError::Io { .. } => RetryClass::Transient,
            SimError::DeadlineExceeded { .. } => RetryClass::Transient,
            SimError::Cancelled { .. } => RetryClass::Cancelled,
            SimError::Overloaded { .. } => RetryClass::Transient,
            SimError::Protocol { .. } => RetryClass::Permanent,
            SimError::WorkerLost { .. } => RetryClass::Transient,
        }
    }

    /// [`SimError::retry_class`] looked up from a journaled `kind()` tag.
    ///
    /// Journals and caches persist only the tag, not the full error; the
    /// `save-serve` result cache uses this to decide whether a journaled
    /// failure is final (permanent: serve it from cache) or worth
    /// recomputing on the next request (transient: the crash/overload that
    /// produced it may not recur). Returns `None` for unknown tags, which
    /// callers should treat as transient — recomputing is always safe.
    pub fn retry_class_of_kind(kind: &str) -> Option<RetryClass> {
        Some(match kind {
            "verify-mismatch" | "invariant-violation" | "invalid-config" | "protocol" => {
                RetryClass::Permanent
            }
            "cycle-budget" | "worker-panic" | "io" | "deadline" | "overloaded"
            | "worker-lost" => RetryClass::Transient,
            "cancelled" => RetryClass::Cancelled,
            _ => return None,
        })
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::VerifyMismatch { kernel, core, index, got, want } => {
                write!(f, "kernel {kernel}")?;
                if let Some(c) = core {
                    write!(f, " (core {c})")?;
                }
                write!(f, ": output mismatch at {index}: got {got} want {want}")
            }
            SimError::CycleBudgetExceeded { kernel, core, diag } => {
                write!(f, "kernel {kernel}")?;
                if let Some(c) = core {
                    write!(f, " (core {c})")?;
                }
                write!(f, ": did not complete: {diag}")
            }
            SimError::InvariantViolation { kernel, core, report } => {
                write!(f, "kernel {kernel}")?;
                if let Some(c) = core {
                    write!(f, " (core {c})")?;
                }
                write!(f, ": sanitizer abort: {report}")
            }
            SimError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            SimError::WorkerPanic { job, message } => {
                write!(f, "sweep job {job} panicked: {message}")
            }
            SimError::Io { what } => write!(f, "i/o error: {what}"),
            SimError::Cancelled { what } => write!(f, "cancelled: {what}"),
            SimError::DeadlineExceeded { what, millis } => {
                write!(f, "deadline exceeded ({millis} ms): {what}")
            }
            SimError::Overloaded { what, retry_after_ms } => {
                write!(f, "service overloaded (retry after {retry_after_ms} ms): {what}")
            }
            SimError::Protocol { what } => write!(f, "protocol error: {what}"),
            SimError::WorkerLost { what } => {
                write!(f, "worker lost with cell in flight: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<std::io::Error> for SimError {
    fn from(e: std::io::Error) -> Self {
        SimError::Io { what: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let e = SimError::VerifyMismatch {
            kernel: "gemm".into(),
            core: Some(3),
            index: 7,
            got: 1.0,
            want: 2.0,
        };
        let s = e.to_string();
        assert!(s.contains("gemm") && s.contains("core 3") && s.contains("at 7"), "{s}");
        assert_eq!(e.kind(), "verify-mismatch");
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "no such file");
        let e: SimError = io.into();
        assert_eq!(e.kind(), "io");
        assert!(e.to_string().contains("no such file"));
    }

    /// One sample of every `SimError` variant, so the classification table
    /// below provably covers the whole enum (adding a variant without
    /// extending this list fails the count assertion).
    fn one_of_each() -> Vec<SimError> {
        use save_core::{CoreStats, SchedulerKind, StallCause};
        vec![
            SimError::VerifyMismatch {
                kernel: "gemm".into(),
                core: None,
                index: 0,
                got: 0.0,
                want: 1.0,
            },
            SimError::CycleBudgetExceeded {
                kernel: "gemm".into(),
                core: None,
                diag: Box::new(StallDiag {
                    cause: StallCause::CycleBudget,
                    cycle: 10,
                    last_commit_cycle: 5,
                    rob_occupancy: 0,
                    rob_capacity: 224,
                    rs_occupancy: 0,
                    rs_capacity: 97,
                    loads_in_flight: 0,
                    phys_free: 1,
                    oldest_unretired: None,
                    scheduler: SchedulerKind::Baseline,
                    stats: CoreStats::default(),
                }),
            },
            SimError::InvariantViolation {
                kernel: "gemm".into(),
                core: None,
                report: Box::new(SanitizerReport {
                    invariant: "lane-conservation".into(),
                    cycle: 3,
                    rob: None,
                    witness: "mask mismatch".into(),
                }),
            },
            SimError::InvalidConfig { what: "vpus must be 1 or 2".into() },
            SimError::WorkerPanic { job: 4, message: "boom".into() },
            SimError::Io { what: "disk full".into() },
            SimError::Cancelled { what: "cell (0.5, 0.5)".into() },
            SimError::DeadlineExceeded { what: "cell (0.5, 0.5)".into(), millis: 250 },
            SimError::Overloaded { what: "job fig14 (96 cells)".into(), retry_after_ms: 250 },
            SimError::Protocol { what: "expected Submit, got garbage".into() },
            SimError::WorkerLost { what: "cell(a=0.50,b=0.50)".into() },
        ]
    }

    /// The retry-class table asserted per `kind()` tag (ISSUE 6 satellite):
    /// every variant appears exactly once and maps to the documented class.
    #[test]
    fn retry_classification() {
        let expected: &[(&str, RetryClass)] = &[
            ("verify-mismatch", RetryClass::Permanent),
            ("cycle-budget", RetryClass::Transient),
            ("invariant-violation", RetryClass::Permanent),
            ("invalid-config", RetryClass::Permanent),
            ("worker-panic", RetryClass::Transient),
            ("io", RetryClass::Transient),
            ("cancelled", RetryClass::Cancelled),
            ("deadline", RetryClass::Transient),
            ("overloaded", RetryClass::Transient),
            ("protocol", RetryClass::Permanent),
            ("worker-lost", RetryClass::Transient),
        ];
        let samples = one_of_each();
        assert_eq!(
            samples.len(),
            expected.len(),
            "every SimError variant needs a row in the classification table"
        );
        for e in &samples {
            let (_, want) = expected
                .iter()
                .find(|(kind, _)| *kind == e.kind())
                .unwrap_or_else(|| panic!("no expected class for kind {:?}", e.kind()));
            assert_eq!(e.retry_class(), *want, "wrong class for {:?}", e.kind());
        }
    }

    #[test]
    fn cancellation_variants_display() {
        let c = SimError::Cancelled { what: "fig14 cell 3".into() };
        assert_eq!(c.kind(), "cancelled");
        assert!(c.to_string().contains("fig14 cell 3"));
        let d = SimError::DeadlineExceeded { what: "fig14 cell 3".into(), millis: 1500 };
        assert_eq!(d.kind(), "deadline");
        assert!(d.to_string().contains("1500 ms"), "{d}");
    }

    /// The kind-tag lookup table must agree with the value-level
    /// classification for every variant — journaled failures are classified
    /// by tag alone, so a divergence would make the service cache treat a
    /// permanent failure as recomputable (or worse, the reverse).
    #[test]
    fn kind_table_agrees_with_value_classification() {
        for e in one_of_each() {
            assert_eq!(
                SimError::retry_class_of_kind(e.kind()),
                Some(e.retry_class()),
                "kind table diverges for {:?}",
                e.kind()
            );
        }
        assert_eq!(SimError::retry_class_of_kind("no-such-kind"), None);
    }

    #[test]
    fn service_variants_display() {
        let o = SimError::Overloaded { what: "fig14".into(), retry_after_ms: 120 };
        assert_eq!(o.kind(), "overloaded");
        assert!(o.to_string().contains("120 ms"), "{o}");
        let p = SimError::Protocol { what: "bad line".into() };
        assert_eq!(p.kind(), "protocol");
        let w = SimError::WorkerLost { what: "cell 3".into() };
        assert_eq!(w.kind(), "worker-lost");
        assert!(w.to_string().contains("cell 3"));
    }

    #[test]
    fn retry_class_round_trips_through_json() {
        for e in one_of_each() {
            let class = e.retry_class();
            let json = serde_json::to_string(&class).unwrap();
            let back: RetryClass = serde_json::from_str(&json).unwrap();
            assert_eq!(class, back);
        }
    }
}
