//! Detailed multicore mode: N cores cycle-interleaved over one shared
//! uncore (NUCA L3 slices + mesh + DRAM channels).
//!
//! Each core runs its own instance of the kernel (data-parallel tiles, as
//! DNNL parallelizes a layer across cores) with a distinct data seed; the
//! shared structures see each core's buffers as distinct physical memory.
//! The kernel's wall-clock time is the slowest core's finish time — exactly
//! how a parallel layer completes.

use crate::cancel::CancelToken;
use crate::error::SimError;
use crate::runner::{warm_regions, ConfigKind, KernelResult, MachineConfig};
use crate::trace::{CoreTrace, KernelTrace, TraceMode};
use save_core::{Core, CoreConfig};
use save_isa::Memory;
use save_kernels::BuiltKernel;
use save_mem::{CoreMemory, Uncore};
use std::sync::Arc;

/// Runs `w` on every core of a detailed machine; returns the slowest core's
/// result (with its stats).
///
/// # Errors
/// [`SimError::InvalidConfig`] for a rejected operating point,
/// [`SimError::VerifyMismatch`] (tagged with the offending core) if
/// `verify` is set and any core's output disagrees with its reference,
/// [`SimError::InvariantViolation`] (tagged with the offending core) if a
/// core's sanitizer aborted the run, and [`SimError::CycleBudgetExceeded`]
/// with the first stalled core's diagnosis if any core fails to drain.
pub fn run_multicore(
    w: &save_kernels::GemmWorkload,
    kind: ConfigKind,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
) -> Result<KernelResult, SimError> {
    run_multicore_custom_cancel(w, &kind.core_config(), machine, seed, verify, None)
}

/// [`run_multicore`] with an optional cooperative cancel token: the token's
/// flag is shared by every simulated core, so one latch stops the whole
/// lockstep machine within a cancel quantum.
pub fn run_multicore_cancel(
    w: &save_kernels::GemmWorkload,
    kind: ConfigKind,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
) -> Result<KernelResult, SimError> {
    run_multicore_custom_cancel(w, &kind.core_config(), machine, seed, verify, cancel)
}

/// Like [`run_multicore`] but with an arbitrary core configuration — the
/// detailed-mode counterpart of [`crate::runner::run_kernel_custom`].
pub fn run_multicore_custom(
    w: &save_kernels::GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
) -> Result<KernelResult, SimError> {
    run_multicore_custom_cancel(w, core_cfg, machine, seed, verify, None)
}

/// [`run_multicore_custom`] with an optional cooperative cancel token (see
/// [`run_multicore_cancel`]).
pub fn run_multicore_custom_cancel(
    w: &save_kernels::GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
) -> Result<KernelResult, SimError> {
    run_multicore_inner(w, core_cfg, machine, seed, verify, cancel, None)
}

/// The traced counterpart of [`run_multicore_custom_cancel`]: records one
/// [`save_core::FuncTrace`] per core (each core builds with its own data
/// seed) or replays a previously recorded per-core set. See
/// [`crate::runner::run_kernel_traced`] for the record/replay contract.
pub(crate) fn run_multicore_traced(
    w: &save_kernels::GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
    mode: TraceMode<'_>,
) -> Result<KernelResult, SimError> {
    run_multicore_inner(w, core_cfg, machine, seed, verify, cancel, Some(mode))
}

/// What the lockstep machine executes from: per-core built kernels (direct
/// and record modes) or a recorded trace plus per-core empty functional
/// arenas (replay never touches memory values).
enum Exec {
    Built(Vec<BuiltKernel>),
    Replay { trace: Arc<KernelTrace>, mems: Vec<Memory> },
}

fn run_multicore_inner(
    w: &save_kernels::GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
    mode: Option<TraceMode<'_>>,
) -> Result<KernelResult, SimError> {
    let cfg = *core_cfg;
    cfg.validate().map_err(|what| SimError::InvalidConfig { what })?;
    machine.mem.validate().map_err(|what| SimError::InvalidConfig { what })?;
    let n = machine.cores.max(1);
    let mut uncore = Uncore::new(&machine.mem, n);
    let mut cores: Vec<_> = (0..n).map(|_| Core::new(cfg)).collect();
    let mut cmems: Vec<CoreMemory> = Vec::with_capacity(n);
    let mut exec = match &mode {
        Some(TraceMode::Replay { trace }) => {
            if trace.cores.len() != n {
                return Err(SimError::Protocol {
                    what: format!(
                        "kernel trace has {} cores, machine has {n}",
                        trace.cores.len()
                    ),
                });
            }
            for (c, (core, tc)) in cores.iter_mut().zip(&trace.cores).enumerate() {
                let mut cm = CoreMemory::new(c, machine.mem, cfg.freq_ghz);
                warm_regions(w, &tc.regions, &mut cm, &mut uncore);
                cmems.push(cm);
                core.set_replay(Arc::clone(&tc.func));
            }
            Exec::Replay { trace: Arc::clone(trace), mems: (0..n).map(|_| Memory::new(0)).collect() }
        }
        other => {
            let built: Vec<_> = (0..n).map(|c| w.build(seed.wrapping_add(c as u64))).collect();
            for c in 0..n {
                let mut cm = CoreMemory::new(c, machine.mem, cfg.freq_ghz);
                warm_regions(w, &built[c].regions, &mut cm, &mut uncore);
                cmems.push(cm);
                if matches!(other, Some(TraceMode::Record { .. })) {
                    cores[c].set_record();
                }
            }
            Exec::Built(built)
        }
    };
    if let Some(tok) = cancel {
        for core in &mut cores {
            core.set_cancel(tok.as_flag());
        }
    }
    let mut outcomes: Vec<Option<save_core::RunOutcome>> = vec![None; n];

    let mut remaining = n;
    while remaining > 0 {
        for c in 0..n {
            if outcomes[c].is_some() {
                continue;
            }
            // Per-core single-cycle skip: an inert core whose next event is
            // still in the future would execute a provable no-op this cycle
            // (it touches no shared state), so replay its inert delta for
            // one cycle instead of stepping it. This is what keeps mixed
            // rounds cheap — typically only one core is actually active
            // while the rest wait on DRAM.
            let skip = cores[c].ff_target().is_some_and(|t| t > cores[c].cycle());
            let res = if skip {
                let next = cores[c].cycle() + 1;
                cores[c].advance_to(next)
            } else {
                match &mut exec {
                    Exec::Built(built) => {
                        let bk = &mut built[c];
                        cores[c].step(&bk.program, &mut bk.mem, &mut cmems[c], &mut uncore)
                    }
                    Exec::Replay { trace, mems } => cores[c].step(
                        &trace.cores[c].program,
                        &mut mems[c],
                        &mut cmems[c],
                        &mut uncore,
                    ),
                }
            };
            if let Some(out) = res {
                outcomes[c] = Some(out);
                remaining -= 1;
            }
        }
        // Event-driven fast-forward, in lockstep: the shared uncore is
        // time-stamped by core clocks, so cores must stay cycle-aligned.
        // Only when EVERY unfinished core just executed an inert cycle may
        // the machine jump, and then only to the earliest next event across
        // cores — any core's earlier event would re-engage the others.
        let mut target: Option<u64> = None;
        let mut all_inert = true;
        for (c, core) in cores.iter().enumerate() {
            if outcomes[c].is_some() {
                continue;
            }
            match core.ff_target() {
                Some(t) => target = Some(target.map_or(t, |m| m.min(t))),
                None => {
                    all_inert = false;
                    break;
                }
            }
        }
        if all_inert {
            if let Some(t) = target {
                for c in 0..n {
                    if outcomes[c].is_some() {
                        continue;
                    }
                    if let Some(out) = cores[c].advance_to(t) {
                        outcomes[c] = Some(out);
                        remaining -= 1;
                    }
                }
            }
        }
    }

    // Cancellation outranks every other verdict: a machine whose cores were
    // told to stop produced no meaningful timing, and the caller needs the
    // dedicated error to journal/exit correctly.
    if outcomes.iter().flatten().any(|o| o.cancelled) {
        return Err(SimError::Cancelled { what: w.name.clone() });
    }
    // A core that aborted (sanitizer) or stalled (watchdog or budget)
    // poisons the whole run: the layer never finishes. Report the first
    // such core's evidence.
    for (c, o) in outcomes.iter().enumerate() {
        let o = o.as_ref().expect("loop above filled every outcome");
        if let Some(report) = &o.violation {
            return Err(SimError::InvariantViolation {
                kernel: w.name.clone(),
                core: Some(c),
                report: report.clone(),
            });
        }
        if !o.completed {
            let Some(diag) = o.stall.clone() else {
                return Err(SimError::Io {
                    what: format!(
                        "core {c} stopped without a stall diagnosis or violation report"
                    ),
                });
            };
            return Err(SimError::CycleBudgetExceeded {
                kernel: w.name.clone(),
                core: Some(c),
                diag: Box::new(diag),
            });
        }
    }
    let check_all = |built: &[BuiltKernel]| -> Result<(), SimError> {
        for (c, b) in built.iter().enumerate() {
            if let Err((i, got, want)) = b.verify() {
                return Err(SimError::VerifyMismatch {
                    kernel: w.name.clone(),
                    core: Some(c),
                    index: i,
                    got,
                    want,
                });
            }
        }
        Ok(())
    };
    let verified = match (&mode, exec) {
        // A recording run always checks every core's output before the
        // per-core traces are admitted as a set.
        (Some(TraceMode::Record { store, key }), Exec::Built(built)) => {
            check_all(&built)?;
            let funcs: Vec<_> = cores.iter_mut().map(|co| co.take_trace()).collect();
            if funcs.iter().all(|f| f.as_ref().is_some_and(|t| t.replayable)) {
                let per_core = built
                    .into_iter()
                    .zip(funcs)
                    .map(|(b, f)| CoreTrace {
                        program: b.program,
                        regions: b.regions,
                        func: Arc::new(f.expect("all checked Some above")),
                    })
                    .collect();
                store.insert(*key, KernelTrace { cores: per_core });
            }
            verify
        }
        // Replay has no functional output; the trace verified at record.
        (Some(TraceMode::Replay { .. }), _) => verify,
        (_, Exec::Built(built)) => {
            if verify {
                check_all(&built)?;
                true
            } else {
                false
            }
        }
        (_, Exec::Replay { .. }) => unreachable!("replay implies TraceMode::Replay"),
    };
    let slowest = outcomes
        .into_iter()
        .flatten()
        .max_by_key(|o| o.stats.cycles)
        .expect("at least one core");
    Ok(KernelResult {
        seconds: cfg.cycles_to_seconds(slowest.stats.cycles),
        cycles: slowest.stats.cycles,
        stats: slowest.stats,
        verified,
        completed: slowest.completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_kernel, MachineMode};
    use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};

    fn tiny() -> GemmWorkload {
        GemmWorkload::dense(
            "mc",
            GemmKernelSpec {
                m_tiles: 4,
                n_vecs: 2,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            16,
            2,
        )
        .with_sparsity(0.2, 0.4)
    }

    #[test]
    fn four_core_detailed_run_is_correct() {
        let m = MachineConfig { cores: 4, mode: MachineMode::Detailed, ..Default::default() };
        let r = run_kernel(&tiny(), ConfigKind::Save2Vpu, &m, 3, true).unwrap();
        assert!(r.completed && r.verified);
    }

    #[test]
    fn contention_slows_cores_down() {
        // The same kernel on a detailed 8-core machine (8 cores fighting for
        // DRAM) must not be faster than on a detailed single-core machine.
        let w = GemmWorkload {
            b_panel_tiles: 1, // stream B: guarantees DRAM traffic
            ..tiny()
        };
        let m1 = MachineConfig { cores: 1, mode: MachineMode::Detailed, ..Default::default() };
        let m8 = MachineConfig { cores: 8, mode: MachineMode::Detailed, ..Default::default() };
        let r1 = run_kernel(&w, ConfigKind::Baseline, &m1, 5, false).unwrap();
        let r8 = run_kernel(&w, ConfigKind::Baseline, &m8, 5, false).unwrap();
        assert!(r8.cycles >= r1.cycles, "8-core {} vs 1-core {}", r8.cycles, r1.cycles);
    }

    #[test]
    fn symmetric_approximates_detailed() {
        // The symmetric mode must land within a reasonable factor of the
        // detailed mode for a compute-bound kernel.
        let md = MachineConfig { cores: 4, mode: MachineMode::Detailed, ..Default::default() };
        let ms = MachineConfig { cores: 4, mode: MachineMode::Symmetric, ..Default::default() };
        let rd = run_kernel(&tiny(), ConfigKind::Baseline, &md, 9, false).unwrap();
        let rs = run_kernel(&tiny(), ConfigKind::Baseline, &ms, 9, false).unwrap();
        let ratio = rd.seconds / rs.seconds;
        assert!((0.5..2.0).contains(&ratio), "detailed/symmetric ratio {ratio:.2}");
    }
}
