//! Detailed multicore mode: N cores over one shared uncore (NUCA L3 slices
//! + mesh + DRAM channels).
//!
//! Each core runs its own instance of the kernel (data-parallel tiles, as
//! DNNL parallelizes a layer across cores) with a distinct data seed; the
//! shared structures see each core's buffers as distinct physical memory.
//! The kernel's wall-clock time is the slowest core's finish time — exactly
//! how a parallel layer completes.
//!
//! Two engines share the per-core [`Lane`] machinery (DESIGN.md §5i):
//!
//! * **lockstep** (`mc.quantum == 1`, the default) — cores are interleaved
//!   cycle by cycle on one host thread, every uncore access hits shared
//!   state immediately;
//! * **relaxed** (`mc.quantum > 1`, [`crate::relaxed`]) — each core runs a
//!   quantum of cycles against a private uncore view, then all logs replay
//!   into the shared uncore at a deterministic barrier.

use crate::cancel::CancelToken;
use crate::error::SimError;
use crate::runner::{warm_regions, ConfigKind, KernelResult, KernelRun, MachineConfig};
use crate::trace::{CoreTrace, KernelTrace, TraceMode};
use save_core::{Core, CoreConfig, RunOutcome};
use save_isa::Memory;
use save_kernels::BuiltKernel;
use save_mem::{CoreMemory, Uncore, UncoreAccess};
use std::sync::Arc;

/// Runs `w` on every core of a detailed machine; returns the slowest core's
/// result (with its stats).
///
/// # Errors
/// [`SimError::InvalidConfig`] for a rejected operating point,
/// [`SimError::VerifyMismatch`] (tagged with the offending core) if
/// `verify` is set and any core's output disagrees with its reference,
/// [`SimError::InvariantViolation`] (tagged with the offending core) if a
/// core's sanitizer aborted the run, and [`SimError::CycleBudgetExceeded`]
/// with the first stalled core's diagnosis if any core fails to drain.
pub fn run_multicore(
    w: &save_kernels::GemmWorkload,
    kind: ConfigKind,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
) -> Result<KernelResult, SimError> {
    run_multicore_custom_cancel(w, &kind.core_config(), machine, seed, verify, None)
}

/// [`run_multicore`] with an optional cooperative cancel token: the token's
/// flag is shared by every simulated core, so one latch stops the whole
/// machine within a cancel quantum.
pub fn run_multicore_cancel(
    w: &save_kernels::GemmWorkload,
    kind: ConfigKind,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
) -> Result<KernelResult, SimError> {
    run_multicore_custom_cancel(w, &kind.core_config(), machine, seed, verify, cancel)
}

/// Like [`run_multicore`] but with an arbitrary core configuration — the
/// detailed-mode counterpart of [`crate::runner::run_kernel_custom`].
pub fn run_multicore_custom(
    w: &save_kernels::GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
) -> Result<KernelResult, SimError> {
    run_multicore_custom_cancel(w, core_cfg, machine, seed, verify, None)
}

/// [`run_multicore_custom`] with an optional cooperative cancel token (see
/// [`run_multicore_cancel`]).
pub fn run_multicore_custom_cancel(
    w: &save_kernels::GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
) -> Result<KernelResult, SimError> {
    run_multicore_inner(w, core_cfg, machine, seed, verify, cancel, None).map(|r| r.result)
}

/// [`run_multicore_custom_cancel`] returning the full [`KernelRun`] with
/// the uncore contention report.
pub(crate) fn run_multicore_full(
    w: &save_kernels::GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
) -> Result<KernelRun, SimError> {
    run_multicore_inner(w, core_cfg, machine, seed, verify, cancel, None)
}

/// The traced counterpart of [`run_multicore_custom_cancel`]: records one
/// [`save_core::FuncTrace`] per core (each core builds with its own data
/// seed) or replays a previously recorded per-core set. See
/// [`crate::runner::run_kernel_traced`] for the record/replay contract.
pub(crate) fn run_multicore_traced(
    w: &save_kernels::GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
    mode: TraceMode<'_>,
) -> Result<KernelResult, SimError> {
    run_multicore_inner(w, core_cfg, machine, seed, verify, cancel, Some(mode)).map(|r| r.result)
}

/// What one core executes from: its own built kernel (direct and record
/// modes) or its slice of a recorded trace plus an empty functional arena
/// (replay never touches memory values).
pub(crate) enum LaneExec {
    /// A freshly built kernel with its functional arena.
    Built(Box<BuiltKernel>),
    /// A recorded trace (shared by all lanes; this lane reads
    /// `trace.cores[idx]`).
    Replay {
        /// The whole-machine trace.
        trace: Arc<KernelTrace>,
        /// Empty functional arena (replay reads no memory values).
        mem: Memory,
    },
}

/// One simulated core with everything it needs to run: the core, its
/// private memory, its program/arena and (once done) its outcome. Both the
/// lockstep and relaxed engines drive a `Vec<Lane>`.
pub(crate) struct Lane {
    /// Core index == mesh tile index.
    pub(crate) idx: usize,
    pub(crate) core: Core,
    pub(crate) cmem: CoreMemory,
    pub(crate) exec: LaneExec,
    pub(crate) outcome: Option<RunOutcome>,
}

impl Lane {
    /// Advances the lane one cycle against `uncore` (lockstep engine).
    fn step(&mut self, uncore: &mut dyn UncoreAccess) -> Option<RunOutcome> {
        match &mut self.exec {
            LaneExec::Built(bk) => {
                self.core.step(&bk.program, &mut bk.mem, &mut self.cmem, uncore)
            }
            LaneExec::Replay { trace, mem } => {
                self.core.step(&trace.cores[self.idx].program, mem, &mut self.cmem, uncore)
            }
        }
    }

    /// Runs the lane until its local clock reaches `limit` (relaxed engine;
    /// see [`Core::run_until_cycle`]). No-op once the outcome is set.
    pub(crate) fn run_until(&mut self, limit: u64, uncore: &mut dyn UncoreAccess) {
        if self.outcome.is_some() {
            return;
        }
        let res = match &mut self.exec {
            LaneExec::Built(bk) => self.core.run_until_cycle(
                limit,
                &bk.program,
                &mut bk.mem,
                &mut self.cmem,
                uncore,
            ),
            LaneExec::Replay { trace, mem } => self.core.run_until_cycle(
                limit,
                &trace.cores[self.idx].program,
                mem,
                &mut self.cmem,
                uncore,
            ),
        };
        self.outcome = res;
    }
}

/// Builds one lane per core: validates nothing (callers validate configs),
/// builds/replays the per-core kernels and applies the §VI warm-up policy
/// against the shared uncore in core order — identical for both engines, so
/// warm-up state never depends on the engine choice.
fn setup_lanes(
    w: &save_kernels::GemmWorkload,
    cfg: CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    mode: &Option<TraceMode<'_>>,
    uncore: &mut Uncore,
) -> Result<Vec<Lane>, SimError> {
    let n = machine.cores.max(1);
    let mut lanes = Vec::with_capacity(n);
    match mode {
        Some(TraceMode::Replay { trace }) => {
            if trace.cores.len() != n {
                return Err(SimError::Protocol {
                    what: format!(
                        "kernel trace has {} cores, machine has {n}",
                        trace.cores.len()
                    ),
                });
            }
            for (c, tc) in trace.cores.iter().enumerate() {
                let mut core = Core::new(cfg);
                let mut cm = CoreMemory::new(c, machine.mem, cfg.freq_ghz);
                warm_regions(w, &tc.regions, &mut cm, uncore);
                core.set_replay(Arc::clone(&tc.func));
                lanes.push(Lane {
                    idx: c,
                    core,
                    cmem: cm,
                    exec: LaneExec::Replay { trace: Arc::clone(trace), mem: Memory::new(0) },
                    outcome: None,
                });
            }
        }
        other => {
            for c in 0..n {
                let built = w.build(seed.wrapping_add(c as u64));
                let mut core = Core::new(cfg);
                let mut cm = CoreMemory::new(c, machine.mem, cfg.freq_ghz);
                warm_regions(w, &built.regions, &mut cm, uncore);
                if matches!(other, Some(TraceMode::Record { .. })) {
                    core.set_record();
                }
                lanes.push(Lane {
                    idx: c,
                    core,
                    cmem: cm,
                    exec: LaneExec::Built(Box::new(built)),
                    outcome: None,
                });
            }
        }
    }
    Ok(lanes)
}

/// The serial lockstep engine: cores are interleaved cycle by cycle over
/// the shared uncore. This is the `quantum == 1` degenerate case of the
/// relaxed protocol (a barrier every cycle) and the bit-exactness oracle
/// the relaxed engine is tested against.
fn run_lockstep(lanes: &mut [Lane], uncore: &mut Uncore) {
    let mut remaining = lanes.iter().filter(|l| l.outcome.is_none()).count();
    while remaining > 0 {
        for lane in lanes.iter_mut() {
            if lane.outcome.is_some() {
                continue;
            }
            // Per-core single-cycle skip: an inert core whose next event is
            // still in the future would execute a provable no-op this cycle
            // (it touches no shared state), so replay its inert delta for
            // one cycle instead of stepping it. This is what keeps mixed
            // rounds cheap — typically only one core is actually active
            // while the rest wait on DRAM.
            let skip = lane.core.ff_target().is_some_and(|t| t > lane.core.cycle());
            let res = if skip {
                let next = lane.core.cycle() + 1;
                lane.core.advance_to(next)
            } else {
                lane.step(uncore)
            };
            if let Some(out) = res {
                lane.outcome = Some(out);
                remaining -= 1;
            }
        }
        // Event-driven fast-forward, in lockstep: the shared uncore is
        // time-stamped by core clocks, so cores must stay cycle-aligned.
        // Only when EVERY unfinished core just executed an inert cycle may
        // the machine jump, and then only to the earliest next event across
        // cores — any core's earlier event would re-engage the others.
        let mut target: Option<u64> = None;
        let mut all_inert = true;
        for lane in lanes.iter() {
            if lane.outcome.is_some() {
                continue;
            }
            match lane.core.ff_target() {
                Some(t) => target = Some(target.map_or(t, |m| m.min(t))),
                None => {
                    all_inert = false;
                    break;
                }
            }
        }
        if all_inert {
            if let Some(t) = target {
                for lane in lanes.iter_mut() {
                    if lane.outcome.is_some() {
                        continue;
                    }
                    if let Some(out) = lane.core.advance_to(t) {
                        lane.outcome = Some(out);
                        remaining -= 1;
                    }
                }
            }
        }
    }
}

fn run_multicore_inner(
    w: &save_kernels::GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
    mode: Option<TraceMode<'_>>,
) -> Result<KernelRun, SimError> {
    let cfg = *core_cfg;
    cfg.validate().map_err(|what| SimError::InvalidConfig { what })?;
    machine.mem.validate().map_err(|what| SimError::InvalidConfig { what })?;
    machine.mc.validate().map_err(|what| SimError::InvalidConfig { what })?;
    let n = machine.cores.max(1);
    let mut uncore = Uncore::new(&machine.mem, n);
    let mut lanes = setup_lanes(w, cfg, machine, seed, &mode, &mut uncore)?;
    if let Some(tok) = cancel {
        for lane in &mut lanes {
            lane.core.set_cancel(tok.as_flag());
        }
    }
    if machine.mc.quantum > 1 {
        crate::relaxed::run_relaxed(
            &mut lanes,
            &mut uncore,
            machine.mc.quantum,
            machine.mc.threads,
        );
    } else {
        run_lockstep(&mut lanes, &mut uncore);
    }
    finalize(w, cfg, lanes, &uncore, verify, mode)
}

/// Turns finished lanes into the run verdict: cancellation first, then
/// per-core violations/stalls, then verification + trace admission, then
/// the slowest core's timing. Shared by both engines.
fn finalize(
    w: &save_kernels::GemmWorkload,
    cfg: CoreConfig,
    lanes: Vec<Lane>,
    uncore: &Uncore,
    verify: bool,
    mode: Option<TraceMode<'_>>,
) -> Result<KernelRun, SimError> {
    // Cancellation outranks every other verdict: a machine whose cores were
    // told to stop produced no meaningful timing, and the caller needs the
    // dedicated error to journal/exit correctly.
    if lanes.iter().filter_map(|l| l.outcome.as_ref()).any(|o| o.cancelled) {
        return Err(SimError::Cancelled { what: w.name.clone() });
    }
    // A core that aborted (sanitizer) or stalled (watchdog or budget)
    // poisons the whole run: the layer never finishes. Report the first
    // such core's evidence.
    for lane in &lanes {
        let o = lane.outcome.as_ref().expect("engine filled every outcome");
        if let Some(report) = &o.violation {
            return Err(SimError::InvariantViolation {
                kernel: w.name.clone(),
                core: Some(lane.idx),
                report: report.clone(),
            });
        }
        if !o.completed {
            let Some(diag) = o.stall.clone() else {
                return Err(SimError::Io {
                    what: format!(
                        "core {} stopped without a stall diagnosis or violation report",
                        lane.idx
                    ),
                });
            };
            return Err(SimError::CycleBudgetExceeded {
                kernel: w.name.clone(),
                core: Some(lane.idx),
                diag: Box::new(diag),
            });
        }
    }
    let check_lane = |lane: &Lane| -> Result<(), SimError> {
        if let LaneExec::Built(b) = &lane.exec {
            if let Err((i, got, want)) = b.verify() {
                return Err(SimError::VerifyMismatch {
                    kernel: w.name.clone(),
                    core: Some(lane.idx),
                    index: i,
                    got,
                    want,
                });
            }
        }
        Ok(())
    };
    let slowest = lanes
        .iter()
        .filter_map(|l| l.outcome.as_ref())
        .max_by_key(|o| o.stats.cycles)
        .cloned()
        .expect("at least one core");
    let verified = match &mode {
        // A recording run always checks every core's output before the
        // per-core traces are admitted as a set.
        Some(TraceMode::Record { store, key }) => {
            for lane in &lanes {
                check_lane(lane)?;
            }
            let mut lanes = lanes;
            let funcs: Vec<_> = lanes.iter_mut().map(|l| l.core.take_trace()).collect();
            if funcs.iter().all(|f| f.as_ref().is_some_and(|t| t.replayable)) {
                let per_core = lanes
                    .into_iter()
                    .zip(funcs)
                    .map(|(lane, f)| {
                        let LaneExec::Built(b) = lane.exec else {
                            unreachable!("record implies built lanes");
                        };
                        let b = *b;
                        CoreTrace {
                            program: b.program,
                            regions: b.regions,
                            func: Arc::new(f.expect("all checked Some above")),
                        }
                    })
                    .collect();
                store.insert(*key, KernelTrace { cores: per_core });
            }
            verify
        }
        // Replay has no functional output; the trace verified at record.
        Some(TraceMode::Replay { .. }) => verify,
        None => {
            if verify {
                for lane in &lanes {
                    check_lane(lane)?;
                }
                true
            } else {
                false
            }
        }
    };
    Ok(KernelRun {
        result: KernelResult {
            seconds: cfg.cycles_to_seconds(slowest.stats.cycles),
            cycles: slowest.stats.cycles,
            stats: slowest.stats,
            verified,
            completed: slowest.completed,
        },
        uncore: uncore.report(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_kernel, MachineMode};
    use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};

    fn tiny() -> GemmWorkload {
        GemmWorkload::dense(
            "mc",
            GemmKernelSpec {
                m_tiles: 4,
                n_vecs: 2,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            16,
            2,
        )
        .with_sparsity(0.2, 0.4)
    }

    #[test]
    fn four_core_detailed_run_is_correct() {
        let m = MachineConfig { cores: 4, mode: MachineMode::Detailed, ..Default::default() };
        let r = run_kernel(&tiny(), ConfigKind::Save2Vpu, &m, 3, true).unwrap();
        assert!(r.completed && r.verified);
    }

    #[test]
    fn contention_slows_cores_down() {
        // The same kernel on a detailed 8-core machine (8 cores fighting for
        // DRAM) must not be faster than on a detailed single-core machine.
        let w = GemmWorkload {
            b_panel_tiles: 1, // stream B: guarantees DRAM traffic
            ..tiny()
        };
        let m1 = MachineConfig { cores: 1, mode: MachineMode::Detailed, ..Default::default() };
        let m8 = MachineConfig { cores: 8, mode: MachineMode::Detailed, ..Default::default() };
        let r1 = run_kernel(&w, ConfigKind::Baseline, &m1, 5, false).unwrap();
        let r8 = run_kernel(&w, ConfigKind::Baseline, &m8, 5, false).unwrap();
        assert!(r8.cycles >= r1.cycles, "8-core {} vs 1-core {}", r8.cycles, r1.cycles);
    }

    #[test]
    fn symmetric_approximates_detailed() {
        // The symmetric mode must land within a reasonable factor of the
        // detailed mode for a compute-bound kernel.
        let md = MachineConfig { cores: 4, mode: MachineMode::Detailed, ..Default::default() };
        let ms = MachineConfig { cores: 4, mode: MachineMode::Symmetric, ..Default::default() };
        let rd = run_kernel(&tiny(), ConfigKind::Baseline, &md, 9, false).unwrap();
        let rs = run_kernel(&tiny(), ConfigKind::Baseline, &ms, 9, false).unwrap();
        let ratio = rd.seconds / rs.seconds;
        assert!((0.5..2.0).contains(&ratio), "detailed/symmetric ratio {ratio:.2}");
    }

    #[test]
    fn quantum_zero_is_rejected() {
        let mut m = MachineConfig { cores: 2, mode: MachineMode::Detailed, ..Default::default() };
        m.mc.quantum = 0;
        let err = run_kernel(&tiny(), ConfigKind::Baseline, &m, 1, false).unwrap_err();
        match err {
            SimError::InvalidConfig { what } => assert!(what.contains("quantum"), "{what}"),
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }
}
