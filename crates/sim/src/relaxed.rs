//! Quantum-based relaxed-synchronization multicore engine (DESIGN.md §5i).
//!
//! Sniper-style relaxed sync: instead of interleaving all cores cycle by
//! cycle over the shared uncore (the lockstep engine), each core runs a
//! *quantum* of cycles against a core-private [`QuantumView`] — a read-only
//! snapshot of shared L3 state plus a private DRAM-channel clone — and logs
//! every uncore request it issues. At the quantum barrier all logs replay
//! into the real [`Uncore`] in the canonical `(start_ns, core, seq)` order
//! ([`Uncore::reconcile`]), so shared state evolves identically no matter
//! how many host threads ran the quantum or how they were scheduled.
//!
//! # Determinism argument
//!
//! * A lane's quantum execution is a pure function of (lane state, shared
//!   snapshot): the view never reads another lane's in-quantum activity.
//! * The barrier replay order is a total order over requests that depends
//!   only on simulated time, core id and per-core issue sequence — never on
//!   host scheduling.
//! * Therefore `threads = 1, 2, N` produce bit-identical lane states,
//!   outcomes and uncore counters for any fixed quantum. (Enforced by
//!   `tests/relaxed.rs`.)
//!
//! The *quantum length* does change results: within a quantum a core cannot
//! see sibling evictions or DRAM queueing from the same quantum, which is
//! the classic relaxed-sync timing error, bounded by the quantum. That is
//! why `quantum` is part of the cell cache key while `threads` is not, and
//! why `quantum == 1` dispatches to the lockstep engine (a barrier every
//! cycle collapses the protocol onto cycle-accurate interleaving).
//!
//! # Why it is fast
//!
//! Between barriers each core fast-forwards through its own inert stretches
//! independently ([`save_core::Core::run_until_cycle`] clamps jumps to the
//! quantum end). The lockstep engine can only jump when *every* core is
//! simultaneously inert, so mixed rounds degrade to per-cycle stepping —
//! the dominant cost at 28 cores. Host threads add wall-clock parallelism
//! on top when available (`threads == 0` asks the shared budget in
//! [`crate::parallel`], so sweeps and engines never oversubscribe).

use crate::multicore::Lane;
use save_mem::{QuantumView, Uncore, UncoreAccess, UncoreReq};

/// Resolves the host-thread request: `0` = the shared budget allowance,
/// always clamped to the lane count.
fn resolve_threads(threads: usize, lanes: usize) -> usize {
    let t = if threads == 0 { crate::parallel::sim_thread_allowance() } else { threads };
    t.clamp(1, lanes.max(1))
}

/// Runs one lane to the quantum boundary against a fresh view of `shared`,
/// appending its request log to `reqs`.
fn run_lane_quantum(lane: &mut Lane, shared: &Uncore, boundary: u64, reqs: &mut Vec<UncoreReq>) {
    if lane.outcome.is_some() {
        return;
    }
    let mut view = QuantumView::new(shared);
    lane.run_until(boundary, &mut view as &mut dyn UncoreAccess);
    reqs.append(&mut view.take_log());
}

/// Drives every lane to completion under relaxed synchronization. Lane
/// outcomes are filled in place; the shared uncore ends in exactly the
/// state the canonical replay of all quanta produces.
pub(crate) fn run_relaxed(lanes: &mut [Lane], uncore: &mut Uncore, quantum: u64, threads: usize) {
    debug_assert!(quantum > 1, "quantum == 1 is the lockstep engine");
    let threads = resolve_threads(threads, lanes.len());
    let mut boundary = quantum;
    let mut reqs: Vec<UncoreReq> = Vec::new();
    while lanes.iter().any(|l| l.outcome.is_none()) {
        if threads <= 1 {
            for lane in lanes.iter_mut() {
                run_lane_quantum(lane, uncore, boundary, &mut reqs);
            }
        } else {
            let shared: &Uncore = uncore;
            let chunk = lanes.len().div_ceil(threads);
            std::thread::scope(|s| {
                let handles: Vec<_> = lanes
                    .chunks_mut(chunk)
                    .map(|slice| {
                        s.spawn(move || {
                            let mut local: Vec<UncoreReq> = Vec::new();
                            for lane in slice {
                                run_lane_quantum(lane, shared, boundary, &mut local);
                            }
                            local
                        })
                    })
                    .collect();
                for h in handles {
                    // A worker panic (a simulator bug) propagates exactly as
                    // it would under lockstep; the scope joins the rest.
                    match h.join() {
                        Ok(mut local) => reqs.append(&mut local),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
        }
        // Deterministic barrier: replay the whole quantum's traffic into
        // the shared uncore in canonical order.
        uncore.reconcile(&mut reqs);
        boundary += quantum;
    }
}

#[cfg(test)]
mod tests {
    use crate::runner::{run_kernel, ConfigKind, MachineConfig, MachineMode};
    use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};

    fn tiny() -> GemmWorkload {
        GemmWorkload::dense(
            "relaxed",
            GemmKernelSpec {
                m_tiles: 4,
                n_vecs: 2,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            16,
            2,
        )
        .with_sparsity(0.2, 0.4)
    }

    fn machine(cores: usize, quantum: u64, threads: usize) -> MachineConfig {
        let mut m =
            MachineConfig { cores, mode: MachineMode::Detailed, ..Default::default() };
        m.mc.quantum = quantum;
        m.mc.threads = threads;
        m
    }

    #[test]
    fn relaxed_run_completes_and_verifies() {
        let r = run_kernel(&tiny(), ConfigKind::Save2Vpu, &machine(4, 200, 1), 3, true)
            .unwrap();
        assert!(r.completed && r.verified);
        assert!(r.cycles > 0);
    }

    #[test]
    fn thread_count_never_changes_results() {
        let base = run_kernel(&tiny(), ConfigKind::Baseline, &machine(4, 128, 1), 7, false)
            .unwrap();
        for threads in [2, 4, 7] {
            let r =
                run_kernel(&tiny(), ConfigKind::Baseline, &machine(4, 128, threads), 7, false)
                    .unwrap();
            assert_eq!(r.cycles, base.cycles, "threads={threads}");
            assert_eq!(
                r.seconds.to_bits(),
                base.seconds.to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn quantum_error_is_bounded() {
        // Relaxed timing may drift from lockstep, but only within the
        // bounded in-quantum error — a generous band catches protocol bugs
        // (e.g. lost requests) without pinning the exact drift.
        let lock = run_kernel(&tiny(), ConfigKind::Baseline, &machine(4, 1, 0), 11, false)
            .unwrap();
        let rel = run_kernel(&tiny(), ConfigKind::Baseline, &machine(4, 1000, 1), 11, false)
            .unwrap();
        let ratio = rel.cycles as f64 / lock.cycles as f64;
        assert!((0.7..1.3).contains(&ratio), "relaxed/lockstep cycle ratio {ratio:.3}");
    }
}
