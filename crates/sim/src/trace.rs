//! Reusable functional kernel traces — "execute once, time many"
//! (DESIGN.md §5h).
//!
//! A [`KernelTrace`] captures everything *functional* about a kernel run:
//! the generated instruction stream, the region map used for cache warm-up,
//! and one [`save_core::FuncTrace`] per simulated core (per-VFMA effectual
//! lane masks, per-load broadcast facts, per-line zero masks). Those facts
//! are decided entirely by `(workload, seed)` — never by the timing
//! configuration — so one trace recorded under any operating point can be
//! *replayed* under every other, skipping codegen, operand generation and
//! all FMA arithmetic while reproducing cycles and [`save_core::CoreStats`]
//! bit-for-bit (the purity canary in `crates/sim/tests/replay_canary.rs`).
//!
//! Traces are content-addressed by [`trace_key`]: an FNV-1a hash over the
//! workload's canonical JSON, the machine *shape* (mode and core count —
//! the parts that change how many functional cores exist), and the data
//! seed. Timing-only knobs (core configuration, memory latencies, the
//! verify flag) are deliberately excluded, which is exactly what lets N
//! timing configurations share one recording. [`crate::CellSpec::cache_key`]
//! splits along the same line: `hash(trace_key ‖ timing_key)`.
//!
//! Recording is free of observer effects: the recorder hooks MGU, LSU and
//! issue activity, none of which occurs in fast-forwarded inert cycles, so
//! a recording run is bit-identical to a direct run and doubles as one of
//! the timed cells ("record-and-use"). A recording run always verifies the
//! kernel's numerical output against the reference before the trace is
//! admitted to a [`TraceStore`] — a trace that will stand in for N runs
//! must be known-good — and traces the recorder poisoned (e.g. a store
//! overlapping a broadcast-cache line) are never stored, so those cells
//! simply fall back to direct execution.

use crate::error::SimError;
use crate::runner::MachineConfig;
use save_core::FuncTrace;
use save_isa::Program;
use save_kernels::{GemmWorkload, Region};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The functional record of one simulated core's kernel run.
#[derive(Clone, Debug)]
pub struct CoreTrace {
    /// The generated instruction stream (replay skips codegen).
    pub program: Program,
    /// Region map for cache warm-up (replay skips operand generation, so
    /// the warm-up policy runs from the recorded layout).
    pub regions: Vec<Region>,
    /// Per-VFMA and per-load functional facts served back during replay.
    pub func: Arc<FuncTrace>,
}

/// A complete, verified functional trace of one kernel cell: one
/// [`CoreTrace`] per simulated core (one in symmetric mode, N in detailed
/// mode).
#[derive(Clone, Debug)]
pub struct KernelTrace {
    /// Per-core traces, indexed by core id.
    pub cores: Vec<CoreTrace>,
}

/// Content address of the functional work shared by every timing
/// configuration of a cell: workload (shape, sparsity — but *not* the
/// display name, which is a label rather than functional content, so two
/// identically-shaped layers under different names share one trace),
/// machine *shape* (mode + core count), and data seed. Timing-only
/// configuration — the core operating point, memory latencies, the verify
/// flag — is excluded by design.
///
/// # Errors
/// [`SimError::Protocol`] if the workload fails to serialize (it never
/// does for well-formed specs).
pub fn trace_key(w: &GemmWorkload, machine: &MachineConfig, seed: u64) -> Result<u64, SimError> {
    let mut anon = w.clone();
    anon.name.clear();
    let wj = serde_json::to_string(&anon)
        .map_err(|e| SimError::Protocol { what: format!("serialize workload: {e}") })?;
    let text = format!("trace|{wj}|{:?}/{}|{seed}", machine.mode, machine.cores);
    Ok(crate::checkpoint::fnv1a(text.as_bytes()))
}

/// An in-memory, thread-safe store of recorded traces, keyed by
/// [`trace_key`]. The first cell to run for a key records; every later
/// cell replays. Lookups and hits are counted so sweeps can report their
/// trace-reuse rate.
///
/// The store also memoizes *full cell results* by
/// [`crate::CellSpec::cache_key`]: two cells with identical trace **and**
/// timing keys are the same deterministic simulation, so the second can
/// return the first's [`crate::KernelResult`] without entering the core at
/// all. (Sweeps such as `fig16` genuinely submit such duplicates — e.g.
/// one shared baseline per VPU-count panel.)
///
/// Traces can be large (one `FuncTrace` per core); an optional FIFO
/// capacity bounds how many are held at once. Result memos are a few
/// machine words each and are never evicted.
#[derive(Debug, Default)]
pub struct TraceStore {
    traces: Mutex<Traces>,
    results: Mutex<HashMap<u64, crate::runner::KernelResult>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    result_lookups: AtomicU64,
    result_hits: AtomicU64,
}

/// Trace map plus FIFO admission order (capacity 0 = unbounded).
#[derive(Debug, Default)]
struct Traces {
    map: HashMap<u64, Arc<KernelTrace>>,
    order: std::collections::VecDeque<u64>,
    capacity: usize,
}

impl TraceStore {
    /// Creates an empty, unbounded store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store holding at most `capacity` traces, evicting
    /// the oldest recording first. Result memos are not bounded.
    pub fn with_capacity(capacity: usize) -> Self {
        let s = Self::default();
        s.traces.lock().expect("trace store poisoned").capacity = capacity;
        s
    }

    /// Fetches the trace for `key`, if one was recorded.
    pub fn get(&self, key: u64) -> Option<Arc<KernelTrace>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let found = self.traces.lock().expect("trace store poisoned").map.get(&key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Admits a recorded trace. The caller guarantees every per-core
    /// [`FuncTrace`] is replayable and the run verified against the
    /// numerical reference.
    pub fn insert(&self, key: u64, trace: KernelTrace) {
        let mut t = self.traces.lock().expect("trace store poisoned");
        if t.map.insert(key, Arc::new(trace)).is_none() {
            t.order.push_back(key);
            if t.capacity != 0 && t.order.len() > t.capacity {
                if let Some(old) = t.order.pop_front() {
                    t.map.remove(&old);
                }
            }
        }
    }

    /// Fetches the memoized result for a cell `cache_key`, if an identical
    /// cell already ran to completion.
    pub fn result(&self, cache_key: u64) -> Option<crate::runner::KernelResult> {
        self.result_lookups.fetch_add(1, Ordering::Relaxed);
        let found =
            self.results.lock().expect("trace store poisoned").get(&cache_key).copied();
        if found.is_some() {
            self.result_hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Memoizes a completed cell result under its `cache_key`.
    pub fn record_result(&self, cache_key: u64, result: crate::runner::KernelResult) {
        self.results.lock().expect("trace store poisoned").insert(cache_key, result);
    }

    /// Number of [`TraceStore::get`] calls so far.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Number of lookups that found a trace.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of [`TraceStore::result`] calls so far.
    pub fn result_lookups(&self) -> u64 {
        self.result_lookups.load(Ordering::Relaxed)
    }

    /// Number of result lookups served from the memo.
    pub fn result_hits(&self) -> u64 {
        self.result_hits.load(Ordering::Relaxed)
    }
}

/// How a kernel run interacts with the trace machinery (crate-internal:
/// the public entry points are `run_kernel_traced` and friends).
pub(crate) enum TraceMode<'a> {
    /// Record a functional trace and admit it to the store on success.
    Record {
        /// Destination store.
        store: &'a TraceStore,
        /// Content address to file the trace under.
        key: u64,
    },
    /// Replay a previously recorded trace.
    Replay {
        /// The trace to serve functional facts from.
        trace: Arc<KernelTrace>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::MachineMode;
    use save_kernels::{BroadcastPattern, GemmKernelSpec, Precision};

    fn tiny() -> GemmWorkload {
        GemmWorkload::dense(
            "tk",
            GemmKernelSpec {
                m_tiles: 2,
                n_vecs: 2,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            16,
            1,
        )
        .with_sparsity(0.5, 0.5)
    }

    #[test]
    fn trace_key_ignores_timing_but_not_function() {
        let m = MachineConfig::default();
        let k = trace_key(&tiny(), &m, 7).unwrap();
        // Timing-only change: memory latency config is not part of the key.
        let mut m2 = m;
        m2.mem.l3_ns += 10.0;
        assert_eq!(k, trace_key(&tiny(), &m2, 7).unwrap(), "mem timing must not re-key");
        // Functional changes re-key.
        assert_ne!(k, trace_key(&tiny(), &m, 8).unwrap(), "seed re-keys");
        assert_ne!(
            k,
            trace_key(&tiny().with_sparsity(0.5, 0.6), &m, 7).unwrap(),
            "sparsity re-keys"
        );
        let md = MachineConfig { mode: MachineMode::Detailed, ..m };
        assert_ne!(k, trace_key(&tiny(), &md, 7).unwrap(), "machine mode re-keys");
    }

    #[test]
    fn trace_key_ignores_display_name() {
        // VGG16's conv3_2 and conv3_3 (and friends) are the same shape
        // under different labels; they must share one trace.
        let m = MachineConfig::default();
        let mut renamed = tiny();
        renamed.name = "a different label".into();
        assert_eq!(
            trace_key(&tiny(), &m, 7).unwrap(),
            trace_key(&renamed, &m, 7).unwrap(),
            "the display name is not functional content"
        );
    }

    #[test]
    fn store_counts_lookups_and_hits() {
        let s = TraceStore::new();
        assert!(s.get(1).is_none());
        s.insert(1, KernelTrace { cores: Vec::new() });
        assert!(s.get(1).is_some());
        assert!(s.get(2).is_none());
        assert_eq!(s.lookups(), 3);
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn bounded_store_evicts_oldest_first() {
        let s = TraceStore::with_capacity(2);
        for k in 1..=3 {
            s.insert(k, KernelTrace { cores: Vec::new() });
        }
        assert!(s.get(1).is_none(), "oldest trace evicted at capacity");
        assert!(s.get(2).is_some());
        assert!(s.get(3).is_some());
        // Re-inserting an existing key must not double-count it in the
        // FIFO order (which would evict the wrong trace later).
        s.insert(2, KernelTrace { cores: Vec::new() });
        s.insert(4, KernelTrace { cores: Vec::new() });
        assert!(s.get(2).is_none(), "2 was oldest after 1's eviction");
        assert!(s.get(3).is_some());
        assert!(s.get(4).is_some());
    }

    #[test]
    fn result_memo_round_trips() {
        let s = TraceStore::new();
        assert!(s.result(9).is_none());
        let r = crate::runner::KernelResult {
            seconds: 1.5,
            cycles: 42,
            stats: Default::default(),
            verified: true,
            completed: true,
        };
        s.record_result(9, r);
        let back = s.result(9).expect("memoized");
        assert_eq!(back.cycles, 42);
        assert_eq!(s.result_lookups(), 2);
        assert_eq!(s.result_hits(), 1);
    }
}
