//! # save-sim — simulation driver and end-to-end estimation
//!
//! This crate ties the core model, memory hierarchy, kernels and sparsity
//! models into the paper's evaluation methodology (§VI):
//!
//! 1. [`runner`] executes one kernel on one simulated machine operating
//!    point (baseline 2 VPUs @ 1.7 GHz, SAVE 2 VPUs @ 1.7 GHz, SAVE 1 VPU @
//!    2.1 GHz) in either the fast *symmetric* 28-core mode or the
//!    [`multicore`] *detailed* mode that cycle-interleaves real cores over
//!    the shared NUCA L3 + mesh + DRAM;
//! 2. [`surface`] sweeps a kernel over a 2-D grid of (broadcasted,
//!    non-broadcasted) sparsity and interpolates bilinearly — the paper's
//!    "2D surface of execution times" (§VI);
//! 3. [`net`] composes the workloads into networks and encodes Table III's
//!    sparsity roles per phase;
//! 4. [`estimate`] produces the end-to-end inference and training numbers of
//!    Fig 14, including the static (per-epoch) and dynamic (per-kernel)
//!    1-vs-2-VPU selection of §IV-D.
//!
//! Every fallible entry point returns a typed [`SimError`] instead of
//! panicking, and [`parallel::parallel_try_map`] isolates panics at the
//! sweep-job boundary, so a figure sweep with one bad operating point still
//! completes with partial results and a [`parallel::FailureReport`]
//! (DESIGN.md, "Error handling & fault isolation").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod checkpoint;
pub mod durable;
pub mod error;
pub mod estimate;
pub mod multicore;
pub mod net;
pub mod parallel;
pub mod policy;
pub mod power;
pub mod relaxed;
pub mod runner;
pub mod spec;
pub mod surface;
pub mod trace;

pub use cancel::{CancelToken, Supervisor, SupervisorHandle, WatchGuard};
pub use checkpoint::{fsck_journal, CellRecord, Checkpoint, FsckReport, SweepManifest};
pub use durable::{
    exit_code_for, run_cell, CellRun, RetryPolicy, EXIT_CANCELLED, EXIT_FAILURES, EXIT_OK,
    EXIT_USAGE,
};
pub use error::{RetryClass, SimError};
pub use spec::{CellSpec, CoreSel};
pub use estimate::{
    Estimator, EstimatorConfig, EstimatorDurability, InferenceEstimate, TrainingEstimate,
};
pub use net::{LayerShape, Network};
pub use parallel::{
    host_parallelism, parallel_map, parallel_try_map, parallel_try_map_cancel,
    sim_thread_allowance, FailureReport, JobFailure,
};
pub use policy::{PolicyOutcome, VpuPolicy};
pub use power::{EnergyBreakdown, PowerModel};
pub use runner::{
    run_kernel_custom_traced, run_kernel_full, run_kernel_traced, ConfigKind, KernelResult,
    KernelRun, MachineConfig, MachineMode, MulticoreConfig,
};
pub use surface::{DurableSweep, Surface, SweepOutcome};
pub use trace::{trace_key, CoreTrace, KernelTrace, TraceStore};
