//! Fault-tolerant parallel map for independent simulations.
//!
//! Every kernel simulation is independent (own core, own memory model), so
//! the sweep driver fans jobs out over host threads with a shared atomic
//! cursor. Each job runs behind [`std::panic::catch_unwind`]: one panicking
//! or erroring operating point produces an `Err` slot (with a bounded
//! retry for transient panics) instead of taking the whole sweep down. The
//! per-item `Result`s roll up into a [`FailureReport`] that sweep binaries
//! dump as JSON before exiting non-zero.

use crate::error::SimError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// One failed job in a sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobFailure {
    /// Index of the job in the sweep's item list.
    pub job: usize,
    /// Human-readable label for the job, when the sweep provided one.
    pub label: Option<String>,
    /// Number of attempts made (1 = no retry).
    pub attempts: usize,
    /// The error from the final attempt.
    pub error: SimError,
}

/// Sweep-level roll-up of every failed job, JSON-dumpable so a figure run
/// leaves an audit trail next to its partial results.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FailureReport {
    /// Total jobs in the sweep.
    pub total_jobs: usize,
    /// Jobs that completed.
    pub succeeded: usize,
    /// The failures, in job order.
    pub failures: Vec<JobFailure>,
}

impl FailureReport {
    /// Builds a report from per-item results, attaching `label(i)` names.
    pub fn from_results<R>(
        results: &[Result<R, SimError>],
        label: impl Fn(usize) -> Option<String>,
    ) -> Self {
        let failures: Vec<JobFailure> = results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                r.as_ref().err().map(|e| JobFailure {
                    job: i,
                    label: label(i),
                    attempts: 1,
                    error: e.clone(),
                })
            })
            .collect();
        FailureReport {
            total_jobs: results.len(),
            succeeded: results.len() - failures.len(),
            failures,
        }
    }

    /// `true` when every job succeeded.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The process exit code a sweep binary should return — delegated to
    /// the workspace-wide mapping [`crate::durable::exit_code_for`] so
    /// every binary agrees (0 clean, 1 failures; cancellation is decided
    /// higher up where the supervisor is visible).
    pub fn exit_code(&self) -> i32 {
        crate::durable::exit_code_for(false, self.is_clean()) as i32
    }
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}/{} jobs succeeded", self.succeeded, self.total_jobs)?;
        for fail in &self.failures {
            write!(f, "  job {}", fail.job)?;
            if let Some(l) = &fail.label {
                write!(f, " ({l})")?;
            }
            writeln!(f, ": [{}] {}", fail.error.kind(), fail.error)?;
        }
        Ok(())
    }
}

/// Sweep workers currently claiming jobs across every live
/// `parallel_try_map*` call in the process — the shared thread budget that
/// keeps nested parallelism (sweep workers × per-machine relaxed-sync
/// threads) from oversubscribing the host.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Host hardware threads (1 when undetectable).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// RAII registration of `n` sweep workers against the shared budget.
struct WorkerBudget(usize);

impl WorkerBudget {
    fn register(n: usize) -> Self {
        ACTIVE_WORKERS.fetch_add(n, Ordering::SeqCst);
        WorkerBudget(n)
    }
}

impl Drop for WorkerBudget {
    fn drop(&mut self) {
        ACTIVE_WORKERS.fetch_sub(self.0, Ordering::SeqCst);
    }
}

/// How many host threads one nested simulation (e.g. the relaxed-sync
/// multicore engine with `threads == 0`) may use right now: the host's
/// parallelism divided by the sweep workers currently active, never below
/// one. A sweep already using every host thread pins nested engines to one
/// thread each instead of spawning workers × cores threads; with no sweep
/// active the full host is available.
pub fn sim_thread_allowance() -> usize {
    let active = ACTIVE_WORKERS.load(Ordering::SeqCst);
    (host_parallelism() / active.max(1)).max(1)
}

/// Turns a caught panic payload into a [`SimError::WorkerPanic`].
pub(crate) fn panic_error(job: usize, payload: Box<dyn std::any::Any + Send>) -> SimError {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    SimError::WorkerPanic { job, message }
}

/// Runs one job with panic isolation and up to `retries` re-attempts after
/// a panic. Deterministic `Err` returns are NOT retried — a verify mismatch
/// or invalid config will not heal on a second run.
fn run_job<T, R, F>(items: &[T], i: usize, retries: usize, f: &F) -> Result<R, SimError>
where
    F: Fn(&T) -> Result<R, SimError>,
{
    let mut last = None;
    for _ in 0..=retries {
        match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
            Ok(r) => return r,
            Err(payload) => last = Some(panic_error(i, payload)),
        }
    }
    Err(last.expect("loop ran at least once"))
}

/// Applies the fallible `f` to every item, in parallel over up to `threads`
/// host threads (the available parallelism when `threads == 0`), catching
/// panics at the job boundary and retrying a panicked job up to `retries`
/// times. Results are returned in input order; a failed job occupies its
/// slot as an `Err` while every other job still completes.
pub fn parallel_try_map<T, R, F>(
    items: &[T],
    threads: usize,
    retries: usize,
    f: F,
) -> Vec<Result<R, SimError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Result<R, SimError> + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    }
    .min(items.len().max(1));
    if threads <= 1 {
        return (0..items.len()).map(|i| run_job(items, i, retries, &f)).collect();
    }
    let _budget = WorkerBudget::register(threads);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Result<R, SimError>)>> =
        Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut local: Vec<(usize, Result<R, SimError>)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, run_job(items, i, retries, &f)));
                }
                let mut all = collected.lock().unwrap_or_else(|p| p.into_inner());
                all.extend(local);
            });
        }
    });
    let mut all = collected.into_inner().unwrap_or_else(|p| p.into_inner());
    all.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(all.len(), items.len());
    all.into_iter().map(|(_, r)| r).collect()
}

/// Cancel-aware variant of [`parallel_try_map`] for durable sweeps
/// (DESIGN.md §5f). Workers stop *claiming* new items once `cancel`
/// latches; items never claimed come back as [`SimError::Cancelled`] so the
/// caller can tell "not attempted, resumable" from a real failure. The
/// closure receives the item index (for journaling) and is responsible for
/// its own retry policy — panics here are converted but not retried (the
/// durable cell runner owns the attempt loop).
pub fn parallel_try_map_cancel<T, R, F>(
    items: &[T],
    threads: usize,
    cancel: &crate::cancel::CancelToken,
    f: F,
) -> Vec<Result<R, SimError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, SimError> + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    }
    .min(items.len().max(1));
    let run_one = |i: usize| -> Result<R, SimError> {
        catch_unwind(AssertUnwindSafe(|| f(i, &items[i])))
            .unwrap_or_else(|payload| Err(panic_error(i, payload)))
    };
    let unclaimed = |i: usize| -> Result<R, SimError> {
        Err(SimError::Cancelled { what: format!("job {i} not started (sweep cancelled)") })
    };
    if threads <= 1 {
        return (0..items.len())
            .map(|i| if cancel.is_cancelled() { unclaimed(i) } else { run_one(i) })
            .collect();
    }
    let _budget = WorkerBudget::register(threads);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Result<R, SimError>)>> =
        Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut local: Vec<(usize, Result<R, SimError>)> = Vec::new();
                loop {
                    if cancel.is_cancelled() {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, run_one(i)));
                }
                let mut all = collected.lock().unwrap_or_else(|p| p.into_inner());
                all.extend(local);
            });
        }
    });
    let mut slots: Vec<Option<Result<R, SimError>>> =
        (0..items.len()).map(|_| None).collect();
    let all = collected.into_inner().unwrap_or_else(|p| p.into_inner());
    for (i, r) in all {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| unclaimed(i)))
        .collect()
}

/// Infallible convenience wrapper over [`parallel_try_map`] for closures
/// that cannot fail. A panic inside `f` still propagates (after poisoning
/// only its own job), so pure-math sweeps keep their simple signature.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_try_map(items, threads, 0, |t| Ok(f(t)))
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("parallel_map job failed: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn single_thread_fallback() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(parallel_map(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn one_panicking_job_leaves_the_rest_ok() {
        let items: Vec<u32> = (0..16).collect();
        let out = parallel_try_map(&items, 4, 0, |&x| {
            if x == 7 {
                panic!("job seven exploded");
            }
            Ok(x * 2)
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                match r {
                    Err(SimError::WorkerPanic { job, message }) => {
                        assert_eq!(*job, 7);
                        assert!(message.contains("exploded"), "{message}");
                    }
                    other => panic!("expected WorkerPanic, got {other:?}"),
                }
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i as u32) * 2);
            }
        }
    }

    #[test]
    fn panics_are_retried_but_errors_are_not() {
        use std::sync::atomic::AtomicUsize;
        let attempts = AtomicUsize::new(0);
        let items = vec![0u32];
        let out = parallel_try_map(&items, 1, 2, |_| -> Result<u32, SimError> {
            attempts.fetch_add(1, Ordering::SeqCst);
            panic!("always");
        });
        assert_eq!(attempts.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
        assert!(matches!(out[0], Err(SimError::WorkerPanic { .. })));

        let attempts = AtomicUsize::new(0);
        let out = parallel_try_map(&items, 1, 2, |_| -> Result<u32, SimError> {
            attempts.fetch_add(1, Ordering::SeqCst);
            Err(SimError::InvalidConfig { what: "deterministic".into() })
        });
        assert_eq!(attempts.load(Ordering::SeqCst), 1, "Err results must not retry");
        assert!(matches!(out[0], Err(SimError::InvalidConfig { .. })));
    }

    #[test]
    fn thread_count_is_clamped_to_item_count() {
        // A single job with a generous thread budget must not spawn worker
        // threads at all: the clamp reduces it to the caller-thread path.
        let caller = std::thread::current().id();
        let items = vec![41u32];
        let out = parallel_try_map(&items, 8, 0, |&x| {
            assert_eq!(
                std::thread::current().id(),
                caller,
                "one job must run on the calling thread, not a spawned worker"
            );
            Ok(x + 1)
        });
        assert_eq!(*out[0].as_ref().unwrap(), 42);
    }

    #[test]
    fn cancel_map_completes_when_never_cancelled() {
        let token = crate::cancel::CancelToken::new();
        let items: Vec<u32> = (0..32).collect();
        let out = parallel_try_map_cancel(&items, 4, &token, |i, &x| {
            assert_eq!(i as u32, x);
            Ok(x * 3)
        });
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), (i as u32) * 3);
        }
    }

    #[test]
    fn cancel_map_stops_claiming_after_cancel() {
        let token = crate::cancel::CancelToken::new();
        let items: Vec<u32> = (0..64).collect();
        // Single-threaded so the cancellation point is deterministic: the
        // 5th item latches the token, items 5.. are never claimed.
        let out = parallel_try_map_cancel(&items, 1, &token, |i, &x| {
            if i == 4 {
                token.cancel();
            }
            Ok(x)
        });
        for (i, r) in out.iter().enumerate() {
            if i <= 4 {
                assert!(r.is_ok(), "item {i} ran before the cancel");
            } else {
                match r {
                    Err(SimError::Cancelled { .. }) => {}
                    other => panic!("item {i}: expected Cancelled, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn nested_thread_budget_is_shared() {
        // While a 4-worker sweep is live, a nested simulation's allowance
        // must shrink to at most host/4 (and never below 1). Other tests may
        // register workers concurrently, which only shrinks the allowance
        // further, so the upper bound stays safe to assert.
        let host = host_parallelism();
        let items: Vec<u32> = (0..8).collect();
        let out = parallel_try_map(&items, 4, 0, |&x| {
            let a = sim_thread_allowance();
            assert!(a >= 1, "allowance must never reach zero");
            assert!(
                a <= (host / 4).max(1),
                "allowance {a} ignores the 4 registered sweep workers (host {host})"
            );
            Ok(x)
        });
        assert!(out.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn failure_report_counts_and_exit_code() {
        let results: Vec<Result<u32, SimError>> = vec![
            Ok(1),
            Err(SimError::InvalidConfig { what: "bad".into() }),
            Ok(3),
        ];
        let rep = FailureReport::from_results(&results, |i| Some(format!("job-{i}")));
        assert_eq!(rep.total_jobs, 3);
        assert_eq!(rep.succeeded, 2);
        assert_eq!(rep.failures.len(), 1);
        assert_eq!(rep.failures[0].label.as_deref(), Some("job-1"));
        assert_eq!(rep.exit_code(), 1);
        assert!(!rep.is_clean());
        let clean = FailureReport::from_results::<u32>(&[Ok(1)], |_| None);
        assert_eq!(clean.exit_code(), 0);
    }
}
