//! A small work-stealing-free parallel map for independent simulations.
//!
//! Every kernel simulation is independent (own core, own memory model), so
//! the sweep driver fans jobs out over host threads with a shared atomic
//! cursor. `crossbeam` scoped threads keep borrows simple.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, in parallel over up to `threads` host threads
/// (defaults to the available parallelism when `threads == 0`). Results are
/// returned in input order.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    }
    .min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slot_ptrs: Vec<parking_lot::Mutex<&mut Option<R>>> =
        slots.iter_mut().map(parking_lot::Mutex::new).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                **slot_ptrs[i].lock() = Some(r);
            });
        }
    })
    .expect("worker thread panicked");
    drop(slot_ptrs);
    slots.into_iter().map(|s| s.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn single_thread_fallback() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(parallel_map(&items, 4, |&x| x).is_empty());
    }
}
