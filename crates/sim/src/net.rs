//! Network composition and the Table III sparsity roles.

use save_kernels::{ConvShape, GemmWorkload, LstmShape, Phase, Precision};
use save_sparsity::{ActivationModel, NetKind, PruningSchedule};
use serde::{Deserialize, Serialize};

/// One layer of a network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum LayerShape {
    /// A convolution layer.
    Conv(ConvShape),
    /// An LSTM cell.
    Lstm(LstmShape),
}

impl LayerShape {
    /// Layer name.
    pub fn name(&self) -> &str {
        match self {
            LayerShape::Conv(c) => &c.name,
            LayerShape::Lstm(l) => &l.name,
        }
    }

    /// Full-size FLOPs (occurrence-weighted).
    pub fn flops(&self) -> f64 {
        match self {
            LayerShape::Conv(c) => c.flops(),
            LayerShape::Lstm(l) => l.flops(),
        }
    }

    /// The scaled-down kernel workload for `phase`.
    pub fn workload(&self, phase: Phase, precision: Precision) -> GemmWorkload {
        match self {
            LayerShape::Conv(c) => c.workload(phase, precision),
            LayerShape::Lstm(l) => l.workload(phase, precision),
        }
    }
}

/// Broadcast-side / vector-side sparsity of one kernel execution.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparsityPoint {
    /// Broadcasted-sparsity source level (operand A).
    pub a: f64,
    /// Non-broadcasted-sparsity source level (operand B).
    pub b: f64,
}

/// A network instance: layers plus its training regime.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    /// Which network / regime.
    pub kind: NetKind,
    /// The layers in order.
    pub layers: Vec<LayerShape>,
    /// The pruning schedule (dense networks use a never-pruning schedule).
    pub schedule: PruningSchedule,
    /// Number of epoch samples across training (per-epoch for the CNNs,
    /// every 5K iterations for GNMT).
    pub epochs: usize,
}

impl Network {
    /// Builds the paper's network instances (§VI). `batch` applies to GNMT.
    pub fn build(kind: NetKind) -> Network {
        match kind {
            NetKind::Vgg16Dense => Network {
                kind,
                layers: save_kernels::shapes::vgg16().into_iter().map(LayerShape::Conv).collect(),
                schedule: PruningSchedule::dense(90.0),
                epochs: 90,
            },
            NetKind::ResNet50Dense => Network {
                kind,
                layers: save_kernels::shapes::resnet50().into_iter().map(LayerShape::Conv).collect(),
                schedule: PruningSchedule::dense(90.0),
                epochs: 90,
            },
            NetKind::ResNet50Pruned => Network {
                kind,
                layers: save_kernels::shapes::resnet50().into_iter().map(LayerShape::Conv).collect(),
                schedule: PruningSchedule::resnet50(),
                epochs: 102,
            },
            NetKind::GnmtPruned => Network {
                kind,
                layers: save_kernels::shapes::gnmt(64).into_iter().map(LayerShape::Lstm).collect(),
                schedule: PruningSchedule::gnmt(),
                epochs: 68, // every 5K of 340K iterations
            },
        }
    }

    /// Training phases executed for `layer` (Table III):
    /// the first conv layer has no input gradient to produce; LSTM forward
    /// and backward are each one merged kernel.
    pub fn phases(&self, layer: usize) -> Vec<Phase> {
        match &self.layers[layer] {
            LayerShape::Conv(_) => {
                if layer == 0 {
                    vec![Phase::Forward, Phase::BackwardWeights]
                } else {
                    vec![Phase::Forward, Phase::BackwardInput, Phase::BackwardWeights]
                }
            }
            // For LSTMs "BackwardInput" stands for the merged backward pass.
            LayerShape::Lstm(_) => vec![Phase::Forward, Phase::BackwardInput],
        }
    }

    /// The sparsity the kernel for (`layer`, `phase`) sees at `progress`
    /// (`0..=1`) of the way through training — the Table III role mapping:
    ///
    /// * forward: broadcast activations x weight vectors;
    /// * backward-input: broadcast output-gradients x weight vectors;
    /// * backward-weights: broadcast activations x gradient vectors.
    pub fn sparsity_point(&self, layer: usize, phase: Phase, progress: f64) -> SparsityPoint {
        let act = ActivationModel::new(self.kind);
        let n = self.layers.len();
        let w_s = self.schedule.sparsity_at(progress * self.schedule.total);
        match &self.layers[layer] {
            LayerShape::Conv(_) => match phase {
                Phase::Forward => SparsityPoint { a: act.sparsity(layer, n, progress), b: w_s },
                Phase::BackwardInput => {
                    SparsityPoint { a: act.grad_sparsity(layer, n, progress), b: w_s }
                }
                Phase::BackwardWeights => SparsityPoint {
                    a: act.sparsity(layer, n, progress),
                    b: act.grad_sparsity(layer, n, progress),
                },
            },
            LayerShape::Lstm(_) => {
                // Dropout-induced 20% activation sparsity on the broadcast
                // side in both merged passes; pruned weights on the vector
                // side.
                SparsityPoint { a: act.sparsity(layer.max(1), n.max(2), progress), b: w_s }
            }
        }
    }

    /// End-of-training sparsity used for inference (§VI).
    pub fn inference_point(&self, layer: usize) -> SparsityPoint {
        self.sparsity_point(layer, Phase::Forward, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn networks_have_expected_layer_counts() {
        assert_eq!(Network::build(NetKind::Vgg16Dense).layers.len(), 13);
        assert_eq!(Network::build(NetKind::ResNet50Dense).layers.len(), 24);
        assert_eq!(Network::build(NetKind::GnmtPruned).layers.len(), 3);
    }

    #[test]
    fn first_conv_layer_skips_backward_input() {
        let net = Network::build(NetKind::Vgg16Dense);
        assert_eq!(net.phases(0), vec![Phase::Forward, Phase::BackwardWeights]);
        assert_eq!(net.phases(1).len(), 3);
    }

    #[test]
    fn table3_dense_vgg16() {
        let net = Network::build(NetKind::Vgg16Dense);
        // Forward: BS only (dense weights).
        let p = net.sparsity_point(5, Phase::Forward, 1.0);
        assert!(p.a > 0.3 && p.b == 0.0);
        // Backward input: BS only (ReLU gradients, dense weights).
        let p = net.sparsity_point(5, Phase::BackwardInput, 1.0);
        assert!(p.a > 0.3 && p.b == 0.0);
        // Backward weights: BS and NBS.
        let p = net.sparsity_point(5, Phase::BackwardWeights, 1.0);
        assert!(p.a > 0.3 && p.b > 0.3);
    }

    #[test]
    fn table3_pruned_resnet50() {
        let net = Network::build(NetKind::ResNet50Pruned);
        // Forward: BS (acts) + NBS (pruned weights).
        let p = net.sparsity_point(5, Phase::Forward, 1.0);
        assert!(p.a > 0.1 && (p.b - 0.8).abs() < 1e-9);
        // Backward input: NBS only — the paper's only NBS-without-BS case.
        let p = net.sparsity_point(5, Phase::BackwardInput, 1.0);
        assert_eq!(p.a, 0.0);
        assert!((p.b - 0.8).abs() < 1e-9);
        // Backward weights: BS only (BatchNorm kills gradient sparsity).
        let p = net.sparsity_point(5, Phase::BackwardWeights, 1.0);
        assert!(p.a > 0.1 && p.b == 0.0);
    }

    #[test]
    fn table3_dense_resnet50_backward_input_has_no_sparsity() {
        let net = Network::build(NetKind::ResNet50Dense);
        let p = net.sparsity_point(5, Phase::BackwardInput, 0.9);
        assert_eq!(p, SparsityPoint { a: 0.0, b: 0.0 });
    }

    #[test]
    fn table3_gnmt() {
        let net = Network::build(NetKind::GnmtPruned);
        for phase in [Phase::Forward, Phase::BackwardInput] {
            let p = net.sparsity_point(1, phase, 1.0);
            assert!((p.a - 0.2).abs() < 1e-9);
            assert!((p.b - 0.9).abs() < 1e-9);
        }
    }

    #[test]
    fn pruning_ramps_during_training() {
        let net = Network::build(NetKind::ResNet50Pruned);
        let early = net.sparsity_point(5, Phase::Forward, 0.2).b; // epoch ~20
        let mid = net.sparsity_point(5, Phase::Forward, 0.5).b; // epoch 51
        assert_eq!(early, 0.0);
        assert!(mid > 0.3 && mid < 0.8);
    }
}
