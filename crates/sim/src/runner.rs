//! Single-kernel execution on a configured machine.

use crate::cancel::CancelToken;
use crate::error::SimError;
use crate::trace::{self, CoreTrace, KernelTrace, TraceMode, TraceStore};
use save_core::{Core, CoreConfig, CoreStats, SchedulerKind};
use save_isa::Memory;
use save_kernels::{BuiltKernel, GemmWorkload, Region, RegionRole};
use save_mem::{CoreMemory, MemConfig, Uncore, UncoreReport, WarmLevel};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How the multicore machine is modelled.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MachineMode {
    /// One simulated core against its 1/N share of uncore resources
    /// (DESIGN.md §2) — used for the large parameter sweeps.
    Symmetric,
    /// N cores cycle-interleaved over the shared NUCA L3 + mesh + DRAM.
    Detailed,
}

/// Multicore execution knobs for [`MachineMode::Detailed`] (DESIGN.md §5i).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MulticoreConfig {
    /// Relaxed-synchronization quantum in core cycles. `1` (the default)
    /// runs the serial lockstep engine — cores reconcile shared uncore
    /// state every cycle, bit-identical to the pre-relaxed simulator.
    /// Larger quanta let each core run (and fast-forward) independently
    /// between deterministic barriers, at a timing-accuracy cost bounded by
    /// the quantum length. Changes simulated timing, so it is part of the
    /// cell cache key.
    pub quantum: u64,
    /// Host threads for the relaxed engine; `0` = auto (the shared thread
    /// budget of [`crate::parallel`], clamped to the core count). Provably
    /// does NOT affect simulation results — only wall-clock speed — so it
    /// is excluded from the cell cache key.
    pub threads: usize,
}

impl Default for MulticoreConfig {
    fn default() -> Self {
        MulticoreConfig { quantum: 1, threads: 0 }
    }
}

impl MulticoreConfig {
    /// Rejects degenerate configurations (`quantum == 0`).
    pub fn validate(&self) -> Result<(), String> {
        if self.quantum == 0 {
            return Err("machine config: mc.quantum must be >= 1".to_string());
        }
        Ok(())
    }
}

/// Machine-level configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Core count (Table I: 28).
    pub cores: usize,
    /// Simulation mode.
    pub mode: MachineMode,
    /// Memory-system configuration.
    pub mem: MemConfig,
    /// Multicore engine knobs (quantum / host threads); defaults preserve
    /// the serial lockstep behaviour.
    #[serde(default)]
    pub mc: MulticoreConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 28,
            mode: MachineMode::Symmetric,
            mem: MemConfig::default(),
            mc: MulticoreConfig::default(),
        }
    }
}

/// The three machine operating points evaluated throughout §VII, plus the
/// derived selection policies of §IV-D.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ConfigKind {
    /// Conventional scheduler, 2 VPUs @ 1.7 GHz.
    Baseline,
    /// SAVE, 2 VPUs @ 1.7 GHz.
    Save2Vpu,
    /// SAVE, 1 VPU @ 2.1 GHz (frequency-boosted, §IV-D).
    Save1Vpu,
}

impl ConfigKind {
    /// The three simulated points.
    pub const ALL: [ConfigKind; 3] = [ConfigKind::Baseline, ConfigKind::Save2Vpu, ConfigKind::Save1Vpu];

    /// The core configuration for this operating point.
    pub fn core_config(&self) -> CoreConfig {
        match self {
            ConfigKind::Baseline => CoreConfig::baseline(),
            ConfigKind::Save2Vpu => CoreConfig::save_2vpu(),
            ConfigKind::Save1Vpu => CoreConfig::save_1vpu(),
        }
    }

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            ConfigKind::Baseline => "baseline",
            ConfigKind::Save2Vpu => "2 VPUs",
            ConfigKind::Save1Vpu => "1 VPU",
        }
    }
}

/// Result of running one kernel.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KernelResult {
    /// Wall-clock seconds at the configured frequency.
    pub seconds: f64,
    /// Core cycles.
    pub cycles: u64,
    /// Core counters.
    pub stats: CoreStats,
    /// Whether the numerical output matched the reference (only checked
    /// when requested).
    pub verified: bool,
    /// Whether the run completed within the cycle budget.
    pub completed: bool,
}

/// A kernel result together with the machine's uncore contention report
/// (per-link flit occupancy, per-slice MSHR conflicts, DRAM queue depth) —
/// the many-core signals [`KernelResult`] alone cannot carry because it
/// stays `Copy`.
#[derive(Clone, Debug)]
pub struct KernelRun {
    /// The timing result (slowest core in detailed mode).
    pub result: KernelResult,
    /// Shared-uncore contention counters for the whole run.
    pub uncore: UncoreReport,
}

/// Applies the paper's §VI warm-up policy: the broadcast-side input (the
/// previous operation's output) is warm in L3; a reused weight panel is
/// L3-warm as well (full-size layers amortize its first streaming pass —
/// DESIGN.md §4); streamed panels and the output are cold.
pub fn warm_regions(
    w: &GemmWorkload,
    regions: &[Region],
    cmem: &mut CoreMemory,
    uncore: &mut Uncore,
) {
    for r in regions {
        let warm = match r.role {
            RegionRole::BroadcastInput => true,
            RegionRole::VectorInput => w.reuse_b(),
            RegionRole::Output => false,
        };
        if warm {
            cmem.warm(uncore, r.base, r.bytes, WarmLevel::L3);
        }
    }
}

/// Runs `w` on the machine at the given operating point.
///
/// In [`MachineMode::Symmetric`] one core is simulated against its share of
/// the uncore; in [`MachineMode::Detailed`] this delegates to
/// [`crate::multicore::run_multicore`] and reports the slowest core.
///
/// # Errors
/// * [`SimError::InvalidConfig`] if the operating point fails validation;
/// * [`SimError::VerifyMismatch`] if `verify` is set and the kernel's
///   numerical output disagrees with the reference (always a simulator bug);
/// * [`SimError::CycleBudgetExceeded`] if the run hits the cycle budget or
///   the retire-progress watchdog — the error carries a
///   [`save_core::StallDiag`] naming the stalled resource;
/// * [`SimError::InvariantViolation`] if the cycle-level sanitizer
///   ([`save_core::SanitizeLevel`], `SAVE_SANITIZE`) aborted the run — the
///   error carries the [`save_core::SanitizerReport`] witness.
pub fn run_kernel(
    w: &GemmWorkload,
    kind: ConfigKind,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
) -> Result<KernelResult, SimError> {
    run_kernel_cancel(w, kind, machine, seed, verify, None)
}

/// [`run_kernel`] with an optional cooperative cancel token. When the token
/// latches (Ctrl-C, a per-cell deadline), the simulated core stops at its
/// next [`save_core::CANCEL_QUANTUM`] boundary and this returns
/// [`SimError::Cancelled`] — no partial [`KernelResult`] escapes.
pub fn run_kernel_cancel(
    w: &GemmWorkload,
    kind: ConfigKind,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
) -> Result<KernelResult, SimError> {
    match machine.mode {
        MachineMode::Detailed => {
            crate::multicore::run_multicore_cancel(w, kind, machine, seed, verify, cancel)
        }
        MachineMode::Symmetric => {
            run_kernel_custom_cancel(w, &kind.core_config(), machine, seed, verify, cancel)
        }
    }
}

/// [`run_kernel_cancel`] that additionally returns the uncore contention
/// report (see [`KernelRun`]). Same errors and timing semantics.
pub fn run_kernel_full(
    w: &GemmWorkload,
    kind: ConfigKind,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
) -> Result<KernelRun, SimError> {
    match machine.mode {
        MachineMode::Detailed => crate::multicore::run_multicore_full(
            w,
            &kind.core_config(),
            machine,
            seed,
            verify,
            cancel,
        ),
        MachineMode::Symmetric => {
            run_symmetric(w, &kind.core_config(), machine, seed, verify, cancel, None)
        }
    }
}

/// Like [`run_kernel`] but with an arbitrary core configuration — used by
/// the ablation studies (Figs 17-19) that toggle individual SAVE features.
/// Respects `machine.mode` like [`run_kernel`] does.
pub fn run_kernel_custom(
    w: &GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
) -> Result<KernelResult, SimError> {
    run_kernel_custom_cancel(w, core_cfg, machine, seed, verify, None)
}

/// [`run_kernel_custom`] with an optional cooperative cancel token (see
/// [`run_kernel_cancel`]).
pub fn run_kernel_custom_cancel(
    w: &GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
) -> Result<KernelResult, SimError> {
    if machine.mode == MachineMode::Detailed {
        return crate::multicore::run_multicore_custom_cancel(
            w, core_cfg, machine, seed, verify, cancel,
        );
    }
    run_symmetric(w, core_cfg, machine, seed, verify, cancel, None).map(|r| r.result)
}

/// [`run_kernel_cancel`] with a [`TraceStore`]: the first cell to run for a
/// given `(workload, machine shape, seed)` records a functional trace and
/// files it under [`trace::trace_key`]; every later cell *replays* that
/// trace — skipping codegen, operand generation and FMA arithmetic — and
/// produces bit-identical seconds, cycles and [`CoreStats`] (the
/// "execute once, time N" machinery of DESIGN.md §5h).
///
/// A recording run always checks the numerical output against the
/// reference before the trace is admitted, so a simulator bug surfaces as
/// [`SimError::VerifyMismatch`] on the *first* cell rather than being
/// multiplied across the sweep. The reported `verified` flag still follows
/// the `verify` argument, as in [`run_kernel`].
pub fn run_kernel_traced(
    w: &GemmWorkload,
    kind: ConfigKind,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
    store: &TraceStore,
) -> Result<KernelResult, SimError> {
    run_kernel_custom_traced(w, &kind.core_config(), machine, seed, verify, cancel, store)
}

/// [`run_kernel_traced`] with an arbitrary core configuration — the traced
/// counterpart of [`run_kernel_custom_cancel`].
pub fn run_kernel_custom_traced(
    w: &GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
    store: &TraceStore,
) -> Result<KernelResult, SimError> {
    let key = trace::trace_key(w, machine, seed)?;
    let mode = match store.get(key) {
        Some(t) => TraceMode::Replay { trace: t },
        None => TraceMode::Record { store, key },
    };
    match machine.mode {
        MachineMode::Detailed => {
            crate::multicore::run_multicore_traced(w, core_cfg, machine, seed, verify, cancel, mode)
        }
        MachineMode::Symmetric => {
            run_symmetric(w, core_cfg, machine, seed, verify, cancel, Some(mode)).map(|r| r.result)
        }
    }
}

/// What a symmetric run executes from: a freshly built kernel (direct and
/// record modes) or a recorded trace plus an empty functional arena
/// (replay never touches memory values).
enum Exec {
    Built(Box<BuiltKernel>),
    Replay { trace: Arc<KernelTrace>, mem: Memory },
}

/// The symmetric-mode engine behind [`run_kernel_custom_cancel`] and the
/// traced entry points.
fn run_symmetric(
    w: &GemmWorkload,
    core_cfg: &CoreConfig,
    machine: &MachineConfig,
    seed: u64,
    verify: bool,
    cancel: Option<&CancelToken>,
    mode: Option<TraceMode<'_>>,
) -> Result<KernelRun, SimError> {
    let cfg = *core_cfg;
    cfg.validate().map_err(|what| SimError::InvalidConfig { what })?;
    machine.mem.validate().map_err(|what| SimError::InvalidConfig { what })?;
    machine.mc.validate().map_err(|what| SimError::InvalidConfig { what })?;
    let mut uncore = Uncore::new_symmetric(&machine.mem, machine.cores);
    let mut cmem = CoreMemory::new(0, machine.mem, cfg.freq_ghz);
    let mut core = Core::new(cfg);
    if let Some(tok) = cancel {
        core.set_cancel(tok.as_flag());
    }
    let mut exec = match &mode {
        Some(TraceMode::Replay { trace }) => {
            let Some(ct) = trace.cores.first() else {
                return Err(SimError::Protocol { what: "empty kernel trace".to_string() });
            };
            warm_regions(w, &ct.regions, &mut cmem, &mut uncore);
            core.set_replay(Arc::clone(&ct.func));
            Exec::Replay { trace: Arc::clone(trace), mem: Memory::new(0) }
        }
        other => {
            let built = w.build(seed);
            warm_regions(w, &built.regions, &mut cmem, &mut uncore);
            if matches!(other, Some(TraceMode::Record { .. })) {
                core.set_record();
            }
            Exec::Built(Box::new(built))
        }
    };
    let out = match &mut exec {
        Exec::Built(b) => core.run_mut(&b.program, &mut b.mem, &mut cmem, &mut uncore),
        Exec::Replay { trace, mem } => {
            core.run_mut(&trace.cores[0].program, mem, &mut cmem, &mut uncore)
        }
    };
    if let Some(report) = out.violation {
        return Err(SimError::InvariantViolation {
            kernel: w.name.clone(),
            core: None,
            report,
        });
    }
    if out.cancelled {
        return Err(SimError::Cancelled { what: w.name.clone() });
    }
    if !out.completed {
        let Some(diag) = out.stall else {
            return Err(SimError::Io {
                what: "run stopped without a stall diagnosis or violation report".to_string(),
            });
        };
        return Err(SimError::CycleBudgetExceeded {
            kernel: w.name.clone(),
            core: None,
            diag: Box::new(diag),
        });
    }
    let verified = match (&mode, exec) {
        // A recording run is always checked against the reference before
        // the trace is admitted (see `run_kernel_traced`).
        (Some(TraceMode::Record { store, key }), Exec::Built(built)) => {
            if let Err((i, got, want)) = built.verify() {
                return Err(SimError::VerifyMismatch {
                    kernel: w.name.clone(),
                    core: None,
                    index: i,
                    got,
                    want,
                });
            }
            if let Some(func) = core.take_trace().filter(|t| t.replayable) {
                let built = *built;
                store.insert(
                    *key,
                    KernelTrace {
                        cores: vec![CoreTrace {
                            program: built.program,
                            regions: built.regions,
                            func: Arc::new(func),
                        }],
                    },
                );
            }
            verify
        }
        // Replay has no functional output; the trace verified at record.
        (Some(TraceMode::Replay { .. }), _) => verify,
        (_, Exec::Built(built)) => {
            if verify {
                if let Err((i, got, want)) = built.verify() {
                    return Err(SimError::VerifyMismatch {
                        kernel: w.name.clone(),
                        core: None,
                        index: i,
                        got,
                        want,
                    });
                }
                true
            } else {
                false
            }
        }
        (_, Exec::Replay { .. }) => unreachable!("replay implies TraceMode::Replay"),
    };
    Ok(KernelRun {
        result: KernelResult {
            seconds: cfg.cycles_to_seconds(out.stats.cycles),
            cycles: out.stats.cycles,
            stats: out.stats,
            verified,
            completed: out.completed,
        },
        uncore: uncore.report(),
    })
}

/// Sanity helper used by tests: the scheduler kind of an operating point.
pub fn scheduler_of(kind: ConfigKind) -> SchedulerKind {
    kind.core_config().scheduler
}

#[cfg(test)]
mod tests {
    use super::*;
    use save_kernels::{BroadcastPattern, GemmKernelSpec, Precision};

    fn tiny() -> GemmWorkload {
        GemmWorkload::dense(
            "tiny",
            GemmKernelSpec {
                m_tiles: 4,
                n_vecs: 2,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            16,
            2,
        )
        .with_sparsity(0.3, 0.3)
    }

    #[test]
    fn symmetric_run_verifies_and_times() {
        let r = run_kernel(&tiny(), ConfigKind::Save2Vpu, &MachineConfig::default(), 1, true)
            .unwrap();
        assert!(r.completed && r.verified);
        assert!(r.seconds > 0.0);
        assert_eq!(r.stats.fma_uops, tiny().fma_count());
    }

    #[test]
    fn invalid_operating_point_is_rejected_up_front() {
        let bad = CoreConfig { num_vpus: 0, ..CoreConfig::default() };
        let err = run_kernel_custom(&tiny(), &bad, &MachineConfig::default(), 1, false)
            .unwrap_err();
        match err {
            SimError::InvalidConfig { what } => assert!(what.contains("num_vpus"), "{what}"),
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn cycle_budget_overrun_carries_a_stall_diag() {
        let starved = CoreConfig { max_cycles: 20, ..CoreConfig::default() };
        let err = run_kernel_custom(&tiny(), &starved, &MachineConfig::default(), 1, false)
            .unwrap_err();
        match err {
            SimError::CycleBudgetExceeded { kernel, diag, .. } => {
                assert_eq!(kernel, "tiny");
                assert_eq!(diag.cause, save_core::StallCause::CycleBudget);
                assert_eq!(diag.cycle, 20);
            }
            other => panic!("expected CycleBudgetExceeded, got {other}"),
        }
    }

    #[test]
    fn operating_points_differ_in_frequency() {
        assert_eq!(ConfigKind::Baseline.core_config().freq_ghz, 1.7);
        assert_eq!(ConfigKind::Save1Vpu.core_config().freq_ghz, 2.1);
        assert_eq!(ConfigKind::Save1Vpu.core_config().num_vpus, 1);
        assert_eq!(scheduler_of(ConfigKind::Baseline), SchedulerKind::Baseline);
    }

    #[test]
    fn deterministic_across_repeats() {
        let a = run_kernel(&tiny(), ConfigKind::Save1Vpu, &MachineConfig::default(), 7, false)
            .unwrap();
        let b = run_kernel(&tiny(), ConfigKind::Save1Vpu, &MachineConfig::default(), 7, false)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
    }
}
