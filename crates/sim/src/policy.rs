//! VPU-count selection policies (§IV-D).
//!
//! The paper evaluates an *oracle* selection ("for each DNN kernel,
//! dynamically using the better of one or two VPUs", neglecting switching
//! overhead, §VII-A) and notes that hardware could decide "dynamically
//! through heuristics from performance counters". This module implements
//! both: the oracle, fixed configurations, and a realizable heuristic that
//! watches the previous kernel's effectual-lane fraction from the MGUs and
//! switches with hysteresis, charging a DVFS transition penalty per switch.

use crate::error::SimError;
use crate::runner::{run_kernel, ConfigKind, MachineConfig};
use save_kernels::GemmWorkload;
use serde::{Deserialize, Serialize};

/// A selection policy over a sequence of kernels.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum VpuPolicy {
    /// Always the given configuration.
    Fixed(ConfigKind),
    /// Per-kernel better of SAVE-2VPU and SAVE-1VPU (the paper's
    /// "dynamic"; assumes an oracle, no switching cost).
    Oracle,
    /// Counter-driven: start at 2 VPUs; after each kernel, if the MGUs saw
    /// fewer than `down_threshold` effectual lanes, drop to 1 VPU at
    /// 2.1 GHz; rise back above `up_threshold`. Each transition pays
    /// `switch_overhead_s` of DVFS settling time (§IV-D: ~10 µs).
    Heuristic {
        /// Effectual-lane fraction below which one VPU suffices.
        down_threshold: f64,
        /// Effectual-lane fraction above which two VPUs are engaged.
        up_threshold: f64,
        /// DVFS transition penalty in seconds.
        switch_overhead_s: f64,
    },
}

impl VpuPolicy {
    /// A reasonable default heuristic: drop below 55% effectual lanes,
    /// rise above 65%, 10 µs per DVFS transition.
    pub fn default_heuristic() -> Self {
        VpuPolicy::Heuristic {
            down_threshold: 0.55,
            up_threshold: 0.65,
            switch_overhead_s: 10e-6,
        }
    }
}

/// Result of running a kernel sequence under a policy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Total wall-clock seconds, including switching overhead.
    pub total_seconds: f64,
    /// Number of 1<->2 VPU transitions.
    pub switches: usize,
    /// The configuration chosen for each kernel.
    pub choices: Vec<ConfigKind>,
}

/// Runs `kernels` (workload + full-scale time multiplier) in order under
/// `policy` on `machine`, and returns the aggregate outcome.
///
/// The scale factor multiplies each kernel's simulated time (the layer's
/// full FLOPs over the scaled-down kernel's, DESIGN.md §4) so switching
/// overhead is weighed against realistic kernel durations.
///
/// # Errors
/// Fails on the first kernel whose simulation fails; the sequence is
/// stateful (the heuristic feeds each kernel's counters into the next
/// decision), so a partial result would be misleading.
pub fn run_sequence(
    kernels: &[(GemmWorkload, f64)],
    policy: VpuPolicy,
    machine: &MachineConfig,
) -> Result<PolicyOutcome, SimError> {
    let mut total = 0.0;
    let mut switches = 0;
    let mut choices = Vec::with_capacity(kernels.len());
    let mut current = ConfigKind::Save2Vpu;
    for (i, (w, scale)) in kernels.iter().enumerate() {
        let seed = 100 + i as u64;
        let kind = match policy {
            VpuPolicy::Fixed(k) => k,
            VpuPolicy::Oracle => {
                let t2 = run_kernel(w, ConfigKind::Save2Vpu, machine, seed, false)?.seconds;
                let t1 = run_kernel(w, ConfigKind::Save1Vpu, machine, seed, false)?.seconds;
                if t1 < t2 {
                    ConfigKind::Save1Vpu
                } else {
                    ConfigKind::Save2Vpu
                }
            }
            VpuPolicy::Heuristic { .. } => current,
        };
        let r = run_kernel(w, kind, machine, seed, false)?;
        total += r.seconds * scale;
        choices.push(kind);
        if let VpuPolicy::Heuristic { down_threshold, up_threshold, switch_overhead_s } = policy {
            let eff = r.stats.effectual_fraction();
            let next = if eff < down_threshold {
                ConfigKind::Save1Vpu
            } else if eff > up_threshold {
                ConfigKind::Save2Vpu
            } else {
                current
            };
            if next != current {
                switches += 1;
                total += switch_overhead_s;
                current = next;
            }
        }
    }
    Ok(PolicyOutcome { total_seconds: total, switches, choices })
}

#[cfg(test)]
mod tests {
    use super::*;
    use save_kernels::{BroadcastPattern, GemmKernelSpec, Precision};

    fn kernel(a: f64, b: f64) -> GemmWorkload {
        GemmWorkload::dense(
            "seq",
            GemmKernelSpec {
                m_tiles: 6,
                n_vecs: 3,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            48,
            2,
        )
        .with_sparsity(a, b)
    }

    fn machine() -> MachineConfig {
        MachineConfig { cores: 8, ..Default::default() }
    }

    #[test]
    fn oracle_beats_both_fixed_configs() {
        // A mixed sequence: dense kernels prefer 2 VPUs, sparse prefer 1.
        let seq: Vec<(GemmWorkload, f64)> = vec![
            (kernel(0.0, 0.0), 1.0),
            (kernel(0.8, 0.8), 1.0),
            (kernel(0.0, 0.1), 1.0),
            (kernel(0.7, 0.9), 1.0),
        ];
        let m = machine();
        let oracle = run_sequence(&seq, VpuPolicy::Oracle, &m).unwrap();
        let f2 = run_sequence(&seq, VpuPolicy::Fixed(ConfigKind::Save2Vpu), &m).unwrap();
        let f1 = run_sequence(&seq, VpuPolicy::Fixed(ConfigKind::Save1Vpu), &m).unwrap();
        assert!(oracle.total_seconds <= f2.total_seconds + 1e-12);
        assert!(oracle.total_seconds <= f1.total_seconds + 1e-12);
        assert!(oracle.choices.contains(&ConfigKind::Save1Vpu));
        assert!(oracle.choices.contains(&ConfigKind::Save2Vpu));
    }

    #[test]
    fn heuristic_tracks_sparsity_phases() {
        // A long sparse phase then a dense phase: the heuristic should end
        // up on 1 VPU during the former and back on 2 for the latter.
        let mut seq = Vec::new();
        for _ in 0..4 {
            seq.push((kernel(0.7, 0.8), 1.0));
        }
        for _ in 0..4 {
            seq.push((kernel(0.0, 0.0), 1.0));
        }
        let out = run_sequence(&seq, VpuPolicy::default_heuristic(), &machine()).unwrap();
        assert!(out.switches >= 2, "expected at least down+up transitions");
        assert_eq!(out.choices[3], ConfigKind::Save1Vpu, "sparse phase should run on 1 VPU");
        assert_eq!(*out.choices.last().unwrap(), ConfigKind::Save2Vpu, "dense phase back on 2");
    }

    #[test]
    fn heuristic_is_close_to_oracle_on_stable_phases() {
        // Scale each simulated kernel to a full layer's duration (tens of
        // ms, ~20,000x our reduced kernels) so the 10 µs DVFS penalty is
        // weighed as the paper weighs it (§VII-A: "the switching overhead
        // of a typical DVFS manager is around ten microseconds, while our
        // configuration switches at tens of milliseconds").
        let mut seq = Vec::new();
        for _ in 0..6 {
            seq.push((kernel(0.75, 0.8), 20_000.0));
        }
        let m = machine();
        let oracle = run_sequence(&seq, VpuPolicy::Oracle, &m).unwrap();
        let heur = run_sequence(&seq, VpuPolicy::default_heuristic(), &m).unwrap();
        // One mispredicted kernel of six plus switch cost: within 25%.
        assert!(
            heur.total_seconds <= oracle.total_seconds * 1.25,
            "heuristic {} vs oracle {}",
            heur.total_seconds,
            oracle.total_seconds
        );
    }
}
