//! End-to-end inference and training estimation (the §VI methodology
//! behind Fig 14).
//!
//! Per layer and phase, a sparsity surface is swept once (degenerate axes
//! collapsed per Table III) and cached; the per-epoch realistic sparsity is
//! then mapped onto the surfaces by bilinear interpolation, summed across
//! layers, and averaged over epochs. The VPU-count policies of §IV-D are
//! evaluated exactly as the paper does: *static* picks the better of 1 or 2
//! VPUs per epoch for the whole network, *dynamic* per kernel, both with
//! negligible switching overhead.

use crate::cancel::SupervisorHandle;
use crate::checkpoint::fingerprint;
use crate::durable::RetryPolicy;
use crate::error::SimError;
use crate::net::Network;
use crate::runner::{ConfigKind, MachineConfig};
use crate::surface::{DurableSweep, Surface};
use save_kernels::{Phase, Precision};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Estimator settings.
#[derive(Clone, Debug)]
pub struct EstimatorConfig {
    /// Machine to simulate.
    pub machine: MachineConfig,
    /// Sparsity grid for surface axes that vary.
    pub grid: Vec<f64>,
    /// Host threads for sweeps (0 = all).
    pub threads: usize,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            machine: MachineConfig::default(),
            grid: crate::surface::coarse_grid(),
            threads: 0,
        }
    }
}

/// Inference time split: the first layer has no input-activation sparsity
/// and is reported separately (Fig 14a).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SplitTimes {
    /// First layer's time in (estimated full-scale) seconds.
    pub first_layer: f64,
    /// All other layers.
    pub rest: f64,
}

impl SplitTimes {
    /// Total time.
    pub fn total(&self) -> f64 {
        self.first_layer + self.rest
    }
}

/// Whole-network inference estimate (Fig 14a/b).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct InferenceEstimate {
    /// Conventional machine.
    pub baseline: SplitTimes,
    /// SAVE, 2 VPUs @ 1.7 GHz.
    pub save2: SplitTimes,
    /// SAVE, 1 VPU @ 2.1 GHz.
    pub save1: SplitTimes,
    /// Per-kernel better of the two SAVE points (§IV-D "dynamic").
    pub dynamic: SplitTimes,
}

/// Per-phase training time buckets (Fig 14c/d stacking).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Forward propagation (layers 2+).
    pub forward: f64,
    /// Backward propagation of input.
    pub backward_input: f64,
    /// Backward propagation of weights.
    pub backward_weights: f64,
    /// The first layer's total contribution (all its phases).
    pub first_layer: f64,
}

impl PhaseTimes {
    /// Total time.
    pub fn total(&self) -> f64 {
        self.forward + self.backward_input + self.backward_weights + self.first_layer
    }

    fn add(&mut self, layer: usize, phase: Phase, t: f64) {
        if layer == 0 {
            self.first_layer += t;
            return;
        }
        match phase {
            Phase::Forward => self.forward += t,
            Phase::BackwardInput => self.backward_input += t,
            Phase::BackwardWeights => self.backward_weights += t,
        }
    }

    fn scale(&mut self, f: f64) {
        self.forward *= f;
        self.backward_input *= f;
        self.backward_weights *= f;
        self.first_layer *= f;
    }
}

/// Whole-network end-to-end training estimate (mean over epochs).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainingEstimate {
    /// Conventional machine.
    pub baseline: PhaseTimes,
    /// SAVE, 2 VPUs.
    pub save2: PhaseTimes,
    /// SAVE, 1 VPU.
    pub save1: PhaseTimes,
    /// Better of the two SAVE points per epoch (§IV-D "static").
    pub static_: PhaseTimes,
    /// Better of the two SAVE points per kernel (§IV-D "dynamic").
    pub dynamic: PhaseTimes,
}

/// Durable-execution options for an [`Estimator`] (DESIGN.md §5f): every
/// surface sweep becomes a checkpointed sub-sweep stored under
/// `checkpoint_dir/surf-<fingerprint>/`, with the supervisor enforcing
/// per-cell deadlines and propagating cancellation.
#[derive(Clone)]
pub struct EstimatorDurability {
    /// Root checkpoint directory; each distinct surface gets a
    /// content-addressed subdirectory. `None` keeps deadlines/retries/
    /// cancellation without journaling.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from existing per-surface journals.
    pub resume: bool,
    /// Per-cell deadline/retry policy.
    pub policy: RetryPolicy,
    /// Supervisor handle shared with the rest of the process.
    pub supervisor: SupervisorHandle,
}

/// The estimator: sweeps, caches and interpolates kernel surfaces.
pub struct Estimator {
    cfg: EstimatorConfig,
    durability: Option<EstimatorDurability>,
    surfaces: Mutex<HashMap<String, Arc<Surface>>>,
}

impl Estimator {
    /// Creates an estimator.
    pub fn new(cfg: EstimatorConfig) -> Self {
        Estimator { cfg, durability: None, surfaces: Mutex::new(HashMap::new()) }
    }

    /// Creates an estimator whose surface sweeps run under the durable
    /// execution layer (checkpointed, deadline-supervised, cancellable).
    pub fn durable(cfg: EstimatorConfig, durability: EstimatorDurability) -> Self {
        Estimator { cfg, durability: Some(durability), surfaces: Mutex::new(HashMap::new()) }
    }

    /// The configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.cfg
    }

    /// Number of distinct surfaces swept so far (deduplication metric).
    pub fn surfaces_built(&self) -> usize {
        self.lock_surfaces().len()
    }

    /// A poisoned cache lock only means another sweep panicked mid-insert;
    /// the map itself is always in a consistent state, so keep going.
    fn lock_surfaces(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Surface>>> {
        self.surfaces.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Sweeps (or fetches from cache) the surface of `w` under `kind` with
    /// the given axes.
    ///
    /// # Errors
    /// Propagates the first failing grid point from [`Surface::sweep`];
    /// nothing is cached on failure.
    pub fn surface(
        &self,
        w: &save_kernels::GemmWorkload,
        kind: ConfigKind,
        a_levels: &[f64],
        b_levels: &[f64],
    ) -> Result<Arc<Surface>, SimError> {
        let mut key_w = w.clone();
        key_w.name = String::new();
        key_w.a_sparsity = 0.0;
        key_w.b_sparsity = 0.0;
        let key = format!(
            "{:?}|{:?}|{:?}|{:?}|{}c{:?}",
            key_w,
            kind,
            a_levels,
            b_levels,
            self.cfg.machine.cores,
            self.cfg.machine.mode,
        );
        if let Some(s) = self.lock_surfaces().get(&key) {
            return Ok(Arc::clone(s));
        }
        let s = match &self.durability {
            None => Arc::new(Surface::sweep(
                w,
                kind,
                &self.cfg.machine,
                a_levels,
                b_levels,
                self.cfg.threads,
            )?),
            Some(d) => {
                // Content-address the sub-sweep by the cache key, so each
                // distinct surface resumes from its own journal no matter
                // the order surfaces are requested in.
                let tag = format!("surf-{:016x}", fingerprint([key.as_bytes()]));
                let subdir = d.checkpoint_dir.as_ref().map(|root| root.join(&tag));
                let out = Surface::sweep_durable(
                    w,
                    kind,
                    &self.cfg.machine,
                    a_levels,
                    b_levels,
                    self.cfg.threads,
                    &DurableSweep {
                        name: tag.clone(),
                        checkpoint_dir: subdir.as_deref(),
                        resume: d.resume,
                        policy: d.policy,
                        supervisor: &d.supervisor,
                    },
                )?;
                if out.cancelled {
                    return Err(SimError::Cancelled { what: format!("surface {tag}") });
                }
                // The estimator interpolates, so it needs a complete
                // surface: surface-level failures propagate as the sweep's
                // first failure, exactly like Surface::sweep.
                if let Some(fail) = out.report.failures.into_iter().next() {
                    return Err(fail.error);
                }
                Arc::new(out.surface)
            }
        };
        self.lock_surfaces().insert(key, Arc::clone(&s));
        Ok(s)
    }

    /// Convenience: the execution time of one kernel at one exact sparsity
    /// point (a single-point "surface", cached).
    ///
    /// # Errors
    /// Propagates the simulation failure for the point.
    pub fn kernel_time(
        &self,
        w: &save_kernels::GemmWorkload,
        kind: ConfigKind,
        a: f64,
        b: f64,
    ) -> Result<f64, SimError> {
        Ok(self.surface(w, kind, &[a], &[b])?.secs[0])
    }

    /// Axis levels for a (layer, phase): the full grid if the sparsity
    /// varies over training, a single level otherwise (Table III
    /// degeneracy).
    fn axis_levels(&self, samples: &[f64]) -> Vec<f64> {
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        if max - min < 1e-9 {
            vec![max]
        } else {
            self.cfg.grid.clone()
        }
    }

    /// Estimates whole-network inference (end-of-training sparsity, forward
    /// phase only), rescaling each kernel to the layer's full FLOPs.
    ///
    /// # Errors
    /// Fails on the first layer whose simulation fails.
    pub fn estimate_inference(
        &self,
        net: &Network,
        precision: Precision,
    ) -> Result<InferenceEstimate, SimError> {
        let mut out = InferenceEstimate {
            baseline: SplitTimes::default(),
            save2: SplitTimes::default(),
            save1: SplitTimes::default(),
            dynamic: SplitTimes::default(),
        };
        for (li, layer) in net.layers.iter().enumerate() {
            let w = layer.workload(Phase::Forward, precision);
            let p = net.inference_point(li);
            let scale = layer.flops() / w.flops();
            let tb = self.kernel_time(&w, ConfigKind::Baseline, p.a, p.b)? * scale;
            let t2 = self.kernel_time(&w, ConfigKind::Save2Vpu, p.a, p.b)? * scale;
            let t1 = self.kernel_time(&w, ConfigKind::Save1Vpu, p.a, p.b)? * scale;
            let td = t2.min(t1);
            let (bucket_b, bucket_2, bucket_1, bucket_d) = if li == 0 {
                (&mut out.baseline.first_layer, &mut out.save2.first_layer, &mut out.save1.first_layer, &mut out.dynamic.first_layer)
            } else {
                (&mut out.baseline.rest, &mut out.save2.rest, &mut out.save1.rest, &mut out.dynamic.rest)
            };
            *bucket_b += tb;
            *bucket_2 += t2;
            *bucket_1 += t1;
            *bucket_d += td;
        }
        Ok(out)
    }

    /// Estimates end-to-end training: surfaces per (layer, phase, config),
    /// per-epoch interpolation and summation, mean over epochs (§VI).
    ///
    /// # Errors
    /// Fails on the first (layer, phase, config) surface whose sweep fails.
    pub fn estimate_training(
        &self,
        net: &Network,
        precision: Precision,
    ) -> Result<TrainingEstimate, SimError> {
        let epochs = net.epochs.max(2);
        let progress_of = |e: usize| e as f64 / (epochs - 1) as f64;

        // Pre-sweep surfaces for every (layer, phase, config).
        struct LayerPhase {
            layer: usize,
            phase: Phase,
            scale: f64,
            surf: [Arc<Surface>; 3],
        }
        let mut lps: Vec<LayerPhase> = Vec::new();
        for (li, layer) in net.layers.iter().enumerate() {
            for phase in net.phases(li) {
                let w = layer.workload(phase, precision);
                let samples_a: Vec<f64> =
                    (0..8).map(|i| net.sparsity_point(li, phase, i as f64 / 7.0).a).collect();
                let samples_b: Vec<f64> =
                    (0..8).map(|i| net.sparsity_point(li, phase, i as f64 / 7.0).b).collect();
                let a_levels = self.axis_levels(&samples_a);
                let b_levels = self.axis_levels(&samples_b);
                let surf = [
                    self.surface(&w, ConfigKind::Baseline, &a_levels, &b_levels)?,
                    self.surface(&w, ConfigKind::Save2Vpu, &a_levels, &b_levels)?,
                    self.surface(&w, ConfigKind::Save1Vpu, &a_levels, &b_levels)?,
                ];
                lps.push(LayerPhase { layer: li, phase, scale: layer.flops() / w.flops(), surf });
            }
        }

        let mut baseline = PhaseTimes::default();
        let mut save2 = PhaseTimes::default();
        let mut save1 = PhaseTimes::default();
        let mut static_ = PhaseTimes::default();
        let mut dynamic = PhaseTimes::default();
        for e in 0..epochs {
            let prog = progress_of(e);
            let mut e2 = PhaseTimes::default();
            let mut e1 = PhaseTimes::default();
            for lp in &lps {
                let p = net.sparsity_point(lp.layer, lp.phase, prog);
                let tb = lp.surf[0].interp(p.a, p.b) * lp.scale;
                let t2 = lp.surf[1].interp(p.a, p.b) * lp.scale;
                let t1 = lp.surf[2].interp(p.a, p.b) * lp.scale;
                baseline.add(lp.layer, lp.phase, tb);
                save2.add(lp.layer, lp.phase, t2);
                save1.add(lp.layer, lp.phase, t1);
                dynamic.add(lp.layer, lp.phase, t2.min(t1));
                e2.add(lp.layer, lp.phase, t2);
                e1.add(lp.layer, lp.phase, t1);
            }
            let pick = if e1.total() < e2.total() { e1 } else { e2 };
            static_.forward += pick.forward;
            static_.backward_input += pick.backward_input;
            static_.backward_weights += pick.backward_weights;
            static_.first_layer += pick.first_layer;
        }
        let inv = 1.0 / epochs as f64;
        for t in [&mut baseline, &mut save2, &mut save1, &mut static_, &mut dynamic] {
            t.scale(inv);
        }
        Ok(TrainingEstimate { baseline, save2, save1, static_, dynamic })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use save_sparsity::NetKind;

    fn small_estimator() -> Estimator {
        // 4-core machine, 3-level grid: fast enough for unit tests.
        let mut cfg = EstimatorConfig::default();
        cfg.machine.cores = 4;
        cfg.grid = vec![0.0, 0.5, 0.9];
        Estimator::new(cfg)
    }

    /// A two-layer toy network reusing real shapes, to exercise the
    /// estimator end to end without sweeping a full CNN.
    fn toy_net(kind: NetKind) -> Network {
        let mut net = Network::build(kind);
        net.layers.truncate(2);
        net.epochs = 5;
        net
    }

    #[test]
    fn inference_estimate_shows_save_speedup() {
        let est = small_estimator();
        let net = toy_net(NetKind::ResNet50Pruned);
        let inf = est.estimate_inference(&net, Precision::F32).unwrap();
        assert!(inf.baseline.total() > 0.0);
        assert!(
            inf.dynamic.total() < inf.baseline.total(),
            "SAVE must beat baseline on pruned inference"
        );
        // Dynamic is at least as good as either fixed configuration.
        assert!(inf.dynamic.total() <= inf.save2.total() + 1e-12);
        assert!(inf.dynamic.total() <= inf.save1.total() + 1e-12);
    }

    #[test]
    fn training_estimate_orders_policies() {
        let est = small_estimator();
        let net = toy_net(NetKind::ResNet50Pruned);
        let tr = est.estimate_training(&net, Precision::F32).unwrap();
        let (b, s2, st, dy) =
            (tr.baseline.total(), tr.save2.total(), tr.static_.total(), tr.dynamic.total());
        assert!(s2 < b, "SAVE 2-VPU training must beat baseline");
        assert!(st <= s2.min(tr.save1.total()) + 1e-12, "static picks the better fixed config");
        assert!(dy <= st + 1e-12, "dynamic refines static");
    }

    #[test]
    fn durable_estimator_checkpoints_and_resumes_bit_identically() {
        use crate::cancel::Supervisor;
        let dir = std::env::temp_dir().join(format!("save-est-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sup = Supervisor::start(false);
        let net = toy_net(NetKind::ResNet50Dense);
        let w = net.layers[1].workload(Phase::Forward, Precision::F32);
        let mk = |resume: bool| {
            let mut cfg = EstimatorConfig::default();
            cfg.machine.cores = 4;
            cfg.grid = vec![0.0, 0.5, 0.9];
            Estimator::durable(
                cfg,
                EstimatorDurability {
                    checkpoint_dir: Some(dir.clone()),
                    resume,
                    policy: RetryPolicy::default(),
                    supervisor: sup.handle(),
                },
            )
        };
        let t1 = mk(false).kernel_time(&w, ConfigKind::Baseline, 0.3, 0.0).unwrap();
        let subdirs: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(!subdirs.is_empty(), "a per-surface checkpoint subdir was created");
        let t2 = mk(true).kernel_time(&w, ConfigKind::Baseline, 0.3, 0.0).unwrap();
        assert_eq!(t1.to_bits(), t2.to_bits(), "resumed estimate must be bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn surfaces_are_cached_and_deduplicated() {
        let est = small_estimator();
        let net = toy_net(NetKind::ResNet50Dense);
        let w = net.layers[1].workload(Phase::Forward, Precision::F32);
        let before = est.surfaces_built();
        est.kernel_time(&w, ConfigKind::Baseline, 0.3, 0.0).unwrap();
        est.kernel_time(&w, ConfigKind::Baseline, 0.3, 0.0).unwrap();
        assert_eq!(est.surfaces_built(), before + 1);
    }
}
