//! 2-D sparsity-surface sweeps and bilinear interpolation (§VI).
//!
//! "For each layer, we simulate SAVE with both weight and activation
//! sparsities of 0%-90% at 10% intervals ... The result is a 2D surface of
//! execution times ... we linearly map the profiled weight and activation
//! sparsities to the 2D surface" — this module is exactly that machinery,
//! with degenerate axes collapsed when a phase has no sparsity of one type
//! (Table III), which removes most of the sweep cost.

use crate::cancel::SupervisorHandle;
use crate::checkpoint::{CellRecord, Checkpoint, SweepManifest};
use crate::durable::{run_cell, RetryPolicy};
use crate::error::SimError;
use crate::parallel::{parallel_try_map, parallel_try_map_cancel, FailureReport, JobFailure};
use crate::runner::{run_kernel, run_kernel_cancel, run_kernel_traced, ConfigKind, MachineConfig};
use crate::trace::TraceStore;
use save_kernels::GemmWorkload;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Mutex;

/// The paper's 10-level grid (0%..90% at 10% intervals).
pub fn paper_grid() -> Vec<f64> {
    (0..10).map(|i| i as f64 * 0.1).collect()
}

/// A coarser 6-level grid for fast regeneration runs; interpolation fills
/// the gaps exactly as the methodology prescribes.
pub fn coarse_grid() -> Vec<f64> {
    vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.9]
}

/// Human-readable label for a grid cell, used in failure reports and
/// journals.
fn cell_label((a, b): (f64, f64)) -> String {
    format!("cell(a={a:.2},b={b:.2})")
}

/// Durability options for [`Surface::sweep_durable`].
pub struct DurableSweep<'a> {
    /// Sweep name recorded in the checkpoint manifest (figure/binary name
    /// plus any sub-sweep discriminator, e.g. `"fig14/resnet/Save2Vpu"`).
    pub name: String,
    /// Checkpoint directory; `None` disables journaling (the sweep still
    /// gets deadlines/retries/cancellation).
    pub checkpoint_dir: Option<&'a Path>,
    /// Load the journal and skip completed cells (bit-identical restore).
    pub resume: bool,
    /// Per-cell deadline/retry policy.
    pub policy: RetryPolicy,
    /// Supervisor enforcing deadlines and propagating Ctrl-C.
    pub supervisor: &'a SupervisorHandle,
}

/// What a durable sweep produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The surface; failed or not-yet-computed cells are `NaN`.
    pub surface: Surface,
    /// Per-cell failures (journaled ones included on resume).
    pub report: FailureReport,
    /// Cells restored from a previous run's journal.
    pub resumed: usize,
    /// `true` when the sweep stopped early due to cancellation; the
    /// journal holds every completed cell, so `--resume` finishes the
    /// rest.
    pub cancelled: bool,
    /// Total simulated cycles across completed cells (journal + fresh) —
    /// the resume-invariance witness used by the kill-and-resume test.
    pub total_cycles: u64,
}

/// An execution-time surface over (broadcast-side, vector-side) sparsity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Surface {
    /// Broadcast-side (BS source) sparsity levels, ascending.
    pub a_levels: Vec<f64>,
    /// Vector-side (NBS source) sparsity levels, ascending.
    pub b_levels: Vec<f64>,
    /// Seconds, `a`-major: `secs[ai * b_levels.len() + bi]`.
    pub secs: Vec<f64>,
}

impl Surface {
    /// Builds a surface by simulating `w` at every grid point for `kind`.
    /// Pass a single-level axis (e.g. `[0.0]`) for a sparsity type the
    /// phase does not exhibit.
    ///
    /// # Errors
    /// A surface is only meaningful when complete, so the first grid point
    /// that fails (stall, invalid config, worker panic) fails the sweep;
    /// the error identifies the point through the kernel name and, for a
    /// panic, the job index.
    pub fn sweep(
        w: &GemmWorkload,
        kind: ConfigKind,
        machine: &MachineConfig,
        a_levels: &[f64],
        b_levels: &[f64],
        threads: usize,
    ) -> Result<Surface, SimError> {
        let points: Vec<(f64, f64)> = a_levels
            .iter()
            .flat_map(|&a| b_levels.iter().map(move |&b| (a, b)))
            .collect();
        let secs = parallel_try_map(&points, threads, 0, |&(a, b)| {
            let wk = w.clone().with_sparsity(a, b);
            Ok(run_kernel(&wk, kind, machine, Self::point_seed(a, b), false)?.seconds)
        })
        .into_iter()
        .collect::<Result<Vec<f64>, SimError>>()?;
        Ok(Surface { a_levels: a_levels.to_vec(), b_levels: b_levels.to_vec(), secs })
    }

    /// Sweeps the same grid under *several* operating points at once,
    /// executing each grid point's functional work exactly once: the first
    /// operating point to reach a point records its trace, the remaining
    /// points replay it (DESIGN.md §5h, "execute once, time N"). Results
    /// are bit-identical to running [`Surface::sweep`] once per kind —
    /// that equivalence is a tier-1 test — but fig14/fig16-class sweeps
    /// stop paying codegen, operand generation and FMA arithmetic `kinds`
    /// times per point.
    ///
    /// Returns one [`Surface`] per entry of `kinds`, in order.
    ///
    /// # Errors
    /// As [`Surface::sweep`]; additionally, because a recording run always
    /// verifies the kernel's numerical output, a simulator bug surfaces
    /// here as [`SimError::VerifyMismatch`] even though sweeps do not
    /// request verification.
    pub fn sweep_many(
        w: &GemmWorkload,
        kinds: &[ConfigKind],
        machine: &MachineConfig,
        a_levels: &[f64],
        b_levels: &[f64],
        threads: usize,
    ) -> Result<Vec<Surface>, SimError> {
        let points: Vec<(f64, f64)> = a_levels
            .iter()
            .flat_map(|&a| b_levels.iter().map(move |&b| (a, b)))
            .collect();
        // Parallelism is across grid points; within a point the kinds run
        // sequentially through a point-local store (traces never cross
        // points — each has its own sparsity and seed — so dropping the
        // store per point keeps the sweep's memory footprint flat).
        let per_point = parallel_try_map(&points, threads, 0, |&(a, b)| {
            let wk = w.clone().with_sparsity(a, b);
            let store = TraceStore::new();
            kinds
                .iter()
                .map(|&kind| {
                    Ok(run_kernel_traced(
                        &wk,
                        kind,
                        machine,
                        Self::point_seed(a, b),
                        false,
                        None,
                        &store,
                    )?
                    .seconds)
                })
                .collect::<Result<Vec<f64>, SimError>>()
        })
        .into_iter()
        .collect::<Result<Vec<Vec<f64>>, SimError>>()?;
        Ok(kinds
            .iter()
            .enumerate()
            .map(|(ki, _)| Surface {
                a_levels: a_levels.to_vec(),
                b_levels: b_levels.to_vec(),
                secs: per_point.iter().map(|row| row[ki]).collect(),
            })
            .collect())
    }

    /// The deterministic per-point seed shared by [`Surface::sweep`] and
    /// [`Surface::sweep_durable`]: tied to the sparsity point so repeated
    /// (and resumed) sweeps are deterministic while points stay
    /// independent. Public so `save-serve` clients can build
    /// [`crate::spec::CellSpec`]s whose remote results are bit-identical
    /// to a local sweep of the same grid.
    pub fn point_seed(a: f64, b: f64) -> u64 {
        ((a * 1000.0) as u64) << 20 | ((b * 1000.0) as u64) << 4
    }

    /// Durable counterpart of [`Surface::sweep`] (DESIGN.md §5f): each grid
    /// cell runs under `opts.policy` (deadline + bounded retries with
    /// backoff), completed cells are journaled to `opts.checkpoint_dir` as
    /// they finish, and with `opts.resume` journaled cells are *skipped* —
    /// their timings are restored from the journal's raw `f64` bits, so a
    /// killed-and-resumed sweep produces a bit-identical [`Surface`].
    ///
    /// Unlike [`Surface::sweep`], a failed cell does not abort the sweep:
    /// it becomes `NaN` in the surface and a structured entry in the
    /// returned [`FailureReport`]. Cancellation (Ctrl-C routed through
    /// `opts.supervisor`) stops in-flight cells at their next cycle
    /// quantum, flushes the journal, and comes back with
    /// `cancelled = true`; cancelled cells are *not* journaled, so a
    /// `--resume` recomputes exactly those.
    ///
    /// # Errors
    /// Only checkpoint-store problems (unwritable directory, manifest
    /// mismatch, corrupt journal) abort the sweep.
    pub fn sweep_durable(
        w: &GemmWorkload,
        kind: ConfigKind,
        machine: &MachineConfig,
        a_levels: &[f64],
        b_levels: &[f64],
        threads: usize,
        opts: &DurableSweep<'_>,
    ) -> Result<SweepOutcome, SimError> {
        let points: Vec<(f64, f64)> = a_levels
            .iter()
            .flat_map(|&a| b_levels.iter().map(move |&b| (a, b)))
            .collect();
        let manifest = SweepManifest::new(
            &opts.name,
            &format!("surface sweep of kernel {}", w.name),
            points.len(),
            [
                format!("{w:?}"),
                format!("{:?}", kind.core_config()),
                format!("{:?}", machine.mem),
                format!("{:?}/{}", machine.mode, machine.cores),
                format!("a={a_levels:?}"),
                format!("b={b_levels:?}"),
            ],
        );
        let checkpoint = match opts.checkpoint_dir {
            Some(dir) => Some(Mutex::new(Checkpoint::open(dir, &manifest, opts.resume)?)),
            None => None,
        };

        // Split the grid into journaled cells (restored bit-exactly) and
        // pending work.
        let mut secs = vec![f64::NAN; points.len()];
        let mut failures: Vec<JobFailure> = Vec::new();
        let mut total_cycles = 0u64;
        let mut resumed = 0usize;
        let mut pending: Vec<usize> = Vec::new();
        for i in 0..points.len() {
            let journaled = checkpoint
                .as_ref()
                .and_then(|ck| ck.lock().expect("checkpoint poisoned").done(i as u64).cloned());
            match journaled {
                Some(rec) => {
                    resumed += 1;
                    secs[i] = rec.secs();
                    total_cycles += rec.cycles;
                    if !rec.ok() {
                        failures.push(JobFailure {
                            job: i,
                            label: Some(cell_label(points[i])),
                            attempts: rec.attempts as usize,
                            error: SimError::Io {
                                what: format!(
                                    "journaled failure from a previous run (kind: {})",
                                    rec.error_kind
                                ),
                            },
                        });
                    }
                }
                None => pending.push(i),
            }
        }

        // Run the pending cells; journal each as it completes. Cancelled
        // cells are deliberately not journaled: they carry no result and
        // must re-run on resume. A *failed* cell is journaled (as a NaN
        // record carrying the error kind) and is itself an `Ok(Failed)`
        // here — only cancellation and journal-write problems surface as
        // `Err` from the closure.
        enum CellFinal {
            Done { secs: f64, cycles: u64 },
            Failed { error: SimError, attempts: u32 },
        }
        let global = opts.supervisor.global();
        let results = parallel_try_map_cancel(&pending, threads, &global, |_, &i| {
            let (a, b) = points[i];
            let label = cell_label((a, b));
            let run = run_cell(opts.supervisor, &opts.policy, &label, i, |tok| {
                let wk = w.clone().with_sparsity(a, b);
                run_kernel_cancel(&wk, kind, machine, Self::point_seed(a, b), false, Some(tok))
            });
            let journal = |rec: CellRecord| -> Result<(), SimError> {
                match &checkpoint {
                    Some(ck) => ck.lock().expect("checkpoint poisoned").record(rec),
                    None => Ok(()),
                }
            };
            match run.result {
                Ok(r) => {
                    journal(CellRecord {
                        cell: i as u64,
                        secs_bits: r.seconds.to_bits(),
                        cycles: r.cycles,
                        attempts: run.attempts,
                        error_kind: String::new(),
                    })?;
                    Ok(CellFinal::Done { secs: r.seconds, cycles: r.cycles })
                }
                Err(e) if e.kind() == "cancelled" => Err(e),
                Err(e) => {
                    journal(CellRecord {
                        cell: i as u64,
                        secs_bits: f64::NAN.to_bits(),
                        cycles: 0,
                        attempts: run.attempts,
                        error_kind: e.kind().to_string(),
                    })?;
                    Ok(CellFinal::Failed { error: e, attempts: run.attempts })
                }
            }
        });

        let mut cancelled = global.is_cancelled();
        for (slot, r) in results.into_iter().enumerate() {
            let i = pending[slot];
            match r {
                Ok(CellFinal::Done { secs: s, cycles }) => {
                    secs[i] = s;
                    total_cycles += cycles;
                }
                Ok(CellFinal::Failed { error, attempts }) => {
                    failures.push(JobFailure {
                        job: i,
                        label: Some(cell_label(points[i])),
                        attempts: attempts as usize,
                        error,
                    });
                }
                Err(e) if e.kind() == "cancelled" => cancelled = true,
                Err(e) => {
                    failures.push(JobFailure {
                        job: i,
                        label: Some(cell_label(points[i])),
                        attempts: 1,
                        error: e,
                    });
                }
            }
        }
        failures.sort_by_key(|f| f.job);
        let report = FailureReport {
            total_jobs: points.len(),
            succeeded: secs.iter().filter(|s| !s.is_nan()).count(),
            failures,
        };
        Ok(SweepOutcome {
            surface: Surface {
                a_levels: a_levels.to_vec(),
                b_levels: b_levels.to_vec(),
                secs,
            },
            report,
            resumed,
            cancelled,
            total_cycles,
        })
    }

    fn bracket(levels: &[f64], x: f64) -> (usize, usize, f64) {
        if levels.len() == 1 || x <= levels[0] {
            return (0, 0, 0.0);
        }
        let last = levels.len() - 1;
        if x >= levels[last] {
            return (last, last, 0.0);
        }
        let hi = levels.iter().position(|&l| l >= x).unwrap();
        let lo = hi - 1;
        let t = (x - levels[lo]) / (levels[hi] - levels[lo]);
        (lo, hi, t)
    }

    /// Bilinear interpolation of the execution time at `(a, b)` sparsity,
    /// clamped to the grid's hull.
    pub fn interp(&self, a: f64, b: f64) -> f64 {
        let nb = self.b_levels.len();
        let (a0, a1, ta) = Self::bracket(&self.a_levels, a);
        let (b0, b1, tb) = Self::bracket(&self.b_levels, b);
        let v00 = self.secs[a0 * nb + b0];
        let v01 = self.secs[a0 * nb + b1];
        let v10 = self.secs[a1 * nb + b0];
        let v11 = self.secs[a1 * nb + b1];
        let v0 = v00 + (v01 - v00) * tb;
        let v1 = v10 + (v11 - v10) * tb;
        v0 + (v1 - v0) * ta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> Surface {
        // time = 10 - 4a - 2b on a 2x3 grid.
        let a_levels = vec![0.0, 1.0];
        let b_levels = vec![0.0, 0.5, 1.0];
        let mut secs = Vec::new();
        for &a in &a_levels {
            for &b in &b_levels {
                secs.push(10.0 - 4.0 * a - 2.0 * b);
            }
        }
        Surface { a_levels, b_levels, secs }
    }

    #[test]
    fn interpolates_grid_points_exactly() {
        let s = synthetic();
        assert_eq!(s.interp(0.0, 0.0), 10.0);
        assert_eq!(s.interp(1.0, 1.0), 4.0);
        assert_eq!(s.interp(0.0, 0.5), 9.0);
    }

    #[test]
    fn bilinear_between_points() {
        let s = synthetic();
        assert!((s.interp(0.5, 0.25) - (10.0 - 2.0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_hull() {
        let s = synthetic();
        assert_eq!(s.interp(-0.5, 2.0), s.interp(0.0, 1.0));
    }

    #[test]
    fn degenerate_axis() {
        let s = Surface { a_levels: vec![0.0], b_levels: vec![0.0, 1.0], secs: vec![3.0, 1.0] };
        assert_eq!(s.interp(0.9, 0.5), 2.0);
    }

    #[test]
    fn grids() {
        assert_eq!(paper_grid().len(), 10);
        assert_eq!(coarse_grid().len(), 6);
        assert!((paper_grid()[9] - 0.9).abs() < 1e-12);
    }
}
