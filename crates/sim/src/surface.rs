//! 2-D sparsity-surface sweeps and bilinear interpolation (§VI).
//!
//! "For each layer, we simulate SAVE with both weight and activation
//! sparsities of 0%-90% at 10% intervals ... The result is a 2D surface of
//! execution times ... we linearly map the profiled weight and activation
//! sparsities to the 2D surface" — this module is exactly that machinery,
//! with degenerate axes collapsed when a phase has no sparsity of one type
//! (Table III), which removes most of the sweep cost.

use crate::error::SimError;
use crate::parallel::parallel_try_map;
use crate::runner::{run_kernel, ConfigKind, MachineConfig};
use save_kernels::GemmWorkload;
use serde::{Deserialize, Serialize};

/// The paper's 10-level grid (0%..90% at 10% intervals).
pub fn paper_grid() -> Vec<f64> {
    (0..10).map(|i| i as f64 * 0.1).collect()
}

/// A coarser 6-level grid for fast regeneration runs; interpolation fills
/// the gaps exactly as the methodology prescribes.
pub fn coarse_grid() -> Vec<f64> {
    vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.9]
}

/// An execution-time surface over (broadcast-side, vector-side) sparsity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Surface {
    /// Broadcast-side (BS source) sparsity levels, ascending.
    pub a_levels: Vec<f64>,
    /// Vector-side (NBS source) sparsity levels, ascending.
    pub b_levels: Vec<f64>,
    /// Seconds, `a`-major: `secs[ai * b_levels.len() + bi]`.
    pub secs: Vec<f64>,
}

impl Surface {
    /// Builds a surface by simulating `w` at every grid point for `kind`.
    /// Pass a single-level axis (e.g. `[0.0]`) for a sparsity type the
    /// phase does not exhibit.
    ///
    /// # Errors
    /// A surface is only meaningful when complete, so the first grid point
    /// that fails (stall, invalid config, worker panic) fails the sweep;
    /// the error identifies the point through the kernel name and, for a
    /// panic, the job index.
    pub fn sweep(
        w: &GemmWorkload,
        kind: ConfigKind,
        machine: &MachineConfig,
        a_levels: &[f64],
        b_levels: &[f64],
        threads: usize,
    ) -> Result<Surface, SimError> {
        let points: Vec<(f64, f64)> = a_levels
            .iter()
            .flat_map(|&a| b_levels.iter().map(move |&b| (a, b)))
            .collect();
        let secs = parallel_try_map(&points, threads, 0, |&(a, b)| {
            let wk = w.clone().with_sparsity(a, b);
            // Seed ties to the sparsity point so repeated sweeps are
            // deterministic while points stay independent.
            let seed = ((a * 1000.0) as u64) << 20 | ((b * 1000.0) as u64) << 4;
            Ok(run_kernel(&wk, kind, machine, seed, false)?.seconds)
        })
        .into_iter()
        .collect::<Result<Vec<f64>, SimError>>()?;
        Ok(Surface { a_levels: a_levels.to_vec(), b_levels: b_levels.to_vec(), secs })
    }

    fn bracket(levels: &[f64], x: f64) -> (usize, usize, f64) {
        if levels.len() == 1 || x <= levels[0] {
            return (0, 0, 0.0);
        }
        let last = levels.len() - 1;
        if x >= levels[last] {
            return (last, last, 0.0);
        }
        let hi = levels.iter().position(|&l| l >= x).unwrap();
        let lo = hi - 1;
        let t = (x - levels[lo]) / (levels[hi] - levels[lo]);
        (lo, hi, t)
    }

    /// Bilinear interpolation of the execution time at `(a, b)` sparsity,
    /// clamped to the grid's hull.
    pub fn interp(&self, a: f64, b: f64) -> f64 {
        let nb = self.b_levels.len();
        let (a0, a1, ta) = Self::bracket(&self.a_levels, a);
        let (b0, b1, tb) = Self::bracket(&self.b_levels, b);
        let v00 = self.secs[a0 * nb + b0];
        let v01 = self.secs[a0 * nb + b1];
        let v10 = self.secs[a1 * nb + b0];
        let v11 = self.secs[a1 * nb + b1];
        let v0 = v00 + (v01 - v00) * tb;
        let v1 = v10 + (v11 - v10) * tb;
        v0 + (v1 - v0) * ta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> Surface {
        // time = 10 - 4a - 2b on a 2x3 grid.
        let a_levels = vec![0.0, 1.0];
        let b_levels = vec![0.0, 0.5, 1.0];
        let mut secs = Vec::new();
        for &a in &a_levels {
            for &b in &b_levels {
                secs.push(10.0 - 4.0 * a - 2.0 * b);
            }
        }
        Surface { a_levels, b_levels, secs }
    }

    #[test]
    fn interpolates_grid_points_exactly() {
        let s = synthetic();
        assert_eq!(s.interp(0.0, 0.0), 10.0);
        assert_eq!(s.interp(1.0, 1.0), 4.0);
        assert_eq!(s.interp(0.0, 0.5), 9.0);
    }

    #[test]
    fn bilinear_between_points() {
        let s = synthetic();
        assert!((s.interp(0.5, 0.25) - (10.0 - 2.0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_hull() {
        let s = synthetic();
        assert_eq!(s.interp(-0.5, 2.0), s.interp(0.0, 1.0));
    }

    #[test]
    fn degenerate_axis() {
        let s = Surface { a_levels: vec![0.0], b_levels: vec![0.0, 1.0], secs: vec![3.0, 1.0] };
        assert_eq!(s.interp(0.9, 0.5), 2.0);
    }

    #[test]
    fn grids() {
        assert_eq!(paper_grid().len(), 10);
        assert_eq!(coarse_grid().len(), 6);
        assert!((paper_grid()[9] - 0.9).abs() < 1e-12);
    }
}
