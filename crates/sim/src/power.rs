//! Core power and energy estimation — the quantitative side of §IV-D's
//! power-saving argument ("today's VPUs are so power hungry that the power
//! managers may reduce core frequency when running vector code ... at high
//! sparsity ... reducing the number of VPUs would have little performance
//! impact").
//!
//! The model is deliberately simple and fully documented: a per-core static
//! power, a dynamic energy per compacted VPU operation scaled by occupied
//! lanes, per-µop front-end energy, and the Table II B$ figures (leakage +
//! per-access energy). Absolute watts are approximate; the *relative*
//! comparison between operating points at a given sparsity is the point.

use crate::runner::KernelResult;
use save_mem::energy::{EnergyFigures, PrecisionSupport, StorageModel};
use serde::{Deserialize, Serialize};

/// Power/energy model constants (22 nm-class server core).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static (leakage + uncore share) power per core in W.
    pub static_w: f64,
    /// Additional static power per *enabled* VPU in W.
    pub vpu_static_w: f64,
    /// Dynamic energy of a fully occupied 16-lane VPU operation in nJ.
    pub vpu_op_nj: f64,
    /// Front-end + rename + commit energy per µop in nJ.
    pub uop_nj: f64,
    /// L1-D access energy in nJ.
    pub l1_access_nj: f64,
    /// Broadcast-cache figures (Table II).
    pub bcast: EnergyFigures,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            static_w: 1.2,
            vpu_static_w: 0.45,
            vpu_op_nj: 1.1,
            uop_nj: 0.12,
            l1_access_nj: 0.06,
            bcast: StorageModel::default().bcast_data_energy(PrecisionSupport::Fp32AndMixed),
        }
    }
}

/// Energy breakdown of one kernel run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Static energy over the run, in J.
    pub static_j: f64,
    /// VPU dynamic energy, in J.
    pub vpu_j: f64,
    /// Front-end/µop energy, in J.
    pub frontend_j: f64,
    /// Memory (L1 + B$) access energy, in J.
    pub memory_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in J.
    pub fn total_j(&self) -> f64 {
        self.static_j + self.vpu_j + self.frontend_j + self.memory_j
    }

    /// Mean power over the run in W.
    pub fn mean_power_w(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            self.total_j() / seconds
        }
    }
}

impl PowerModel {
    /// Estimates the energy of a kernel run executed with `num_vpus`
    /// enabled VPUs.
    ///
    /// VPU dynamic energy scales with occupied temp lanes (clock-gated
    /// empty lanes burn ~15% of an active lane, the Eyeriss-style gating
    /// the paper cites). Skipped VFMAs cost nothing on the VPU but their
    /// µops still traversed the front end.
    pub fn estimate(&self, r: &KernelResult, num_vpus: usize) -> EnergyBreakdown {
        let s = &r.stats;
        let lanes = 16.0;
        let occupied = s.lanes_issued as f64;
        let empty = (s.vpu_ops as f64 * lanes - occupied).max(0.0);
        let vpu_j = (occupied + 0.15 * empty) / lanes * self.vpu_op_nj * 1e-9;
        let static_w = self.static_w
            + self.vpu_static_w * num_vpus as f64
            + self.bcast.leakage_mw * 1e-3;
        EnergyBreakdown {
            static_j: static_w * r.seconds,
            vpu_j,
            frontend_j: s.uops_committed as f64 * self.uop_nj * 1e-9,
            memory_j: (s.loads_issued + s.stores_issued) as f64 * self.l1_access_nj * 1e-9
                + s.bcast_hits as f64 * self.bcast.access_nj * 1e-9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_kernel, ConfigKind, MachineConfig};
    use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};

    fn kernel(a: f64, b: f64) -> GemmWorkload {
        GemmWorkload::dense(
            "pw",
            GemmKernelSpec {
                m_tiles: 6,
                n_vecs: 3,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            64,
            2,
        )
        .with_sparsity(a, b)
    }

    #[test]
    fn sparse_runs_use_less_vpu_energy() {
        let m = MachineConfig::default();
        let pm = PowerModel::default();
        let dense = run_kernel(&kernel(0.0, 0.0), ConfigKind::Save2Vpu, &m, 1, false).unwrap();
        let sparse = run_kernel(&kernel(0.6, 0.6), ConfigKind::Save2Vpu, &m, 1, false).unwrap();
        let ed = pm.estimate(&dense, 2);
        let es = pm.estimate(&sparse, 2);
        assert!(es.vpu_j < ed.vpu_j * 0.6, "VPU energy must drop with skipped work");
        assert!(es.total_j() < ed.total_j());
    }

    #[test]
    fn one_vpu_saves_static_power_at_high_sparsity() {
        let m = MachineConfig::default();
        let pm = PowerModel::default();
        let w = kernel(0.7, 0.8);
        let r2 = run_kernel(&w, ConfigKind::Save2Vpu, &m, 1, false).unwrap();
        let r1 = run_kernel(&w, ConfigKind::Save1Vpu, &m, 1, false).unwrap();
        let e2 = pm.estimate(&r2, 2);
        let e1 = pm.estimate(&r1, 1);
        // §IV-D: at high sparsity one VPU does (at least) comparable work
        // per joule — energy must not be higher.
        assert!(
            e1.total_j() <= e2.total_j() * 1.05,
            "1 VPU {} J vs 2 VPUs {} J",
            e1.total_j(),
            e2.total_j()
        );
    }

    #[test]
    fn breakdown_sums_and_power_is_positive() {
        let m = MachineConfig::default();
        let pm = PowerModel::default();
        let r = run_kernel(&kernel(0.3, 0.3), ConfigKind::Save2Vpu, &m, 1, false).unwrap();
        let e = pm.estimate(&r, 2);
        let sum = e.static_j + e.vpu_j + e.frontend_j + e.memory_j;
        assert!((e.total_j() - sum).abs() < 1e-18);
        assert!(e.mean_power_w(r.seconds) > 0.0);
        assert_eq!(EnergyBreakdown::default().mean_power_w(0.0), 0.0);
    }
}
