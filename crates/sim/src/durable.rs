//! Per-cell retry policy and the durable cell runner (DESIGN.md §5f).
//!
//! One sweep cell = one kernel simulation at one operating point. The
//! durable runner wraps a cell in:
//!
//! * **panic isolation** — a panic becomes [`SimError::WorkerPanic`], as in
//!   [`crate::parallel`], but here it feeds the retry state machine;
//! * **a wall-clock deadline** — each *attempt* registers a
//!   [`crate::cancel::WatchGuard`] with the supervisor; when the deadline
//!   passes, the attempt's cancel token latches, the simulated core stops
//!   at its next quantum boundary, and the resulting
//!   [`SimError::Cancelled`] is reclassified to
//!   [`SimError::DeadlineExceeded`];
//! * **bounded retries with exponential backoff** — errors classified
//!   [`RetryClass::Transient`] are retried up to `retries` extra attempts,
//!   sleeping `backoff * 2^(attempt-1)` (capped at `max_backoff`) between
//!   attempts; [`RetryClass::Permanent`] errors fail fast;
//!   [`RetryClass::Cancelled`] aborts immediately so Ctrl-C is honoured
//!   even mid-backoff (the backoff sleep itself is interruptible).

use crate::cancel::{CancelToken, SupervisorHandle};
use crate::error::{RetryClass, SimError};
use crate::parallel::panic_error;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Process exit code for a fully successful sweep.
pub const EXIT_OK: u8 = 0;
/// Process exit code when the sweep finished but some cells failed
/// permanently (their failures are journaled and reported).
pub const EXIT_FAILURES: u8 = 1;
/// Process exit code for a command-line / configuration error.
pub const EXIT_USAGE: u8 = 2;
/// Process exit code for "cancelled by SIGINT/SIGTERM, journal flushed,
/// resumable with `--resume`" — 130 by the shell convention for SIGINT
/// (128 + 2), and distinct from [`EXIT_FAILURES`] so schedulers can tell
/// "re-submit with --resume" from "inspect the failure report".
pub const EXIT_CANCELLED: u8 = 130;

/// The one exit-code mapping every binary (all 17 bench bins via
/// `save_bench::run_main`, the `save-serve` daemon, the `surface` fsck
/// subcommand) funnels through: cancellation outranks failures because a
/// cancelled run is *resumable*, not broken — a scheduler that sees 130
/// should resubmit with `--resume`, while 1 means "inspect the failure
/// report". Usage errors short-circuit to [`EXIT_USAGE`] before any sweep
/// state exists, so they are not part of this table.
pub fn exit_code_for(cancelled: bool, clean: bool) -> u8 {
    if cancelled {
        EXIT_CANCELLED
    } else if clean {
        EXIT_OK
    } else {
        EXIT_FAILURES
    }
}

/// Retry/deadline policy for one sweep's cells.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Extra attempts after the first (total attempts = `retries + 1`).
    pub retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub backoff: Duration,
    /// Upper bound on the (exponentially growing) backoff.
    pub max_backoff: Duration,
    /// Per-attempt wall-clock deadline; `None` disables deadlines.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 2,
            backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based), exponentially
    /// grown and capped.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let shift = retry.saturating_sub(1).min(16);
        self.backoff.saturating_mul(1u32 << shift).min(self.max_backoff)
    }
}

/// Outcome of a durable cell: the final result plus how many attempts it
/// took (journaled so a resumed run knows the cell's history).
pub struct CellRun<T> {
    /// `Ok` on success; the *final* attempt's error otherwise.
    pub result: Result<T, SimError>,
    /// Total attempts made (1 = first try succeeded or failed fast).
    pub attempts: u32,
}

/// Runs one cell under the policy. `what` names the cell in errors; `job`
/// is its index (used for panic attribution). The closure receives the
/// attempt's cancel token — thread it into
/// [`crate::runner::run_kernel_cancel`] so deadlines and Ctrl-C can stop
/// the simulated core mid-run.
pub fn run_cell<T>(
    sup: &SupervisorHandle,
    policy: &RetryPolicy,
    what: &str,
    job: usize,
    f: impl Fn(&CancelToken) -> Result<T, SimError>,
) -> CellRun<T> {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        if sup.global().is_cancelled() {
            return CellRun {
                result: Err(SimError::Cancelled { what: what.to_string() }),
                attempts,
            };
        }
        let guard = sup.watch(policy.deadline);
        let token = guard.token();
        let err = match catch_unwind(AssertUnwindSafe(|| f(&token))) {
            Ok(Ok(v)) => return CellRun { result: Ok(v), attempts },
            Ok(Err(e)) => e,
            Err(payload) => panic_error(job, payload),
        };
        // A cooperative stop caused by *this cell's* deadline (not a global
        // cancel) is a deadline overrun — a different retry class and a
        // different journal entry than user cancellation.
        let err = match err {
            SimError::Cancelled { what: w }
                if guard.deadline_expired() && !sup.global().is_cancelled() =>
            {
                SimError::DeadlineExceeded {
                    what: w,
                    millis: policy.deadline.map(|d| d.as_millis() as u64).unwrap_or(0),
                }
            }
            e => e,
        };
        drop(guard);
        match err.retry_class() {
            RetryClass::Permanent | RetryClass::Cancelled => {
                return CellRun { result: Err(err), attempts }
            }
            RetryClass::Transient => {
                if attempts > policy.retries {
                    return CellRun { result: Err(err), attempts };
                }
                if !sup.backoff_sleep(policy.backoff_for(attempts)) {
                    // Backoff interrupted by a global cancel.
                    return CellRun {
                        result: Err(SimError::Cancelled { what: what.to_string() }),
                        attempts,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::Supervisor;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            retries: 2,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            deadline: None,
        }
    }

    /// The uniform exit-code mapping table (ISSUE 7 satellite): every
    /// (cancelled, clean) combination maps to the documented code, and the
    /// codes are the documented constants.
    #[test]
    fn exit_code_mapping_table() {
        let table: &[(bool, bool, u8)] = &[
            (false, true, EXIT_OK),        // clean sweep
            (false, false, EXIT_FAILURES), // finished, some cells failed
            (true, true, EXIT_CANCELLED),  // cancelled before any failure
            (true, false, EXIT_CANCELLED), // cancellation outranks failures
        ];
        for &(cancelled, clean, want) in table {
            assert_eq!(
                exit_code_for(cancelled, clean),
                want,
                "exit_code_for({cancelled}, {clean})"
            );
        }
        assert_eq!(EXIT_OK, 0);
        assert_eq!(EXIT_FAILURES, 1);
        assert_eq!(EXIT_USAGE, 2);
        assert_eq!(EXIT_CANCELLED, 130, "128 + SIGINT, the shell convention");
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            retries: 10,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
            deadline: None,
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(35), "capped");
        assert_eq!(p.backoff_for(30), Duration::from_millis(35), "shift saturates");
    }

    #[test]
    fn first_try_success_is_one_attempt() {
        let sup = Supervisor::start(false);
        let run = run_cell(&sup.handle(), &fast_policy(), "cell", 0, |_| Ok(42));
        assert_eq!(run.result.unwrap(), 42);
        assert_eq!(run.attempts, 1);
    }

    #[test]
    fn transient_errors_retry_until_budget() {
        let sup = Supervisor::start(false);
        let calls = AtomicU32::new(0);
        let run = run_cell(&sup.handle(), &fast_policy(), "cell", 0, |_| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err::<u32, _>(SimError::Io { what: "flaky".into() })
        });
        assert_eq!(calls.load(Ordering::SeqCst), 3, "1 try + 2 retries");
        assert_eq!(run.attempts, 3);
        assert_eq!(run.result.unwrap_err().kind(), "io");
    }

    #[test]
    fn transient_error_heals_on_retry() {
        let sup = Supervisor::start(false);
        let calls = AtomicU32::new(0);
        let run = run_cell(&sup.handle(), &fast_policy(), "cell", 0, |_| {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(SimError::Io { what: "first try flaky".into() })
            } else {
                Ok(7u32)
            }
        });
        assert_eq!(run.result.unwrap(), 7);
        assert_eq!(run.attempts, 2);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let sup = Supervisor::start(false);
        let calls = AtomicU32::new(0);
        let run = run_cell(&sup.handle(), &fast_policy(), "cell", 0, |_| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err::<u32, _>(SimError::InvalidConfig { what: "deterministic".into() })
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "no retry for permanent errors");
        assert_eq!(run.attempts, 1);
    }

    #[test]
    fn panics_are_transient_and_attributed() {
        let sup = Supervisor::start(false);
        let calls = AtomicU32::new(0);
        let run = run_cell(&sup.handle(), &fast_policy(), "cell", 9, |_| -> Result<u32, _> {
            calls.fetch_add(1, Ordering::SeqCst);
            panic!("boom");
        });
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        match run.result.unwrap_err() {
            SimError::WorkerPanic { job, message } => {
                assert_eq!(job, 9);
                assert!(message.contains("boom"));
            }
            other => panic!("expected WorkerPanic, got {other}"),
        }
    }

    #[test]
    fn global_cancel_stops_before_first_attempt() {
        let sup = Supervisor::start(false);
        let h = sup.handle();
        h.cancel_global();
        let run = run_cell(&h, &fast_policy(), "cell", 0, |_| Ok(1u32));
        assert_eq!(run.result.unwrap_err().kind(), "cancelled");
    }

    #[test]
    fn deadline_is_reclassified_and_retried() {
        let sup = Supervisor::start(false);
        let h = sup.handle();
        let policy = RetryPolicy {
            retries: 1,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            deadline: Some(Duration::from_millis(10)),
        };
        let calls = AtomicU32::new(0);
        // The cell honours its token like a real kernel run: it spins
        // until cancelled, then reports SimError::Cancelled.
        let run = run_cell(&h, &policy, "slow-cell", 0, |tok| -> Result<u32, _> {
            calls.fetch_add(1, Ordering::SeqCst);
            while !tok.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(SimError::Cancelled { what: "slow-cell".into() })
        });
        assert_eq!(calls.load(Ordering::SeqCst), 2, "deadline overruns are retried");
        match run.result.unwrap_err() {
            SimError::DeadlineExceeded { what, millis } => {
                assert_eq!(what, "slow-cell");
                assert_eq!(millis, 10);
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
    }
}
