//! Property-based tests for the simulation driver: interpolation bounds and
//! the parallel sweep executor.

use proptest::prelude::*;
use save_sim::parallel::parallel_map;
use save_sim::Surface;

fn surface_strategy() -> impl Strategy<Value = Surface> {
    (2usize..6, 2usize..6).prop_flat_map(|(na, nb)| {
        let secs = prop::collection::vec(0.1f64..100.0, na * nb);
        secs.prop_map(move |secs| Surface {
            a_levels: (0..na).map(|i| i as f64 / (na - 1) as f64).collect(),
            b_levels: (0..nb).map(|i| i as f64 / (nb - 1) as f64).collect(),
            secs,
        })
    })
}

proptest! {
    /// Bilinear interpolation stays within the hull's min/max and hits grid
    /// points exactly.
    #[test]
    fn interp_bounded_and_exact(s in surface_strategy(), a in -0.5f64..1.5, b in -0.5f64..1.5) {
        let min = s.secs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = s.secs.iter().cloned().fold(0.0f64, f64::max);
        let v = s.interp(a, b);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9, "v={v} not in [{min},{max}]");
        for (ai, &al) in s.a_levels.iter().enumerate() {
            for (bi, &bl) in s.b_levels.iter().enumerate() {
                let exact = s.secs[ai * s.b_levels.len() + bi];
                prop_assert!((s.interp(al, bl) - exact).abs() < 1e-9);
            }
        }
    }

    /// Interpolation along one axis between two adjacent grid points is
    /// monotone when the endpoint values are ordered.
    #[test]
    fn interp_is_locally_linear(s in surface_strategy(), t in 0.0f64..1.0) {
        let a0 = s.a_levels[0];
        let a1 = s.a_levels[1];
        let b0 = s.b_levels[0];
        let v0 = s.interp(a0, b0);
        let v1 = s.interp(a1, b0);
        let vm = s.interp(a0 + (a1 - a0) * t, b0);
        let expect = v0 + (v1 - v0) * t;
        prop_assert!((vm - expect).abs() < 1e-9);
    }

    /// The parallel map equals the serial map for any input and thread
    /// count.
    #[test]
    fn parallel_map_matches_serial(
        items in prop::collection::vec(any::<u32>(), 0..200),
        threads in 0usize..8,
    ) {
        let serial: Vec<u64> = items.iter().map(|&x| x as u64 * 3 + 1).collect();
        let parallel = parallel_map(&items, threads, |&x| x as u64 * 3 + 1);
        prop_assert_eq!(serial, parallel);
    }
}
