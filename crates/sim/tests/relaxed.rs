//! Relaxed-sync multicore equivalence and determinism suite (DESIGN.md §5i).
//!
//! Three guarantees pin the engine:
//!
//! 1. **Lockstep equivalence** — `mc.quantum == 1` is bit-identical to the
//!    pre-relaxed lockstep simulator for every operating point, with the
//!    Full sanitizer watching every cycle (the same pinned-oracle pattern
//!    the fast-forward work used).
//! 2. **Host-thread independence** — for ANY quantum, running the relaxed
//!    engine on 1, 2 or N host threads produces bit-identical seconds,
//!    cycles and stats (deterministic barrier reconciliation).
//! 3. **Bounded relaxation error** — large quanta may drift from lockstep
//!    timing, but only within the in-quantum error band; and the machinery
//!    around the engine (trace record/replay, contention reports) keeps
//!    working under it.

use proptest::prelude::*;
use save_core::{CoreConfig, SanitizeLevel};
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_sim::runner::{
    run_kernel_custom, run_kernel_custom_traced, run_kernel_full, ConfigKind, MachineConfig,
    MachineMode, MulticoreConfig,
};
use save_sim::TraceStore;

fn tiny(name: &str) -> GemmWorkload {
    GemmWorkload::dense(
        name,
        GemmKernelSpec {
            m_tiles: 4,
            n_vecs: 2,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        16,
        2,
    )
    .with_sparsity(0.3, 0.4)
}

fn machine(cores: usize, quantum: u64, threads: usize) -> MachineConfig {
    MachineConfig {
        cores,
        mode: MachineMode::Detailed,
        mc: MulticoreConfig { quantum, threads },
        ..Default::default()
    }
}

fn full_sanitized(kind: ConfigKind) -> CoreConfig {
    CoreConfig { sanitize: SanitizeLevel::Full, ..kind.core_config() }
}

/// Serializes a result to JSON so EVERY field (seconds bits via cycles,
/// stats counters, flags) participates in the bit-identity comparison.
fn fingerprint(r: &save_sim::KernelResult) -> String {
    format!("{}|{}", r.seconds.to_bits(), serde_json::to_string(r).expect("serialize result"))
}

/// Guarantee 1: `quantum == 1` (however many threads are requested) is the
/// lockstep engine, bit-for-bit, for every operating point under the Full
/// sanitizer.
#[test]
fn quantum_one_is_bit_identical_to_lockstep() {
    let w = tiny("q1-oracle");
    for kind in ConfigKind::ALL {
        let cfg = full_sanitized(kind);
        let lockstep =
            run_kernel_custom(&w, &cfg, &machine(4, 1, 0), 5, true).expect("lockstep");
        for threads in [1usize, 4, 9] {
            let relaxed = run_kernel_custom(&w, &cfg, &machine(4, 1, threads), 5, true)
                .expect("quantum=1");
            assert_eq!(
                fingerprint(&relaxed),
                fingerprint(&lockstep),
                "kind {kind:?} threads {threads}"
            );
        }
    }
}

/// The Full sanitizer accepts relaxed-sync execution at large quanta for
/// every operating point (cores run the identical cycle loop, only the
/// uncore view changes).
#[test]
fn full_sanitizer_accepts_relaxed_execution() {
    let w = tiny("relaxed-sanitized");
    for kind in ConfigKind::ALL {
        let cfg = full_sanitized(kind);
        let r = run_kernel_custom(&w, &cfg, &machine(4, 300, 2), 13, true)
            .expect("relaxed sanitized run");
        assert!(r.completed && r.verified, "kind {kind:?}");
    }
}

/// Trace record/replay (DESIGN.md §5h) composes with the relaxed engine:
/// the replayed cell is bit-identical to the recording cell.
#[test]
fn trace_replay_is_pure_under_relaxed() {
    let w = tiny("relaxed-trace");
    let m = machine(4, 250, 2);
    let cfg = ConfigKind::Save2Vpu.core_config();
    let store = TraceStore::new();
    let direct = run_kernel_custom(&w, &cfg, &m, 21, false).expect("direct");
    let recorded =
        run_kernel_custom_traced(&w, &cfg, &m, 21, false, None, &store).expect("record");
    let replayed =
        run_kernel_custom_traced(&w, &cfg, &m, 21, false, None, &store).expect("replay");
    assert_eq!(fingerprint(&recorded), fingerprint(&direct), "record-and-use must not drift");
    assert_eq!(fingerprint(&replayed), fingerprint(&direct), "replay must not drift");
}

/// The 28-core contention signals the lockstep 4-core machine could never
/// surface: per-link flits, DRAM queue depths and L3 traffic all appear in
/// the [`save_sim::KernelRun`] uncore report.
#[test]
fn contention_stats_surface_at_28_cores() {
    let w = GemmWorkload {
        b_panel_tiles: 1, // stream B: guarantees DRAM + NoC traffic
        ..tiny("mesh-28")
    };
    let run = run_kernel_full(&w, ConfigKind::Baseline, &machine(28, 500, 0), 3, false, None)
        .expect("28-core relaxed run");
    assert!(run.result.completed);
    let u = &run.uncore;
    assert!(u.l3_hits + u.l3_misses > 0, "no L3 traffic recorded");
    assert!(u.max_link_flits > 0, "detailed mesh must count link flits");
    assert!(u.mean_link_flits > 0.0);
    assert!(!u.hottest_links(4).is_empty());
    assert_eq!(u.mshr_conflicts.len(), 28, "one MSHR counter per slice");
    assert!(u.dram.queue_samples > 0, "DRAM queue depth must be sampled");
    // The report is part of the JSON surface for netreport/mesh binaries.
    let js = serde_json::to_string(u).expect("serialize uncore report");
    assert!(js.contains("link_flits") && js.contains("max_queue_depth"), "{js}");
}

#[derive(Debug, Clone)]
struct Cell {
    quantum: u64,
    cores: usize,
    seed: u64,
    kind: usize,
    a_sparsity: f64,
}

fn cell_strategy() -> impl Strategy<Value = Cell> {
    (2u64..1500, 1usize..6, 0u64..1000, 0usize..3, 0.0f64..0.9).prop_map(
        |(quantum, cores, seed, kind, a_sparsity)| Cell {
            quantum,
            cores,
            seed,
            kind,
            a_sparsity,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Guarantee 2: for random (quantum, cores, seed, operating point,
    /// sparsity), host thread counts 1, 2 and 5 produce bit-identical
    /// results.
    #[test]
    fn host_threads_never_change_results(c in cell_strategy()) {
        let w = tiny("relaxed-prop").with_sparsity(c.a_sparsity, 0.3);
        let kind = ConfigKind::ALL[c.kind];
        let base = run_kernel_custom(
            &w, &kind.core_config(), &machine(c.cores, c.quantum, 1), c.seed, false,
        ).expect("threads=1");
        for threads in [2usize, 5] {
            let r = run_kernel_custom(
                &w, &kind.core_config(), &machine(c.cores, c.quantum, threads), c.seed, false,
            ).expect("threads>1");
            prop_assert_eq!(&fingerprint(&r), &fingerprint(&base), "cell {:?} threads {}", c, threads);
        }
    }
}
