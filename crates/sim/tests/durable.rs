//! Integration tests for the durable-execution layer (DESIGN.md §5f):
//! checkpoint/resume bit-identity, cancellation with journal flush, and
//! per-cell deadlines that fail a cell without failing the sweep.

use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_sim::surface::DurableSweep;
use save_sim::{
    ConfigKind, MachineConfig, RetryPolicy, Supervisor, SupervisorHandle, Surface,
};
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

fn tiny() -> GemmWorkload {
    GemmWorkload::dense(
        "durable-tiny",
        GemmKernelSpec {
            m_tiles: 4,
            n_vecs: 2,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        16,
        2,
    )
}

/// A workload large enough that one cell takes well over the supervisor's
/// poll period, so a sub-millisecond deadline reliably interrupts it.
fn big() -> GemmWorkload {
    GemmWorkload::dense(
        "durable-big",
        GemmKernelSpec {
            m_tiles: 4,
            n_vecs: 2,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        256,
        64,
    )
}

fn machine() -> MachineConfig {
    MachineConfig { cores: 4, ..Default::default() }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("save-durable-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn opts<'a>(
    name: &str,
    dir: Option<&'a PathBuf>,
    resume: bool,
    policy: RetryPolicy,
    sup: &'a SupervisorHandle,
) -> DurableSweep<'a> {
    DurableSweep {
        name: name.to_string(),
        checkpoint_dir: dir.map(|d| d.as_path()),
        resume,
        policy,
        supervisor: sup,
    }
}

const A: [f64; 2] = [0.0, 0.3];
const B: [f64; 2] = [0.0, 0.6];

#[test]
fn resume_skips_journaled_cells_and_is_bit_identical() {
    let dir = tmpdir("resume");
    let sup = Supervisor::start(false);
    let h = sup.handle();
    let first = Surface::sweep_durable(
        &tiny(),
        ConfigKind::Save2Vpu,
        &machine(),
        &A,
        &B,
        2,
        &opts("t", Some(&dir), false, RetryPolicy::default(), &h),
    )
    .unwrap();
    assert!(!first.cancelled);
    assert!(first.report.is_clean());
    assert_eq!(first.resumed, 0);
    assert!(first.surface.secs.iter().all(|s| !s.is_nan()));

    let second = Surface::sweep_durable(
        &tiny(),
        ConfigKind::Save2Vpu,
        &machine(),
        &A,
        &B,
        2,
        &opts("t", Some(&dir), true, RetryPolicy::default(), &h),
    )
    .unwrap();
    assert_eq!(second.resumed, 4, "every cell restored from the journal");
    assert_eq!(second.total_cycles, first.total_cycles, "cycle account is resume-invariant");
    for (a, b) in first.surface.secs.iter().zip(&second.surface.secs) {
        assert_eq!(a.to_bits(), b.to_bits(), "resumed surface must be bit-identical");
    }

    // And both match a plain (non-durable) sweep: durability is
    // observationally free.
    let plain =
        Surface::sweep(&tiny(), ConfigKind::Save2Vpu, &machine(), &A, &B, 2).unwrap();
    for (a, b) in plain.secs.iter().zip(&second.surface.secs) {
        assert_eq!(a.to_bits(), b.to_bits(), "durable sweep must match Surface::sweep");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn partial_journal_resume_completes_the_remainder() {
    // Simulates "killed after two cells": run a full sweep into dir A, then
    // build dir B containing the manifest and only the first two journal
    // lines, and resume from it.
    let dir_a = tmpdir("partial-a");
    let dir_b = tmpdir("partial-b");
    let sup = Supervisor::start(false);
    let h = sup.handle();
    let full = Surface::sweep_durable(
        &tiny(),
        ConfigKind::Save1Vpu,
        &machine(),
        &A,
        &B,
        1,
        &opts("t", Some(&dir_a), false, RetryPolicy::default(), &h),
    )
    .unwrap();
    assert!(full.report.is_clean());

    fs::create_dir_all(&dir_b).unwrap();
    fs::copy(dir_a.join("manifest.json"), dir_b.join("manifest.json")).unwrap();
    let journal = fs::read_to_string(dir_a.join("journal.jsonl")).unwrap();
    let two: Vec<&str> = journal.lines().take(2).collect();
    fs::write(dir_b.join("journal.jsonl"), format!("{}\n", two.join("\n"))).unwrap();

    let resumed = Surface::sweep_durable(
        &tiny(),
        ConfigKind::Save1Vpu,
        &machine(),
        &A,
        &B,
        1,
        &opts("t", Some(&dir_b), true, RetryPolicy::default(), &h),
    )
    .unwrap();
    assert_eq!(resumed.resumed, 2, "two journaled cells skipped");
    assert!(resumed.report.is_clean());
    assert_eq!(resumed.total_cycles, full.total_cycles);
    for (a, b) in full.surface.secs.iter().zip(&resumed.surface.secs) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

#[test]
fn cancelled_sweep_is_resumable_and_converges() {
    let dir = tmpdir("cancel");
    // Cancel before the sweep starts: deterministically, no cell is
    // claimed, the outcome is "cancelled", and nothing is journaled.
    let sup = Supervisor::start(false);
    let h = sup.handle();
    h.cancel_global();
    let out = Surface::sweep_durable(
        &tiny(),
        ConfigKind::Baseline,
        &machine(),
        &A,
        &B,
        2,
        &opts("t", Some(&dir), false, RetryPolicy::default(), &h),
    )
    .unwrap();
    assert!(out.cancelled);
    assert_eq!(out.resumed, 0);
    assert!(out.surface.secs.iter().all(|s| s.is_nan()), "no timing escapes a cancelled run");
    assert!(
        out.report.failures.is_empty(),
        "cancelled cells are resumable, not failures: {:?}",
        out.report.failures
    );

    // A fresh supervisor (fresh process, conceptually) resumes to completion.
    let sup2 = Supervisor::start(false);
    let h2 = sup2.handle();
    let done = Surface::sweep_durable(
        &tiny(),
        ConfigKind::Baseline,
        &machine(),
        &A,
        &B,
        2,
        &opts("t", Some(&dir), true, RetryPolicy::default(), &h2),
    )
    .unwrap();
    assert!(!done.cancelled);
    assert!(done.report.is_clean());

    let reference = tmpdir("cancel-ref");
    let fresh = Surface::sweep_durable(
        &tiny(),
        ConfigKind::Baseline,
        &machine(),
        &A,
        &B,
        2,
        &opts("t", Some(&reference), false, RetryPolicy::default(), &h2),
    )
    .unwrap();
    for (a, b) in fresh.surface.secs.iter().zip(&done.surface.secs) {
        assert_eq!(a.to_bits(), b.to_bits(), "cancel+resume equals one uninterrupted run");
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&reference);
}

#[test]
fn deadline_overrun_is_retried_then_recorded_without_aborting_the_sweep() {
    let dir = tmpdir("deadline");
    let sup = Supervisor::start(false);
    let h = sup.handle();
    let policy = RetryPolicy {
        retries: 1,
        backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        deadline: Some(Duration::from_micros(100)),
    };
    let out = Surface::sweep_durable(
        &big(),
        ConfigKind::Baseline,
        &machine(),
        &[0.0],
        &[0.0, 0.5],
        1,
        &opts("t", Some(&dir), false, policy, &h),
    )
    .unwrap();
    assert!(!out.cancelled, "a deadline is per-cell, not a sweep cancellation");
    assert_eq!(out.report.failures.len(), 2, "both cells exceed the 100µs deadline");
    for f in &out.report.failures {
        assert_eq!(f.error.kind(), "deadline", "{}", f.error);
        assert_eq!(f.attempts, 2, "1 try + 1 retry before giving up");
    }
    assert!(out.surface.secs.iter().all(|s| s.is_nan()));

    // The failures are journaled: a resume skips them (fail-fast) instead
    // of burning the deadline again.
    let resumed = Surface::sweep_durable(
        &big(),
        ConfigKind::Baseline,
        &machine(),
        &[0.0],
        &[0.0, 0.5],
        1,
        &opts("t", Some(&dir), true, policy, &h),
    )
    .unwrap();
    assert_eq!(resumed.resumed, 2);
    assert_eq!(resumed.report.failures.len(), 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_dir_mismatch_is_a_hard_error() {
    let dir = tmpdir("mismatch");
    let sup = Supervisor::start(false);
    let h = sup.handle();
    Surface::sweep_durable(
        &tiny(),
        ConfigKind::Baseline,
        &machine(),
        &A,
        &B,
        1,
        &opts("t", Some(&dir), false, RetryPolicy::default(), &h),
    )
    .unwrap();
    // Same directory, different operating point: refuse to mix journals.
    let err = Surface::sweep_durable(
        &tiny(),
        ConfigKind::Save2Vpu,
        &machine(),
        &A,
        &B,
        1,
        &opts("t", Some(&dir), true, RetryPolicy::default(), &h),
    )
    .unwrap_err();
    assert!(err.to_string().contains("different sweep"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}
