//! Integration tests for the fault-isolation layer: the retire-progress
//! watchdog, typed config validation, panic-isolated parallel sweeps, and
//! the sweep-level failure report (DESIGN.md, "Error handling & fault
//! isolation").

use save_core::{CoreConfig, StallCause};
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_sim::runner::{run_kernel, run_kernel_custom};
use save_sim::{parallel_try_map, ConfigKind, FailureReport, MachineConfig, SimError};

fn tiny(name: &str) -> GemmWorkload {
    GemmWorkload::dense(
        name,
        GemmKernelSpec {
            m_tiles: 4,
            n_vecs: 2,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        16,
        2,
    )
    .with_sparsity(0.3, 0.3)
}

/// A watchdog window far below the cold-DRAM round trip livelocks any
/// kernel that touches cold memory: the pipeline waits on the load, nothing
/// commits, and the watchdog must fire with a diagnosis that names the
/// memory system as the stalled resource.
#[test]
fn watchdog_fires_and_diag_names_the_stalled_resource() {
    let cfg = CoreConfig { watchdog_cycles: 3, ..CoreConfig::default() };
    cfg.validate().expect("a tiny watchdog window is still a valid config");
    let err = run_kernel_custom(&tiny("livelock"), &cfg, &MachineConfig::default(), 1, false)
        .expect_err("a 3-cycle watchdog cannot survive a DRAM access");
    match err {
        SimError::CycleBudgetExceeded { kernel, core, diag } => {
            assert_eq!(kernel, "livelock");
            assert_eq!(core, None);
            assert_eq!(diag.cause, StallCause::NoCommitProgress);
            assert!(
                diag.cycle - diag.last_commit_cycle >= 3,
                "watchdog fired early: {} vs {}",
                diag.cycle,
                diag.last_commit_cycle
            );
            assert_eq!(
                diag.stalled_resource(),
                "memory",
                "the pipeline is waiting on a cold load: {diag}"
            );
            assert!(diag.loads_in_flight > 0);
            assert!(diag.oldest_unretired.is_some(), "ROB head must be described");
        }
        other => panic!("expected CycleBudgetExceeded, got {other}"),
    }
}

/// Malformed operating points must fail fast with `InvalidConfig` naming
/// the offending field — before any cycle is simulated.
#[test]
fn invalid_operating_points_fail_fast() {
    let m = MachineConfig::default();
    for (cfg, field) in [
        (CoreConfig { num_vpus: 0, ..CoreConfig::default() }, "num_vpus"),
        (CoreConfig { issue_width: 0, ..CoreConfig::default() }, "issue_width"),
        (CoreConfig { rob_entries: 0, ..CoreConfig::default() }, "rob_entries"),
    ] {
        match run_kernel_custom(&tiny("bad"), &cfg, &m, 1, false) {
            Err(SimError::InvalidConfig { what }) => {
                assert!(what.contains(field), "error {what:?} should name {field}")
            }
            other => panic!("expected InvalidConfig for {field}, got {other:?}"),
        }
    }
    let mut bad_mem = MachineConfig::default();
    bad_mem.mem.dram.channels = 0;
    match run_kernel(&tiny("badmem"), ConfigKind::Baseline, &bad_mem, 1, false) {
        Err(SimError::InvalidConfig { what }) => assert!(what.contains("dram.channels")),
        other => panic!("expected InvalidConfig for dram.channels, got {other:?}"),
    }
}

/// One panicking job must produce exactly one `Err` slot while every other
/// job completes.
#[test]
fn panicking_job_is_isolated_from_the_rest_of_the_sweep() {
    let sparsities: Vec<f64> = (0..8).map(|i| i as f64 * 0.1).collect();
    let m = MachineConfig::default();
    let results = parallel_try_map(&sparsities, 4, 0, |&s| {
        if s > 0.55 && s < 0.65 {
            panic!("injected failure at sparsity {s}");
        }
        Ok(run_kernel(&tiny("iso"), ConfigKind::Save2Vpu, &m, (s * 100.0) as u64, false)?.cycles)
    });
    assert_eq!(results.len(), 8, "sweep must complete every slot");
    let errs: Vec<usize> =
        results.iter().enumerate().filter(|(_, r)| r.is_err()).map(|(i, _)| i).collect();
    assert_eq!(errs, vec![6], "exactly the injected job fails");
    match &results[6] {
        Err(SimError::WorkerPanic { job, message }) => {
            assert_eq!(*job, 6);
            assert!(message.contains("injected failure"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    for (i, r) in results.iter().enumerate() {
        if i != 6 {
            assert!(r.as_ref().unwrap() > &0, "job {i} must have run");
        }
    }
}

/// The acceptance scenario: a sweep containing one panicking kernel and one
/// kernel that exceeds its cycle budget still completes, the failure report
/// carries a `StallDiag` for the budget overrun, and the sweep maps to a
/// non-zero exit code.
#[test]
fn sweep_with_panic_and_budget_overrun_completes_with_report() {
    struct Job {
        name: &'static str,
        max_cycles: u64,
        explode: bool,
    }
    let jobs = vec![
        Job { name: "ok-a", max_cycles: 500_000_000, explode: false },
        Job { name: "boom", max_cycles: 500_000_000, explode: true },
        Job { name: "ok-b", max_cycles: 500_000_000, explode: false },
        Job { name: "starved", max_cycles: 25, explode: false },
        Job { name: "ok-c", max_cycles: 500_000_000, explode: false },
    ];
    let m = MachineConfig::default();
    let results = parallel_try_map(&jobs, 2, 0, |job| {
        if job.explode {
            panic!("kernel {} blew up", job.name);
        }
        let cfg = CoreConfig { max_cycles: job.max_cycles, ..CoreConfig::default() };
        Ok(run_kernel_custom(&tiny(job.name), &cfg, &m, 7, true)?.cycles)
    });
    assert_eq!(results.len(), jobs.len(), "every slot must be filled");

    let report =
        FailureReport::from_results(&results, |i| Some(jobs[i].name.to_string()));
    assert_eq!(report.total_jobs, 5);
    assert_eq!(report.succeeded, 3, "the three healthy kernels completed: {report}");
    assert_eq!(report.failures.len(), 2);
    assert_eq!(report.exit_code(), 1, "a lossy sweep must exit non-zero");

    let panic_failure =
        report.failures.iter().find(|f| f.label.as_deref() == Some("boom")).unwrap();
    assert!(matches!(panic_failure.error, SimError::WorkerPanic { .. }));

    let budget_failure =
        report.failures.iter().find(|f| f.label.as_deref() == Some("starved")).unwrap();
    match &budget_failure.error {
        SimError::CycleBudgetExceeded { diag, .. } => {
            assert_eq!(diag.cause, StallCause::CycleBudget);
            assert_eq!(diag.cycle, 25);
        }
        other => panic!("expected CycleBudgetExceeded for 'starved', got {other:?}"),
    }

    // The report renders readably for the sweep log.
    let rendered = report.to_string();
    assert!(rendered.contains("3/5 jobs succeeded"), "{rendered}");
    assert!(rendered.contains("boom") && rendered.contains("starved"), "{rendered}");
}
