//! The replay purity canary (DESIGN.md §5h): replaying a recorded
//! functional trace must be indistinguishable — bit-for-bit — from direct
//! execution. Random cells across every operating point, both machine
//! modes, and the Full sanitizer; plus the `sweep_many` ≡ N×`sweep`
//! equivalence that the "execute once, time N" machinery rests on.

use proptest::prelude::*;
use save_core::{CoreConfig, SanitizeLevel};
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_sim::{
    CellSpec, ConfigKind, CoreSel, MachineConfig, MachineMode, Surface, TraceStore,
};

#[derive(Clone, Debug)]
struct Cell {
    m: usize,
    n: usize,
    k: usize,
    tiles: usize,
    a_sparsity: f64,
    b_sparsity: f64,
    pattern: BroadcastPattern,
    precision: Precision,
    detailed: bool,
    seed: u64,
}

fn cell() -> impl Strategy<Value = Cell> {
    (
        1usize..6,
        1usize..3,
        1usize..12,
        1usize..3,
        0.0f64..0.95,
        0.0f64..0.95,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(m, n, k, tiles, a_s, b_s, emb, mp, detailed, seed)| Cell {
            m,
            n,
            k: k * 2, // even for MP
            tiles,
            a_sparsity: a_s,
            b_sparsity: b_s,
            pattern: if emb { BroadcastPattern::Embedded } else { BroadcastPattern::Explicit },
            precision: if mp { Precision::Mixed } else { Precision::F32 },
            detailed,
            seed,
        })
        .prop_filter("register budget", |c| {
            GemmKernelSpec {
                m_tiles: c.m,
                n_vecs: c.n,
                pattern: c.pattern,
                precision: c.precision,
            }
            .fits_register_file()
        })
}

fn workload_of(c: &Cell) -> GemmWorkload {
    GemmWorkload::dense(
        "canary",
        GemmKernelSpec {
            m_tiles: c.m,
            n_vecs: c.n,
            pattern: c.pattern,
            precision: c.precision,
        },
        c.k,
        c.tiles,
    )
    .with_sparsity(c.a_sparsity, c.b_sparsity)
}

fn machine_of(c: &Cell) -> MachineConfig {
    if c.detailed {
        MachineConfig { cores: 2, mode: MachineMode::Detailed, ..Default::default() }
    } else {
        MachineConfig::default()
    }
}

/// Runs every operating point for the cell twice — directly and through a
/// shared [`TraceStore`] (the first traced run records, the rest replay) —
/// and asserts bit-identical seconds, cycles and stats.
fn assert_replay_pure(w: &GemmWorkload, machine: &MachineConfig, seed: u64, kinds: &[CoreSel]) {
    let store = TraceStore::new();
    for (i, core) in kinds.iter().enumerate() {
        let spec = CellSpec {
            workload: w.clone(),
            core: core.clone(),
            machine: *machine,
            seed,
            verify: false,
        };
        let direct = spec.run(None).expect("direct run");
        let traced = spec.run_traced(None, &store).expect("traced run");
        assert_eq!(
            direct.seconds.to_bits(),
            traced.seconds.to_bits(),
            "kind {i}: replayed seconds must be bit-identical"
        );
        assert_eq!(direct.cycles, traced.cycles, "kind {i}: cycles diverged");
        assert_eq!(direct.stats, traced.stats, "kind {i}: CoreStats diverged");
        assert_eq!(direct.verified, traced.verified, "kind {i}: verified flag diverged");
    }
}

fn named_kinds() -> Vec<CoreSel> {
    ConfigKind::ALL.iter().map(|&kind| CoreSel::Kind { kind }).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// Random cells: replay through a trace store is bit-identical to
    /// direct execution for all three operating points, in whichever
    /// machine mode the cell drew.
    #[test]
    fn replay_is_bit_identical_to_direct(c in cell()) {
        assert_replay_pure(&workload_of(&c), &machine_of(&c), c.seed, &named_kinds());
    }
}

/// The Full sanitizer — every issue-time and state-scan check, every cycle
/// — must accept replayed runs exactly as it accepts direct ones, in both
/// machine modes.
#[test]
fn replay_survives_full_sanitizer_in_both_modes() {
    let sanitized: Vec<CoreSel> = ConfigKind::ALL
        .iter()
        .map(|k| CoreSel::Custom {
            config: Box::new(CoreConfig {
                sanitize: SanitizeLevel::Full,
                ..k.core_config()
            }),
        })
        .collect();
    for precision in [Precision::F32, Precision::Mixed] {
        let w = GemmWorkload::dense(
            "canary-sane",
            GemmKernelSpec {
                m_tiles: 4,
                n_vecs: 2,
                pattern: BroadcastPattern::Explicit,
                precision,
            },
            16,
            2,
        )
        .with_sparsity(0.6, 0.5);
        for mode in [MachineMode::Symmetric, MachineMode::Detailed] {
            let machine = MachineConfig { cores: 2, mode, ..Default::default() };
            assert_replay_pure(&w, &machine, 17, &sanitized);
        }
    }
}

/// The result memo and the display-name-agnostic trace key must both be
/// invisible in the bits: a duplicate cell served from the memo, and a
/// renamed-but-identical workload replaying another's trace, each match
/// their own direct execution exactly.
#[test]
fn result_memo_and_renamed_workloads_stay_pure() {
    let w = GemmWorkload::dense(
        "canary-memo",
        GemmKernelSpec {
            m_tiles: 4,
            n_vecs: 2,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        16,
        2,
    )
    .with_sparsity(0.6, 0.6);
    let machine = MachineConfig::default();
    let store = TraceStore::new();
    let spec = CellSpec::new(w.clone(), ConfigKind::Save2Vpu, machine, 11);
    let first = spec.run_traced(None, &store).expect("first run");
    let second = spec.run_traced(None, &store).expect("memoized run");
    assert_eq!(store.result_hits(), 1, "identical cell must be served from the memo");
    assert_eq!(first.seconds.to_bits(), second.seconds.to_bits());
    assert_eq!(first.stats, second.stats);

    // Same shape under a different label: the name is excluded from the
    // trace key (and hence the cache key), so this is served from the
    // original's memo — and must still match the alias's *own* direct
    // execution bit-for-bit, which is what proves the label really is
    // non-functional.
    let mut renamed = w;
    renamed.name = "canary-memo-alias".into();
    let alias = CellSpec::new(renamed, ConfigKind::Save2Vpu, machine, 11);
    assert_eq!(spec.trace_key().unwrap(), alias.trace_key().unwrap());
    let traced = alias.run_traced(None, &store).expect("alias traced");
    let direct = alias.run(None).expect("alias direct");
    assert_eq!(traced.seconds.to_bits(), direct.seconds.to_bits());
    assert_eq!(traced.stats, direct.stats);
}

/// `sweep_many` over all three kinds is bit-identical to three independent
/// `sweep` calls — the equivalence "execute once, time N" rests on.
#[test]
fn sweep_many_matches_per_kind_sweeps_bit_for_bit() {
    let w = GemmWorkload::dense(
        "canary-sweep",
        GemmKernelSpec {
            m_tiles: 4,
            n_vecs: 2,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        16,
        2,
    );
    let machine = MachineConfig::default();
    let (a_levels, b_levels) = (vec![0.0, 0.6], vec![0.3, 0.8]);
    let many =
        Surface::sweep_many(&w, &ConfigKind::ALL, &machine, &a_levels, &b_levels, 2).unwrap();
    assert_eq!(many.len(), ConfigKind::ALL.len());
    for (kind, got) in ConfigKind::ALL.iter().zip(&many) {
        let want = Surface::sweep(&w, *kind, &machine, &a_levels, &b_levels, 2).unwrap();
        for (i, (g, w_)) in got.secs.iter().zip(&want.secs).enumerate() {
            assert_eq!(
                g.to_bits(),
                w_.to_bits(),
                "{kind:?} cell {i}: sweep_many diverged from sweep"
            );
        }
    }
}
