//! Measures the "execute once, time N" speedup (DESIGN.md §5h): one
//! fig16-class kernel cell swept across N timing configurations, first by
//! re-executing every cell from scratch, then through a [`TraceStore`]
//! (record once, replay N−1 times). Prints per-mode host times, the
//! sweep-level speedup, and asserts the replayed cycle totals are
//! bit-identical to direct execution.
//!
//! Run with `cargo run --release -p save-sim --example trace_speedup`.

use save_core::CoreConfig;
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_sim::{CellSpec, ConfigKind, CoreSel, MachineConfig, TraceStore};
use std::time::Instant;

fn main() {
    // A fig16-class layer: moderate GEMM, streamed B panel (memory-bound —
    // representative of the conv-as-GEMM layers the figure sweeps).
    let w = GemmWorkload {
        b_panel_tiles: 1,
        ..GemmWorkload::dense(
            "fig16-class",
            GemmKernelSpec {
                m_tiles: 8,
                n_vecs: 3,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            64,
            8,
        )
    }
    .with_sparsity(0.6, 0.6);
    let machine = MachineConfig::default();
    let seed = 42;

    // N timing configurations sharing one functional trace: the three named
    // operating points plus the ablation points of Figs 17-19.
    let mut configs: Vec<CoreSel> =
        ConfigKind::ALL.iter().map(|&kind| CoreSel::Kind { kind }).collect();
    let save = ConfigKind::Save2Vpu.core_config();
    for cfg in [
        CoreConfig { rotate: false, ..save },
        CoreConfig { lane_wise: false, ..save },
        CoreConfig { rotate: false, lane_wise: false, ..save },
        CoreConfig { num_vpus: 1, ..save },
        CoreConfig { scheduler: save_core::SchedulerKind::Horizontal, ..save },
    ] {
        configs.push(CoreSel::Custom { config: Box::new(cfg) });
    }

    let spec_of = |core: &CoreSel| CellSpec {
        workload: w.clone(),
        core: core.clone(),
        machine,
        seed,
        verify: false,
    };

    // Warm-up pass so neither mode pays first-touch costs.
    let _ = spec_of(&configs[0]).run(None).unwrap();

    let t0 = Instant::now();
    let direct: Vec<_> = configs.iter().map(|c| spec_of(c).run(None).unwrap()).collect();
    let direct_host = t0.elapsed();

    let store = TraceStore::new();
    let t1 = Instant::now();
    let traced: Vec<_> =
        configs.iter().map(|c| spec_of(c).run_traced(None, &store).unwrap()).collect();
    let traced_host = t1.elapsed();

    let mut total_direct = 0u64;
    let mut total_traced = 0u64;
    for (i, (d, t)) in direct.iter().zip(&traced).enumerate() {
        assert_eq!(d.cycles, t.cycles, "config {i}: replay diverged");
        assert_eq!(d.seconds.to_bits(), t.seconds.to_bits(), "config {i}: bits diverged");
        total_direct += d.cycles;
        total_traced += t.cycles;
    }
    assert_eq!(total_direct, total_traced);

    let speedup = direct_host.as_secs_f64() / traced_host.as_secs_f64();
    println!("configs:            {}", configs.len());
    println!("trace-store hits:   {}/{}", store.hits(), store.lookups());
    println!("direct sweep:       {:>8.1} ms", direct_host.as_secs_f64() * 1e3);
    println!("traced sweep:       {:>8.1} ms  (record once, replay {})", traced_host.as_secs_f64() * 1e3, configs.len() - 1);
    println!("sweep-level speedup: {speedup:.2}x");
    println!("total simulated cycles (bit-identical): {total_direct}");
}
