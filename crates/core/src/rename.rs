//! Register renaming: physical vector register file with per-lane readiness.
//!
//! SAVE adopts a vector register file "where each lane of a vector register
//! can be accessed independently" (§III), and the lane-wise dependence
//! scheme (§IV-C) needs per-lane readiness. We therefore track a 16-bit
//! ready mask per physical register; a register is *fully* ready when all
//! 16 bits are set.

use crate::uop::PhysId;
use save_isa::{VecF32, LANES, NUM_KREGS, NUM_VREGS};

/// Mask value with every lane ready.
pub const ALL_LANES: u16 = u16::MAX;

/// The physical vector register file.
#[derive(Clone, Debug)]
pub struct PhysRegFile {
    vals: Vec<VecF32>,
    lane_ready: Vec<u16>,
    free: Vec<PhysId>,
}

impl PhysRegFile {
    /// Creates a file with `n` registers, all free.
    ///
    /// # Panics
    /// Panics if `n` is smaller than the architectural register count.
    pub fn new(n: usize) -> Self {
        assert!(n > NUM_VREGS, "physical file must exceed architectural registers");
        PhysRegFile {
            vals: vec![VecF32::ZERO; n],
            lane_ready: vec![0; n],
            free: (0..n as PhysId).rev().collect(),
        }
    }

    /// Allocates a register (lanes initially not-ready). `None` when the
    /// free list is exhausted (the allocator stalls).
    pub fn alloc(&mut self) -> Option<PhysId> {
        let id = self.free.pop()?;
        self.lane_ready[id as usize] = 0;
        self.vals[id as usize] = VecF32::ZERO;
        Some(id)
    }

    /// Returns a register to the free list.
    pub fn release(&mut self, id: PhysId) {
        debug_assert!(!self.free.contains(&id), "double free of p{id}");
        self.free.push(id);
    }

    /// Free registers remaining.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Current value (lanes that are not ready read as garbage-in-progress;
    /// the schedulers only read ready lanes).
    pub fn value(&self, id: PhysId) -> &VecF32 {
        &self.vals[id as usize]
    }

    /// Writes one lane and marks it ready.
    pub fn write_lane(&mut self, id: PhysId, lane: usize, v: f32) {
        self.vals[id as usize].set_lane(lane, v);
        self.lane_ready[id as usize] |= 1 << lane;
    }

    /// Writes the full vector and marks every lane ready.
    pub fn write_all(&mut self, id: PhysId, v: VecF32) {
        self.vals[id as usize] = v;
        self.lane_ready[id as usize] = ALL_LANES;
    }

    /// Per-lane ready mask.
    pub fn ready_mask(&self, id: PhysId) -> u16 {
        self.lane_ready[id as usize]
    }

    /// `true` when all 16 lanes are ready.
    pub fn fully_ready(&self, id: PhysId) -> bool {
        self.lane_ready[id as usize] == ALL_LANES
    }

    /// `true` when lane `lane` is ready.
    pub fn lane_ready(&self, id: PhysId, lane: usize) -> bool {
        self.lane_ready[id as usize] >> lane & 1 == 1
    }

    /// Total registers in the file (free + live).
    pub fn num_regs(&self) -> usize {
        self.vals.len()
    }

    /// The current free list (sanitizer partition check).
    pub fn free_list(&self) -> &[PhysId] {
        &self.free
    }

    /// Fault-injection hook: returns `id` to the free list *without* the
    /// double-free debug assertion, modelling broken release logic. Only the
    /// sanitizer self-test should call this.
    pub fn force_release(&mut self, id: PhysId) {
        self.free.push(id);
    }

    /// Fault-injection hook: silently drops one register from the free
    /// list, modelling a leak. Returns the leaked id, if any.
    pub fn leak_free_reg(&mut self) -> Option<PhysId> {
        self.free.pop()
    }

    /// Fault-injection hook: clears one lane-ready bit without touching the
    /// value, modelling a dropped wakeup.
    pub fn corrupt_clear_lane(&mut self, id: PhysId, lane: usize) {
        self.lane_ready[id as usize] &= !(1 << lane);
    }
}

/// Architectural-to-physical mapping plus the write-mask register values
/// (mask setup executes at rename with an immediate, so mask values are
/// architecturally in-order here).
#[derive(Clone, Debug)]
pub struct RenameTable {
    vmap: [PhysId; NUM_VREGS],
    kvals: [u16; NUM_KREGS],
}

impl RenameTable {
    /// Creates the initial mapping, allocating one ready zero-valued
    /// physical register per architectural register.
    pub fn new(prf: &mut PhysRegFile) -> Self {
        let mut vmap = [0; NUM_VREGS];
        for slot in vmap.iter_mut() {
            let id = prf.alloc().expect("initial rename allocation");
            prf.write_all(id, VecF32::ZERO);
            *slot = id;
        }
        RenameTable { vmap, kvals: [ALL_LANES; NUM_KREGS] }
    }

    /// Current physical register of architectural `r`.
    pub fn lookup(&self, r: save_isa::VReg) -> PhysId {
        self.vmap[r.index()]
    }

    /// Redirects architectural `r` to `new`, returning the previous mapping
    /// (freed when the renaming µop commits).
    pub fn remap(&mut self, r: save_isa::VReg, new: PhysId) -> PhysId {
        std::mem::replace(&mut self.vmap[r.index()], new)
    }

    /// Current value of write-mask register `k`.
    pub fn kval(&self, k: save_isa::KReg) -> u16 {
        self.kvals[k.index()]
    }

    /// Sets write-mask register `k` (executed at rename).
    pub fn set_kval(&mut self, k: save_isa::KReg, v: u16) {
        self.kvals[k.index()] = v;
    }

    /// All current architectural-to-physical mappings (sanitizer partition
    /// check).
    pub fn mappings(&self) -> &[PhysId; NUM_VREGS] {
        &self.vmap
    }
}

/// Sanity helper: the number of lanes as a mask width.
pub const fn lanes() -> usize {
    LANES
}

#[cfg(test)]
mod tests {
    use super::*;
    use save_isa::{KReg, VReg};

    #[test]
    fn alloc_and_release_cycle() {
        let mut prf = PhysRegFile::new(40);
        let before = prf.free_count();
        let id = prf.alloc().unwrap();
        assert_eq!(prf.free_count(), before - 1);
        assert!(!prf.fully_ready(id));
        prf.release(id);
        assert_eq!(prf.free_count(), before);
    }

    #[test]
    fn lane_writes_accumulate_readiness() {
        let mut prf = PhysRegFile::new(40);
        let id = prf.alloc().unwrap();
        prf.write_lane(id, 0, 1.0);
        prf.write_lane(id, 15, 2.0);
        assert!(prf.lane_ready(id, 0));
        assert!(prf.lane_ready(id, 15));
        assert!(!prf.lane_ready(id, 7));
        assert!(!prf.fully_ready(id));
        assert_eq!(prf.value(id).lane(15), 2.0);
        for l in 0..LANES {
            prf.write_lane(id, l, 0.0);
        }
        assert!(prf.fully_ready(id));
    }

    #[test]
    fn rename_table_initializes_ready_zeroes() {
        let mut prf = PhysRegFile::new(64);
        let rt = RenameTable::new(&mut prf);
        let p = rt.lookup(VReg(5));
        assert!(prf.fully_ready(p));
        assert_eq!(*prf.value(p), VecF32::ZERO);
    }

    #[test]
    fn remap_returns_previous() {
        let mut prf = PhysRegFile::new(64);
        let mut rt = RenameTable::new(&mut prf);
        let old = rt.lookup(VReg(3));
        let new = prf.alloc().unwrap();
        let prev = rt.remap(VReg(3), new);
        assert_eq!(prev, old);
        assert_eq!(rt.lookup(VReg(3)), new);
    }

    #[test]
    fn kvals_default_full_and_settable() {
        let mut prf = PhysRegFile::new(64);
        let mut rt = RenameTable::new(&mut prf);
        assert_eq!(rt.kval(KReg(0)), ALL_LANES);
        rt.set_kval(KReg(2), 0b1010);
        assert_eq!(rt.kval(KReg(2)), 0b1010);
    }
}
