//! VPU select logic: baseline, SAVE vertical coalescing (with rotation and
//! lane-wise dependence), horizontal compression, and the mixed-precision
//! multiplicand-lane compression.
//!
//! Each scheduler consumes ready [`crate::rs::FmaEntry`]s from the
//! reservation station and produces at most one compacted
//! [`crate::vpu::VpuOp`] per VPU per cycle. Functional lane values are
//! computed at select time (operand lanes are proven ready) and written back
//! at completion.

pub mod baseline;
pub mod horizontal;
pub mod mixed;
pub mod vertical;

use crate::config::{CoreConfig, SchedulerKind};
use crate::rename::PhysRegFile;
use crate::rs::{FmaEntry, Rs, RsEntry};
use crate::stats::CoreStats;
use crate::uop::FmaPrecision;
use crate::vpu::VpuOp;

/// Runs the configured select logic for one cycle.
pub fn select(
    rs: &mut Rs,
    prf: &PhysRegFile,
    cfg: &CoreConfig,
    cycle: u64,
    stats: &mut CoreStats,
) -> Vec<VpuOp> {
    match cfg.scheduler {
        SchedulerKind::Baseline => baseline::select(rs, prf, cfg, cycle, stats),
        SchedulerKind::Vertical => {
            // A cycle's temps are homogeneous in precision; follow the
            // oldest entry that is in the combination window.
            match oldest_window_precision(rs, prf) {
                Some(FmaPrecision::Bf16) if cfg.mp_compress => {
                    mixed::select(rs, prf, cfg, cycle, stats)
                }
                _ => vertical::select(rs, prf, cfg, cycle, stats),
            }
        }
        SchedulerKind::Horizontal => horizontal::select(rs, prf, cfg, cycle, stats),
    }
}

/// Precision of the oldest VFMA currently in the combination window.
pub(crate) fn oldest_window_precision(rs: &Rs, prf: &PhysRegFile) -> Option<FmaPrecision> {
    rs.iter().find_map(|e| match e {
        RsEntry::Fma(f) if f.in_window(prf) => Some(f.precision),
        _ => None,
    })
}

/// Lanes of `e` that may be scheduled this cycle under the configured
/// accumulator-dependence scheme: the unscheduled effectual lanes whose
/// accumulator-source lane is available (§IV-C).
pub(crate) fn sched_mask(e: &FmaEntry, prf: &PhysRegFile, lane_wise: bool) -> u16 {
    if !e.in_window(prf) {
        return 0;
    }
    if lane_wise {
        e.elm & prf.ready_mask(e.acc_src)
    } else if prf.fully_ready(e.acc_src) {
        e.elm
    } else {
        0
    }
}

/// FP32 lane result: `c + a*b` with fused rounding.
pub(crate) fn lane_value_f32(e: &FmaEntry, prf: &PhysRegFile, lane: usize) -> f32 {
    let a = prf.value(e.a).lane(lane);
    let b = prf.value(e.b).lane(lane);
    let c = prf.value(e.acc_src).lane(lane);
    a.mul_add(b, c)
}

/// Mixed-precision AL result: two chained MACs over the AL's effectual MLs
/// in ML order (paper Fig 2), starting from `base`.
pub(crate) fn al_value_mp(e: &FmaEntry, prf: &PhysRegFile, al: usize, ml_bits: u32, base: f32) -> f32 {
    let av = prf.value(e.a).as_bf16();
    let bv = prf.value(e.b).as_bf16();
    let mut acc = base;
    for half in 0..2usize {
        if ml_bits >> half & 1 == 1 {
            let m = 2 * al + half;
            acc = av.lane(m).to_f32().mul_add(bv.lane(m).to_f32(), acc);
        }
    }
    acc
}
