//! VPU select logic: baseline, SAVE vertical coalescing (with rotation and
//! lane-wise dependence), horizontal compression, and the mixed-precision
//! multiplicand-lane compression.
//!
//! Each scheduler consumes ready [`crate::rs::FmaEntry`]s from the
//! reservation station and produces at most one compacted
//! [`crate::vpu::VpuOp`] per VPU per cycle. Functional lane values are
//! computed at select time (operand lanes are proven ready) and written back
//! at completion.
//!
//! Select runs every simulated cycle, so it is the hottest code in the
//! simulator. All schedulers work out of a per-core [`SelectScratch`]: the
//! candidate lists, per-temp pick lists and per-VPU result accumulators are
//! reused across cycles, and the `Vec<LaneResult>` payloads of completed
//! [`VpuOp`]s are recycled through a pool, so steady-state selection
//! performs no heap allocation.

pub mod baseline;
pub mod horizontal;
pub mod mixed;
pub mod vertical;

use crate::config::{CoreConfig, SchedulerKind};
use crate::rename::PhysRegFile;
use crate::replay::Recorder;
use crate::rs::{FmaEntry, Rs, RsEntry};
use crate::stats::CoreStats;
use crate::uop::{FmaPrecision, RobId};
use crate::vpu::{LaneResult, VpuOp};
use save_isa::LANES;

/// Reusable per-core scheduling buffers (see the module docs).
///
/// The combination-window scoreboard (`masks`) must be refreshed with
/// [`window_masks`] each cycle before calling [`select`] under a non-baseline
/// scheduler — the core does this anyway to sample the CW-size statistic.
#[derive(Debug, Default)]
pub struct SelectScratch {
    /// Per-cycle window scoreboard: `(program-order position, schedulable
    /// lane mask)` for every VFMA whose mask is nonzero, oldest first.
    /// Entries mutated by select never change a *later* entry's mask (masks
    /// depend only on the entry's own state and the unmodified PRF), so the
    /// scoreboard stays valid for the whole select pass.
    masks: Vec<(usize, u16)>,
    /// Vertical: candidates of the window precision, masks consumed in place.
    cand: Vec<(usize, u16)>,
    /// Vertical: per-temp `(entry position, logical lane)` assignments.
    temps: Vec<Vec<(usize, usize)>>,
    /// Mixed: program-order positions of MP entries.
    idxs: Vec<usize>,
    /// Mixed: per-VPU result accumulators.
    per_vpu: Vec<Vec<LaneResult>>,
    /// Baseline: ROB ids issued this cycle (removed from the RS after).
    issued: Vec<RobId>,
    /// Recycled lane-result payloads from completed ops.
    pool: Vec<Vec<LaneResult>>,
}

impl SelectScratch {
    /// Creates empty scratch; buffers grow to steady-state sizes on first
    /// use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of VFMAs in the combination window as of the last
    /// [`window_masks`] refresh (§III samples 24-28 on SAVE workloads).
    pub fn window_len(&self) -> usize {
        self.masks.len()
    }

    /// Hands out an empty lane-result vector, recycling a completed op's
    /// payload when one is pooled.
    pub(crate) fn lease(&mut self) -> Vec<LaneResult> {
        self.pool.pop().unwrap_or_else(|| Vec::with_capacity(LANES))
    }

    /// Returns a completed op's payload to the pool for reuse.
    pub fn recycle(&mut self, mut v: Vec<LaneResult>) {
        v.clear();
        self.pool.push(v);
    }
}

/// Refreshes the combination-window scoreboard in `sx` (and nothing else):
/// one [`sched_mask`] evaluation per RS entry per cycle, shared by the
/// CW-size statistic and the vertical/horizontal select passes.
pub fn window_masks(rs: &Rs, prf: &PhysRegFile, lane_wise: bool, sx: &mut SelectScratch) {
    sx.masks.clear();
    for (i, e) in rs.iter().enumerate() {
        if let RsEntry::Fma(f) = e {
            let m = sched_mask(f, prf, lane_wise);
            if m != 0 {
                sx.masks.push((i, m));
            }
        }
    }
}

/// Runs the configured select logic for one cycle, appending the issued ops
/// to `out` (cleared first). Non-baseline schedulers read the scoreboard
/// refreshed by [`window_masks`] this cycle.
///
/// `rec` arms functional-trace recording (only the baseline scheduler
/// records anything here — it generates ELMs at issue since it never runs
/// the MGUs). `elide` is set under trace replay: lane value math collapses
/// to literal `+0.0`, which is bit-identical to computing it because every
/// physical-register value is `+0.0` under the replay invariant (see
/// [`crate::replay`]); all masks, latencies and statistics are untouched.
#[allow(clippy::too_many_arguments)]
pub fn select(
    rs: &mut Rs,
    prf: &PhysRegFile,
    cfg: &CoreConfig,
    cycle: u64,
    stats: &mut CoreStats,
    sx: &mut SelectScratch,
    out: &mut Vec<VpuOp>,
    rec: Option<&mut Recorder>,
    elide: bool,
) {
    out.clear();
    match cfg.scheduler {
        SchedulerKind::Baseline => baseline::select(rs, prf, cfg, cycle, stats, sx, out, rec, elide),
        SchedulerKind::Vertical => {
            // A cycle's temps are homogeneous in precision; follow the
            // oldest entry that is in the combination window.
            match oldest_window_precision(rs, prf) {
                Some(FmaPrecision::Bf16) if cfg.mp_compress => {
                    mixed::select(rs, prf, cfg, cycle, stats, sx, out, elide)
                }
                _ => vertical::select(rs, prf, cfg, cycle, stats, sx, out, elide),
            }
        }
        SchedulerKind::Horizontal => horizontal::select(rs, prf, cfg, cycle, stats, sx, out, elide),
    }
}

/// Precision of the oldest VFMA currently in the combination window.
pub(crate) fn oldest_window_precision(rs: &Rs, prf: &PhysRegFile) -> Option<FmaPrecision> {
    rs.iter().find_map(|e| match e {
        RsEntry::Fma(f) if f.in_window(prf) => Some(f.precision),
        _ => None,
    })
}

/// Lanes of `e` that may be scheduled this cycle under the configured
/// accumulator-dependence scheme: the unscheduled effectual lanes whose
/// accumulator-source lane is available (§IV-C).
pub(crate) fn sched_mask(e: &FmaEntry, prf: &PhysRegFile, lane_wise: bool) -> u16 {
    if !e.in_window(prf) {
        return 0;
    }
    if lane_wise {
        e.elm & prf.ready_mask(e.acc_src)
    } else if prf.fully_ready(e.acc_src) {
        e.elm
    } else {
        0
    }
}

/// FP32 lane result: `c + a*b` with fused rounding.
pub(crate) fn lane_value_f32(e: &FmaEntry, prf: &PhysRegFile, lane: usize) -> f32 {
    let a = prf.value(e.a).lane(lane);
    let b = prf.value(e.b).lane(lane);
    let c = prf.value(e.acc_src).lane(lane);
    a.mul_add(b, c)
}

/// Mixed-precision AL result: two chained MACs over the AL's effectual MLs
/// in ML order (paper Fig 2), starting from `base`.
pub(crate) fn al_value_mp(e: &FmaEntry, prf: &PhysRegFile, al: usize, ml_bits: u32, base: f32) -> f32 {
    let av = prf.value(e.a).as_bf16();
    let bv = prf.value(e.b).as_bf16();
    let mut acc = base;
    for half in 0..2usize {
        if ml_bits >> half & 1 == 1 {
            let m = 2 * al + half;
            acc = av.lane(m).to_f32().mul_add(bv.lane(m).to_f32(), acc);
        }
    }
    acc
}
