//! Vertical coalescing — Algorithm 1 of the paper, with the rotate (§IV-B)
//! and lane-wise dependence (§IV-C) extensions.
//!
//! Per temp lane position, the select logic picks the oldest ready VFMA with
//! an unscheduled effectual lane in that (rotated) position; with `N` VPUs it
//! picks up to `N` entries per position. Elements never move across lanes
//! (that is horizontal compression's job), so per-lane accumulation order is
//! program order and FP32 results are bit-exact with sequential execution.
//!
//! Mixed-precision VFMAs are handled here at accumulator-lane granularity
//! when the MP compression technique is disabled: an AL issues as a unit
//! (both effectual MLs), so sparsity exploitation is limited to ALs whose
//! MLs are *all* ineffectual (the Fig 9 effect; Fig 19 quantifies the loss).

use crate::config::CoreConfig;
use crate::rename::PhysRegFile;
use crate::rs::{Rs, RsEntry};
use crate::stats::CoreStats;
use crate::uop::FmaPrecision;
use crate::vpu::{LaneResult, VpuOp};
use save_isa::LANES;

/// One lane-assignment produced by the select loop.
struct Pick {
    entry_idx: usize,
    lane: usize,
}

/// Runs one cycle of vertical coalescing.
pub fn select(
    rs: &mut Rs,
    prf: &PhysRegFile,
    cfg: &CoreConfig,
    cycle: u64,
    stats: &mut CoreStats,
) -> Vec<VpuOp> {
    // Gather candidates oldest-first with their current schedulable masks.
    let precision = match super::oldest_window_precision(rs, prf) {
        Some(p) => p,
        None => return Vec::new(),
    };
    let mut cand: Vec<(usize, u16)> = Vec::new();
    for (i, e) in rs.iter().enumerate() {
        if let RsEntry::Fma(f) = e {
            if f.precision != precision {
                continue;
            }
            let m = super::sched_mask(f, prf, cfg.lane_wise);
            if m != 0 {
                cand.push((i, m));
            }
        }
    }
    if cand.is_empty() {
        return Vec::new();
    }

    // Algorithm 1: per lane position, assign the first N candidates with an
    // unscheduled effectual lane there to the N temps.
    let nv = cfg.num_vpus;
    let mut temps: Vec<Vec<Pick>> = (0..nv).map(|_| Vec::new()).collect();
    let mut temp_filled: Vec<u16> = vec![0; nv];
    let entries = rs.entries_mut();
    for pos in 0..LANES {
        let mut v = 0;
        for (idx, mask) in cand.iter_mut() {
            if v == nv {
                break;
            }
            let f = match &entries[*idx] {
                RsEntry::Fma(f) => f,
                _ => unreachable!(),
            };
            let lane = f.logical_lane(pos);
            if *mask >> lane & 1 == 0 {
                continue;
            }
            *mask &= !(1 << lane);
            temps[v].push(Pick { entry_idx: *idx, lane });
            temp_filled[v] |= 1 << pos;
            v += 1;
        }
    }

    // Build the compacted VPU ops, computing values and consuming ELM bits.
    let latency = match precision {
        FmaPrecision::F32 => cfg.fp32_fma_cycles,
        FmaPrecision::Bf16 => cfg.mp_fma_cycles,
    };
    let mut ops = Vec::new();
    for temp in temps.into_iter().filter(|t| !t.is_empty()) {
        let mut results = Vec::with_capacity(temp.len());
        for p in temp {
            let f = match &mut entries[p.entry_idx] {
                RsEntry::Fma(f) => f,
                _ => unreachable!(),
            };
            let value = match precision {
                FmaPrecision::F32 => super::lane_value_f32(f, prf, p.lane),
                FmaPrecision::Bf16 => {
                    let bits = f.ml_bits_at(p.lane);
                    let base = prf.value(f.acc_src).lane(p.lane);
                    let v = super::al_value_mp(f, prf, p.lane, bits, base);
                    f.ml &= !(0b11 << (2 * p.lane));
                    stats.mp_mls_issued += bits.count_ones() as u64;
                    v
                }
            };
            f.elm &= !(1 << p.lane);
            results.push(LaneResult { rob: f.rob, dst: f.acc_dst, lane: p.lane, value });
        }
        stats.vpu_ops += 1;
        stats.lanes_issued += results.len() as u64;
        ops.push(VpuOp { complete_at: cycle + latency, results });
    }
    ops
}
