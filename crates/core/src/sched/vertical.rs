//! Vertical coalescing — Algorithm 1 of the paper, with the rotate (§IV-B)
//! and lane-wise dependence (§IV-C) extensions.
//!
//! Per temp lane position, the select logic picks the oldest ready VFMA with
//! an unscheduled effectual lane in that (rotated) position; with `N` VPUs it
//! picks up to `N` entries per position. Elements never move across lanes
//! (that is horizontal compression's job), so per-lane accumulation order is
//! program order and FP32 results are bit-exact with sequential execution.
//!
//! Mixed-precision VFMAs are handled here at accumulator-lane granularity
//! when the MP compression technique is disabled: an AL issues as a unit
//! (both effectual MLs), so sparsity exploitation is limited to ALs whose
//! MLs are *all* ineffectual (the Fig 9 effect; Fig 19 quantifies the loss).

use crate::config::CoreConfig;
use crate::rename::PhysRegFile;
use crate::rs::{Rs, RsEntry};
use crate::sched::SelectScratch;
use crate::stats::CoreStats;
use crate::uop::FmaPrecision;
use crate::vpu::{LaneResult, VpuOp};
use save_isa::LANES;

/// Runs one cycle of vertical coalescing. `elide` (trace replay) collapses
/// lane values to `+0.0` — bit-identical under the replay invariant — while
/// mask consumption, latencies and statistics stay untouched.
#[allow(clippy::too_many_arguments)]
pub fn select(
    rs: &mut Rs,
    prf: &PhysRegFile,
    cfg: &CoreConfig,
    cycle: u64,
    stats: &mut CoreStats,
    sx: &mut SelectScratch,
    out: &mut Vec<VpuOp>,
    elide: bool,
) {
    // Candidates: the window scoreboard filtered to the cycle's precision,
    // oldest-first, masks consumed in place as lanes are assigned.
    let precision = match super::oldest_window_precision(rs, prf) {
        Some(p) => p,
        None => return,
    };
    sx.cand.clear();
    for &(pos, m) in &sx.masks {
        if let RsEntry::Fma(f) = rs.at(pos) {
            if f.precision == precision {
                sx.cand.push((pos, m));
            }
        }
    }
    if sx.cand.is_empty() {
        return;
    }

    // Algorithm 1: per lane position, assign the first N candidates with an
    // unscheduled effectual lane there to the N temps.
    let nv = cfg.num_vpus;
    if sx.temps.len() < nv {
        sx.temps.resize_with(nv, Vec::new);
    }
    for t in &mut sx.temps[..nv] {
        t.clear();
    }
    for pos in 0..LANES {
        let mut v = 0;
        for ci in 0..sx.cand.len() {
            if v == nv {
                break;
            }
            let entry_pos = sx.cand[ci].0;
            let f = match rs.at(entry_pos) {
                RsEntry::Fma(f) => f,
                _ => unreachable!(),
            };
            let lane = f.logical_lane(pos);
            if sx.cand[ci].1 >> lane & 1 == 0 {
                continue;
            }
            sx.cand[ci].1 &= !(1 << lane);
            sx.temps[v].push((entry_pos, lane));
            v += 1;
        }
    }

    // Build the compacted VPU ops, computing values and consuming ELM bits.
    let latency = match precision {
        FmaPrecision::F32 => cfg.fp32_fma_cycles,
        FmaPrecision::Bf16 => cfg.mp_fma_cycles,
    };
    for v in 0..nv {
        if sx.temps[v].is_empty() {
            continue;
        }
        let mut results = sx.lease();
        for pi in 0..sx.temps[v].len() {
            let (entry_pos, lane) = sx.temps[v][pi];
            let f = match rs.at_mut(entry_pos) {
                RsEntry::Fma(f) => f,
                _ => unreachable!(),
            };
            let value = match precision {
                FmaPrecision::F32 => {
                    if elide {
                        0.0
                    } else {
                        super::lane_value_f32(f, prf, lane)
                    }
                }
                FmaPrecision::Bf16 => {
                    let bits = f.ml_bits_at(lane);
                    let val = if elide {
                        0.0
                    } else {
                        let base = prf.value(f.acc_src).lane(lane);
                        super::al_value_mp(f, prf, lane, bits, base)
                    };
                    f.ml &= !(0b11 << (2 * lane));
                    stats.mp_mls_issued += bits.count_ones() as u64;
                    val
                }
            };
            f.elm &= !(1 << lane);
            results.push(LaneResult { rob: f.rob, dst: f.acc_dst, lane, value });
        }
        stats.vpu_ops += 1;
        stats.lanes_issued += results.len() as u64;
        out.push(VpuOp { complete_at: cycle + latency, results });
    }
}
