//! Horizontal compression — the paper's rejected alternative (Fig 5b),
//! implemented as a comparison point for Fig 18.
//!
//! Effectual lanes are bubble-collapsed and concatenated into the temp in
//! program order, so lane conflicts never occur; the price is the
//! bubble-collapse/expand crossbars, modelled as
//! [`crate::CoreConfig::hc_penalty_cycles`] of extra VFMA latency (the
//! 3-cycle AVX-512 permutation cost in each direction, §VII-D).

use crate::config::CoreConfig;
use crate::rename::PhysRegFile;
use crate::rs::{Rs, RsEntry};
use crate::sched::SelectScratch;
use crate::stats::CoreStats;
use crate::uop::FmaPrecision;
use crate::vpu::{LaneResult, VpuOp};
use save_isa::LANES;

/// Runs one cycle of horizontal compression. `elide` (trace replay)
/// collapses lane values to `+0.0` — bit-identical under the replay
/// invariant — while packing, mask consumption and statistics run unchanged.
#[allow(clippy::too_many_arguments)]
pub fn select(
    rs: &mut Rs,
    prf: &PhysRegFile,
    cfg: &CoreConfig,
    cycle: u64,
    stats: &mut CoreStats,
    sx: &mut SelectScratch,
    out: &mut Vec<VpuOp>,
    elide: bool,
) {
    let precision = match super::oldest_window_precision(rs, prf) {
        Some(p) => p,
        None => return,
    };
    let latency = match precision {
        FmaPrecision::F32 => cfg.fp32_fma_cycles,
        FmaPrecision::Bf16 => cfg.mp_fma_cycles,
    } + cfg.hc_penalty_cycles;

    // Walk the window scoreboard oldest-first; each entry's schedulable
    // mask was computed this cycle by `window_masks` and is unaffected by
    // the lane consumption of older entries.
    let mut current: Vec<LaneResult> = sx.lease();
    let mut slots_in_current = 0usize;
    for mi in 0..sx.masks.len() {
        if out.len() == cfg.num_vpus {
            break;
        }
        let (pos, mut mask) = sx.masks[mi];
        let f = match rs.at_mut(pos) {
            RsEntry::Fma(f) => f,
            _ => unreachable!(),
        };
        if f.precision != precision {
            continue;
        }
        while mask != 0 {
            if out.len() == cfg.num_vpus {
                break;
            }
            let lane = mask.trailing_zeros() as usize;
            mask &= !(1 << lane);
            let value = match precision {
                FmaPrecision::F32 => {
                    if elide {
                        0.0
                    } else {
                        super::lane_value_f32(f, prf, lane)
                    }
                }
                FmaPrecision::Bf16 => {
                    let bits = f.ml_bits_at(lane);
                    let v = if elide {
                        0.0
                    } else {
                        let base = prf.value(f.acc_src).lane(lane);
                        super::al_value_mp(f, prf, lane, bits, base)
                    };
                    f.ml &= !(0b11 << (2 * lane));
                    stats.mp_mls_issued += bits.count_ones() as u64;
                    v
                }
            };
            f.elm &= !(1 << lane);
            current.push(LaneResult { rob: f.rob, dst: f.acc_dst, lane, value });
            slots_in_current += 1;
            if slots_in_current == LANES {
                stats.vpu_ops += 1;
                stats.lanes_issued += LANES as u64;
                let full = std::mem::replace(&mut current, sx.lease());
                out.push(VpuOp { complete_at: cycle + latency, results: full });
                slots_in_current = 0;
            }
        }
    }
    if !current.is_empty() && out.len() < cfg.num_vpus {
        stats.vpu_ops += 1;
        stats.lanes_issued += current.len() as u64;
        out.push(VpuOp { complete_at: cycle + latency, results: current });
    } else {
        sx.recycle(current);
    }
}
