//! Conventional select: oldest-first, whole-vector issue, no sparsity
//! awareness. This is the paper's baseline machine (2 VPUs at 1.7 GHz).

use crate::config::CoreConfig;
use crate::mgu;
use crate::rename::PhysRegFile;
use crate::replay::Recorder;
use crate::rs::{Rs, RsEntry};
use crate::sched::SelectScratch;
use crate::stats::CoreStats;
use crate::uop::FmaPrecision;
use crate::vpu::{LaneResult, VpuOp};
use save_isa::LANES;

/// Issues up to one full VFMA per VPU per cycle.
///
/// The baseline never runs the MGUs, so under trace recording (`rec`) it
/// computes each VFMA's would-be ELM here, at issue time — operands are
/// proven ready, and functional values are program-order-deterministic, so
/// the mask equals what a SAVE configuration's MGU would generate for the
/// same allocation sequence. The computation feeds only the recorder; the
/// run itself is untouched.
#[allow(clippy::too_many_arguments)]
pub fn select(
    rs: &mut Rs,
    prf: &PhysRegFile,
    cfg: &CoreConfig,
    cycle: u64,
    stats: &mut CoreStats,
    sx: &mut SelectScratch,
    out: &mut Vec<VpuOp>,
    mut rec: Option<&mut Recorder>,
    elide: bool,
) {
    sx.issued.clear();
    for e in rs.iter() {
        if out.len() == cfg.num_vpus {
            break;
        }
        let f = match e {
            RsEntry::Fma(f) => f,
            _ => continue,
        };
        if !(prf.fully_ready(f.a) && prf.fully_ready(f.b) && prf.fully_ready(f.acc_src)) {
            continue;
        }
        if let Some(r) = rec.as_deref_mut() {
            match f.precision {
                FmaPrecision::F32 => {
                    let elm = mgu::elm_f32(prf.value(f.a), prf.value(f.b), f.wm);
                    r.record_fma(f.seq, elm, 0);
                }
                FmaPrecision::Bf16 => {
                    let (ml, al) = mgu::elm_mp(prf.value(f.a), prf.value(f.b));
                    r.record_fma(f.seq, al, ml);
                }
            }
        }
        let mut results = sx.lease();
        let latency = match f.precision {
            FmaPrecision::F32 => {
                for lane in 0..LANES {
                    let value = if elide {
                        0.0
                    } else if f.wm >> lane & 1 == 1 {
                        super::lane_value_f32(f, prf, lane)
                    } else {
                        prf.value(f.acc_src).lane(lane)
                    };
                    results.push(LaneResult { rob: f.rob, dst: f.acc_dst, lane, value });
                }
                cfg.fp32_fma_cycles
            }
            FmaPrecision::Bf16 => {
                for al in 0..LANES {
                    let value = if elide {
                        0.0
                    } else {
                        let base = prf.value(f.acc_src).lane(al);
                        super::al_value_mp(f, prf, al, 0b11, base)
                    };
                    results.push(LaneResult { rob: f.rob, dst: f.acc_dst, lane: al, value });
                }
                cfg.mp_fma_cycles
            }
        };
        stats.vpu_ops += 1;
        stats.lanes_issued += LANES as u64;
        out.push(VpuOp { complete_at: cycle + latency, results });
        sx.issued.push(f.rob);
    }
    if !sx.issued.is_empty() {
        let issued = &sx.issued;
        rs.retain(|e| match e {
            RsEntry::Fma(f) => !issued.contains(&f.rob),
            _ => true,
        });
    }
}
