//! Conventional select: oldest-first, whole-vector issue, no sparsity
//! awareness. This is the paper's baseline machine (2 VPUs at 1.7 GHz).

use crate::config::CoreConfig;
use crate::rename::PhysRegFile;
use crate::rs::{Rs, RsEntry};
use crate::sched::SelectScratch;
use crate::stats::CoreStats;
use crate::uop::FmaPrecision;
use crate::vpu::{LaneResult, VpuOp};
use save_isa::LANES;

/// Issues up to one full VFMA per VPU per cycle.
#[allow(clippy::too_many_arguments)]
pub fn select(
    rs: &mut Rs,
    prf: &PhysRegFile,
    cfg: &CoreConfig,
    cycle: u64,
    stats: &mut CoreStats,
    sx: &mut SelectScratch,
    out: &mut Vec<VpuOp>,
) {
    sx.issued.clear();
    for e in rs.iter() {
        if out.len() == cfg.num_vpus {
            break;
        }
        let f = match e {
            RsEntry::Fma(f) => f,
            _ => continue,
        };
        if !(prf.fully_ready(f.a) && prf.fully_ready(f.b) && prf.fully_ready(f.acc_src)) {
            continue;
        }
        let mut results = sx.lease();
        let latency = match f.precision {
            FmaPrecision::F32 => {
                for lane in 0..LANES {
                    let value = if f.wm >> lane & 1 == 1 {
                        super::lane_value_f32(f, prf, lane)
                    } else {
                        prf.value(f.acc_src).lane(lane)
                    };
                    results.push(LaneResult { rob: f.rob, dst: f.acc_dst, lane, value });
                }
                cfg.fp32_fma_cycles
            }
            FmaPrecision::Bf16 => {
                for al in 0..LANES {
                    let base = prf.value(f.acc_src).lane(al);
                    let value = super::al_value_mp(f, prf, al, 0b11, base);
                    results.push(LaneResult { rob: f.rob, dst: f.acc_dst, lane: al, value });
                }
                cfg.mp_fma_cycles
            }
        };
        stats.vpu_ops += 1;
        stats.lanes_issued += LANES as u64;
        out.push(VpuOp { complete_at: cycle + latency, results });
        sx.issued.push(f.rob);
    }
    if !sx.issued.is_empty() {
        let issued = &sx.issued;
        rs.retain(|e| match e {
            RsEntry::Fma(f) => !issued.contains(&f.rob),
            _ => true,
        });
    }
}
