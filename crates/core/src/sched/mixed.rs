//! Mixed-precision multiplicand-lane compression (§V, Figs 10-11).
//!
//! A mixed-precision VFMA maps two BF16 multiplicand lanes (MLs) onto each
//! FP32 accumulator lane (AL); an AL can only be skipped outright when both
//! MLs are ineffectual, squaring the exploitable sparsity (Fig 9). SAVE
//! instead *horizontally compresses MLs within each AL* across VFMAs that
//! accumulate into the same register:
//!
//! * each temp AL slot packs up to two effectual MLs drawn **in program
//!   order** from the accumulator chain at that AL — order preservation
//!   keeps floating-point results deterministic (§V-A, Fig 10b);
//! * a VPU op performs the two chained MACs; the first accumulation result
//!   belongs to the older instruction when its last ML completes there, and
//!   the second to the younger — both destinations are written correctly so
//!   intermediate VFMAs retain precise architectural state (§V-B, Fig 11);
//! * when an op ends mid-instruction, the *partial result* is never stored
//!   architecturally: it is forwarded to the next op in the chain, which may
//!   issue [`crate::CoreConfig::mp_forward_overlap`] cycles before the full
//!   latency elapses (§V-B).

use crate::config::CoreConfig;
use crate::rename::PhysRegFile;
use crate::rs::{FmaEntry, Rs, RsEntry, NO_FWD};
use crate::sched::SelectScratch;
use crate::stats::CoreStats;
use crate::uop::FmaPrecision;
use crate::vpu::{LaneResult, VpuOp};
use save_isa::LANES;

fn as_fma(e: &RsEntry) -> Option<&FmaEntry> {
    match e {
        RsEntry::Fma(f) => Some(f),
        _ => None,
    }
}

/// Runs one cycle of mixed-precision selection with ML compression.
/// `elide` (trace replay) collapses the chained MAC math to `+0.0` —
/// bit-identical under the replay invariant, since bases and forwarded
/// partials are all `+0.0` there — while every gating, bit-clearing and
/// forwarding decision runs unchanged.
#[allow(clippy::too_many_arguments)]
pub fn select(
    rs: &mut Rs,
    prf: &PhysRegFile,
    cfg: &CoreConfig,
    cycle: u64,
    stats: &mut CoreStats,
    sx: &mut SelectScratch,
    out: &mut Vec<VpuOp>,
    elide: bool,
) {
    let nv = cfg.num_vpus;
    let latency = cfg.mp_fma_cycles;
    let fwd_delay = latency.saturating_sub(cfg.mp_forward_overlap).max(1);

    // Index MP entries oldest-first; chain lookups (predecessor/successor by
    // ROB id) go through the RS's own sorted order index.
    sx.idxs.clear();
    for (i, e) in rs.iter().enumerate() {
        if let Some(f) = as_fma(e) {
            if f.precision == FmaPrecision::Bf16 {
                sx.idxs.push(i);
            }
        }
    }
    if sx.idxs.is_empty() {
        return;
    }

    // Per-VPU result accumulators, recycled across cycles.
    for slot in sx.per_vpu.iter_mut() {
        slot.clear();
    }
    while sx.per_vpu.len() < nv {
        let v = sx.lease();
        sx.per_vpu.push(v);
    }

    for pos in 0..LANES {
        let mut v = 0;
        for ii in 0..sx.idxs.len() {
            if v == nv {
                break;
            }
            let idx = sx.idxs[ii];
            // Immutable phase: decide whether this entry can lead a slot.
            // At most two MLs fit a temp AL slot, so a pick list is a
            // fixed pair: the leader and optionally its chain successor.
            let (l, picks, npicks, base) = {
                let Some(f) = as_fma(rs.at(idx)) else { continue };
                if !f.in_window(prf) {
                    continue;
                }
                let l = f.logical_lane(pos);
                let bits = f.ml_bits_at(l);
                if bits == 0 {
                    continue;
                }
                // Chain order: the predecessor must have drained this AL.
                if let Some(p) = f.chain_pred {
                    if let Some(pidx) = rs.pos_of(p) {
                        if let Some(pf) = as_fma(rs.at(pidx)) {
                            if pf.ml_bits_at(l) != 0 {
                                continue;
                            }
                        }
                    }
                }
                // Accumulation base: a forwarded partial, or the source
                // register lane under the configured dependence scheme.
                let base = if f.fwd_ready[l] != NO_FWD {
                    if f.fwd_ready[l] > cycle {
                        continue;
                    }
                    f.fwd_base[l]
                } else {
                    let ok = if cfg.lane_wise {
                        prf.lane_ready(f.acc_src, l)
                    } else {
                        prf.fully_ready(f.acc_src)
                    };
                    if !ok {
                        continue;
                    }
                    prf.value(f.acc_src).lane(l)
                };
                // Consume this entry's MLs (1 or 2); if only one, try to
                // extend with the chain successor's first ML.
                let mut picks = [(idx, bits), (0, 0)];
                let mut npicks = 1;
                if bits.count_ones() == 1 {
                    if let Some(sidx) = f.chain_succ.and_then(|s| rs.pos_of(s)) {
                        if let Some(sf) = as_fma(rs.at(sidx)) {
                            if sf.in_window(prf) {
                                let sbits = sf.ml_bits_at(l);
                                if sbits != 0 {
                                    let first = sbits & sbits.wrapping_neg();
                                    picks[1] = (sidx, first);
                                    npicks = 2;
                                }
                            }
                        }
                    }
                }
                (l, picks, npicks, base)
            };

            // Mutable phase: compute values, clear bits, record results.
            let mut cum = base;
            for &(eidx, take) in &picks[..npicks] {
                let f = match rs.at_mut(eidx) {
                    RsEntry::Fma(f) => f,
                    _ => unreachable!(),
                };
                cum = if elide { 0.0 } else { super::al_value_mp(f, prf, l, take, cum) };
                f.ml &= !(take << (2 * l));
                stats.mp_mls_issued += take.count_ones() as u64;
                if f.ml_bits_at(l) == 0 {
                    // This op finalizes the instruction at this AL.
                    f.elm &= !(1 << l);
                    f.fwd_ready[l] = NO_FWD;
                    sx.per_vpu[v].push(LaneResult { rob: f.rob, dst: f.acc_dst, lane: l, value: cum });
                } else {
                    // Partial: forward the running value to the chain's next
                    // op instead of storing it architecturally (§V-B).
                    f.fwd_base[l] = cum;
                    f.fwd_ready[l] = cycle + fwd_delay;
                }
            }
            v += 1;
        }
    }

    for v in 0..nv {
        if sx.per_vpu[v].is_empty() {
            continue;
        }
        let fresh = sx.lease();
        let results = std::mem::replace(&mut sx.per_vpu[v], fresh);
        stats.vpu_ops += 1;
        stats.lanes_issued += results.len() as u64;
        out.push(VpuOp { complete_at: cycle + latency, results });
    }
}
