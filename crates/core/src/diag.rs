//! Structured stall diagnostics.
//!
//! When a run trips the retire-progress watchdog or the cycle budget, the
//! core captures a [`StallDiag`] snapshot instead of spinning silently.
//! The snapshot names the resource the pipeline is waiting on, so a sweep
//! driver can report *where* a kernel livelocked rather than just that it
//! never finished.

use crate::config::SchedulerKind;
use crate::stats::CoreStats;
use serde::{Deserialize, Serialize};

/// Why the core stopped making progress.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum StallCause {
    /// No µop committed for [`crate::CoreConfig::watchdog_cycles`] cycles.
    NoCommitProgress,
    /// The run hit [`crate::CoreConfig::max_cycles`].
    CycleBudget,
}

/// Snapshot of the pipeline at the moment a stall was declared.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StallDiag {
    /// What tripped: watchdog or budget.
    pub cause: StallCause,
    /// Cycle at which the stall was declared.
    pub cycle: u64,
    /// Last cycle on which any µop committed.
    pub last_commit_cycle: u64,
    /// Occupied ROB entries at capture time.
    pub rob_occupancy: usize,
    /// ROB capacity.
    pub rob_capacity: usize,
    /// Occupied reservation-station entries.
    pub rs_occupancy: usize,
    /// Reservation-station capacity.
    pub rs_capacity: usize,
    /// Loads in flight in the LSU.
    pub loads_in_flight: usize,
    /// Free physical registers remaining.
    pub phys_free: usize,
    /// Human-readable description of the oldest unretired µop (the ROB
    /// head), if any — the µop the whole machine is waiting on.
    pub oldest_unretired: Option<String>,
    /// Scheduler variant the core was running.
    pub scheduler: SchedulerKind,
    /// Counter snapshot at capture time (stall counters included).
    pub stats: CoreStats,
}

impl StallDiag {
    /// The single resource this snapshot most implicates, as a short
    /// keyword: `"memory"`, `"rob"`, `"rs"`, `"phys-regs"`, `"vpu"`,
    /// `"front-end"` or `"drained"`.
    pub fn stalled_resource(&self) -> &'static str {
        if self.rob_occupancy == 0 {
            return "drained";
        }
        if self.loads_in_flight > 0 {
            return "memory";
        }
        if self.phys_free == 0 {
            return "phys-regs";
        }
        if self.rs_occupancy >= self.rs_capacity {
            return "rs";
        }
        if self.rob_occupancy >= self.rob_capacity {
            return "rob";
        }
        if self.rs_occupancy > 0 {
            return "vpu";
        }
        "front-end"
    }
}

impl std::fmt::Display for StallDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} at cycle {} (last commit {}): suspect {}, ROB {}/{}, RS {}/{}, \
             {} loads in flight, {} free phys regs, scheduler {:?}",
            self.cause,
            self.cycle,
            self.last_commit_cycle,
            self.stalled_resource(),
            self.rob_occupancy,
            self.rob_capacity,
            self.rs_occupancy,
            self.rs_capacity,
            self.loads_in_flight,
            self.phys_free,
            self.scheduler,
        )?;
        if let Some(o) = &self.oldest_unretired {
            write!(f, ", oldest unretired: {o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> StallDiag {
        StallDiag {
            cause: StallCause::NoCommitProgress,
            cycle: 100,
            last_commit_cycle: 40,
            rob_occupancy: 5,
            rob_capacity: 224,
            rs_occupancy: 2,
            rs_capacity: 97,
            loads_in_flight: 1,
            phys_free: 100,
            oldest_unretired: Some("load -> p7".into()),
            scheduler: SchedulerKind::Vertical,
            stats: CoreStats::default(),
        }
    }

    #[test]
    fn implicates_memory_when_loads_outstanding() {
        assert_eq!(diag().stalled_resource(), "memory");
    }

    #[test]
    fn implicates_phys_regs_when_pool_empty() {
        let d = StallDiag { loads_in_flight: 0, phys_free: 0, ..diag() };
        assert_eq!(d.stalled_resource(), "phys-regs");
    }

    #[test]
    fn implicates_rs_when_stations_full() {
        let d = StallDiag { loads_in_flight: 0, rs_occupancy: 97, ..diag() };
        assert_eq!(d.stalled_resource(), "rs");
    }

    #[test]
    fn implicates_rob_when_reorder_buffer_full() {
        let d = StallDiag { loads_in_flight: 0, rs_occupancy: 0, rob_occupancy: 224, ..diag() };
        assert_eq!(d.stalled_resource(), "rob");
    }

    #[test]
    fn implicates_vpu_when_work_waits_with_room_everywhere() {
        let d = StallDiag { loads_in_flight: 0, ..diag() };
        assert_eq!(d.stalled_resource(), "vpu");
    }

    #[test]
    fn implicates_front_end_when_rob_holds_unfinished_work_but_rs_is_empty() {
        let d = StallDiag { loads_in_flight: 0, rs_occupancy: 0, ..diag() };
        assert_eq!(d.stalled_resource(), "front-end");
    }

    #[test]
    fn reports_drained_when_nothing_is_in_flight() {
        let d = StallDiag { rob_occupancy: 0, ..diag() };
        assert_eq!(d.stalled_resource(), "drained");
    }

    #[test]
    fn resource_priority_memory_over_capacity() {
        // A full ROB *and* outstanding loads implicates memory: capacity
        // pressure is the symptom, the un-returning load is the cause.
        let d = StallDiag { rob_occupancy: 224, rs_occupancy: 97, phys_free: 0, ..diag() };
        assert_eq!(d.stalled_resource(), "memory");
    }

    #[test]
    fn display_names_the_suspect() {
        let s = diag().to_string();
        assert!(s.contains("suspect memory"), "{s}");
        assert!(s.contains("oldest unretired"), "{s}");
    }
}
