//! # save-core — cycle-level out-of-order core with the SAVE extensions
//!
//! This crate models the execution back-end of a Skylake/Sunny-Cove-class
//! core (Table I of the paper: 5-wide allocation, 224-entry ROB, 97-entry
//! unified reservation station, 2 load ports, 1 or 2 512-bit VPUs) together
//! with every mechanism the SAVE paper adds to it:
//!
//! * Mask Generation Units producing Effectual Lane Masks ([`mgu`], §III);
//! * vertical coalescing of effectual lanes across ready VFMAs
//!   ([`sched`], Algorithm 1);
//! * broadcasted-sparsity skipping (whole-VFMA removal, §III);
//! * rotate-vertical coalescing with 3 rotational states (§IV-B);
//! * lane-wise dependence tracking (§IV-C);
//! * horizontal compression as the paper's rejected comparison point
//!   (Fig 5b, evaluated in Fig 18);
//! * the mixed-precision multiplicand-lane compression with order-preserving
//!   accumulation and partial-result forwarding (§V, Figs 9-11);
//! * VPU-count / frequency scaling (§IV-D) via [`CoreConfig`].
//!
//! The model is **execute-driven**: physical registers hold real values, so
//! a kernel's numerical output can be compared against a reference — the
//! integration tests verify that every scheduler configuration computes
//! bit-identical FP32 GEMM results (vertical coalescing preserves per-lane
//! accumulation order) and that the mixed-precision technique preserves the
//! sequential accumulation order (§V-A).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod diag;
pub mod fault;
pub mod lsu;
pub mod mgu;
pub mod rename;
pub mod replay;
pub mod rob;
pub mod rs;
pub mod sanitizer;
pub mod sched;
pub mod stats;
pub mod trace;
pub mod uop;
pub mod vpu;

pub use crate::core::{Core, RunOutcome, CANCEL_QUANTUM};
pub use config::{CoreConfig, SanitizeLevel, SchedulerKind};
pub use diag::{StallCause, StallDiag};
pub use fault::{FaultKind, FaultPlan};
pub use replay::{FmaRec, FuncTrace, LoadRec, Recorder};
pub use sanitizer::{Sanitizer, SanitizerReport};
pub use stats::CoreStats;
pub use trace::{CountingTracer, TextTracer, TraceEvent, Tracer};
