//! Load/store unit.
//!
//! Enforces the per-cycle port limits (Table I era Skylake: 2 L1-D read
//! ports, 1 store port; the B$ adds 4 broadcast read ports, §IV-A), reads
//! functional values at issue and delays register write-back by the
//! memory-hierarchy latency.
//!
//! Loads must not bypass older pending stores to the same line (kernels do
//! not overlap within a run, but the guard keeps the model honest).

use crate::rename::PhysRegFile;
use crate::replay::{FuncTrace, Recorder};
use crate::rs::{Rs, RsEntry};
use crate::stats::CoreStats;
use crate::uop::{LoadKind, PhysId, RobId};
use save_isa::{Memory, VecF32, F32_PER_LINE};
use save_mem::{BcastAccess, CoreMemory, LoadClass, UncoreAccess};

/// Zero mask of the 16 f32 elements of the cache line starting at
/// `line_base`, read from functional memory. Elements beyond the allocated
/// arena are treated as non-zero (mask bit clear) instead of faulting — the
/// B$ fill and the sanitizer's freshness audit must agree on this
/// convention for lines that straddle the arena end.
pub(crate) fn line_zero_mask(mem: &Memory, line_base: u64) -> u16 {
    let mut mask = 0u16;
    for i in 0..F32_PER_LINE {
        let addr = line_base + 4 * i as u64;
        if addr + 4 <= mem.size() as u64 && mem.read_f32(addr) == 0.0 {
            mask |= 1 << i;
        }
    }
    mask
}

/// A load whose value is on its way to the register file.
#[derive(Clone, Copy, Debug)]
pub struct LoadEvent {
    /// Completion cycle.
    pub complete_at: u64,
    /// ROB id of the load.
    pub rob: RobId,
    /// Destination physical register.
    pub dst: PhysId,
    /// The loaded (or broadcast) value.
    pub value: VecF32,
}

/// One issue decision collected during the immutable RS scan of
/// [`Lsu::issue_cycle_bounded`], applied after the scan.
#[derive(Clone, Copy, Debug)]
enum Action {
    Load { rob: RobId, dst: PhysId, addr: u64, value_addr: u64, kind: LoadKind, seq: u64 },
    Store { rob: RobId, src: PhysId, addr: u64 },
}

/// The load/store unit state.
#[derive(Clone, Debug, Default)]
pub struct Lsu {
    events: Vec<LoadEvent>,
    /// (rob, line) of allocated-but-unissued stores, for load ordering.
    pending_stores: Vec<(RobId, u64)>,
    /// Per-cycle scratch: issue decisions (reused across cycles).
    actions: Vec<Action>,
    /// Per-cycle scratch: ROB ids removed from the RS this cycle.
    issued: Vec<RobId>,
}

impl Lsu {
    /// Creates an idle LSU.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a store at allocation so younger loads can order against it.
    pub fn note_store_alloc(&mut self, rob: RobId, addr: u64) {
        self.pending_stores.push((rob, save_mem::line_of(addr)));
    }

    /// `true` when a store older than `rob` to `line` is still pending.
    fn blocked_by_store(&self, rob: RobId, line: u64) -> bool {
        self.pending_stores.iter().any(|&(r, l)| r < rob && l == line)
    }

    /// Drains completed load events at `cycle`, returning them for register
    /// write-back.
    pub fn drain_completed(&mut self, cycle: u64) -> Vec<LoadEvent> {
        let mut done = Vec::new();
        self.drain_completed_into(cycle, &mut done);
        done
    }

    /// Drains completed load events at `cycle` into `out` (allocation-free
    /// variant used by the core's cycle loop).
    pub fn drain_completed_into(&mut self, cycle: u64, out: &mut Vec<LoadEvent>) {
        let mut i = 0;
        while i < self.events.len() {
            if self.events[i].complete_at <= cycle {
                out.push(self.events.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }

    /// Loads still in flight.
    pub fn in_flight(&self) -> usize {
        self.events.len()
    }

    /// Earliest completion cycle among in-flight loads, if any — a wake-up
    /// event for the core's fast-forward next-event derivation.
    pub fn next_completion(&self) -> Option<u64> {
        self.events.iter().map(|ev| ev.complete_at).min()
    }

    /// Issues ready loads and stores for this cycle under the port limits
    /// with an unbounded load buffer (test convenience).
    #[allow(clippy::too_many_arguments)]
    pub fn issue_cycle(
        &mut self,
        rs: &mut Rs,
        prf: &PhysRegFile,
        mem: &mut Memory,
        cmem: &mut CoreMemory,
        uncore: &mut dyn UncoreAccess,
        load_ports: usize,
        store_ports: usize,
        freq_ghz: f64,
        cycle: u64,
        stats: &mut CoreStats,
    ) -> Vec<RobId> {
        let mut stores_done = Vec::new();
        self.issue_cycle_bounded(
            rs,
            prf,
            mem,
            cmem,
            uncore,
            load_ports,
            usize::MAX,
            store_ports,
            freq_ghz,
            cycle,
            stats,
            &mut stores_done,
            None,
            None,
        );
        stores_done
    }

    /// Issues ready loads and stores for this cycle under the port and
    /// load-buffer limits. ROB ids of stores that completed (issued) this
    /// cycle are appended to `stores_done` (cleared first); decision and
    /// removal scratch lives in the LSU, so a steady-state cycle allocates
    /// nothing.
    ///
    /// `rec` arms functional-trace recording: load classifications are
    /// copied out without perturbing the run. `rep` replays a trace: loads
    /// deliver [`VecF32::ZERO`] with their recorded class and functional
    /// memory is never touched (replay runs against an empty arena); all
    /// port, buffer and timing decisions are unchanged.
    #[allow(clippy::too_many_arguments)]
    pub fn issue_cycle_bounded(
        &mut self,
        rs: &mut Rs,
        prf: &PhysRegFile,
        mem: &mut Memory,
        cmem: &mut CoreMemory,
        uncore: &mut dyn UncoreAccess,
        load_ports: usize,
        load_buffer: usize,
        store_ports: usize,
        freq_ghz: f64,
        cycle: u64,
        stats: &mut CoreStats,
        stores_done: &mut Vec<RobId>,
        mut rec: Option<&mut Recorder>,
        rep: Option<&FuncTrace>,
    ) {
        stores_done.clear();
        // Fast path: nothing for the LSU. Common in compute-bound stretches
        // where the station is saturated with VFMAs — the scan below walks
        // only the mem-op index, and an empty index costs one branch.
        if rs.mem_len() == 0 {
            return;
        }
        let now_ns = cycle as f64 / freq_ghz;
        let buffer_left = load_buffer.saturating_sub(self.events.len());
        let mut l1_left = load_ports.min(buffer_left);
        let mut b_left = cmem.bcast_read_ports();
        let mut stores_left = store_ports;

        // Collect issue decisions first (immutable scan), then apply. The
        // scan walks the loads/stores index in program order; after a
        // reorder fault has permuted the station it falls back to the full
        // (possibly permuted) program-order walk the fault targets.
        let mut actions = std::mem::take(&mut self.actions);
        let mut issued = std::mem::take(&mut self.issued);
        actions.clear();
        issued.clear();
        let intact = rs.order_intact();
        let scan_len = if intact { rs.mem_len() } else { rs.len() };
        for pos in 0..scan_len {
            if l1_left == 0 && stores_left == 0 {
                break;
            }
            let e = if intact { rs.mem_at(pos) } else { rs.at(pos) };
            match e {
                RsEntry::Load(l) => {
                    if self.blocked_by_store(l.rob, save_mem::line_of(l.addr)) {
                        continue;
                    }
                    // Port reservation: broadcasts probe the B$ first.
                    let needs_l1 = !matches!(
                        (l.kind, cmem.peek_bcast(l.addr)),
                        (LoadKind::Broadcast, Some(BcastAccess::HitNoL1))
                    );
                    let needs_b = l.kind == LoadKind::Broadcast && cmem.peek_bcast(l.addr).is_some();
                    if needs_l1 && l1_left == 0 {
                        continue;
                    }
                    if needs_b && b_left == 0 {
                        continue;
                    }
                    if needs_l1 {
                        l1_left -= 1;
                    }
                    if needs_b {
                        b_left -= 1;
                    }
                    actions.push(Action::Load {
                        rob: l.rob,
                        dst: l.dst,
                        addr: l.addr,
                        value_addr: l.value_addr,
                        kind: l.kind,
                        seq: l.seq,
                    });
                }
                RsEntry::Store(s) => {
                    if stores_left == 0 || !prf.fully_ready(s.src) {
                        continue;
                    }
                    stores_left -= 1;
                    actions.push(Action::Store { rob: s.rob, src: s.src, addr: s.addr });
                }
                RsEntry::Fma(_) => {}
            }
        }

        for act in actions.drain(..) {
            match act {
                Action::Load { rob, dst, addr, value_addr, kind, seq } => {
                    let (value, class) = if let Some(t) = rep {
                        // Replay: the functional value is always zero (the
                        // replay invariant) and the timing-relevant class
                        // comes from the trace by allocation sequence.
                        let class = match kind {
                            LoadKind::Vector => LoadClass::Vector,
                            LoadKind::Broadcast => {
                                stats.bcast_loads += 1;
                                let (elem_zero, mask) = t
                                    .load
                                    .get(seq as usize)
                                    .and_then(|l| l.bcast)
                                    .unwrap_or((false, 0));
                                LoadClass::Broadcast { elem_zero, line_zero_mask: mask }
                            }
                        };
                        (VecF32::ZERO, class)
                    } else {
                        match kind {
                            LoadKind::Vector => {
                                if let Some(r) = rec.as_deref_mut() {
                                    r.record_load(seq, None);
                                }
                                (mem.read_vec_f32(value_addr), LoadClass::Vector)
                            }
                            LoadKind::Broadcast => {
                                let value = mem.read_bcast_f32(value_addr);
                                let line_base = value_addr & !(save_mem::LINE_BYTES - 1);
                                let mask = line_zero_mask(mem, line_base);
                                stats.bcast_loads += 1;
                                let elem_zero = value.lane(0) == 0.0;
                                if let Some(r) = rec.as_deref_mut() {
                                    r.record_load(seq, Some((elem_zero, mask)));
                                    r.record_bcast_line(save_mem::line_of(value_addr), mask);
                                }
                                (value, LoadClass::Broadcast { elem_zero, line_zero_mask: mask })
                            }
                        }
                    };
                    let r = cmem.load(uncore, addr, now_ns, class);
                    if r.bcast_hit {
                        stats.bcast_hits += 1;
                    }
                    let lat_cycles = (r.latency_ns * freq_ghz).ceil().max(1.0) as u64;
                    self.events.push(LoadEvent { complete_at: cycle + lat_cycles, rob, dst, value });
                    stats.loads_issued += 1;
                    issued.push(rob);
                }
                Action::Store { rob, src, addr } => {
                    if rep.is_none() {
                        mem.write_vec_f32(addr, *prf.value(src));
                        if let Some(r) = rec.as_deref_mut() {
                            r.note_store(addr);
                        }
                    }
                    cmem.store(uncore, addr, now_ns);
                    self.pending_stores.retain(|&(r, _)| r != rob);
                    stats.stores_issued += 1;
                    issued.push(rob);
                    stores_done.push(rob);
                }
            }
        }

        if !issued.is_empty() {
            rs.retain(|e| match e {
                RsEntry::Load(l) => !issued.contains(&l.rob),
                RsEntry::Store(s) => !issued.contains(&s.rob),
                RsEntry::Fma(_) => true,
            });
        }
        self.actions = actions;
        self.issued = issued;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rob::{Rob, RobKind};
    use crate::rs::LoadEntry;
    use save_mem::{MemConfig, Uncore};

    fn setup() -> (Rs, PhysRegFile, Memory, CoreMemory, Uncore, CoreStats, Rob) {
        let cfg = MemConfig { bcast: None, prefetch_degree: 0, ..MemConfig::default() };
        (
            Rs::new(97),
            PhysRegFile::new(64),
            Memory::new(8192),
            CoreMemory::new(0, cfg, 1.7),
            Uncore::new(&cfg, 1),
            CoreStats::default(),
            Rob::new(224),
        )
    }

    #[test]
    fn load_ports_limit_issues_per_cycle() {
        let (mut rs, prf, mut mem, mut cmem, mut unc, mut stats, mut rob) = setup();
        let mut lsu = Lsu::new();
        for i in 0..4 {
            let r = rob.push(RobKind::Flagged, [None, None]);
            rs.push(RsEntry::Load(LoadEntry {
                rob: r,
                dst: i,
                addr: i as u64 * 64,
                value_addr: i as u64 * 64,
                kind: LoadKind::Vector,
                seq: i as u64,
            }));
        }
        lsu.issue_cycle(&mut rs, &prf, &mut mem, &mut cmem, &mut unc, 2, 1, 1.7, 0, &mut stats);
        assert_eq!(stats.loads_issued, 2);
        assert_eq!(rs.len(), 2);
        lsu.issue_cycle(&mut rs, &prf, &mut mem, &mut cmem, &mut unc, 2, 1, 1.7, 1, &mut stats);
        assert_eq!(stats.loads_issued, 4);
    }

    #[test]
    fn load_waits_for_older_store_to_same_line() {
        let (mut rs, mut prf, mut mem, mut cmem, mut unc, mut stats, mut rob) = setup();
        let mut lsu = Lsu::new();
        let src = prf.alloc().unwrap(); // not ready yet
        let st = rob.push(RobKind::Flagged, [None, None]);
        rs.push(RsEntry::Store(crate::rs::StoreEntry { rob: st, src, addr: 0 }));
        lsu.note_store_alloc(st, 0);
        let dst = prf.alloc().unwrap();
        let ld = rob.push(RobKind::Flagged, [None, None]);
        rs.push(RsEntry::Load(LoadEntry {
            rob: ld,
            dst,
            addr: 16,
            value_addr: 16,
            kind: LoadKind::Vector,
            seq: 0,
        }));
        lsu.issue_cycle(&mut rs, &prf, &mut mem, &mut cmem, &mut unc, 2, 1, 1.7, 0, &mut stats);
        assert_eq!(stats.loads_issued, 0, "load must wait behind the pending store");
        // Make the store data ready; store issues, then the load can go.
        prf.write_all(src, VecF32::splat(9.0));
        lsu.issue_cycle(&mut rs, &prf, &mut mem, &mut cmem, &mut unc, 2, 1, 1.7, 1, &mut stats);
        assert_eq!(stats.stores_issued, 1);
        lsu.issue_cycle(&mut rs, &prf, &mut mem, &mut cmem, &mut unc, 2, 1, 1.7, 2, &mut stats);
        assert_eq!(stats.loads_issued, 1);
        // The loaded value reflects the store.
        let evs = lsu.drain_completed(10_000);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].value.lane(0), 9.0);
    }

    #[test]
    fn load_buffer_bounds_inflight_loads() {
        let (mut rs, prf, mut mem, mut cmem, mut unc, mut stats, mut rob) = setup();
        let mut lsu = Lsu::new();
        for i in 0..6u32 {
            let r = rob.push(RobKind::Flagged, [None, None]);
            rs.push(RsEntry::Load(LoadEntry {
                rob: r,
                dst: i,
                addr: i as u64 * 1024, // distinct lines: long DRAM latencies
                value_addr: i as u64 * 1024,
                kind: LoadKind::Vector,
                seq: i as u64,
            }));
        }
        // Buffer of 3: only 3 loads may be in flight even over many cycles.
        let mut stores_done = Vec::new();
        for cyc in 0..3 {
            lsu.issue_cycle_bounded(
                &mut rs, &prf, &mut mem, &mut cmem, &mut unc, 2, 3, 1, 1.7, cyc, &mut stats,
                &mut stores_done, None, None,
            );
            assert!(lsu.in_flight() <= 3, "cycle {cyc}: {} in flight", lsu.in_flight());
        }
        assert_eq!(stats.loads_issued, 3);
        // Drain everything; the rest can then issue.
        lsu.drain_completed(1_000_000);
        lsu.issue_cycle_bounded(
            &mut rs, &prf, &mut mem, &mut cmem, &mut unc, 2, 3, 1, 1.7, 1_000_001, &mut stats,
            &mut stores_done, None, None,
        );
        assert_eq!(stats.loads_issued, 5);
    }

    #[test]
    fn broadcast_value_is_splat() {
        let (mut rs, prf, mut mem, mut cmem, mut unc, mut stats, mut rob) = setup();
        mem.write_f32(8, 5.0);
        let mut lsu = Lsu::new();
        let r = rob.push(RobKind::Flagged, [None, None]);
        rs.push(RsEntry::Load(LoadEntry {
            rob: r,
            dst: 0,
            addr: 8,
            value_addr: 8,
            kind: LoadKind::Broadcast,
            seq: 0,
        }));
        lsu.issue_cycle(&mut rs, &prf, &mut mem, &mut cmem, &mut unc, 2, 1, 1.7, 0, &mut stats);
        let evs = lsu.drain_completed(10_000);
        assert_eq!(evs[0].value, VecF32::splat(5.0));
    }
}
