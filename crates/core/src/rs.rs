//! The unified reservation station.
//!
//! All in-flight, un-issued µops wait here (Table I: 97 entries shared by
//! loads, stores and VFMAs). SAVE's Combination Window is exactly the set of
//! ready VFMAs present in these entries at a given cycle (§III).

use crate::rename::PhysRegFile;
use crate::uop::{FmaPrecision, LoadKind, PhysId, RobId};
use save_isa::{VReg, LANES};

/// Sentinel: no forwarded base pending.
pub const NO_FWD: u64 = u64::MAX;

/// A VFMA waiting (fully or partially) in the RS.
#[derive(Clone, Debug)]
pub struct FmaEntry {
    /// ROB id (doubles as program-order sequence).
    pub rob: RobId,
    /// Precision of the operation.
    pub precision: FmaPrecision,
    /// Logical accumulator register (rotation state derives from it, §IV-B).
    pub acc_log: VReg,
    /// Rotation amount in lanes: -1, 0 or +1 (0 when rotation is disabled).
    pub rot: i8,
    /// Accumulator source physical register.
    pub acc_src: PhysId,
    /// Accumulator destination physical register.
    pub acc_dst: PhysId,
    /// Multiplicand A physical register.
    pub a: PhysId,
    /// Multiplicand B physical register.
    pub b: PhysId,
    /// Write-mask value captured at rename (all-ones when unmasked).
    pub wm: u16,
    /// Whether the Effectual Lane Mask has been generated yet.
    pub elm_ready: bool,
    /// Remaining unscheduled effectual lanes (accumulator lanes for MP).
    pub elm: u16,
    /// The ELM as generated (before any lanes were scheduled).
    pub orig_elm: u16,
    /// Remaining unscheduled effectual multiplicand lanes (MP only).
    pub ml: u32,
    /// The multiplicand-lane mask as generated.
    pub orig_ml: u32,
    /// ROB id of the previous in-flight FMA producing this accumulator
    /// (the chain predecessor), if still in flight at rename.
    pub chain_pred: Option<RobId>,
    /// ROB id of the next FMA in the chain, filled in when it renames.
    pub chain_succ: Option<RobId>,
    /// Forwarded partial accumulator per AL (MP compression, §V-B).
    pub fwd_base: [f32; LANES],
    /// Cycle from which the forwarded partial is usable; [`NO_FWD`] if none.
    pub fwd_ready: [u64; LANES],
}

impl FmaEntry {
    /// `true` once multiplicand/mask operands are available and the ELM has
    /// been generated — the entry is then in the Combination Window (its
    /// accumulator dependence is checked separately per dependence scheme).
    pub fn in_window(&self, prf: &PhysRegFile) -> bool {
        self.elm_ready && prf.fully_ready(self.a) && prf.fully_ready(self.b)
    }

    /// Logical lane that sits at rotated position `pos` (§IV-B: operands of
    /// an entry with rotation `r` are shifted right by `r` lanes, so
    /// position `pos` holds logical lane `pos - r`).
    pub fn logical_lane(&self, pos: usize) -> usize {
        (pos as i32 - self.rot as i32).rem_euclid(LANES as i32) as usize
    }

    /// Multiplicand-lane bits of accumulator lane `al` still unscheduled.
    pub fn ml_bits_at(&self, al: usize) -> u32 {
        self.ml >> (2 * al) & 0b11
    }
}

/// A load waiting in the RS (address-ready at allocation; waits for a port).
#[derive(Clone, Copy, Debug)]
pub struct LoadEntry {
    /// ROB id.
    pub rob: RobId,
    /// Destination physical register.
    pub dst: PhysId,
    /// Byte address (timing: what the caches and DRAM see).
    pub addr: u64,
    /// Byte address the functional value is read from.
    pub value_addr: u64,
    /// Vector or broadcast.
    pub kind: LoadKind,
}

/// A store waiting in the RS (waits for its data register).
#[derive(Clone, Copy, Debug)]
pub struct StoreEntry {
    /// ROB id.
    pub rob: RobId,
    /// Source physical register.
    pub src: PhysId,
    /// Byte address.
    pub addr: u64,
}

/// One RS slot.
///
/// The variant sizes intentionally differ: a hardware RS entry is sized for
/// the largest µop anyway, and the station is a small fixed-capacity array.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum RsEntry {
    /// A VFMA.
    Fma(FmaEntry),
    /// A load.
    Load(LoadEntry),
    /// A store.
    Store(StoreEntry),
}

impl RsEntry {
    /// The entry's ROB id.
    pub fn rob(&self) -> RobId {
        match self {
            RsEntry::Fma(f) => f.rob,
            RsEntry::Load(l) => l.rob,
            RsEntry::Store(s) => s.rob,
        }
    }
}

/// The reservation station: bounded, kept in program order.
#[derive(Clone, Debug, Default)]
pub struct Rs {
    entries: Vec<RsEntry>,
    capacity: usize,
}

impl Rs {
    /// Creates an empty RS of `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Rs { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the RS holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when allocation must stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Inserts an entry (program order is insertion order).
    ///
    /// # Panics
    /// Panics on overflow — callers must check [`Rs::is_full`].
    pub fn push(&mut self, e: RsEntry) {
        assert!(!self.is_full(), "RS overflow");
        self.entries.push(e);
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> std::slice::Iter<'_, RsEntry> {
        self.entries.iter()
    }

    /// Mutable iteration oldest-first.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, RsEntry> {
        self.entries.iter_mut()
    }

    /// Direct slice access for index-based scheduling.
    pub fn entries_mut(&mut self) -> &mut [RsEntry] {
        &mut self.entries
    }

    /// Shared slice access for index-based inspection.
    pub fn entries(&self) -> &[RsEntry] {
        &self.entries
    }

    /// Finds the FMA entry with ROB id `rob`.
    pub fn find_fma_mut(&mut self, rob: RobId) -> Option<&mut FmaEntry> {
        self.entries.iter_mut().find_map(|e| match e {
            RsEntry::Fma(f) if f.rob == rob => Some(f),
            _ => None,
        })
    }

    /// Removes entries matching the predicate (issued / fully scheduled).
    pub fn retain(&mut self, keep: impl FnMut(&RsEntry) -> bool) {
        self.entries.retain(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fma(rob: RobId, rot: i8) -> FmaEntry {
        FmaEntry {
            rob,
            precision: FmaPrecision::F32,
            acc_log: VReg(0),
            rot,
            acc_src: 0,
            acc_dst: 1,
            a: 2,
            b: 3,
            wm: u16::MAX,
            elm_ready: false,
            elm: 0,
            orig_elm: 0,
            ml: 0,
            orig_ml: 0,
            chain_pred: None,
            chain_succ: None,
            fwd_base: [0.0; LANES],
            fwd_ready: [NO_FWD; LANES],
        }
    }

    #[test]
    fn rotation_lane_mapping() {
        let e = fma(0, 1); // rotated right by one: logical lane 0 sits at pos 1
        assert_eq!(e.logical_lane(1), 0);
        assert_eq!(e.logical_lane(0), 15);
        let e = fma(0, -1);
        assert_eq!(e.logical_lane(15), 0);
        let e = fma(0, 0);
        assert_eq!(e.logical_lane(7), 7);
    }

    #[test]
    fn ml_bits_extraction() {
        let mut e = fma(0, 0);
        e.ml = 0b10_01; // AL0: ML0 only; AL1: ML3 only
        assert_eq!(e.ml_bits_at(0), 0b01);
        assert_eq!(e.ml_bits_at(1), 0b10);
        assert_eq!(e.ml_bits_at(2), 0);
    }

    #[test]
    fn rs_capacity_and_order() {
        let mut rs = Rs::new(2);
        rs.push(RsEntry::Fma(fma(0, 0)));
        rs.push(RsEntry::Fma(fma(1, 0)));
        assert!(rs.is_full());
        let robs: Vec<_> = rs.iter().map(|e| e.rob()).collect();
        assert_eq!(robs, vec![0, 1]);
        rs.retain(|e| e.rob() != 0);
        assert_eq!(rs.len(), 1);
        assert!(rs.find_fma_mut(1).is_some());
        assert!(rs.find_fma_mut(0).is_none());
    }
}
