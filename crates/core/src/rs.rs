//! The unified reservation station.
//!
//! All in-flight, un-issued µops wait here (Table I: 97 entries shared by
//! loads, stores and VFMAs). SAVE's Combination Window is exactly the set of
//! ready VFMAs present in these entries at a given cycle (§III).
//!
//! Storage is a slot array with a free list plus a program-order index
//! (`order`, a `(rob, slot)` list): removing an entry returns its slot to
//! the free list and drops one small index pair instead of memmoving the
//! ~¼ KB payloads, and `rob → entry` lookups binary-search the index (ROB
//! ids are allocated monotonically, so the order list is sorted by
//! construction). The sanitizer's RS-reorder fault permutes the order list,
//! after which lookups fall back to a linear scan — the fault must corrupt
//! scheduling age order, not the lookup structure.

use crate::rename::PhysRegFile;
use crate::uop::{FmaPrecision, LoadKind, PhysId, RobId};
use save_isa::{VReg, LANES};

/// Sentinel: no forwarded base pending.
pub const NO_FWD: u64 = u64::MAX;

/// A VFMA waiting (fully or partially) in the RS.
#[derive(Clone, Debug)]
pub struct FmaEntry {
    /// ROB id (doubles as program-order sequence).
    pub rob: RobId,
    /// Precision of the operation.
    pub precision: FmaPrecision,
    /// Logical accumulator register (rotation state derives from it, §IV-B).
    pub acc_log: VReg,
    /// Rotation amount in lanes: -1, 0 or +1 (0 when rotation is disabled).
    pub rot: i8,
    /// Accumulator source physical register.
    pub acc_src: PhysId,
    /// Accumulator destination physical register.
    pub acc_dst: PhysId,
    /// Multiplicand A physical register.
    pub a: PhysId,
    /// Multiplicand B physical register.
    pub b: PhysId,
    /// Write-mask value captured at rename (all-ones when unmasked).
    pub wm: u16,
    /// Whether the Effectual Lane Mask has been generated yet.
    pub elm_ready: bool,
    /// Remaining unscheduled effectual lanes (accumulator lanes for MP).
    pub elm: u16,
    /// The ELM as generated (before any lanes were scheduled).
    pub orig_elm: u16,
    /// Remaining unscheduled effectual multiplicand lanes (MP only).
    pub ml: u32,
    /// The multiplicand-lane mask as generated.
    pub orig_ml: u32,
    /// ROB id of the previous in-flight FMA producing this accumulator
    /// (the chain predecessor), if still in flight at rename.
    pub chain_pred: Option<RobId>,
    /// ROB id of the next FMA in the chain, filled in when it renames.
    pub chain_succ: Option<RobId>,
    /// Forwarded partial accumulator per AL (MP compression, §V-B).
    pub fwd_base: [f32; LANES],
    /// Cycle from which the forwarded partial is usable; [`NO_FWD`] if none.
    pub fwd_ready: [u64; LANES],
    /// FMA allocation sequence number — the functional-trace index (see
    /// [`crate::replay`]): the k-th allocated VFMA is the same static
    /// operation under every timing configuration.
    pub seq: u64,
}

impl FmaEntry {
    /// `true` once multiplicand/mask operands are available and the ELM has
    /// been generated — the entry is then in the Combination Window (its
    /// accumulator dependence is checked separately per dependence scheme).
    pub fn in_window(&self, prf: &PhysRegFile) -> bool {
        self.elm_ready && prf.fully_ready(self.a) && prf.fully_ready(self.b)
    }

    /// Logical lane that sits at rotated position `pos` (§IV-B: operands of
    /// an entry with rotation `r` are shifted right by `r` lanes, so
    /// position `pos` holds logical lane `pos - r`).
    pub fn logical_lane(&self, pos: usize) -> usize {
        (pos as i32 - self.rot as i32).rem_euclid(LANES as i32) as usize
    }

    /// Multiplicand-lane bits of accumulator lane `al` still unscheduled.
    pub fn ml_bits_at(&self, al: usize) -> u32 {
        self.ml >> (2 * al) & 0b11
    }

    /// Earliest future wake-up among this entry's forwarded partials: the
    /// smallest `fwd_ready` cycle that is `>= horizon` (pending partials
    /// already usable before `horizon` are gated by other conditions and
    /// therefore are not wake-up events). `None` when no partial is pending
    /// in that range. Used by the fast-forward next-event derivation.
    pub fn next_fwd_event(&self, horizon: u64) -> Option<u64> {
        self.fwd_ready
            .iter()
            .copied()
            .filter(|&r| r != NO_FWD && r >= horizon)
            .min()
    }
}

/// A load waiting in the RS (address-ready at allocation; waits for a port).
#[derive(Clone, Copy, Debug)]
pub struct LoadEntry {
    /// ROB id.
    pub rob: RobId,
    /// Destination physical register.
    pub dst: PhysId,
    /// Byte address (timing: what the caches and DRAM see).
    pub addr: u64,
    /// Byte address the functional value is read from.
    pub value_addr: u64,
    /// Vector or broadcast.
    pub kind: LoadKind,
    /// Load allocation sequence number — the functional-trace index.
    pub seq: u64,
}

/// A store waiting in the RS (waits for its data register).
#[derive(Clone, Copy, Debug)]
pub struct StoreEntry {
    /// ROB id.
    pub rob: RobId,
    /// Source physical register.
    pub src: PhysId,
    /// Byte address.
    pub addr: u64,
}

/// One RS slot.
///
/// The variant sizes intentionally differ: a hardware RS entry is sized for
/// the largest µop anyway, and the station is a small fixed-capacity array.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum RsEntry {
    /// A VFMA.
    Fma(FmaEntry),
    /// A load.
    Load(LoadEntry),
    /// A store.
    Store(StoreEntry),
}

impl RsEntry {
    /// The entry's ROB id.
    pub fn rob(&self) -> RobId {
        match self {
            RsEntry::Fma(f) => f.rob,
            RsEntry::Load(l) => l.rob,
            RsEntry::Store(s) => s.rob,
        }
    }
}

/// The reservation station: bounded, iterated in program order.
#[derive(Clone, Debug, Default)]
pub struct Rs {
    /// Slot storage; `None` slots are on the free list.
    slots: Vec<Option<RsEntry>>,
    /// Free slot indices.
    free: Vec<u32>,
    /// Program-order view: `(rob, slot)` pairs, oldest first. Sorted by
    /// `rob` as long as `sorted` holds (ROB ids are monotonic).
    order: Vec<(RobId, u32)>,
    /// Memory-op subset of `order` (loads and stores only, program order):
    /// the LSU's per-cycle scan walks this instead of the whole station, so
    /// a VFMA-saturated RS costs the LSU nothing. Invalidated — with a
    /// full-scan fallback — once [`Rs::swap_order`] permutes program order.
    mem_order: Vec<(RobId, u32)>,
    /// Whether `order` is still sorted by ROB id (cleared by
    /// [`Rs::swap_order`] and by out-of-order pushes in unit tests).
    sorted: bool,
    /// Whether [`Rs::swap_order`] has permuted program order — `mem_order`
    /// no longer mirrors `order`'s relative order, and position-independent
    /// fast paths must fall back to full scans.
    permuted: bool,
    capacity: usize,
}

impl Rs {
    /// Creates an empty RS of `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Rs {
            slots: (0..capacity).map(|_| None).collect(),
            // Pop from the back: slot 0 is handed out first.
            free: (0..capacity as u32).rev().collect(),
            order: Vec::with_capacity(capacity),
            mem_order: Vec::new(),
            sorted: true,
            permuted: false,
            capacity,
        }
    }

    /// `true` while program order is intact (no reorder fault applied).
    /// Fast paths that iterate derived index lists instead of `order` must
    /// check this and fall back to a full scan when it is `false`.
    pub fn order_intact(&self) -> bool {
        !self.permuted
    }

    /// Loads and stores currently waiting (length of the mem-op index).
    pub fn mem_len(&self) -> usize {
        self.mem_order.len()
    }

    /// Iterates the waiting loads and stores oldest-first without touching
    /// the VFMA entries. Only valid while [`Rs::order_intact`]; callers
    /// must use [`Rs::iter`] after a reorder fault.
    pub fn mem_iter(&self) -> impl Iterator<Item = &RsEntry> {
        debug_assert!(!self.permuted, "mem_iter after a reorder fault");
        self.mem_order.iter().map(|&(_, s)| {
            self.slots[s as usize].as_ref().expect("mem_order refers to a filled slot")
        })
    }

    /// The `pos`-th oldest waiting load/store (see [`Rs::mem_iter`]).
    ///
    /// # Panics
    /// Panics when `pos >= self.mem_len()`.
    pub fn mem_at(&self, pos: usize) -> &RsEntry {
        debug_assert!(!self.permuted, "mem_at after a reorder fault");
        let (_, s) = self.mem_order[pos];
        self.slots[s as usize].as_ref().expect("mem_order refers to a filled slot")
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the RS holds no entries.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// `true` when allocation must stall.
    pub fn is_full(&self) -> bool {
        self.order.len() >= self.capacity
    }

    /// Inserts an entry (program order is insertion order).
    ///
    /// # Panics
    /// Panics on overflow — callers must check [`Rs::is_full`].
    pub fn push(&mut self, e: RsEntry) {
        assert!(!self.is_full(), "RS overflow");
        let rob = e.rob();
        let is_mem = matches!(e, RsEntry::Load(_) | RsEntry::Store(_));
        let slot = self.free.pop().expect("free slot exists below capacity");
        self.slots[slot as usize] = Some(e);
        if let Some(&(last, _)) = self.order.last() {
            if rob < last {
                self.sorted = false;
            }
        }
        self.order.push((rob, slot));
        if is_mem {
            self.mem_order.push((rob, slot));
        }
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &RsEntry> {
        self.order.iter().map(|&(_, s)| {
            self.slots[s as usize].as_ref().expect("order refers to a filled slot")
        })
    }

    /// The entry at program-order position `pos` (0 = oldest).
    ///
    /// # Panics
    /// Panics when `pos >= self.len()`.
    pub fn at(&self, pos: usize) -> &RsEntry {
        let (_, s) = self.order[pos];
        self.slots[s as usize].as_ref().expect("order refers to a filled slot")
    }

    /// Mutable access to the entry at program-order position `pos`.
    ///
    /// Positions are stable while no entry is pushed or removed, which lets
    /// the schedulers interleave shared and mutable access by position
    /// without holding one long mutable borrow of the whole station.
    ///
    /// # Panics
    /// Panics when `pos >= self.len()`.
    pub fn at_mut(&mut self, pos: usize) -> &mut RsEntry {
        let (_, s) = self.order[pos];
        self.slots[s as usize].as_mut().expect("order refers to a filled slot")
    }

    /// Program-order position of the entry with ROB id `rob`, if present.
    /// Binary search while the order list is sorted, linear after a
    /// scheduler fault permuted it.
    pub fn pos_of(&self, rob: RobId) -> Option<usize> {
        if self.sorted {
            self.order.binary_search_by_key(&rob, |&(r, _)| r).ok()
        } else {
            self.order.iter().position(|&(r, _)| r == rob)
        }
    }

    /// Finds the FMA entry with ROB id `rob`.
    pub fn find_fma_mut(&mut self, rob: RobId) -> Option<&mut FmaEntry> {
        let pos = self.pos_of(rob)?;
        match self.at_mut(pos) {
            RsEntry::Fma(f) => Some(f),
            _ => None,
        }
    }

    /// Swaps two program-order positions — the sanitizer's RS-reorder fault
    /// hook. Marks the order list unsorted so lookups stay correct.
    ///
    /// # Panics
    /// Panics when either position is out of range.
    pub fn swap_order(&mut self, a: usize, b: usize) {
        self.order.swap(a, b);
        self.sorted = false;
        self.permuted = true;
    }

    /// Removes entries matching the predicate (issued / fully scheduled).
    /// Frees the slot and drops the index pair; entry payloads never move.
    pub fn retain(&mut self, mut keep: impl FnMut(&RsEntry) -> bool) {
        let slots = &mut self.slots;
        let free = &mut self.free;
        let mut mem_removed = false;
        self.order.retain(|&(_, s)| {
            let e = slots[s as usize].as_ref().expect("order refers to a filled slot");
            if keep(e) {
                true
            } else {
                mem_removed |= matches!(e, RsEntry::Load(_) | RsEntry::Store(_));
                slots[s as usize] = None;
                free.push(s);
                false
            }
        });
        // Freed slots are `None` until the next push, so pruning the mem-op
        // index here (before any reuse) cannot mistake a recycled slot for
        // the removed entry.
        if mem_removed {
            let slots = &self.slots;
            self.mem_order.retain(|&(_, s)| {
                matches!(slots[s as usize], Some(RsEntry::Load(_) | RsEntry::Store(_)))
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fma(rob: RobId, rot: i8) -> FmaEntry {
        FmaEntry {
            rob,
            precision: FmaPrecision::F32,
            acc_log: VReg(0),
            rot,
            acc_src: 0,
            acc_dst: 1,
            a: 2,
            b: 3,
            wm: u16::MAX,
            elm_ready: false,
            elm: 0,
            orig_elm: 0,
            ml: 0,
            orig_ml: 0,
            chain_pred: None,
            chain_succ: None,
            fwd_base: [0.0; LANES],
            fwd_ready: [NO_FWD; LANES],
            seq: rob as u64,
        }
    }

    #[test]
    fn rotation_lane_mapping() {
        let e = fma(0, 1); // rotated right by one: logical lane 0 sits at pos 1
        assert_eq!(e.logical_lane(1), 0);
        assert_eq!(e.logical_lane(0), 15);
        let e = fma(0, -1);
        assert_eq!(e.logical_lane(15), 0);
        let e = fma(0, 0);
        assert_eq!(e.logical_lane(7), 7);
    }

    #[test]
    fn ml_bits_extraction() {
        let mut e = fma(0, 0);
        e.ml = 0b10_01; // AL0: ML0 only; AL1: ML3 only
        assert_eq!(e.ml_bits_at(0), 0b01);
        assert_eq!(e.ml_bits_at(1), 0b10);
        assert_eq!(e.ml_bits_at(2), 0);
    }

    #[test]
    fn rs_capacity_and_order() {
        let mut rs = Rs::new(2);
        rs.push(RsEntry::Fma(fma(0, 0)));
        rs.push(RsEntry::Fma(fma(1, 0)));
        assert!(rs.is_full());
        let robs: Vec<_> = rs.iter().map(|e| e.rob()).collect();
        assert_eq!(robs, vec![0, 1]);
        rs.retain(|e| e.rob() != 0);
        assert_eq!(rs.len(), 1);
        assert!(rs.find_fma_mut(1).is_some());
        assert!(rs.find_fma_mut(0).is_none());
    }

    #[test]
    fn slots_are_recycled_without_moving_survivors() {
        let mut rs = Rs::new(3);
        for r in 0..3 {
            rs.push(RsEntry::Fma(fma(r, 0)));
        }
        // Remove the middle entry; survivors keep program order.
        rs.retain(|e| e.rob() != 1);
        let robs: Vec<_> = rs.iter().map(|e| e.rob()).collect();
        assert_eq!(robs, vec![0, 2]);
        // The freed slot is reused by the next push, appended in order.
        rs.push(RsEntry::Fma(fma(7, 0)));
        let robs: Vec<_> = rs.iter().map(|e| e.rob()).collect();
        assert_eq!(robs, vec![0, 2, 7]);
        assert!(rs.is_full());
        assert_eq!(rs.pos_of(2), Some(1));
        assert_eq!(rs.pos_of(7), Some(2));
        assert_eq!(rs.pos_of(3), None);
    }

    #[test]
    fn lookup_survives_order_permutation() {
        let mut rs = Rs::new(4);
        for r in 0..4 {
            rs.push(RsEntry::Fma(fma(r, 0)));
        }
        rs.swap_order(0, 3);
        let robs: Vec<_> = rs.iter().map(|e| e.rob()).collect();
        assert_eq!(robs, vec![3, 1, 2, 0], "iteration follows the permuted order");
        // Binary search would miss in the permuted list; the linear
        // fallback must still find every entry.
        for r in 0..4 {
            assert_eq!(rs.find_fma_mut(r).map(|f| f.rob), Some(r));
        }
        assert_eq!(rs.pos_of(0), Some(3));
    }

    #[test]
    fn mem_index_tracks_loads_and_stores_through_churn() {
        let mut rs = Rs::new(6);
        rs.push(RsEntry::Fma(fma(0, 0)));
        rs.push(RsEntry::Load(LoadEntry {
            rob: 1,
            dst: 0,
            addr: 0,
            value_addr: 0,
            kind: crate::uop::LoadKind::Vector,
            seq: 0,
        }));
        rs.push(RsEntry::Fma(fma(2, 0)));
        rs.push(RsEntry::Store(crate::rs::StoreEntry { rob: 3, src: 0, addr: 64 }));
        assert_eq!(rs.mem_len(), 2);
        let mem_robs: Vec<_> = rs.mem_iter().map(|e| e.rob()).collect();
        assert_eq!(mem_robs, vec![1, 3], "mem index preserves program order");
        // Removing a VFMA leaves the mem index untouched; removing the load
        // prunes it even though the freed slot is immediately reused.
        rs.retain(|e| e.rob() != 0);
        assert_eq!(rs.mem_len(), 2);
        rs.retain(|e| e.rob() != 1);
        assert_eq!(rs.mem_len(), 1);
        rs.push(RsEntry::Load(LoadEntry {
            rob: 4,
            dst: 1,
            addr: 128,
            value_addr: 128,
            kind: crate::uop::LoadKind::Broadcast,
            seq: 1,
        }));
        let mem_robs: Vec<_> = rs.mem_iter().map(|e| e.rob()).collect();
        assert_eq!(mem_robs, vec![3, 4]);
        assert!(rs.order_intact());
        rs.swap_order(0, 1);
        assert!(!rs.order_intact(), "reorder fault invalidates the fast path");
    }

    #[test]
    fn next_fwd_event_filters_past_and_absent() {
        let mut e = fma(0, 0);
        assert_eq!(e.next_fwd_event(10), None);
        e.fwd_ready[3] = 9; // already usable before the horizon: not an event
        e.fwd_ready[5] = 12;
        e.fwd_ready[6] = 15;
        assert_eq!(e.next_fwd_event(10), Some(12));
        assert_eq!(e.next_fwd_event(9), Some(9));
        assert_eq!(e.next_fwd_event(16), None);
    }
}
