//! Mask Generation Units (§III, Fig 4).
//!
//! When a VFMA's multiplicands (and write mask) are ready, an MGU compares
//! every lane of both multiplicands against zero and produces the Effectual
//! Lane Mask: lane *i* is effectual iff both multiplicand elements are
//! non-zero and the write-mask bit is set. The paper replicates MGUs to
//! match the issue width so they are never a bottleneck; the core honours
//! that by generating at most `issue_width` ELMs per cycle.

use save_isa::VecF32;

/// ELM for an FP32 VFMA: `nonzero(a) & nonzero(b) & wm`.
pub fn elm_f32(a: &VecF32, b: &VecF32, wm: u16) -> u16 {
    a.nonzero_mask() & b.nonzero_mask() & wm
}

/// Masks for a mixed-precision VFMA.
///
/// Returns `(ml, al)`: `ml` has bit *j* set iff multiplicand lane *j* is
/// effectual (both BF16 elements non-zero); `al` has bit *i* set iff
/// accumulator lane *i* has at least one effectual ML — an AL can only be
/// skipped when *both* of its MLs are ineffectual (§V, Fig 9).
pub fn elm_mp(a: &VecF32, b: &VecF32) -> (u32, u16) {
    let az = a.as_bf16().zero_mask();
    let bz = b.as_bf16().zero_mask();
    let ml = !az & !bz;
    (ml, fold_ml_to_al(ml))
}

/// Collapses each ML pair of `ml` into one AL bit (bit *i* of the result is
/// `ml[2i] | ml[2i+1]`) with a branchless bit fold: OR each bit into its
/// even neighbour, then pack the 16 even bit positions into the low half
/// (the standard parallel-extract ladder for the 0x5555... mask). This is
/// per-ELM-generation hot-path code; the scalar loop it replaces lives on
/// in the tests as the property-test oracle.
#[inline]
fn fold_ml_to_al(ml: u32) -> u16 {
    let mut x = (ml | (ml >> 1)) & 0x5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF;
    x as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use save_isa::{Bf16, VecBf16, LANES};

    proptest! {
        /// The branchless pair-OR fold agrees with the scalar loop it
        /// replaced, for every possible ML pattern.
        #[test]
        fn fold_matches_scalar_loop(ml in any::<u32>()) {
            let mut al = 0u16;
            for i in 0..LANES {
                if ml >> (2 * i) & 0b11 != 0 {
                    al |= 1 << i;
                }
            }
            prop_assert_eq!(fold_ml_to_al(ml), al);
        }
    }

    #[test]
    fn f32_elm_combines_operands_and_mask() {
        let mut a = VecF32::splat(1.0);
        let mut b = VecF32::splat(2.0);
        a.set_lane(0, 0.0); // lane 0 ineffectual via a
        b.set_lane(1, 0.0); // lane 1 ineffectual via b
        let wm = !(1u16 << 2); // lane 2 masked out
        let elm = elm_f32(&a, &b, wm);
        assert_eq!(elm & 0b111, 0);
        assert_eq!(elm.count_ones(), 13);
    }

    #[test]
    fn broadcast_zero_gives_empty_elm() {
        let a = VecF32::splat(0.0);
        let b = VecF32::splat(3.0);
        assert_eq!(elm_f32(&a, &b, u16::MAX), 0); // BS: whole VFMA skippable
    }

    #[test]
    fn mp_al_effectual_if_either_ml_effectual() {
        // AL0: ML0 effectual, ML1 not. AL1: both ineffectual. AL2: both
        // effectual.
        let mut al = [Bf16::from_f32(1.0); 32];
        let bl = [Bf16::from_f32(2.0); 32];
        al[1] = Bf16::ZERO;
        al[2] = Bf16::ZERO;
        al[3] = Bf16::ZERO;
        let a = VecBf16::from_lanes(al).to_vec_f32_bits();
        let b = VecBf16::from_lanes(bl).to_vec_f32_bits();
        let (ml, almask) = elm_mp(&a, &b);
        assert_eq!(ml & 0b11, 0b01);
        assert_eq!(ml >> 2 & 0b11, 0b00);
        assert_eq!(ml >> 4 & 0b11, 0b11);
        assert_eq!(almask & 0b111, 0b101);
    }

    #[test]
    fn mp_exploitable_sparsity_is_squared() {
        // With 50% random sparsity in each operand's MLs, the expected AL
        // skip rate is (1 - p_eff)^2 where p_eff is the per-ML effectual
        // probability; here we just verify a deterministic pattern: operand
        // sparsity 50% aligned -> AL sparsity 50%; anti-aligned -> 0%.
        let mut a_l = [Bf16::from_f32(1.0); 32];
        let b_l = [Bf16::from_f32(1.0); 32];
        for i in (0..32).step_by(2) {
            a_l[i] = Bf16::ZERO;
            a_l[i + 1] = Bf16::ZERO;
        }
        // Every other *pair* zero -> 50% of ALs skippable.
        for i in (0..32).step_by(4) {
            a_l[i] = Bf16::from_f32(1.0);
            a_l[i + 1] = Bf16::from_f32(1.0);
        }
        for i in (2..32).step_by(4) {
            a_l[i] = Bf16::ZERO;
            a_l[i + 1] = Bf16::ZERO;
        }
        let a = VecBf16::from_lanes(a_l).to_vec_f32_bits();
        let b = VecBf16::from_lanes(b_l).to_vec_f32_bits();
        let (_, almask) = elm_mp(&a, &b);
        assert_eq!(almask.count_ones(), 8);
    }
}
