//! Cycle-level microarchitectural sanitizer.
//!
//! A pluggable invariant checker driven from [`crate::Core`]'s step loop.
//! The simulator's scariest failure mode is not a crash but a silently wrong
//! cycle count or value: SAVE's correctness hinges on exactly the accounting
//! that sparsity-skip mechanisms get wrong at corner cases — Algorithm 1's
//! oldest-first vertical coalescing, exactly-once issue of every effectual
//! ELM lane, RVC rotate/un-rotate inversion, broadcast-cache freshness
//! (§III-IV). The sanitizer shadows the pipeline and checks:
//!
//! * **lane-conservation** — every effectual lane of every VFMA's ELM is
//!   scheduled exactly once (never dropped, duplicated, or invented),
//!   checked at issue, at RS exit, and at commit;
//! * **vc-age-order** — Algorithm 1: a younger VFMA never occupies a temp
//!   lane position that an older ready VFMA wanted (vertical coalescing);
//! * **rvc-rotation** / **lane-value** — each issued FP32 lane's value
//!   equals the reference `a*b+c` at its *logical* lane, so a rotation that
//!   is not correctly inverted at writeback surfaces as a value mismatch on
//!   a rotated (state != 0) entry;
//! * **rename-hygiene** — the free list and the live set (rename table,
//!   pending ROB frees, the cracked-load temp) partition the physical pool:
//!   no leak, no double-free, no register both free and live;
//! * **rob-retire-order** — entries retire in allocation-sequence order;
//! * **rs-scoreboard** — an ELM-ready RS entry's operands really are fully
//!   ready, and no entry holds effectual bits outside its generated masks;
//! * **bcast-freshness** — B$ entries (with-data and with-masks designs
//!   both store the line zero-mask) agree with backing memory, audited
//!   round-robin one entry per state-scan;
//! * **bs-passthrough** — lanes skipped by broadcast-sparsity (and masked
//!   lanes) hold bit-exact copies of the accumulator source at commit.
//!
//! Event hooks run every cycle whenever the sanitizer is enabled; the
//! heavier whole-state scans run at the [`SanitizeLevel`] stride. The
//! sanitizer is purely observational: simulated cycle counts are identical
//! with it on or off, and `Off` costs one skipped `Option` check per hook.
//!
//! Violations surface as a [`SanitizerReport`] carried out of the core in
//! [`crate::RunOutcome::violation`], which `save-sim` wraps into
//! `SimError::InvariantViolation` so they flow through sweep `failures.json`
//! like any other typed failure. The paired fault injector
//! ([`crate::fault`]) proves each checker actually fires.

use crate::config::SanitizeLevel;
use crate::rename::{PhysRegFile, RenameTable};
use crate::rob::{Rob, RobEntry};
use crate::rs::{FmaEntry, Rs, RsEntry};
use crate::uop::{FmaPrecision, PhysId, RobId};
use crate::vpu::VpuOp;
use save_isa::LANES;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Structured witness of an invariant violation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SanitizerReport {
    /// Name of the violated invariant (e.g. `"lane-conservation"`).
    pub invariant: String,
    /// Simulated cycle at which the violation was detected.
    pub cycle: u64,
    /// ROB id / allocation sequence of the µop involved, when one is.
    pub rob: Option<u64>,
    /// Human-readable witness state (masks, registers, values).
    pub witness: String,
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant {} violated at cycle {}", self.invariant, self.cycle)?;
        if let Some(r) = self.rob {
            write!(f, " (rob {r})")?;
        }
        write!(f, ": {}", self.witness)
    }
}

/// Per-VFMA shadow state: what the sanitizer believes the scheduler owes
/// this instruction.
struct FmaShadow {
    baseline: bool,
    precision: FmaPrecision,
    acc_src: PhysId,
    acc_dst: PhysId,
    a: PhysId,
    b: PhysId,
    wm: u16,
    rot: i8,
    /// Whether the ELM (and hence `expected`) has been captured yet.
    elm_known: bool,
    /// Lanes that must issue exactly once (the generated ELM; all lanes for
    /// the baseline scheduler, which issues whole vectors).
    expected: u16,
    /// Lanes observed issuing so far.
    scheduled: u16,
}

/// One pre-select snapshot row: a vertical-coalescing candidate.
struct SnapEntry {
    rob: RobId,
    mask: u16,
    rot: i8,
}

/// The checker. One per core; owned by [`crate::Core`] when
/// [`crate::CoreConfig::sanitize`] is not `Off`.
pub struct Sanitizer {
    level: SanitizeLevel,
    violation: Option<SanitizerReport>,
    fmas: HashMap<RobId, FmaShadow>,
    expected_commit_seq: u64,
    bcast_idx: usize,
    snapshot: Vec<SnapEntry>,
    snapshot_valid: bool,
    /// State scans performed (exposed for the overhead self-test).
    state_scans: u64,
}

/// Sets `slot` if it is empty — the sanitizer keeps the *first* violation,
/// since later ones are usually fallout of the first.
fn set(
    slot: &mut Option<SanitizerReport>,
    invariant: &'static str,
    cycle: u64,
    rob: Option<RobId>,
    witness: String,
) {
    if slot.is_none() {
        *slot = Some(SanitizerReport {
            invariant: invariant.to_string(),
            cycle,
            rob: rob.map(|r| r as u64),
            witness,
        });
    }
}

impl Sanitizer {
    /// Creates a checker at `level` (callers gate on
    /// [`SanitizeLevel::enabled`]).
    pub fn new(level: SanitizeLevel) -> Self {
        Sanitizer {
            level,
            violation: None,
            fmas: HashMap::new(),
            expected_commit_seq: 0,
            bcast_idx: 0,
            snapshot: Vec::new(),
            snapshot_valid: false,
            state_scans: 0,
        }
    }

    /// Whether the heavy state scans are due on `cycle`.
    pub fn due(&self, cycle: u64) -> bool {
        self.level.due(cycle)
    }

    /// Takes the first recorded violation, if any.
    pub fn take_violation(&mut self) -> Option<SanitizerReport> {
        self.violation.take()
    }

    /// State scans performed so far.
    pub fn state_scans(&self) -> u64 {
        self.state_scans
    }

    /// Registers a freshly allocated VFMA. The baseline scheduler issues
    /// all 16 lanes of every VFMA (masked lanes as accumulator copies), so
    /// its expectation is known immediately; SAVE expectations wait for the
    /// MGU via [`Sanitizer::sync_elms`].
    pub(crate) fn on_fma_alloc(&mut self, f: &FmaEntry, baseline: bool) {
        self.fmas.insert(
            f.rob,
            FmaShadow {
                baseline,
                precision: f.precision,
                acc_src: f.acc_src,
                acc_dst: f.acc_dst,
                a: f.a,
                b: f.b,
                wm: f.wm,
                rot: f.rot,
                elm_known: baseline,
                expected: if baseline { crate::rename::ALL_LANES } else { 0 },
                scheduled: 0,
            },
        );
    }

    /// Captures freshly generated ELMs right after the MGU stage — before
    /// any lane of those entries can issue or the BS sweep can remove them,
    /// so the shadow expectation is the ground-truth mask.
    pub(crate) fn sync_elms(&mut self, rs: &Rs) {
        for e in rs.iter() {
            if let RsEntry::Fma(f) = e {
                if f.elm_ready {
                    if let Some(sh) = self.fmas.get_mut(&f.rob) {
                        if !sh.elm_known {
                            sh.elm_known = true;
                            sh.expected = f.orig_elm;
                        }
                    }
                }
            }
        }
    }

    /// Snapshots the vertical-coalescing candidate set immediately before
    /// select, for the age-order check. Call only on cycles where the
    /// vertical scheduler (not mixed/horizontal/baseline) will run.
    pub(crate) fn snapshot_vc(&mut self, rs: &Rs, prf: &PhysRegFile, lane_wise: bool) {
        self.snapshot.clear();
        let precision = match crate::sched::oldest_window_precision(rs, prf) {
            Some(p) => p,
            None => {
                self.snapshot_valid = false;
                return;
            }
        };
        for e in rs.iter() {
            if let RsEntry::Fma(f) = e {
                if f.precision != precision {
                    continue;
                }
                let m = crate::sched::sched_mask(f, prf, lane_wise);
                if m != 0 {
                    self.snapshot.push(SnapEntry { rob: f.rob, mask: m, rot: f.rot });
                }
            }
        }
        self.snapshot_valid = true;
    }

    /// Invalidates the candidate snapshot (cycles where vertical select does
    /// not run).
    pub(crate) fn clear_snapshot(&mut self) {
        self.snapshot_valid = false;
    }

    /// Checks the ops the scheduler just produced: lane conservation (each
    /// result lane effectual and not yet issued), FP32 value correctness at
    /// the logical lane (which is where a missed rotation inversion
    /// surfaces), and — when a candidate snapshot is valid — Algorithm 1
    /// age order.
    pub(crate) fn check_issue(&mut self, ops: &[VpuOp], prf: &PhysRegFile, cycle: u64) {
        let vio = &mut self.violation;
        for op in ops {
            for r in &op.results {
                let Some(sh) = self.fmas.get_mut(&r.rob) else {
                    set(
                        vio,
                        "lane-conservation",
                        cycle,
                        Some(r.rob),
                        format!("lane {} issued for a VFMA the sanitizer never saw allocate", r.lane),
                    );
                    continue;
                };
                let bit = 1u16 << r.lane;
                // Value first: a rotation fault moves a correct value to a
                // wrong lane, which must be named rvc-rotation even when the
                // displaced lane also breaks conservation.
                if sh.precision == FmaPrecision::F32 {
                    let c = prf.value(sh.acc_src).lane(r.lane);
                    let reference = if sh.baseline && sh.wm & bit == 0 {
                        c
                    } else {
                        prf.value(sh.a).lane(r.lane).mul_add(prf.value(sh.b).lane(r.lane), c)
                    };
                    if reference.to_bits() != r.value.to_bits() {
                        let invariant =
                            if sh.rot != 0 { "rvc-rotation" } else { "lane-value" };
                        set(
                            vio,
                            invariant,
                            cycle,
                            Some(r.rob),
                            format!(
                                "lane {} (rotation state {}) carries {} but a*b+c at the logical lane is {} \
                                 (a={}, b={}, c={})",
                                r.lane,
                                sh.rot,
                                r.value,
                                reference,
                                prf.value(sh.a).lane(r.lane),
                                prf.value(sh.b).lane(r.lane),
                                c
                            ),
                        );
                    }
                }
                if !sh.elm_known {
                    set(
                        vio,
                        "lane-conservation",
                        cycle,
                        Some(r.rob),
                        format!("lane {} issued before the MGU generated an ELM", r.lane),
                    );
                } else if sh.expected & bit == 0 {
                    set(
                        vio,
                        "lane-conservation",
                        cycle,
                        Some(r.rob),
                        format!(
                            "lane {} issued but is not effectual (ELM {:#06x})",
                            r.lane, sh.expected
                        ),
                    );
                }
                if sh.scheduled & bit != 0 {
                    set(
                        vio,
                        "lane-conservation",
                        cycle,
                        Some(r.rob),
                        format!(
                            "lane {} issued twice (already-scheduled mask {:#06x})",
                            r.lane, sh.scheduled
                        ),
                    );
                }
                sh.scheduled |= bit;
            }
        }
        if self.snapshot_valid {
            self.check_age_order(ops, cycle);
        }
    }

    /// Algorithm 1 age order: per temp lane position, every candidate older
    /// than the youngest VFMA issued at that position must itself have been
    /// issued there (or not have wanted it).
    fn check_age_order(&mut self, ops: &[VpuOp], cycle: u64) {
        let mut issued_at: [Vec<RobId>; LANES] = Default::default();
        for op in ops {
            for r in &op.results {
                if let Some(s) = self.snapshot.iter().find(|s| s.rob == r.rob) {
                    let pos = (r.lane as i32 + s.rot as i32).rem_euclid(LANES as i32) as usize;
                    issued_at[pos].push(r.rob);
                }
            }
        }
        let mut found: Option<(RobId, RobId, usize, usize)> = None;
        'outer: for (pos, issued) in issued_at.iter().enumerate() {
            let Some(&youngest) = issued.iter().max() else { continue };
            // Compare by rob id, not snapshot position: a faulty scheduler
            // may have perturbed RS order, which is exactly what we check.
            for s in &self.snapshot {
                if s.rob >= youngest {
                    continue;
                }
                let lane = (pos as i32 - s.rot as i32).rem_euclid(LANES as i32) as usize;
                if s.mask >> lane & 1 == 1 && !issued.contains(&s.rob) {
                    found = Some((s.rob, youngest, pos, lane));
                    break 'outer;
                }
            }
        }
        if let Some((older, younger, pos, lane)) = found {
            set(
                &mut self.violation,
                "vc-age-order",
                cycle,
                Some(older),
                format!(
                    "ready VFMA rob {older} wanted temp position {pos} (its logical lane {lane}) \
                     but younger VFMA rob {younger} was issued there instead"
                ),
            );
        }
    }

    /// A VFMA left the reservation station: with its ELM fully consumed,
    /// the lanes observed issuing must be exactly the generated ELM — this
    /// is where a *dropped* lane is caught (a dropped lane never completes
    /// its destination, so it would otherwise hang to the watchdog).
    pub(crate) fn on_rs_exit(&mut self, rob: RobId, cycle: u64) {
        if let Some(sh) = self.fmas.get(&rob) {
            if sh.elm_known && sh.scheduled != sh.expected {
                let (scheduled, expected) = (sh.scheduled, sh.expected);
                set(
                    &mut self.violation,
                    "lane-conservation",
                    cycle,
                    Some(rob),
                    format!(
                        "VFMA left the RS with scheduled lanes {scheduled:#06x} != ELM {expected:#06x}"
                    ),
                );
            }
        }
    }

    /// Commit-time checks: retire order, final lane conservation, and the
    /// BS/mask pass-through copy. Must run *before* the entry's frees are
    /// released so both accumulator registers still hold their values.
    pub(crate) fn on_commit(&mut self, e: &RobEntry, prf: &PhysRegFile, cycle: u64) {
        if e.seq != self.expected_commit_seq {
            let expected = self.expected_commit_seq;
            set(
                &mut self.violation,
                "rob-retire-order",
                cycle,
                Some(e.seq as RobId),
                format!("committed seq {} but the next allocation-order seq is {expected}", e.seq),
            );
        }
        self.expected_commit_seq = e.seq + 1;
        let Some(sh) = self.fmas.remove(&(e.seq as RobId)) else { return };
        let vio = &mut self.violation;
        if sh.elm_known && sh.scheduled != sh.expected {
            set(
                vio,
                "lane-conservation",
                cycle,
                Some(e.seq as RobId),
                format!(
                    "VFMA committed with scheduled lanes {:#06x} != ELM {:#06x}",
                    sh.scheduled, sh.expected
                ),
            );
        } else if !sh.elm_known {
            set(
                vio,
                "lane-conservation",
                cycle,
                Some(e.seq as RobId),
                "VFMA committed but the MGU never generated its ELM".to_string(),
            );
        }
        // Pass-through lanes (ineffectual under SAVE — including every lane
        // of a BS-skipped VFMA) must be bit-exact accumulator moves. The
        // baseline writes masked lanes through the VPU as copies, which the
        // issue-time value check already covers.
        if !sh.baseline && sh.elm_known {
            let mut pass = !sh.expected;
            while pass != 0 {
                let lane = pass.trailing_zeros() as usize;
                pass &= pass - 1;
                let dst = prf.value(sh.acc_dst).lane(lane);
                let src = prf.value(sh.acc_src).lane(lane);
                if dst.to_bits() != src.to_bits() {
                    set(
                        vio,
                        "bs-passthrough",
                        cycle,
                        Some(e.seq as RobId),
                        format!(
                            "skipped lane {lane} holds {dst} at commit but the accumulator \
                             source holds {src} (ELM {:#06x})",
                            sh.expected
                        ),
                    );
                    break;
                }
            }
        }
    }

    /// Heavy state scans: the rename-pool partition and the RS scoreboard
    /// cross-check. Run at the configured stride.
    pub(crate) fn check_state(
        &mut self,
        prf: &PhysRegFile,
        rt: &RenameTable,
        rob: &Rob,
        rs: &Rs,
        pending_temp: Option<PhysId>,
        cycle: u64,
    ) {
        self.state_scans += 1;
        let vio = &mut self.violation;

        // Rename hygiene: free list ∪ live set partitions the pool.
        // Live = current architectural mappings + registers awaiting release
        // in ROB frees + the cracked-load temp between its load and FMA.
        const FREE: u8 = 1;
        const LIVE: u8 = 2;
        let mut tag = vec![0u8; prf.num_regs()];
        for &p in prf.free_list() {
            if tag[p as usize] == FREE {
                set(
                    vio,
                    "rename-hygiene",
                    cycle,
                    None,
                    format!("physical register p{p} appears twice on the free list"),
                );
            }
            tag[p as usize] = FREE;
        }
        let mut live = |tag: &mut [u8], p: PhysId, role: &str| {
            if tag[p as usize] == FREE {
                set(
                    vio,
                    "rename-hygiene",
                    cycle,
                    None,
                    format!("physical register p{p} is on the free list but live ({role})"),
                );
            }
            tag[p as usize] = LIVE;
        };
        for &p in rt.mappings() {
            live(&mut tag, p, "rename-table mapping");
        }
        for e in rob.iter() {
            for p in e.frees.into_iter().flatten() {
                live(&mut tag, p, "pending ROB free");
            }
        }
        if let Some(p) = pending_temp {
            live(&mut tag, p, "cracked-load temp");
        }
        if let Some(p) = tag.iter().position(|&t| t == 0) {
            set(
                vio,
                "rename-hygiene",
                cycle,
                None,
                format!("physical register p{p} leaked: neither free nor reachable as live"),
            );
        }

        // RS scoreboard: ELM-ready entries really have ready operands, and
        // residual masks stay within what the MGU generated.
        for e in rs.iter() {
            let RsEntry::Fma(f) = e else { continue };
            if f.elm_ready && !(prf.fully_ready(f.a) && prf.fully_ready(f.b)) {
                set(
                    vio,
                    "rs-scoreboard",
                    cycle,
                    Some(f.rob),
                    format!(
                        "entry is ELM-ready but operands are not (a ready {:#06x}, b ready {:#06x})",
                        prf.ready_mask(f.a),
                        prf.ready_mask(f.b)
                    ),
                );
            }
            if f.elm & !f.orig_elm != 0 {
                set(
                    vio,
                    "rs-scoreboard",
                    cycle,
                    Some(f.rob),
                    format!(
                        "residual ELM {:#06x} has bits outside the generated ELM {:#06x}",
                        f.elm, f.orig_elm
                    ),
                );
            }
            if f.ml & !f.orig_ml != 0 {
                set(
                    vio,
                    "rs-scoreboard",
                    cycle,
                    Some(f.rob),
                    format!(
                        "residual ML {:#010x} has bits outside the generated ML {:#010x}",
                        f.ml, f.orig_ml
                    ),
                );
            }
        }
    }

    /// Round-robin index for the B$ freshness audit: each state scan audits
    /// one of `n` entries, so a full sweep costs `n` scans but any stale
    /// entry is found within `n * stride` cycles.
    pub(crate) fn next_bcast_idx(&mut self, n: usize) -> usize {
        let idx = self.bcast_idx % n;
        self.bcast_idx = self.bcast_idx.wrapping_add(1);
        idx
    }

    /// Records a stale B$ entry found by the audit.
    pub(crate) fn report_bcast_stale(&mut self, cycle: u64, line: u64, stored: u16, actual: u16) {
        set(
            &mut self.violation,
            "bcast-freshness",
            cycle,
            None,
            format!(
                "B$ entry for line {line} stores zero-mask {stored:#06x} but backing memory \
                 derives {actual:#06x}"
            ),
        );
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_displays_all_fields() {
        let r = SanitizerReport {
            invariant: "lane-conservation".into(),
            cycle: 42,
            rob: Some(7),
            witness: "lane 3 issued twice".into(),
        };
        let s = r.to_string();
        assert!(s.contains("lane-conservation") && s.contains("42") && s.contains("rob 7"));
    }

    #[test]
    fn first_violation_wins() {
        let mut v = None;
        set(&mut v, "a", 1, None, "first".into());
        set(&mut v, "b", 2, None, "second".into());
        assert_eq!(v.unwrap().invariant, "a");
    }

    #[test]
    fn bcast_audit_walks_round_robin() {
        let mut s = Sanitizer::new(SanitizeLevel::Full);
        assert_eq!(s.next_bcast_idx(4), 0);
        assert_eq!(s.next_bcast_idx(4), 1);
        assert_eq!(s.next_bcast_idx(4), 2);
        assert_eq!(s.next_bcast_idx(4), 3);
        assert_eq!(s.next_bcast_idx(4), 0);
    }
}
