//! Core configuration (Table I parameters plus SAVE feature toggles).

use crate::fault::FaultPlan;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// How aggressively the microarchitectural sanitizer audits the pipeline.
///
/// Event-driven checks (issue conservation, writeback values, commit order)
/// are cheap and run on every cycle whenever the sanitizer is enabled at
/// all; the heavier whole-state scans (rename-pool partition, RS scoreboard
/// cross-check, broadcast-cache freshness audit) run only on cycles where
/// [`SanitizeLevel::due`] returns true. `Off` compiles down to a skipped
/// `Option` — zero cost on the hot path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum SanitizeLevel {
    /// No checking at all (the default): the core carries no sanitizer.
    #[default]
    Off,
    /// Event hooks every cycle, state scans every `n` cycles (`n > 0`).
    Periodic(u64),
    /// Every check, every cycle.
    Full,
}

impl SanitizeLevel {
    /// State-scan stride used when `SAVE_SANITIZE=periodic` gives no `:N`.
    pub const DEFAULT_STRIDE: u64 = 64;

    /// True unless the level is [`SanitizeLevel::Off`].
    pub fn enabled(self) -> bool {
        self != SanitizeLevel::Off
    }

    /// Whether the heavy state scans should run on `cycle`.
    pub fn due(self, cycle: u64) -> bool {
        match self {
            SanitizeLevel::Off => false,
            SanitizeLevel::Full => true,
            SanitizeLevel::Periodic(n) => cycle.is_multiple_of(n),
        }
    }

    /// Parses a level from a CLI/env string: `off`, `full`, `periodic`,
    /// `periodic:N`, or a bare stride `N` (`0` meaning off).
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        match s.to_ascii_lowercase().as_str() {
            "" | "off" | "0" | "false" | "no" => Ok(SanitizeLevel::Off),
            "full" | "on" | "1" | "true" | "yes" => Ok(SanitizeLevel::Full),
            "periodic" => Ok(SanitizeLevel::Periodic(Self::DEFAULT_STRIDE)),
            other => {
                let stride = other.strip_prefix("periodic:").unwrap_or(other);
                match stride.parse::<u64>() {
                    Ok(0) => Ok(SanitizeLevel::Off),
                    Ok(n) => Ok(SanitizeLevel::Periodic(n)),
                    Err(_) => Err(format!(
                        "unrecognized sanitize level {s:?} (want off|periodic[:N]|full)"
                    )),
                }
            }
        }
    }

    /// Level requested by the `SAVE_SANITIZE` environment variable, read
    /// once per process. Unset or unparsable values mean [`Off`]; this is
    /// the default for every freshly built [`CoreConfig`], which is how
    /// `SAVE_SANITIZE=periodic cargo test` turns the whole suite into a
    /// sanitizer gauntlet without touching any call site.
    ///
    /// [`Off`]: SanitizeLevel::Off
    pub fn from_env() -> Self {
        static CACHE: OnceLock<SanitizeLevel> = OnceLock::new();
        *CACHE.get_or_init(|| {
            std::env::var("SAVE_SANITIZE")
                .ok()
                .and_then(|v| SanitizeLevel::parse(&v).ok())
                .unwrap_or(SanitizeLevel::Off)
        })
    }
}

/// Which VPU select logic the core uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Conventional oldest-first whole-vector issue — no sparsity awareness.
    Baseline,
    /// SAVE vertical coalescing (Algorithm 1). Rotation and lane-wise
    /// dependence are controlled by [`CoreConfig::rotate`] and
    /// [`CoreConfig::lane_wise`].
    Vertical,
    /// Horizontal compression — the paper's rejected alternative, kept as a
    /// comparison point (Fig 18). Adds [`CoreConfig::hc_penalty_cycles`] to
    /// the VFMA latency for bubble-collapse/expand crossbars.
    Horizontal,
}

/// Serde default for [`CoreConfig::fast_forward`]: configs serialized
/// before the field existed fast-forward like freshly built ones.
fn default_true() -> bool {
    true
}

/// Full core configuration.
///
/// Defaults reproduce the paper's baseline machine (Table I with the
/// Sunny-Cove-style 5-wide issue) with all SAVE features enabled.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Allocation (rename/dispatch) width in µops per cycle.
    pub issue_width: usize,
    /// Commit width in µops per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Unified reservation-station entries.
    pub rs_entries: usize,
    /// Physical vector registers (renaming pool).
    pub phys_regs: usize,
    /// Number of active 512-bit VPUs (2 at 1.7 GHz or 1 at 2.1 GHz, §IV-D).
    pub num_vpus: usize,
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// FP32 VFMA latency in cycles (Skylake: 4).
    pub fp32_fma_cycles: u64,
    /// Mixed-precision VFMA latency in cycles (paper: 6).
    pub mp_fma_cycles: u64,
    /// Cycles by which a chained MP VFMA can issue early thanks to
    /// partial-result forwarding when the MP technique is on (§V-B).
    pub mp_forward_overlap: u64,
    /// Load ports (L1-D reads per cycle).
    pub load_ports: usize,
    /// Load-buffer entries: the maximum loads in flight (Skylake: 72).
    /// Bounds memory-level parallelism on DRAM-latency streams.
    pub load_buffer: usize,
    /// Store issues per cycle.
    pub store_ports: usize,
    /// Scheduler variant.
    pub scheduler: SchedulerKind,
    /// Rotate-vertical coalescing (§IV-B); only meaningful with
    /// [`SchedulerKind::Vertical`].
    pub rotate: bool,
    /// Lane-wise dependence (§IV-C) instead of vector-wise.
    pub lane_wise: bool,
    /// Mixed-precision multiplicand-lane compression (§V-A).
    pub mp_compress: bool,
    /// Extra VFMA latency under horizontal compression (3-cycle
    /// bubble-collapse + 3-cycle expand, §VII-D).
    pub hc_penalty_cycles: u64,
    /// Abort a run after this many cycles (deadlock guard).
    pub max_cycles: u64,
    /// Retire-progress watchdog: declare a stall if no µop commits for
    /// this many consecutive cycles while work is outstanding. Must be
    /// comfortably above the worst-case memory round trip (a cold DRAM
    /// access is a few hundred cycles); the default leaves two orders of
    /// magnitude of headroom.
    pub watchdog_cycles: u64,
    /// Event-driven fast-forward (host-side optimization, default on):
    /// when the pipeline is provably inert — frontend stalled or drained,
    /// every in-flight µop waiting on a known future cycle — the core jumps
    /// the clock to the next event instead of stepping idle cycles. The
    /// jump is observationally pure: cycle counts, statistics and
    /// functional results are bit-identical with stepping (the determinism
    /// suite pins this). Disable to A/B against plain stepping. Forced off
    /// while a fault plan or a µop commit limit is active.
    #[serde(default = "default_true")]
    pub fast_forward: bool,
    /// Microarchitectural sanitizer level. Defaults to the `SAVE_SANITIZE`
    /// environment variable (or `Off` when unset) so existing configs and
    /// serialized sweeps pick it up without changes.
    #[serde(default = "SanitizeLevel::from_env")]
    pub sanitize: SanitizeLevel,
    /// Deterministic fault to inject — used by the sanitizer self-test to
    /// prove each checker fires on its fault class. `None` in any real run.
    #[serde(default)]
    pub fault: Option<FaultPlan>,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            issue_width: 5,
            commit_width: 5,
            rob_entries: 224,
            rs_entries: 97,
            phys_regs: 320,
            num_vpus: 2,
            freq_ghz: 1.7,
            fp32_fma_cycles: 4,
            mp_fma_cycles: 6,
            mp_forward_overlap: 2,
            load_ports: 2,
            load_buffer: 72,
            store_ports: 1,
            scheduler: SchedulerKind::Vertical,
            rotate: true,
            lane_wise: true,
            mp_compress: true,
            hc_penalty_cycles: 6,
            max_cycles: 500_000_000,
            watchdog_cycles: 100_000,
            fast_forward: true,
            sanitize: SanitizeLevel::from_env(),
            fault: None,
        }
    }
}

impl CoreConfig {
    /// The paper's baseline: 2 VPUs at 1.7 GHz, conventional scheduler.
    pub fn baseline() -> Self {
        CoreConfig {
            scheduler: SchedulerKind::Baseline,
            rotate: false,
            lane_wise: false,
            mp_compress: false,
            ..CoreConfig::default()
        }
    }

    /// Full SAVE with 2 VPUs at 1.7 GHz.
    pub fn save_2vpu() -> Self {
        CoreConfig::default()
    }

    /// Full SAVE with 1 VPU at the boosted 2.1 GHz (§IV-D).
    pub fn save_1vpu() -> Self {
        CoreConfig { num_vpus: 1, freq_ghz: 2.1, ..CoreConfig::default() }
    }

    /// Nanoseconds per core cycle.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.freq_ghz
    }

    /// Converts a wall-clock latency to (rounded-up) core cycles.
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.freq_ghz).ceil() as u64
    }

    /// Converts a cycle count to seconds at this frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Rejects operating points the pipeline cannot run.
    ///
    /// Every structural resource must be non-zero, the renaming pool must
    /// exceed the architectural register file (otherwise allocation
    /// deadlocks the moment all architectural names are live), and the
    /// frequency must be a positive finite number. The error string names
    /// the offending field so sweep drivers can report it verbatim.
    pub fn validate(&self) -> Result<(), String> {
        fn nonzero(what: &str, v: usize) -> Result<(), String> {
            if v == 0 { Err(format!("core config: {what} must be > 0")) } else { Ok(()) }
        }
        nonzero("issue_width", self.issue_width)?;
        nonzero("commit_width", self.commit_width)?;
        nonzero("rob_entries", self.rob_entries)?;
        nonzero("rs_entries", self.rs_entries)?;
        nonzero("num_vpus", self.num_vpus)?;
        nonzero("load_ports", self.load_ports)?;
        nonzero("load_buffer", self.load_buffer)?;
        nonzero("store_ports", self.store_ports)?;
        if self.phys_regs <= save_isa::NUM_VREGS {
            return Err(format!(
                "core config: phys_regs ({}) must exceed the {} architectural vregs",
                self.phys_regs,
                save_isa::NUM_VREGS
            ));
        }
        if !self.freq_ghz.is_finite() || self.freq_ghz <= 0.0 {
            return Err(format!(
                "core config: freq_ghz must be positive and finite, got {}",
                self.freq_ghz
            ));
        }
        if self.fp32_fma_cycles == 0 || self.mp_fma_cycles == 0 {
            return Err("core config: FMA latencies must be > 0".to_string());
        }
        if self.max_cycles == 0 {
            return Err("core config: max_cycles must be > 0".to_string());
        }
        if self.watchdog_cycles == 0 {
            return Err("core config: watchdog_cycles must be > 0".to_string());
        }
        if self.sanitize == SanitizeLevel::Periodic(0) {
            return Err(
                "core config: sanitize Periodic stride must be > 0 (use Off instead)".to_string(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_operating_points() {
        let b = CoreConfig::baseline();
        assert_eq!(b.num_vpus, 2);
        assert_eq!(b.freq_ghz, 1.7);
        assert_eq!(b.scheduler, SchedulerKind::Baseline);
        let s1 = CoreConfig::save_1vpu();
        assert_eq!(s1.num_vpus, 1);
        assert_eq!(s1.freq_ghz, 2.1);
        assert_eq!(s1.scheduler, SchedulerKind::Vertical);
    }

    #[test]
    fn time_conversions_roundtrip() {
        let c = CoreConfig::default();
        assert_eq!(c.ns_to_cycles(1.0), 2); // 1.7 cycles rounds up
        let s = c.cycles_to_seconds(1_700_000_000);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn presets_validate() {
        CoreConfig::baseline().validate().unwrap();
        CoreConfig::save_2vpu().validate().unwrap();
        CoreConfig::save_1vpu().validate().unwrap();
    }

    #[test]
    fn validate_rejects_zero_vpus_and_zero_issue_width() {
        let no_vpu = CoreConfig { num_vpus: 0, ..CoreConfig::default() };
        let err = no_vpu.validate().unwrap_err();
        assert!(err.contains("num_vpus"), "{err}");

        let no_issue = CoreConfig { issue_width: 0, ..CoreConfig::default() };
        let err = no_issue.validate().unwrap_err();
        assert!(err.contains("issue_width"), "{err}");
    }

    #[test]
    fn sanitize_level_parses_cli_spellings() {
        assert_eq!(SanitizeLevel::parse("off").unwrap(), SanitizeLevel::Off);
        assert_eq!(SanitizeLevel::parse("full").unwrap(), SanitizeLevel::Full);
        assert_eq!(
            SanitizeLevel::parse("periodic").unwrap(),
            SanitizeLevel::Periodic(SanitizeLevel::DEFAULT_STRIDE)
        );
        assert_eq!(SanitizeLevel::parse("periodic:7").unwrap(), SanitizeLevel::Periodic(7));
        assert_eq!(SanitizeLevel::parse("128").unwrap(), SanitizeLevel::Periodic(128));
        assert_eq!(SanitizeLevel::parse("0").unwrap(), SanitizeLevel::Off);
        assert!(SanitizeLevel::parse("sometimes").is_err());
    }

    #[test]
    fn sanitize_stride_gates_state_scans() {
        assert!(!SanitizeLevel::Off.due(0));
        assert!(SanitizeLevel::Full.due(3));
        let p = SanitizeLevel::Periodic(8);
        assert!(p.due(0) && p.due(16) && !p.due(3));
        assert!(p.enabled() && !SanitizeLevel::Off.enabled());
    }

    #[test]
    fn validate_rejects_zero_periodic_stride() {
        let c = CoreConfig { sanitize: SanitizeLevel::Periodic(0), ..CoreConfig::default() };
        assert!(c.validate().unwrap_err().contains("sanitize"));
    }

    #[test]
    fn validate_rejects_starved_rename_pool_and_bad_frequency() {
        let starved = CoreConfig { phys_regs: save_isa::NUM_VREGS, ..CoreConfig::default() };
        assert!(starved.validate().unwrap_err().contains("phys_regs"));

        let nan = CoreConfig { freq_ghz: f64::NAN, ..CoreConfig::default() };
        assert!(nan.validate().unwrap_err().contains("freq_ghz"));
    }
}
