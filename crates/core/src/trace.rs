//! Pipeline tracing: a structured per-event stream of what the back end
//! does each cycle, for debugging kernels and for teaching what SAVE's
//! coalescing actually schedules.
//!
//! Tracing is opt-in via [`crate::Core::set_tracer`] and costs nothing when
//! absent. Events are compact and self-describing; [`TextTracer`] renders
//! them one per line.

use crate::uop::RobId;
use std::io::Write;

/// One pipeline event.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A µop was allocated/renamed into the ROB.
    Alloc {
        /// Cycle number.
        cycle: u64,
        /// ROB id assigned.
        rob: RobId,
        /// Compact µop description.
        what: String,
    },
    /// A compacted VPU operation issued.
    VpuIssue {
        /// Cycle number.
        cycle: u64,
        /// Temp lanes filled.
        lanes: usize,
        /// ROB ids contributing lanes (deduplicated, program order).
        from: Vec<RobId>,
    },
    /// A whole VFMA was skipped for broadcasted sparsity (empty ELM).
    BsSkip {
        /// Cycle number.
        cycle: u64,
        /// The skipped VFMA's ROB id.
        rob: RobId,
    },
    /// A µop committed (retired).
    Commit {
        /// Cycle number.
        cycle: u64,
        /// ROB id.
        rob: RobId,
    },
}

/// A consumer of trace events. `Send` so a traced core can run on a
/// relaxed-sync worker thread.
pub trait Tracer: Send {
    /// Receives one event.
    fn event(&mut self, ev: &TraceEvent);
}

/// Renders events as text lines to any writer.
pub struct TextTracer<W: Write> {
    out: W,
}

impl<W: Write> TextTracer<W> {
    /// Creates a text tracer over `out`.
    pub fn new(out: W) -> Self {
        TextTracer { out }
    }

    /// Recovers the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write + Send> Tracer for TextTracer<W> {
    fn event(&mut self, ev: &TraceEvent) {
        let _ = match ev {
            TraceEvent::Alloc { cycle, rob, what } => {
                writeln!(self.out, "[{cycle:>6}] alloc  rob{rob:<4} {what}")
            }
            TraceEvent::VpuIssue { cycle, lanes, from } => {
                writeln!(self.out, "[{cycle:>6}] vpu    {lanes:>2} lanes from {from:?}")
            }
            TraceEvent::BsSkip { cycle, rob } => {
                writeln!(self.out, "[{cycle:>6}] bskip  rob{rob} (broadcasted zero)")
            }
            TraceEvent::Commit { cycle, rob } => {
                writeln!(self.out, "[{cycle:>6}] commit rob{rob}")
            }
        };
    }
}

/// A tracer that counts events, for tests.
#[derive(Default, Debug)]
pub struct CountingTracer {
    /// Allocations seen.
    pub allocs: u64,
    /// VPU issues seen.
    pub vpu_issues: u64,
    /// BS skips seen.
    pub bs_skips: u64,
    /// Commits seen.
    pub commits: u64,
}

impl Tracer for CountingTracer {
    fn event(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Alloc { .. } => self.allocs += 1,
            TraceEvent::VpuIssue { .. } => self.vpu_issues += 1,
            TraceEvent::BsSkip { .. } => self.bs_skips += 1,
            TraceEvent::Commit { .. } => self.commits += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_tracer_formats_events() {
        let mut t = TextTracer::new(Vec::new());
        t.event(&TraceEvent::Alloc { cycle: 3, rob: 7, what: "fma zmm0".into() });
        t.event(&TraceEvent::VpuIssue { cycle: 5, lanes: 12, from: vec![7, 8] });
        t.event(&TraceEvent::BsSkip { cycle: 6, rob: 9 });
        t.event(&TraceEvent::Commit { cycle: 9, rob: 7 });
        let s = String::from_utf8(t.into_inner()).unwrap();
        assert!(s.contains("alloc  rob7"));
        assert!(s.contains("12 lanes from [7, 8]"));
        assert!(s.contains("bskip  rob9"));
        assert!(s.contains("commit rob7"));
    }

    #[test]
    fn counting_tracer_counts() {
        let mut t = CountingTracer::default();
        t.event(&TraceEvent::Alloc { cycle: 0, rob: 0, what: String::new() });
        t.event(&TraceEvent::Commit { cycle: 0, rob: 0 });
        t.event(&TraceEvent::Commit { cycle: 1, rob: 1 });
        assert_eq!(t.allocs, 1);
        assert_eq!(t.commits, 2);
    }
}
