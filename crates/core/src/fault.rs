//! Deterministic fault injection for the sanitizer self-test.
//!
//! A sanitizer that has never beeped is untested: each [`FaultKind`] is a
//! seeded, single-shot corruption of one microarchitectural structure,
//! chosen so that exactly one sanitizer invariant class is responsible for
//! catching it. The self-test matrix (`crates/core/tests/sanitizer_faults.rs`)
//! walks [`FaultKind::ALL`] and asserts that the violation report names
//! [`FaultKind::expected_invariant`].
//!
//! Faults are *planned* (a [`FaultPlan`] in [`crate::CoreConfig::fault`]) and
//! *applied* by the core: state faults mutate pipeline structures at the top
//! of the first step at or after `at_cycle` that has an eligible target
//! (retrying every cycle until one appears); issue-path faults instead
//! mutate the scheduler's output between select and the sanitizer's issue
//! check. Application is deterministic — same plan, same program, same
//! trigger cycle.

use crate::vpu::VpuOp;
use serde::{Deserialize, Serialize};

/// One class of injected corruption.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FaultKind {
    /// XOR one bit of a ready FMA's effectual-lane mask (and its recorded
    /// original), making the scheduler drop a real lane or invent a fake
    /// one. Caught by lane conservation (at issue or at RS exit).
    FlipElmBit,
    /// Clear one lane-ready scoreboard bit of an operand the RS already
    /// believes is fully ready. Caught by the RS scoreboard cross-check.
    DropWakeup,
    /// Flip a bit in the stored zero-mask of a valid broadcast-cache entry.
    /// Caught by the B$ freshness audit against backing memory.
    CorruptBcastEntry,
    /// Return a still-mapped physical register to the free list. Caught by
    /// the rename-pool partition check (register both free and live).
    FreeLivePhys,
    /// Silently drop a register from the free list. Caught by the
    /// rename-pool partition check (register neither free nor live).
    LeakPhysReg,
    /// Duplicate one lane result in a scheduled VPU op. Caught by lane
    /// conservation (lane issued twice).
    DuplicateLaneResult,
    /// Shift one writeback lane of a rotated (RVC state != 0) VFMA by its
    /// rotation amount — i.e. forget to un-rotate. Caught by the RVC
    /// rotation/value check.
    RotateWritebackLane,
    /// Pop a completed ROB head without committing it. Caught by the
    /// retire-order check (allocation sequence gap).
    SkipRobRetire,
    /// Overwrite one pending pass-through lane of a BS-skipped VFMA's
    /// destination and cancel the watcher copy for it. Caught by the
    /// BS pass-through check at commit.
    CorruptPassthrough,
    /// Swap the two oldest ready FMAs in the reservation station so select
    /// sees them youngest-first. Caught by the VC age-order check.
    ReorderRsPick,
}

impl FaultKind {
    /// Every fault class, in a stable order for the self-test matrix.
    pub const ALL: [FaultKind; 10] = [
        FaultKind::FlipElmBit,
        FaultKind::DropWakeup,
        FaultKind::CorruptBcastEntry,
        FaultKind::FreeLivePhys,
        FaultKind::LeakPhysReg,
        FaultKind::DuplicateLaneResult,
        FaultKind::RotateWritebackLane,
        FaultKind::SkipRobRetire,
        FaultKind::CorruptPassthrough,
        FaultKind::ReorderRsPick,
    ];

    /// Whether the fault corrupts the scheduler's *output* (applied between
    /// select and issue) rather than pipeline *state* (applied at the top
    /// of the step).
    pub fn targets_issue_path(self) -> bool {
        matches!(self, FaultKind::DuplicateLaneResult | FaultKind::RotateWritebackLane)
    }

    /// Name of the invariant whose checker must fire for this fault class.
    pub fn expected_invariant(self) -> &'static str {
        match self {
            FaultKind::FlipElmBit => "lane-conservation",
            FaultKind::DropWakeup => "rs-scoreboard",
            FaultKind::CorruptBcastEntry => "bcast-freshness",
            FaultKind::FreeLivePhys => "rename-hygiene",
            FaultKind::LeakPhysReg => "rename-hygiene",
            FaultKind::DuplicateLaneResult => "lane-conservation",
            FaultKind::RotateWritebackLane => "rvc-rotation",
            FaultKind::SkipRobRetire => "rob-retire-order",
            FaultKind::CorruptPassthrough => "bs-passthrough",
            FaultKind::ReorderRsPick => "vc-age-order",
        }
    }
}

/// A planned single-shot fault, carried in [`crate::CoreConfig::fault`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FaultPlan {
    /// What to corrupt.
    pub kind: FaultKind,
    /// First cycle at which to attempt the corruption (retried each cycle
    /// until a target structure is eligible).
    pub at_cycle: u64,
    /// Deterministic selector for which bit/lane/register to hit.
    pub seed: u64,
}

impl FaultPlan {
    /// Convenience constructor for tests.
    pub fn new(kind: FaultKind, at_cycle: u64, seed: u64) -> Self {
        FaultPlan { kind, at_cycle, seed }
    }
}

/// Applies an issue-path fault to the ops the scheduler just produced.
/// Returns true if a target was found (the fault is then spent).
pub(crate) fn apply_issue_fault(plan: FaultPlan, ops: &mut [VpuOp], rots: &[(usize, i8)]) -> bool {
    match plan.kind {
        FaultKind::DuplicateLaneResult => {
            for op in ops.iter_mut() {
                if let Some(r) = op.results.first().cloned() {
                    op.results.push(r);
                    return true;
                }
            }
            false
        }
        FaultKind::RotateWritebackLane => {
            for op in ops.iter_mut() {
                for r in op.results.iter_mut() {
                    let rot = rots.iter().find(|(rob, _)| *rob == r.rob).map(|(_, rot)| *rot);
                    if let Some(rot) = rot {
                        if rot != 0 {
                            r.lane =
                                ((r.lane as i32 + rot as i32).rem_euclid(16)) as usize;
                            return true;
                        }
                    }
                }
            }
            false
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_names_a_checker() {
        for k in FaultKind::ALL {
            assert!(!k.expected_invariant().is_empty());
        }
    }

    #[test]
    fn issue_path_split_is_consistent() {
        let issue: Vec<_> =
            FaultKind::ALL.iter().filter(|k| k.targets_issue_path()).collect();
        assert_eq!(issue.len(), 2);
    }
}
