//! Reorder buffer.
//!
//! Entries are allocated in program order and committed in order (precise
//! state, §III/§V-B). An FMA entry is complete when every lane of its
//! destination physical register is ready — effectual lanes written by the
//! VPU, ineffectual lanes copied from the accumulator source by the
//! pass-through watchers in the core.

use crate::uop::{PhysId, RobId};
use std::collections::VecDeque;

/// Kind of a ROB entry (how completion is detected).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RobKind {
    /// Completion is flagged explicitly (`done` set by an event).
    Flagged,
    /// Complete when the destination physical register is fully ready.
    WaitDst(PhysId),
}

/// One ROB entry.
#[derive(Clone, Debug)]
pub struct RobEntry {
    /// Global sequence number (program order).
    pub seq: u64,
    /// How completion is detected.
    pub kind: RobKind,
    /// Set for [`RobKind::Flagged`] entries when they complete.
    pub done: bool,
    /// Physical registers to release when this entry commits (previous
    /// mapping of the renamed destination, cracked-load temps).
    pub frees: [Option<PhysId>; 2],
    /// Micro-fused with the following µop (an embedded-broadcast load fused
    /// with its VFMA): commits without consuming commit bandwidth, as the
    /// pair is one fused µop to the in-order ends of the pipeline.
    pub fused: bool,
    /// Architectural destination and its physical register, for retirement
    /// tracking (precise architectural state, §III / §V-B).
    pub arch_dst: Option<(save_isa::VReg, PhysId)>,
}

/// The reorder buffer: a bounded in-order queue.
#[derive(Clone, Debug)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
    next_seq: u64,
}

impl Rob {
    /// Creates an empty ROB of `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Rob { entries: VecDeque::with_capacity(capacity), capacity, next_seq: 0 }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the ROB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when allocation must stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Allocates an entry, returning its id (the sequence number).
    ///
    /// # Panics
    /// Panics if the ROB is full — callers must check [`Rob::is_full`].
    pub fn push(&mut self, kind: RobKind, frees: [Option<PhysId>; 2]) -> RobId {
        self.push_full(kind, frees, false, None)
    }

    /// Allocates an entry, optionally marking it micro-fused with the next.
    ///
    /// # Panics
    /// Panics if the ROB is full — callers must check [`Rob::is_full`].
    pub fn push_with_fusion(
        &mut self,
        kind: RobKind,
        frees: [Option<PhysId>; 2],
        fused: bool,
    ) -> RobId {
        self.push_full(kind, frees, fused, None)
    }

    /// Allocates an entry with full retirement metadata.
    ///
    /// # Panics
    /// Panics if the ROB is full — callers must check [`Rob::is_full`].
    pub fn push_full(
        &mut self,
        kind: RobKind,
        frees: [Option<PhysId>; 2],
        fused: bool,
        arch_dst: Option<(save_isa::VReg, PhysId)>,
    ) -> RobId {
        assert!(!self.is_full(), "ROB overflow");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(RobEntry { seq, kind, done: false, frees, fused, arch_dst });
        seq as RobId
    }

    /// Marks a flagged entry done. Returns `false` (instead of panicking)
    /// when `id` is not in flight — the core treats that as a model
    /// integrity violation rather than aborting the process.
    pub fn mark_done(&mut self, id: RobId) -> bool {
        match self.get_mut(id) {
            Some(e) => {
                e.done = true;
                true
            }
            None => false,
        }
    }

    /// Mutable access to an in-flight entry by id.
    pub fn get_mut(&mut self, id: RobId) -> Option<&mut RobEntry> {
        let head_seq = self.entries.front()?.seq;
        let idx = (id as u64).checked_sub(head_seq)? as usize;
        self.entries.get_mut(idx)
    }

    /// The oldest entry, if any.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Pops the oldest entry (caller has verified completion).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        self.entries.pop_front()
    }

    /// Iterates in-flight entries oldest-first (sanitizer state scans).
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_and_reports_full() {
        let mut rob = Rob::new(2);
        rob.push(RobKind::Flagged, [None, None]);
        assert!(!rob.is_full());
        rob.push(RobKind::Flagged, [None, None]);
        assert!(rob.is_full());
    }

    #[test]
    fn ids_are_stable_across_commits() {
        let mut rob = Rob::new(4);
        let a = rob.push(RobKind::Flagged, [None, None]);
        let b = rob.push(RobKind::Flagged, [None, None]);
        rob.mark_done(a);
        assert!(rob.head().unwrap().done);
        rob.pop_head();
        rob.mark_done(b);
        assert!(rob.head().unwrap().done);
        assert_eq!(rob.head().unwrap().seq, b as u64);
    }

    #[test]
    fn get_mut_rejects_retired() {
        let mut rob = Rob::new(4);
        let a = rob.push(RobKind::Flagged, [None, None]);
        rob.mark_done(a);
        rob.pop_head();
        assert!(rob.get_mut(a).is_none());
    }
}
