//! Execution statistics.

use serde::{Deserialize, Serialize};

/// Counters collected over one kernel run.
#[derive(Clone, Copy, Default, Debug, Serialize, Deserialize)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// µops committed.
    pub uops_committed: u64,
    /// VFMA µops committed.
    pub fma_uops: u64,
    /// Compacted VPU operations actually issued (the quantity SAVE reduces).
    pub vpu_ops: u64,
    /// Temp lanes filled across all issued VPU operations.
    pub lanes_issued: u64,
    /// Effectual lanes over all VFMAs as determined by the MGUs.
    pub lanes_effectual: u64,
    /// Total lanes over all VFMAs (`fma_uops * 16`).
    pub lanes_total: u64,
    /// VFMAs skipped entirely due to broadcasted sparsity (empty ELM).
    pub fmas_skipped_bs: u64,
    /// Mixed-precision multiplicand lanes consumed by compacted ops.
    pub mp_mls_issued: u64,
    /// Allocation stalls due to a full ROB.
    pub alloc_stall_rob: u64,
    /// Allocation stalls due to a full RS.
    pub alloc_stall_rs: u64,
    /// Allocation stalls due to physical-register exhaustion.
    pub alloc_stall_phys: u64,
    /// Loads issued to the memory system.
    pub loads_issued: u64,
    /// Stores issued.
    pub stores_issued: u64,
    /// Broadcast loads issued.
    pub bcast_loads: u64,
    /// Broadcast loads served (fully or partially) by the B$.
    pub bcast_hits: u64,
    /// Cycles in which at least one VPU op issued.
    pub vpu_busy_cycles: u64,
    /// Idle VPU cycles with no VFMA in the reservation station at all.
    pub vpu_idle_no_fma: u64,
    /// Idle VPU cycles with VFMAs present but none ready (operands or
    /// accumulator dependences outstanding).
    pub vpu_idle_not_ready: u64,
    /// Sum of per-cycle combination-window sizes (ready VFMAs in the RS),
    /// sampled on cycles where at least one VFMA was present.
    pub cw_sum: u64,
    /// Number of cycles sampled for the combination window.
    pub cw_samples: u64,
}

impl CoreStats {
    /// Committed µops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.uops_committed as f64 / self.cycles as f64
        }
    }

    /// Mean temp-lane occupancy of issued VPU ops (out of 16).
    pub fn mean_lanes_per_op(&self) -> f64 {
        if self.vpu_ops == 0 {
            0.0
        } else {
            self.lanes_issued as f64 / self.vpu_ops as f64
        }
    }

    /// Fraction of VFMA lanes that were effectual.
    pub fn effectual_fraction(&self) -> f64 {
        if self.lanes_total == 0 {
            0.0
        } else {
            self.lanes_effectual as f64 / self.lanes_total as f64
        }
    }

    /// Mean combination-window size over the run — the paper observes CWs
    /// of 24-28 for large GEMMs with 32 ISA registers (§III).
    pub fn mean_cw(&self) -> f64 {
        if self.cw_samples == 0 {
            0.0
        } else {
            self.cw_sum as f64 / self.cw_samples as f64
        }
    }

    /// VPU-operation reduction relative to one op per VFMA.
    pub fn compaction_ratio(&self) -> f64 {
        if self.vpu_ops == 0 {
            0.0
        } else {
            self.fma_uops as f64 / self.vpu_ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = CoreStats {
            cycles: 100,
            uops_committed: 250,
            fma_uops: 100,
            vpu_ops: 50,
            lanes_issued: 400,
            lanes_effectual: 400,
            lanes_total: 1600,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mean_lanes_per_op() - 8.0).abs() < 1e-12);
        assert!((s.effectual_fraction() - 0.25).abs() < 1e-12);
        assert!((s.compaction_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mean_lanes_per_op(), 0.0);
        assert_eq!(s.effectual_fraction(), 0.0);
        assert_eq!(s.compaction_ratio(), 0.0);
    }
}
