//! Execution statistics.

use serde::{Deserialize, Serialize};

/// Counters collected over one kernel run.
///
/// All fields are `u64` counters, so equality is exact — the determinism
/// and fast-forward purity tests compare whole structs.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// µops committed.
    pub uops_committed: u64,
    /// VFMA µops committed.
    pub fma_uops: u64,
    /// Compacted VPU operations actually issued (the quantity SAVE reduces).
    pub vpu_ops: u64,
    /// Temp lanes filled across all issued VPU operations.
    pub lanes_issued: u64,
    /// Effectual lanes over all VFMAs as determined by the MGUs.
    pub lanes_effectual: u64,
    /// Total lanes over all VFMAs (`fma_uops * 16`).
    pub lanes_total: u64,
    /// VFMAs skipped entirely due to broadcasted sparsity (empty ELM).
    pub fmas_skipped_bs: u64,
    /// Mixed-precision multiplicand lanes consumed by compacted ops.
    pub mp_mls_issued: u64,
    /// Allocation stalls due to a full ROB.
    pub alloc_stall_rob: u64,
    /// Allocation stalls due to a full RS.
    pub alloc_stall_rs: u64,
    /// Allocation stalls due to physical-register exhaustion.
    pub alloc_stall_phys: u64,
    /// Loads issued to the memory system.
    pub loads_issued: u64,
    /// Stores issued.
    pub stores_issued: u64,
    /// Broadcast loads issued.
    pub bcast_loads: u64,
    /// Broadcast loads served (fully or partially) by the B$.
    pub bcast_hits: u64,
    /// Cycles in which at least one VPU op issued.
    pub vpu_busy_cycles: u64,
    /// Idle VPU cycles with no VFMA in the reservation station at all.
    pub vpu_idle_no_fma: u64,
    /// Idle VPU cycles with VFMAs present but none ready (operands or
    /// accumulator dependences outstanding).
    pub vpu_idle_not_ready: u64,
    /// Sum of per-cycle combination-window sizes (ready VFMAs in the RS),
    /// sampled on cycles where at least one VFMA was present.
    pub cw_sum: u64,
    /// Number of cycles sampled for the combination window.
    pub cw_samples: u64,
}

impl CoreStats {
    /// Per-field difference `self - before` (saturating never occurs in
    /// practice: counters only grow). Used by the fast-forward machinery to
    /// capture what one inert probe cycle contributed, so skipped cycles
    /// can replay it exactly.
    ///
    /// Full destructuring keeps this exhaustive at compile time: adding a
    /// counter without deciding its delta semantics is a build error.
    pub fn delta_since(&self, before: &CoreStats) -> CoreStats {
        let CoreStats {
            cycles,
            uops_committed,
            fma_uops,
            vpu_ops,
            lanes_issued,
            lanes_effectual,
            lanes_total,
            fmas_skipped_bs,
            mp_mls_issued,
            alloc_stall_rob,
            alloc_stall_rs,
            alloc_stall_phys,
            loads_issued,
            stores_issued,
            bcast_loads,
            bcast_hits,
            vpu_busy_cycles,
            vpu_idle_no_fma,
            vpu_idle_not_ready,
            cw_sum,
            cw_samples,
        } = *self;
        CoreStats {
            cycles: cycles - before.cycles,
            uops_committed: uops_committed - before.uops_committed,
            fma_uops: fma_uops - before.fma_uops,
            vpu_ops: vpu_ops - before.vpu_ops,
            lanes_issued: lanes_issued - before.lanes_issued,
            lanes_effectual: lanes_effectual - before.lanes_effectual,
            lanes_total: lanes_total - before.lanes_total,
            fmas_skipped_bs: fmas_skipped_bs - before.fmas_skipped_bs,
            mp_mls_issued: mp_mls_issued - before.mp_mls_issued,
            alloc_stall_rob: alloc_stall_rob - before.alloc_stall_rob,
            alloc_stall_rs: alloc_stall_rs - before.alloc_stall_rs,
            alloc_stall_phys: alloc_stall_phys - before.alloc_stall_phys,
            loads_issued: loads_issued - before.loads_issued,
            stores_issued: stores_issued - before.stores_issued,
            bcast_loads: bcast_loads - before.bcast_loads,
            bcast_hits: bcast_hits - before.bcast_hits,
            vpu_busy_cycles: vpu_busy_cycles - before.vpu_busy_cycles,
            vpu_idle_no_fma: vpu_idle_no_fma - before.vpu_idle_no_fma,
            vpu_idle_not_ready: vpu_idle_not_ready - before.vpu_idle_not_ready,
            cw_sum: cw_sum - before.cw_sum,
            cw_samples: cw_samples - before.cw_samples,
        }
    }

    /// Adds `n × delta` to every counter — replaying `n` skipped inert
    /// cycles whose per-cycle contribution was `delta`. The `cycles` field
    /// is managed by the caller (the core sets it from the clock), so a
    /// fast-forward delta carries `cycles == 0`.
    pub fn add_scaled(&mut self, delta: &CoreStats, n: u64) {
        let CoreStats {
            cycles,
            uops_committed,
            fma_uops,
            vpu_ops,
            lanes_issued,
            lanes_effectual,
            lanes_total,
            fmas_skipped_bs,
            mp_mls_issued,
            alloc_stall_rob,
            alloc_stall_rs,
            alloc_stall_phys,
            loads_issued,
            stores_issued,
            bcast_loads,
            bcast_hits,
            vpu_busy_cycles,
            vpu_idle_no_fma,
            vpu_idle_not_ready,
            cw_sum,
            cw_samples,
        } = *delta;
        self.cycles += cycles * n;
        self.uops_committed += uops_committed * n;
        self.fma_uops += fma_uops * n;
        self.vpu_ops += vpu_ops * n;
        self.lanes_issued += lanes_issued * n;
        self.lanes_effectual += lanes_effectual * n;
        self.lanes_total += lanes_total * n;
        self.fmas_skipped_bs += fmas_skipped_bs * n;
        self.mp_mls_issued += mp_mls_issued * n;
        self.alloc_stall_rob += alloc_stall_rob * n;
        self.alloc_stall_rs += alloc_stall_rs * n;
        self.alloc_stall_phys += alloc_stall_phys * n;
        self.loads_issued += loads_issued * n;
        self.stores_issued += stores_issued * n;
        self.bcast_loads += bcast_loads * n;
        self.bcast_hits += bcast_hits * n;
        self.vpu_busy_cycles += vpu_busy_cycles * n;
        self.vpu_idle_no_fma += vpu_idle_no_fma * n;
        self.vpu_idle_not_ready += vpu_idle_not_ready * n;
        self.cw_sum += cw_sum * n;
        self.cw_samples += cw_samples * n;
    }

    /// Committed µops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.uops_committed as f64 / self.cycles as f64
        }
    }

    /// Mean temp-lane occupancy of issued VPU ops (out of 16).
    pub fn mean_lanes_per_op(&self) -> f64 {
        if self.vpu_ops == 0 {
            0.0
        } else {
            self.lanes_issued as f64 / self.vpu_ops as f64
        }
    }

    /// Fraction of VFMA lanes that were effectual.
    pub fn effectual_fraction(&self) -> f64 {
        if self.lanes_total == 0 {
            0.0
        } else {
            self.lanes_effectual as f64 / self.lanes_total as f64
        }
    }

    /// Mean combination-window size over the run — the paper observes CWs
    /// of 24-28 for large GEMMs with 32 ISA registers (§III).
    pub fn mean_cw(&self) -> f64 {
        if self.cw_samples == 0 {
            0.0
        } else {
            self.cw_sum as f64 / self.cw_samples as f64
        }
    }

    /// VPU-operation reduction relative to one op per VFMA.
    pub fn compaction_ratio(&self) -> f64 {
        if self.vpu_ops == 0 {
            0.0
        } else {
            self.fma_uops as f64 / self.vpu_ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = CoreStats {
            cycles: 100,
            uops_committed: 250,
            fma_uops: 100,
            vpu_ops: 50,
            lanes_issued: 400,
            lanes_effectual: 400,
            lanes_total: 1600,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mean_lanes_per_op() - 8.0).abs() < 1e-12);
        assert!((s.effectual_fraction() - 0.25).abs() < 1e-12);
        assert!((s.compaction_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mean_lanes_per_op(), 0.0);
        assert_eq!(s.effectual_fraction(), 0.0);
        assert_eq!(s.compaction_ratio(), 0.0);
    }
}
