//! The cycle loop: allocation/rename, MGU, select/issue, write-back, commit.
//!
//! Stage order within a simulated cycle is write-back → pass-through
//! watchers → commit → load/store + VPU issue → mask generation →
//! allocation, so a value written back in cycle *t* can wake a dependent in
//! the same cycle (full-latency back-to-back), while a newly allocated VFMA
//! needs one cycle for mask generation before it can enter the combination
//! window — mirroring the paper's pipeline (Fig 3).

use crate::config::{CoreConfig, SchedulerKind};
use crate::diag::{StallCause, StallDiag};
use crate::fault::{self, FaultKind, FaultPlan};
use crate::lsu::{LoadEvent, Lsu};
use crate::mgu;
use crate::replay::{FuncTrace, Recorder};
use crate::sanitizer::{Sanitizer, SanitizerReport};
use crate::rename::{PhysRegFile, RenameTable, ALL_LANES};
use crate::rob::{Rob, RobKind};
use crate::rs::{FmaEntry, Rs, RsEntry, NO_FWD};
use crate::sched;
use crate::stats::CoreStats;
use crate::trace::{TraceEvent, Tracer};
use crate::uop::{crack, FmaPrecision, PhysId, RobId, Uop};
use crate::vpu::{VpuOp, VpuPipeline};
use save_isa::{Program, VecF32, LANES, NUM_VREGS};
use save_mem::{CoreMemory, UncoreAccess};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How many cycles a cancellable core runs between checks of its cancel
/// flag — the "cycle quantum" of cooperative cancellation. An in-flight
/// run reacts to a cancel request within one quantum (plus at most one
/// fast-forward jump, which is bounded by the watchdog horizon).
pub const CANCEL_QUANTUM: u64 = 4096;

/// Result of running a kernel to completion.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Counters for the run.
    pub stats: CoreStats,
    /// `false` if the run hit [`CoreConfig::max_cycles`] or tripped the
    /// retire-progress watchdog.
    pub completed: bool,
    /// Pipeline snapshot explaining *why* the run stopped early; `None`
    /// when `completed` is `true`.
    pub stall: Option<StallDiag>,
    /// Set when the sanitizer (or an internal integrity check) detected an
    /// invariant violation — the run is aborted with `completed == false`.
    pub violation: Option<Box<SanitizerReport>>,
    /// `true` when the run stopped because its cancel flag (see
    /// [`Core::set_cancel`]) was raised — cooperative cancellation, not a
    /// stall: `completed == false` and `stall == None`.
    pub cancelled: bool,
}

impl RunOutcome {
    /// Wall-clock execution time in seconds at the configured frequency.
    pub fn seconds(&self, cfg: &CoreConfig) -> f64 {
        cfg.cycles_to_seconds(self.stats.cycles)
    }
}

/// Copies ineffectual-lane values from the accumulator source to the
/// destination as the source lanes become ready (the rename-level move that
/// implements lane pass-through and whole-VFMA skipping).
#[derive(Clone, Copy, Debug)]
struct Watcher {
    src: PhysId,
    dst: PhysId,
    remaining: u16,
}

/// Outcome of one ELM-generation attempt in [`Core::run_mgus`].
enum MguTry {
    /// No longer a pending candidate (left the RS, or already generated).
    Stale,
    /// Operands not yet ready; the VFMA stays queued.
    NotReady,
    /// ELM generated this cycle, consuming MGU bandwidth.
    Generated,
}

/// The out-of-order core.
pub struct Core {
    cfg: CoreConfig,
    prf: PhysRegFile,
    rt: RenameTable,
    rob: Rob,
    rs: Rs,
    vpu: VpuPipeline,
    lsu: Lsu,
    watchers: Vec<Watcher>,
    pend: VecDeque<Uop>,
    fma_producer: [Option<RobId>; NUM_VREGS],
    pending_temp: Option<PhysId>,
    stats: CoreStats,
    inst_idx: usize,
    cycle: u64,
    finished: bool,
    arch_vregs: [VecF32; NUM_VREGS],
    uop_commit_limit: Option<u64>,
    tracer: Option<Box<dyn Tracer>>,
    last_alloc_rob: RobId,
    alloc_stalled_until: u64,
    last_commit_cycle: u64,
    san: Option<Box<Sanitizer>>,
    fault_pending: Option<FaultPlan>,
    model_fault: Option<SanitizerReport>,
    // Functional-trace record/replay (see `crate::replay`). Allocation
    // sequence counters index the trace: the k-th allocated FMA/load is the
    // same static operation under every timing configuration.
    fma_seq: u64,
    load_seq: u64,
    rec: Option<Box<Recorder>>,
    rep: Option<Arc<FuncTrace>>,
    // ROB ids of VFMAs still awaiting ELM generation, allocation (=
    // program) order. `run_mgus` walks this instead of the whole station;
    // a reorder fault falls back to the full scan (see `Rs::order_intact`).
    elm_queue: Vec<RobId>,
    elm_scratch: Vec<RobId>,
    // `SAVE_DEBUG_IDLE` probed once at construction: the per-cycle
    // `env::var_os` call used to rescan the environment on every idle
    // cycle, which is pure host overhead on memory-bound kernels.
    debug_idle: bool,
    // Reusable per-cycle buffers: the cycle loop allocates nothing in
    // steady state (see DESIGN.md, host performance).
    sx: sched::SelectScratch,
    ops_buf: Vec<VpuOp>,
    vpu_done: Vec<VpuOp>,
    lsu_done: Vec<LoadEvent>,
    stores_buf: Vec<RobId>,
    crack_buf: Vec<Uop>,
    // Event-driven fast-forward state: whether the last step was provably
    // inert, the statistics delta one such inert cycle contributes
    // (replayed verbatim for each skipped cycle), and the cached next-event
    // cycle (valid until the next real step — an inert core's pending
    // events are fixed at issue time, so nothing can move them).
    ff_inert: bool,
    last_delta: CoreStats,
    ff_next: Option<u64>,
    // Cooperative cancellation: an optional shared flag polled every
    // CANCEL_QUANTUM cycles (and after every fast-forward jump). `None`
    // costs one well-predicted branch per cycle.
    cancel: Option<Arc<AtomicBool>>,
    cancel_countdown: u64,
}

impl Core {
    /// Creates a core in its reset state.
    pub fn new(cfg: CoreConfig) -> Self {
        let mut prf = PhysRegFile::new(cfg.phys_regs);
        let rt = RenameTable::new(&mut prf);
        Core {
            prf,
            rt,
            rob: Rob::new(cfg.rob_entries),
            rs: Rs::new(cfg.rs_entries),
            vpu: VpuPipeline::new(),
            lsu: Lsu::new(),
            watchers: Vec::new(),
            pend: VecDeque::new(),
            fma_producer: [None; NUM_VREGS],
            pending_temp: None,
            stats: CoreStats::default(),
            inst_idx: 0,
            cycle: 0,
            finished: false,
            arch_vregs: [VecF32::ZERO; NUM_VREGS],
            uop_commit_limit: None,
            tracer: None,
            last_alloc_rob: 0,
            alloc_stalled_until: 0,
            last_commit_cycle: 0,
            san: if cfg.sanitize.enabled() {
                Some(Box::new(Sanitizer::new(cfg.sanitize)))
            } else {
                None
            },
            // A fault plan without an attached sanitizer would corrupt
            // results with nothing watching; injection is for self-test
            // only, so it requires checking to be enabled.
            fault_pending: if cfg.sanitize.enabled() { cfg.fault } else { None },
            model_fault: None,
            fma_seq: 0,
            load_seq: 0,
            rec: None,
            rep: None,
            elm_queue: Vec::new(),
            elm_scratch: Vec::new(),
            debug_idle: std::env::var_os("SAVE_DEBUG_IDLE").is_some(),
            sx: sched::SelectScratch::new(),
            ops_buf: Vec::new(),
            vpu_done: Vec::new(),
            lsu_done: Vec::new(),
            stores_buf: Vec::new(),
            crack_buf: Vec::new(),
            ff_inert: false,
            last_delta: CoreStats::default(),
            ff_next: None,
            cancel: None,
            cancel_countdown: CANCEL_QUANTUM,
            cfg,
        }
    }

    /// Attaches a shared cancel flag. Once the flag is `true`, the run
    /// stops at the next cycle-quantum boundary ([`CANCEL_QUANTUM`]) with
    /// an outcome whose `cancelled` field is set. Detached cores (the
    /// default) never observe cancellation.
    pub fn set_cancel(&mut self, flag: Arc<AtomicBool>) {
        self.cancel = Some(flag);
        self.cancel_countdown = CANCEL_QUANTUM;
    }

    /// Polls the cancel flag on its quantum; returns `true` when the run
    /// must stop. Relaxed ordering suffices: the flag only ever goes
    /// false→true and a one-quantum delay is within the contract.
    fn cancel_due(&mut self) -> bool {
        let Some(flag) = &self.cancel else { return false };
        self.cancel_countdown -= 1;
        if self.cancel_countdown > 0 {
            return false;
        }
        self.cancel_countdown = CANCEL_QUANTUM;
        flag.load(Ordering::Relaxed)
    }

    /// The cancelled-run outcome: not completed, no stall diagnosis, no
    /// violation — cancellation is an external event, not a model failure.
    fn cancelled_outcome(&mut self) -> RunOutcome {
        self.finished = true;
        RunOutcome {
            stats: self.stats,
            completed: false,
            stall: None,
            violation: None,
            cancelled: true,
        }
    }

    /// Records an internal model inconsistency (previously a panic on the
    /// run path) as a typed violation; the current step ends the run.
    fn integrity(&mut self, rob: Option<RobId>, witness: String) {
        if self.model_fault.is_none() {
            self.model_fault = Some(SanitizerReport {
                invariant: "model-integrity".to_string(),
                cycle: self.cycle,
                rob: rob.map(|r| r as u64),
                witness,
            });
        }
    }

    /// Attaches a pipeline tracer (see [`crate::trace`]). Costs nothing
    /// when unset. Also disables event-driven fast-forward for this core:
    /// skipped inert cycles would be invisible to the tracer, truncating
    /// the event stream (cycle counts and statistics are unaffected either
    /// way — fast-forward is observationally pure for those).
    pub fn set_tracer(&mut self, t: Box<dyn Tracer>) {
        self.tracer = Some(t);
    }

    /// Arms functional-trace recording (see [`crate::replay`]). Recording
    /// only copies out facts the run computes anyway, so a recording run's
    /// timing, statistics and outputs are bit-identical to a plain run.
    pub fn set_record(&mut self) {
        self.rec = Some(Box::new(Recorder::new()));
    }

    /// Finalizes and returns the trace recorded since [`Core::set_record`];
    /// `None` when recording was never armed. Check
    /// [`FuncTrace::replayable`] before reusing the result.
    pub fn take_trace(&mut self) -> Option<FuncTrace> {
        self.rec.take().map(|r| r.finalize())
    }

    /// Attaches a functional trace for replay: loads deliver zero with
    /// their recorded class, MGUs serve recorded masks, and schedulers
    /// elide value math — cycles, [`CoreStats`] and scheduling decisions
    /// are bit-identical to direct execution of the recorded program.
    pub fn set_replay(&mut self, t: Arc<FuncTrace>) {
        self.rep = Some(t);
    }

    fn trace(&mut self, ev: TraceEvent) {
        if let Some(t) = self.tracer.as_mut() {
            t.event(&ev);
        }
    }

    /// The retired (architecturally committed) vector register state — the
    /// state a precise exception at the current commit boundary would
    /// expose (§III, §V-B).
    pub fn arch_vregs(&self) -> &[VecF32; NUM_VREGS] {
        &self.arch_vregs
    }

    /// Runs until exactly `n` µops have committed (or the program drains),
    /// then returns the precise architectural register state at that commit
    /// boundary together with the outcome so far. Used by the
    /// precise-state tests to compare against an in-order reference at
    /// arbitrary exception points.
    pub fn run_until_uops(
        mut self,
        n: u64,
        program: &Program,
        mem: &mut save_isa::Memory,
        cmem: &mut CoreMemory,
        uncore: &mut dyn UncoreAccess,
    ) -> ([VecF32; NUM_VREGS], CoreStats) {
        cmem.set_freq(self.cfg.freq_ghz);
        self.uop_commit_limit = Some(n);
        loop {
            if let Some(_outcome) = self.step(program, mem, cmem, uncore) {
                return (self.arch_vregs, self.stats);
            }
            if self.stats.uops_committed >= n {
                return (self.arch_vregs, self.stats);
            }
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Runs `program` to completion against the functional memory `mem` and
    /// the timing memory `cmem`/`uncore`. Consumes the core (one run per
    /// reset state).
    pub fn run(
        mut self,
        program: &Program,
        mem: &mut save_isa::Memory,
        cmem: &mut CoreMemory,
        uncore: &mut dyn UncoreAccess,
    ) -> RunOutcome {
        self.run_mut(program, mem, cmem, uncore)
    }

    /// In-place variant of [`Core::run`] for callers that need the core
    /// after the run (e.g. to [`Core::take_trace`] a recorded trace). The
    /// core is spent once the outcome returns — further steps report the
    /// finished outcome.
    pub fn run_mut(
        &mut self,
        program: &Program,
        mem: &mut save_isa::Memory,
        cmem: &mut CoreMemory,
        uncore: &mut dyn UncoreAccess,
    ) -> RunOutcome {
        cmem.set_freq(self.cfg.freq_ghz);
        loop {
            if let Some(outcome) = self.step(program, mem, cmem, uncore) {
                return outcome;
            }
            // Event-driven fast-forward: when the cycle above was provably
            // inert, jump straight to the next cycle anything can happen.
            if let Some(target) = self.ff_target() {
                if let Some(outcome) = self.advance_to(target) {
                    return outcome;
                }
            }
        }
    }

    /// Runs the core until its local clock reaches `limit` (or the program
    /// drains / the run aborts — then the outcome is returned). The
    /// relaxed-sync multicore engine calls this once per quantum against a
    /// core-private uncore view; fast-forward jumps are clamped to the
    /// quantum end so the core never runs past the barrier.
    pub fn run_until_cycle(
        &mut self,
        limit: u64,
        program: &Program,
        mem: &mut save_isa::Memory,
        cmem: &mut CoreMemory,
        uncore: &mut dyn UncoreAccess,
    ) -> Option<RunOutcome> {
        cmem.set_freq(self.cfg.freq_ghz);
        while self.cycle < limit {
            if let Some(outcome) = self.step(program, mem, cmem, uncore) {
                return Some(outcome);
            }
            if let Some(target) = self.ff_target() {
                let clamped = target.min(limit);
                if clamped > self.cycle {
                    if let Some(outcome) = self.advance_to(clamped) {
                        return Some(outcome);
                    }
                }
            }
        }
        None
    }

    /// `true` once the core has drained the whole program.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Advances the core by one cycle; returns the outcome when the program
    /// drains (or the cycle limit is hit). The multicore machine in
    /// `save-sim` interleaves several cores over a shared [`Uncore`] by
    /// calling this per core per cycle.
    pub fn step(
        &mut self,
        program: &Program,
        mem: &mut save_isa::Memory,
        cmem: &mut CoreMemory,
        uncore: &mut dyn UncoreAccess,
    ) -> Option<RunOutcome> {
        if self.finished {
            return Some(RunOutcome {
                stats: self.stats,
                completed: true,
                stall: None,
                violation: None,
                cancelled: false,
            });
        }
        let insts = &program.insts;
        let mut inst_idx = self.inst_idx;
        let cycle = self.cycle;
        // Fast-forward activity tracking: `active` records state mutations
        // that leave no statistics footprint; everything else is detected by
        // diffing `stats_before` at the end of the cycle.
        let stats_before = self.stats;
        let pend_before = self.pend.len();
        let mut active = false;
        {
            // 1. Write-back. Drained ops hand their lane-result payloads
            // back to the scheduling scratch for reuse.
            self.vpu.drain_completed_into(cycle, &mut self.vpu_done);
            active |= !self.vpu_done.is_empty();
            for op in self.vpu_done.drain(..) {
                for r in &op.results {
                    self.prf.write_lane(r.dst, r.lane, r.value);
                }
                self.sx.recycle(op.results);
            }
            self.lsu.drain_completed_into(cycle, &mut self.lsu_done);
            active |= !self.lsu_done.is_empty();
            for ev in self.lsu_done.drain(..) {
                self.prf.write_all(ev.dst, ev.value);
            }
            active |= self.run_watchers();

            // 2. Commit.
            let mut committed = 0;
            while committed < self.cfg.commit_width {
                let done = match self.rob.head() {
                    None => break,
                    Some(h) => match h.kind {
                        RobKind::Flagged => h.done,
                        RobKind::WaitDst(p) => self.prf.fully_ready(p),
                    },
                };
                if !done {
                    break;
                }
                if let Some(limit) = self.uop_commit_limit {
                    if self.stats.uops_committed >= limit {
                        break;
                    }
                }
                let Some(e) = self.rob.pop_head() else {
                    self.integrity(
                        None,
                        "commit saw a completed ROB head but the queue was empty".to_string(),
                    );
                    break;
                };
                active = true;
                if self.tracer.is_some() {
                    let seq = e.seq as RobId;
                    self.trace(TraceEvent::Commit { cycle, rob: seq });
                }
                // Sanitizer commit checks run before the frees are released
                // so both accumulator registers still hold their values.
                if let Some(s) = self.san.as_mut() {
                    s.on_commit(&e, &self.prf, cycle);
                }
                if let Some((vreg, phys)) = e.arch_dst {
                    self.arch_vregs[vreg.index()] = *self.prf.value(phys);
                }
                for f in e.frees.into_iter().flatten() {
                    self.prf.release(f);
                }
                self.stats.uops_committed += 1;
                self.last_commit_cycle = cycle;
                if !e.fused {
                    committed += 1;
                }
            }

            // 3. Issue: memory first, then VPUs. The store-completion list
            // is core-owned scratch (taken for the duration of the borrow
            // because `integrity` needs `&mut self`).
            let mut stores_done = std::mem::take(&mut self.stores_buf);
            self.lsu.issue_cycle_bounded(
                &mut self.rs,
                &self.prf,
                mem,
                cmem,
                uncore,
                self.cfg.load_ports,
                self.cfg.load_buffer,
                self.cfg.store_ports,
                self.cfg.freq_ghz,
                cycle,
                &mut self.stats,
                &mut stores_done,
                self.rec.as_deref_mut(),
                self.rep.as_deref(),
            );
            for r in stores_done.drain(..) {
                if !self.rob.mark_done(r) {
                    self.integrity(
                        Some(r),
                        format!("store completion targeted rob {r}, which is not in flight"),
                    );
                }
            }
            self.stores_buf = stores_done;
            // Refresh the combination-window scoreboard (one sched_mask
            // evaluation per entry, shared with select) and sample its
            // size — §III observes 24-28, bounded by the 32 architectural
            // accumulator registers.
            if self.cfg.scheduler != SchedulerKind::Baseline {
                sched::window_masks(&self.rs, &self.prf, self.cfg.lane_wise, &mut self.sx);
                let cw = self.sx.window_len() as u64;
                if cw > 0 {
                    self.stats.cw_sum += cw;
                    self.stats.cw_samples += 1;
                }
            }
            // Sanitizer: snapshot the vertical-coalescing candidate set for
            // the Algorithm 1 age-order check on cycles where vertical
            // select will run (heavier, so gated on the sanitize stride).
            if let Some(s) = self.san.as_mut() {
                let vertical_selects = self.cfg.scheduler == SchedulerKind::Vertical
                    && !(self.cfg.mp_compress
                        && sched::oldest_window_precision(&self.rs, &self.prf)
                            == Some(FmaPrecision::Bf16));
                if vertical_selects && s.due(cycle) {
                    s.snapshot_vc(&self.rs, &self.prf, self.cfg.lane_wise);
                } else {
                    s.clear_snapshot();
                }
            }
            // An issue-path fault needs each candidate's rotation state to
            // mis-rotate a writeback lane; gather before select consumes
            // the entries' masks.
            let issue_fault = self
                .fault_pending
                .filter(|p| p.kind.targets_issue_path() && cycle >= p.at_cycle);
            let rots: Vec<(RobId, i8)> = if issue_fault.is_some() {
                self.rs
                    .iter()
                    .filter_map(|e| match e {
                        RsEntry::Fma(f) => Some((f.rob, f.rot)),
                        _ => None,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let mut ops = std::mem::take(&mut self.ops_buf);
            sched::select(
                &mut self.rs,
                &self.prf,
                &self.cfg,
                cycle,
                &mut self.stats,
                &mut self.sx,
                &mut ops,
                self.rec.as_deref_mut(),
                self.rep.is_some(),
            );
            if let Some(plan) = issue_fault {
                if fault::apply_issue_fault(plan, &mut ops, &rots) {
                    self.fault_pending = None;
                }
            }
            if let Some(s) = self.san.as_mut() {
                s.check_issue(&ops, &self.prf, cycle);
            }
            if !ops.is_empty() {
                self.stats.vpu_busy_cycles += 1;
                for op in ops.drain(..) {
                    if self.tracer.is_some() {
                        let mut from: Vec<RobId> =
                            op.results.iter().map(|r| r.rob).collect();
                        from.dedup();
                        let lanes = op.results.len();
                        self.trace(TraceEvent::VpuIssue { cycle, lanes, from });
                    }
                    self.vpu.issue(op);
                }
                self.ops_buf = ops;
            } else {
                self.ops_buf = ops;
                let has_fma = self.rs.iter().any(|e| matches!(e, RsEntry::Fma(_)));
                if has_fma {
                    self.stats.vpu_idle_not_ready += 1;
                    if self.debug_idle && self.stats.vpu_idle_not_ready % 97 == 1 {
                        let mut wait_a = 0;
                        let mut wait_b = 0;
                        let mut wait_acc = 0;
                        let mut wait_elm = 0;
                        for e in self.rs.iter() {
                            if let RsEntry::Fma(f) = e {
                                if !self.prf.fully_ready(f.a) {
                                    wait_a += 1;
                                } else if !self.prf.fully_ready(f.b) {
                                    wait_b += 1;
                                } else if !f.elm_ready
                                    && self.cfg.scheduler != SchedulerKind::Baseline
                                {
                                    wait_elm += 1;
                                } else if !self.prf.fully_ready(f.acc_src) {
                                    wait_acc += 1;
                                }
                            }
                        }
                        eprintln!(
                            "cycle {cycle}: idle, rs={} wait_a={wait_a} wait_b={wait_b} wait_elm={wait_elm} wait_acc={wait_acc}",
                            self.rs.len()
                        );
                    }
                } else {
                    self.stats.vpu_idle_no_fma += 1;
                }
            }
            // Sweep fully scheduled VFMAs out of the RS (Algorithm 1 lines
            // 12-14, including whole-VFMA BS skips).
            active |= self.sweep_rs(cycle);

            // 4. Mask generation (SAVE only).
            if self.cfg.scheduler != SchedulerKind::Baseline {
                self.run_mgus(cycle);
                // Capture fresh ELMs before the sweep removes BS skips, so
                // the sanitizer's expectation is the ground-truth mask.
                if let Some(s) = self.san.as_mut() {
                    s.sync_elms(&self.rs);
                }
                active |= self.sweep_rs(cycle);
            }

            // 5. Allocate / rename.
            let mut slots = if cycle < self.alloc_stalled_until { 0 } else { self.cfg.issue_width };
            while slots > 0 {
                while self.pend.len() < self.cfg.issue_width && inst_idx < insts.len() {
                    self.crack_buf.clear();
                    crack(&insts[inst_idx], &mut self.crack_buf);
                    inst_idx += 1;
                    self.pend.extend(self.crack_buf.drain(..));
                }
                let Some(u) = self.pend.front().copied() else { break };
                if let Uop::Bubble(n) = u {
                    // A front-end redirect: fetch restarts after n cycles.
                    self.alloc_stalled_until = cycle + 1 + n as u64;
                    self.pend.pop_front();
                    break;
                }
                if !self.try_allocate(&u) {
                    break;
                }
                if self.tracer.is_some() {
                    let rob = self.last_alloc_rob;
                    self.trace(TraceEvent::Alloc { cycle, rob, what: format!("{u:?}") });
                }
                // An embedded-broadcast load is micro-fused with its VFMA:
                // the pair moves through allocation as one µop.
                let fused_free = matches!(u, Uop::Load { dst: None, .. });
                self.pend.pop_front();
                if !fused_free {
                    slots -= 1;
                }
            }

            // 6. Fault injection (state faults) and sanitizer state scans.
            // State faults land after allocation and before the end-of-step
            // scan so a freed-but-live register is caught this cycle under
            // Full, before a later allocation could re-grab it and mask the
            // inconsistency.
            if let Some(plan) = self.fault_pending {
                if !plan.kind.targets_issue_path()
                    && cycle >= plan.at_cycle
                    && self.apply_state_fault(plan, cmem)
                {
                    self.fault_pending = None;
                }
            }
            if let Some(s) = self.san.as_mut() {
                if s.due(cycle) {
                    s.check_state(
                        &self.prf,
                        &self.rt,
                        &self.rob,
                        &self.rs,
                        self.pending_temp,
                        cycle,
                    );
                    // B$ freshness: audit one entry per scan, round-robin.
                    // Under replay the functional arena is empty, so the
                    // expected masks come from the trace (the recorder
                    // poisons any trace whose line masks went stale).
                    if let Some(n) = cmem.bcast_entries() {
                        if n > 0 {
                            let idx = s.next_bcast_idx(n);
                            let stale = match self.rep.as_deref() {
                                Some(t) => cmem.audit_bcast_entry(idx, |line| {
                                    t.bcast_lines.get(&line).copied().unwrap_or(0)
                                }),
                                None => cmem.audit_bcast_entry(idx, |line| {
                                    crate::lsu::line_zero_mask(mem, line * save_mem::LINE_BYTES)
                                }),
                            };
                            if let Some((line, stored, actual)) = stale {
                                s.report_bcast_stale(cycle, line, stored, actual);
                            }
                        }
                    }
                }
            }
        }
        // Allocation progress: cracking advances `inst_idx`; bubble
        // consumption and successful allocation both change the pending
        // queue length (a crack-and-allocate cycle that restores the length
        // still moves `inst_idx`).
        active |= inst_idx != self.inst_idx || self.pend.len() != pend_before;
        self.inst_idx = inst_idx;
        self.cycle = cycle + 1;
        self.stats.cycles = self.cycle;
        // Classify the cycle for fast-forward. A cycle is inert when no
        // tracked mutation happened AND no work-counting statistic moved;
        // idle/stall counters (and the CW sample) are allowed to move — they
        // are exactly what `last_delta` replays for each skipped cycle.
        // The clock is already advanced, so the cached next-event target is
        // computed against the next probe cycle.
        if self.ff_allowed() {
            let mut d = self.stats.delta_since(&stats_before);
            d.cycles = 0;
            let progressed = active
                || d.uops_committed != 0
                || d.fma_uops != 0
                || d.vpu_ops != 0
                || d.vpu_busy_cycles != 0
                || d.lanes_issued != 0
                || d.lanes_effectual != 0
                || d.lanes_total != 0
                || d.fmas_skipped_bs != 0
                || d.mp_mls_issued != 0
                || d.loads_issued != 0
                || d.stores_issued != 0
                || d.bcast_loads != 0
                || d.bcast_hits != 0;
            self.ff_inert = !progressed;
            self.ff_next = if self.ff_inert {
                self.last_delta = d;
                Some(self.compute_ff_target())
            } else {
                None
            };
        } else {
            self.ff_inert = false;
            self.ff_next = None;
        }
        let violation = match self.san.as_mut() {
            Some(s) => self.model_fault.take().or_else(|| s.take_violation()),
            None => self.model_fault.take(),
        };
        if let Some(v) = violation {
            self.finished = true;
            return Some(RunOutcome {
                stats: self.stats,
                completed: false,
                stall: None,
                violation: Some(Box::new(v)),
                cancelled: false,
            });
        }
        if self.pend.is_empty() && inst_idx == insts.len() && self.rob.is_empty() {
            self.finished = true;
            return Some(RunOutcome {
                stats: self.stats,
                completed: true,
                stall: None,
                violation: None,
                cancelled: false,
            });
        }
        // Cooperative cancellation: checked after the drain test (a program
        // that just finished reports completion, not cancellation) and only
        // on its cycle quantum.
        if self.cancel_due() {
            return Some(self.cancelled_outcome());
        }
        if self.cycle >= self.cfg.max_cycles {
            self.finished = true;
            let stall = Some(self.stall_diag(StallCause::CycleBudget));
            return Some(RunOutcome {
                stats: self.stats,
                completed: false,
                stall,
                violation: None,
                cancelled: false,
            });
        }
        // Retire-progress watchdog: work is outstanding (the drained case
        // returned above) yet nothing has committed for a long time.
        if self.cycle - self.last_commit_cycle >= self.cfg.watchdog_cycles {
            self.finished = true;
            let stall = Some(self.stall_diag(StallCause::NoCommitProgress));
            return Some(RunOutcome {
                stats: self.stats,
                completed: false,
                stall,
                violation: None,
                cancelled: false,
            });
        }
        None
    }

    /// Whether event-driven fast-forward may engage at all. Forced off
    /// while a fault plan is configured (faults fire on absolute cycles and
    /// may retry every cycle), a commit limit is active (the precise-state
    /// harness inspects the core at an exact µop boundary), or a tracer is
    /// attached (skipped cycles would be invisible to it, truncating the
    /// event stream). Trace *recording* is unaffected: every recorded fact
    /// comes from MGU/LSU/issue activity, which never occurs in an inert
    /// cycle, so a recording run fast-forwards exactly like a plain one.
    fn ff_allowed(&self) -> bool {
        self.cfg.fast_forward
            && self.cfg.fault.is_none()
            && self.uop_commit_limit.is_none()
            && self.tracer.is_none()
    }

    /// If the core just executed a provably inert cycle, returns the next
    /// cycle at which anything can change: the earliest of VPU completion,
    /// load/store completion, the front-end restart after a bubble, any
    /// mixed-precision partial-result forwarding event, the cycle budget,
    /// and the retire-progress watchdog deadline. Skipping straight there
    /// via [`Core::advance_to`] is observationally pure — every skipped
    /// cycle would have re-executed the probe cycle's no-op exactly.
    ///
    /// Returns `None` when the last cycle did real work (or fast-forward is
    /// disabled), in which case the caller must keep stepping.
    pub fn ff_target(&self) -> Option<u64> {
        if self.finished || !self.ff_inert || !self.ff_allowed() {
            return None;
        }
        // Computed once when the core went inert; still valid because an
        // inert core's pending events were all fixed at issue time.
        self.ff_next
    }

    /// The current cycle (equals `stats().cycles` between steps).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The next-event scan behind [`Core::ff_target`] — one pass over the
    /// pipelines and the RS, run once per inert transition, not per cycle.
    fn compute_ff_target(&self) -> u64 {
        // Upper bound: whichever termination deadline comes first. Jumping
        // exactly onto it makes `advance_to` raise the same outcome the
        // stepped run would.
        let mut t = self
            .cfg
            .max_cycles
            .min(self.last_commit_cycle.saturating_add(self.cfg.watchdog_cycles));
        if let Some(c) = self.vpu.next_completion() {
            t = t.min(c);
        }
        if let Some(c) = self.lsu.next_completion() {
            t = t.min(c);
        }
        if self.alloc_stalled_until > self.cycle {
            t = t.min(self.alloc_stalled_until);
        }
        // Partial-result forwarding (§V): a chained Bf16 VFMA becomes
        // schedulable when its predecessor's lane value reaches the forward
        // point. Past-due forwards are excluded — they are already usable
        // and whatever blocks them unlocks only via one of the events above.
        for e in self.rs.iter() {
            if let RsEntry::Fma(f) = e {
                if let Some(c) = f.next_fwd_event(self.cycle) {
                    t = t.min(c);
                }
            }
        }
        t.max(self.cycle)
    }

    /// Jumps the clock to `target`, replaying the captured inert-cycle
    /// statistics delta once per skipped cycle, then applies the same
    /// termination checks (in the same precedence order) that stepping to
    /// `target` would have applied. Only valid directly after a step that
    /// left the core inert (see [`Core::ff_target`]).
    pub fn advance_to(&mut self, target: u64) -> Option<RunOutcome> {
        if target <= self.cycle {
            return None;
        }
        let skipped = target - self.cycle;
        let delta = self.last_delta;
        self.stats.add_scaled(&delta, skipped);
        self.cycle = target;
        self.stats.cycles = target;
        // A jump may cross many cancel quanta; one check on arrival keeps
        // the reaction bound at (quantum + one jump), and jumps are bounded
        // by the watchdog horizon.
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Some(self.cancelled_outcome());
            }
        }
        if self.cycle >= self.cfg.max_cycles {
            self.finished = true;
            let stall = Some(self.stall_diag(StallCause::CycleBudget));
            return Some(RunOutcome {
                stats: self.stats,
                completed: false,
                stall,
                violation: None,
                cancelled: false,
            });
        }
        if self.cycle - self.last_commit_cycle >= self.cfg.watchdog_cycles {
            self.finished = true;
            let stall = Some(self.stall_diag(StallCause::NoCommitProgress));
            return Some(RunOutcome {
                stats: self.stats,
                completed: false,
                stall,
                violation: None,
                cancelled: false,
            });
        }
        None
    }

    /// Applies a planned state fault, returning `true` when an eligible
    /// target existed (the fault is then spent; otherwise retried next
    /// cycle). Each arm models one specific way real scheduler/rename/ROB
    /// logic goes wrong — see [`FaultKind`].
    fn apply_state_fault(&mut self, plan: FaultPlan, cmem: &mut CoreMemory) -> bool {
        match plan.kind {
            FaultKind::FlipElmBit => {
                let bit = 1u16 << (plan.seed % LANES as u64);
                for pos in 0..self.rs.len() {
                    if let RsEntry::Fma(f) = self.rs.at_mut(pos) {
                        if f.elm_ready && f.precision == FmaPrecision::F32 {
                            f.elm ^= bit;
                            f.orig_elm ^= bit;
                            return true;
                        }
                    }
                }
                false
            }
            FaultKind::DropWakeup => {
                let lane = (plan.seed % LANES as u64) as usize;
                let target = self.rs.iter().find_map(|e| match e {
                    RsEntry::Fma(f) if f.elm_ready => Some(f.a),
                    _ => None,
                });
                match target {
                    Some(a) => {
                        self.prf.corrupt_clear_lane(a, lane);
                        true
                    }
                    None => false,
                }
            }
            FaultKind::CorruptBcastEntry => cmem.corrupt_bcast_entry(),
            FaultKind::FreeLivePhys => {
                let v = save_isa::VReg((plan.seed % NUM_VREGS as u64) as u8);
                let p = self.rt.lookup(v);
                self.prf.force_release(p);
                true
            }
            FaultKind::LeakPhysReg => self.prf.leak_free_reg().is_some(),
            FaultKind::SkipRobRetire => {
                let done = match self.rob.head() {
                    Some(h) => match h.kind {
                        RobKind::Flagged => h.done,
                        RobKind::WaitDst(p) => self.prf.fully_ready(p),
                    },
                    None => false,
                };
                if !done {
                    return false;
                }
                // Drop the completed head without committing it: releases
                // its frees (as a real commit would) but skips the sequence.
                if let Some(e) = self.rob.pop_head() {
                    for f in e.frees.into_iter().flatten() {
                        self.prf.release(f);
                    }
                    true
                } else {
                    false
                }
            }
            FaultKind::CorruptPassthrough => {
                // A signalling-NaN payload no real computation produces, so
                // the bit-exact pass-through compare always trips.
                let poison = f32::from_bits(0x7FC0_DEAD);
                if let Some(w) = self.watchers.iter_mut().find(|w| w.remaining != 0) {
                    let lane = w.remaining.trailing_zeros() as usize;
                    self.prf.write_lane(w.dst, lane, poison);
                    w.remaining &= !(1 << lane);
                    true
                } else {
                    false
                }
            }
            FaultKind::ReorderRsPick => {
                let ready: Vec<usize> = self
                    .rs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, e)| match e {
                        RsEntry::Fma(f)
                            if sched::sched_mask(f, &self.prf, self.cfg.lane_wise) != 0 =>
                        {
                            Some(i)
                        }
                        _ => None,
                    })
                    .take(2)
                    .collect();
                if let [first, second] = ready[..] {
                    self.rs.swap_order(first, second);
                    true
                } else {
                    false
                }
            }
            // Issue-path faults are applied by `fault::apply_issue_fault`.
            FaultKind::DuplicateLaneResult | FaultKind::RotateWritebackLane => false,
        }
    }

    /// Removes fully scheduled VFMAs from the RS (Algorithm 1 lines 12-14,
    /// including whole-VFMA BS skips), notifying the sanitizer so it can
    /// verify each departing VFMA scheduled exactly its ELM. Returns `true`
    /// if anything was removed.
    fn sweep_rs(&mut self, cycle: u64) -> bool {
        let mut exited: Vec<RobId> = Vec::new();
        let track = self.san.is_some();
        let before = self.rs.len();
        self.rs.retain(|e| match e {
            RsEntry::Fma(f) => {
                let done = f.elm_ready && f.elm == 0 && f.ml == 0;
                if done && track {
                    exited.push(f.rob);
                }
                !done
            }
            _ => true,
        });
        if let Some(s) = self.san.as_mut() {
            for r in exited {
                s.on_rs_exit(r, cycle);
            }
        }
        self.rs.len() != before
    }

    /// Captures the pipeline state for a stall report.
    fn stall_diag(&self, cause: StallCause) -> StallDiag {
        let oldest_unretired = self.rob.head().map(|h| {
            format!(
                "seq {} {:?} done={} fused={} arch_dst={:?}",
                h.seq, h.kind, h.done, h.fused, h.arch_dst
            )
        });
        StallDiag {
            cause,
            cycle: self.cycle,
            last_commit_cycle: self.last_commit_cycle,
            rob_occupancy: self.rob.len(),
            rob_capacity: self.cfg.rob_entries,
            rs_occupancy: self.rs.len(),
            rs_capacity: self.cfg.rs_entries,
            loads_in_flight: self.lsu.in_flight(),
            phys_free: self.prf.free_count(),
            oldest_unretired,
            scheduler: self.cfg.scheduler,
            stats: self.stats,
        }
    }

    /// Returns `true` if any watcher copied at least one lane (progress the
    /// fast-forward logic must treat as activity).
    fn run_watchers(&mut self) -> bool {
        let prf = &mut self.prf;
        let mut progressed = false;
        self.watchers.retain_mut(|w| {
            let avail = prf.ready_mask(w.src) & w.remaining;
            if avail != 0 {
                progressed = true;
                let src_val = *prf.value(w.src);
                let mut m = avail;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= !(1 << l);
                    prf.write_lane(w.dst, l, src_val.lane(l));
                }
                w.remaining &= !avail;
            }
            w.remaining != 0
        });
        progressed
    }

    fn run_mgus(&mut self, cycle: u64) {
        let mut budget = self.cfg.issue_width;
        if self.rs.order_intact() {
            // Fast path: only VFMAs still awaiting ELM generation are
            // visited (the queue is allocation = program order), so a
            // station full of already-masked VFMAs costs the MGUs nothing.
            if !self.elm_queue.is_empty() {
                let queue = std::mem::take(&mut self.elm_queue);
                let mut kept = std::mem::take(&mut self.elm_scratch);
                kept.clear();
                for (qi, &rob) in queue.iter().enumerate() {
                    if budget == 0 {
                        kept.extend_from_slice(&queue[qi..]);
                        break;
                    }
                    let Some(pos) = self.rs.pos_of(rob) else { continue };
                    match self.mgu_try_generate(pos, cycle) {
                        MguTry::Stale => {}
                        MguTry::NotReady => kept.push(rob),
                        MguTry::Generated => budget -= 1,
                    }
                }
                self.elm_queue = kept;
                self.elm_scratch = queue;
                self.elm_scratch.clear();
            }
        } else {
            // A reorder fault permuted the station: walk the full
            // (permuted) program order, exactly like the pre-index scan
            // the fault was written against.
            for pos in 0..self.rs.len() {
                if budget == 0 {
                    break;
                }
                if matches!(self.mgu_try_generate(pos, cycle), MguTry::Generated) {
                    budget -= 1;
                }
            }
        }
        // Newly created watchers may copy already-ready lanes this cycle.
        self.run_watchers();
    }

    /// One ELM-generation attempt for the RS entry at program-order
    /// position `pos` (the body of [`Core::run_mgus`]'s per-entry step).
    fn mgu_try_generate(&mut self, pos: usize, cycle: u64) -> MguTry {
        let trace_on = self.tracer.is_some();
        // Watchers are pushed straight into `self.watchers` (a distinct
        // field, so the entry borrow allows it); only the BS-skip trace
        // needs `&mut self` and is emitted after the borrow ends.
        let skipped_rob = {
            let f = match self.rs.at_mut(pos) {
                RsEntry::Fma(f) => f,
                _ => return MguTry::Stale,
            };
            if f.elm_ready {
                return MguTry::Stale;
            }
            if !self.prf.fully_ready(f.a) || !self.prf.fully_ready(f.b) {
                return MguTry::NotReady;
            }
            if let Some(t) = self.rep.as_deref() {
                // Replay: operand values are all zero, so the masks must
                // come from the trace — they are what drives coalescing,
                // BS skipping and pass-through, and serving them keeps
                // every downstream decision bit-identical to the
                // recorded run. Readiness gating above is unchanged, so
                // mask *generation timing* is identical too.
                let r = t.fma.get(f.seq as usize).copied().unwrap_or(crate::replay::FmaRec {
                    elm: 0,
                    ml: 0,
                });
                f.elm = r.elm;
                f.orig_elm = r.elm;
                if f.precision == FmaPrecision::Bf16 {
                    f.ml = r.ml;
                    f.orig_ml = r.ml;
                }
            } else {
                match f.precision {
                    FmaPrecision::F32 => {
                        let elm = mgu::elm_f32(self.prf.value(f.a), self.prf.value(f.b), f.wm);
                        f.elm = elm;
                        f.orig_elm = elm;
                    }
                    FmaPrecision::Bf16 => {
                        let (ml, al) = mgu::elm_mp(self.prf.value(f.a), self.prf.value(f.b));
                        f.ml = ml;
                        f.orig_ml = ml;
                        f.elm = al;
                        f.orig_elm = al;
                    }
                }
                if let Some(r) = self.rec.as_deref_mut() {
                    r.record_fma(f.seq, f.orig_elm, f.orig_ml);
                }
            }
            f.elm_ready = true;
            self.stats.lanes_effectual += f.orig_elm.count_ones() as u64;
            if f.orig_elm == 0 {
                self.stats.fmas_skipped_bs += 1;
            }
            let passthrough = !f.orig_elm;
            if passthrough != 0 {
                self.watchers.push(Watcher {
                    src: f.acc_src,
                    dst: f.acc_dst,
                    remaining: passthrough,
                });
            }
            (f.orig_elm == 0).then_some(f.rob)
        };
        if trace_on {
            if let Some(rob) = skipped_rob {
                self.trace(TraceEvent::BsSkip { cycle, rob });
            }
        }
        MguTry::Generated
    }

    /// Attempts to allocate one µop; returns `false` on a structural stall.
    fn try_allocate(&mut self, u: &Uop) -> bool {
        if self.rob.is_full() {
            self.stats.alloc_stall_rob += 1;
            return false;
        }
        match *u {
            Uop::Zero { dst } => {
                let Some(p) = self.prf.alloc() else {
                    self.stats.alloc_stall_phys += 1;
                    return false;
                };
                self.prf.write_all(p, VecF32::ZERO);
                let prev = self.rt.remap(dst, p);
                self.fma_producer[dst.index()] = None;
                let id =
                    self.rob.push_full(RobKind::Flagged, [Some(prev), None], false, Some((dst, p)));
                self.rob.mark_done(id);
                self.last_alloc_rob = id;
            }
            Uop::SetMask { dst, value } => {
                self.rt.set_kval(dst, value);
                let id = self.rob.push(RobKind::Flagged, [None, None]);
                self.rob.mark_done(id);
                self.last_alloc_rob = id;
            }
            Uop::Scalar => {
                let id = self.rob.push(RobKind::Flagged, [None, None]);
                self.rob.mark_done(id);
                self.last_alloc_rob = id;
            }
            Uop::Bubble(_) => unreachable!("bubbles are consumed by the allocation loop"),
            Uop::Load { dst, addr, value_addr, kind } => {
                if self.rs.is_full() {
                    self.stats.alloc_stall_rs += 1;
                    return false;
                }
                let Some(p) = self.prf.alloc() else {
                    self.stats.alloc_stall_phys += 1;
                    return false;
                };
                let frees = match dst {
                    Some(r) => {
                        let prev = self.rt.remap(r, p);
                        self.fma_producer[r.index()] = None;
                        [Some(prev), None]
                    }
                    None => {
                        self.pending_temp = Some(p);
                        [None, None]
                    }
                };
                let fused = dst.is_none();
                let rob = self.rob.push_full(
                    RobKind::WaitDst(p),
                    frees,
                    fused,
                    dst.map(|r| (r, p)),
                );
                self.last_alloc_rob = rob;
                let seq = self.load_seq;
                self.load_seq += 1;
                self.rs.push(RsEntry::Load(crate::rs::LoadEntry {
                    rob,
                    dst: p,
                    addr,
                    value_addr,
                    kind,
                    seq,
                }));
            }
            Uop::Store { src, addr } => {
                if self.rs.is_full() {
                    self.stats.alloc_stall_rs += 1;
                    return false;
                }
                let rob = self.rob.push(RobKind::Flagged, [None, None]);
                self.last_alloc_rob = rob;
                self.lsu.note_store_alloc(rob, addr);
                self.rs.push(RsEntry::Store(crate::rs::StoreEntry {
                    rob,
                    src: self.rt.lookup(src),
                    addr,
                }));
            }
            Uop::Fma { precision, acc, a, b, b_is_temp, mask, .. } => {
                if self.rs.is_full() {
                    self.stats.alloc_stall_rs += 1;
                    return false;
                }
                if self.prf.free_count() == 0 {
                    self.stats.alloc_stall_phys += 1;
                    return false;
                }
                let a_phys = self.rt.lookup(a);
                let (b_phys, temp_free) = if b_is_temp {
                    let Some(t) = self.pending_temp.take() else {
                        self.integrity(
                            None,
                            "FMA expects a cracked temp but no preceding load produced one"
                                .to_string(),
                        );
                        return false;
                    };
                    (t, Some(t))
                } else {
                    let Some(b_reg) = b else {
                        self.integrity(
                            None,
                            "register-operand FMA cracked without a B register".to_string(),
                        );
                        return false;
                    };
                    (self.rt.lookup(b_reg), None)
                };
                let acc_src = self.rt.lookup(acc);
                let Some(acc_dst) = self.prf.alloc() else {
                    self.stats.alloc_stall_phys += 1;
                    return false;
                };
                let prev = self.rt.remap(acc, acc_dst);
                debug_assert_eq!(prev, acc_src);
                let chain_pred = self.fma_producer[acc.index()]
                    .filter(|&p| self.rob.get_mut(p).is_some());
                let wm = mask.map(|k| self.rt.kval(k)).unwrap_or(ALL_LANES);
                let rot = if self.cfg.rotate && self.cfg.scheduler == SchedulerKind::Vertical {
                    acc.rotation_state()
                } else {
                    0
                };
                let rob = self.rob.push_full(
                    RobKind::WaitDst(acc_dst),
                    [Some(prev), temp_free],
                    false,
                    Some((acc, acc_dst)),
                );
                self.last_alloc_rob = rob;
                if let Some(p) = chain_pred {
                    if let Some(pf) = self.rs.find_fma_mut(p) {
                        pf.chain_succ = Some(rob);
                    }
                }
                self.fma_producer[acc.index()] = Some(rob);
                self.stats.fma_uops += 1;
                self.stats.lanes_total += LANES as u64;
                let seq = self.fma_seq;
                self.fma_seq += 1;
                let entry = FmaEntry {
                    rob,
                    seq,
                    precision,
                    acc_log: acc,
                    rot,
                    acc_src,
                    acc_dst,
                    a: a_phys,
                    b: b_phys,
                    wm,
                    elm_ready: false,
                    elm: 0,
                    orig_elm: 0,
                    ml: 0,
                    orig_ml: 0,
                    chain_pred,
                    chain_succ: None,
                    fwd_base: [0.0; LANES],
                    fwd_ready: [NO_FWD; LANES],
                };
                if let Some(s) = self.san.as_mut() {
                    s.on_fma_alloc(&entry, self.cfg.scheduler == SchedulerKind::Baseline);
                }
                self.rs.push(RsEntry::Fma(entry));
                // Baseline never runs the MGUs, so only SAVE schedulers
                // queue the VFMA for ELM generation.
                if self.cfg.scheduler != SchedulerKind::Baseline {
                    self.elm_queue.push(rob);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use save_isa::{Inst, Memory, VOperand, VReg};
    use save_mem::{MemConfig, Uncore, WarmLevel};

    fn run_program(cfg: CoreConfig, program: &Program, mem: &mut Memory) -> RunOutcome {
        let mcfg = MemConfig::default();
        let mut uncore = Uncore::new(&mcfg, 1);
        let mut cmem = CoreMemory::new(0, mcfg, cfg.freq_ghz);
        cmem.warm(&mut uncore, 0, mem.size() as u64, WarmLevel::L1);
        let core = Core::new(cfg);
        core.run(program, mem, &mut cmem, &mut uncore)
    }

    /// acc0 += splat(2.0) * [1..16] twice, then store.
    fn tiny_fma_program(mem: &mut Memory) -> Program {
        let b_addr = mem.alloc(64);
        let s_addr = mem.alloc(64);
        let out = mem.alloc(64);
        for i in 0..16 {
            mem.write_f32(b_addr + 4 * i, (i + 1) as f32);
        }
        mem.write_f32(s_addr, 2.0);
        let mut p = Program::new("tiny");
        p.push(Inst::Zero { dst: VReg(0) });
        p.push(Inst::BroadcastLoad { dst: VReg(1), addr: s_addr });
        p.push(Inst::VecLoad { dst: VReg(2), addr: b_addr });
        for _ in 0..2 {
            p.push(Inst::VfmaF32 {
                acc: VReg(0),
                a: VOperand::Reg(VReg(1)),
                b: VOperand::Reg(VReg(2)),
                mask: None,
            });
        }
        p.push(Inst::VecStore { src: VReg(0), addr: out });
        p
    }

    #[test]
    fn baseline_computes_correct_gemm_fragment() {
        let mut mem = Memory::new(0);
        let p = tiny_fma_program(&mut mem);
        let out = 128; // third allocation
        let r = run_program(CoreConfig::baseline(), &p, &mut mem);
        assert!(r.completed);
        for i in 0..16u64 {
            assert_eq!(mem.read_f32(out + 4 * i), 2.0 * (i + 1) as f32 * 2.0);
        }
        assert_eq!(r.stats.fma_uops, 2);
        assert_eq!(r.stats.vpu_ops, 2);
    }

    #[test]
    fn save_matches_baseline_functionally() {
        let mut mem_a = Memory::new(0);
        let p = tiny_fma_program(&mut mem_a);
        run_program(CoreConfig::baseline(), &p, &mut mem_a);
        let mut mem_b = Memory::new(0);
        let p2 = tiny_fma_program(&mut mem_b);
        run_program(CoreConfig::save_2vpu(), &p2, &mut mem_b);
        for i in 0..16u64 {
            assert_eq!(mem_a.read_f32(128 + 4 * i), mem_b.read_f32(128 + 4 * i));
        }
    }

    #[test]
    fn bs_skip_removes_vfma_without_vpu_op() {
        let mut mem = Memory::new(0);
        let b_addr = mem.alloc(64);
        let s_addr = mem.alloc(64);
        let out = mem.alloc(64);
        for i in 0..16 {
            mem.write_f32(b_addr + 4 * i, (i + 1) as f32);
        }
        mem.write_f32(s_addr, 0.0); // broadcast zero
        let mut p = Program::new("bs");
        p.push(Inst::Zero { dst: VReg(0) });
        p.push(Inst::BroadcastLoad { dst: VReg(1), addr: s_addr });
        p.push(Inst::VecLoad { dst: VReg(2), addr: b_addr });
        p.push(Inst::VfmaF32 {
            acc: VReg(0),
            a: VOperand::Reg(VReg(1)),
            b: VOperand::Reg(VReg(2)),
            mask: None,
        });
        p.push(Inst::VecStore { src: VReg(0), addr: out });
        let r = run_program(CoreConfig::save_2vpu(), &p, &mut mem);
        assert!(r.completed);
        assert_eq!(r.stats.vpu_ops, 0, "BS VFMA must not reach a VPU");
        assert_eq!(r.stats.fmas_skipped_bs, 1);
        for i in 0..16u64 {
            assert_eq!(mem.read_f32(out + 4 * i), 0.0);
        }
    }

    #[test]
    fn write_mask_lanes_pass_through() {
        let mut mem = Memory::new(0);
        let b_addr = mem.alloc(64);
        let s_addr = mem.alloc(64);
        let out = mem.alloc(64);
        for i in 0..16 {
            mem.write_f32(b_addr + 4 * i, 1.0);
        }
        mem.write_f32(s_addr, 3.0);
        let mut p = Program::new("masked");
        p.push(Inst::Zero { dst: VReg(0) });
        p.push(Inst::SetMask { dst: save_isa::KReg(1), value: 0x00FF });
        p.push(Inst::BroadcastLoad { dst: VReg(1), addr: s_addr });
        p.push(Inst::VecLoad { dst: VReg(2), addr: b_addr });
        p.push(Inst::VfmaF32 {
            acc: VReg(0),
            a: VOperand::Reg(VReg(1)),
            b: VOperand::Reg(VReg(2)),
            mask: Some(save_isa::KReg(1)),
        });
        p.push(Inst::VecStore { src: VReg(0), addr: out });
        for cfg in [CoreConfig::baseline(), CoreConfig::save_2vpu()] {
            let mut m = mem.clone();
            let r = run_program(cfg, &p, &mut m);
            assert!(r.completed);
            for i in 0..16u64 {
                let expect = if i < 8 { 3.0 } else { 0.0 };
                assert_eq!(m.read_f32(out + 4 * i), expect, "lane {i}");
            }
        }
    }

    #[test]
    fn embedded_broadcast_cracks_and_runs() {
        let mut mem = Memory::new(0);
        let b_addr = mem.alloc(64);
        let s_addr = mem.alloc(64);
        let out = mem.alloc(64);
        for i in 0..16 {
            mem.write_f32(b_addr + 4 * i, 2.0);
        }
        mem.write_f32(s_addr, 4.0);
        let mut p = Program::new("embedded");
        p.push(Inst::Zero { dst: VReg(0) });
        p.push(Inst::VecLoad { dst: VReg(2), addr: b_addr });
        p.push(Inst::VfmaF32 {
            acc: VReg(0),
            a: VOperand::Reg(VReg(2)),
            b: VOperand::MemBcast(s_addr),
            mask: None,
        });
        p.push(Inst::VecStore { src: VReg(0), addr: out });
        let r = run_program(CoreConfig::save_2vpu(), &p, &mut mem);
        assert!(r.completed);
        assert_eq!(mem.read_f32(out), 8.0);
        // Load µop + FMA µop + others all committed.
        assert!(r.stats.uops_committed >= 5);
    }
}
