//! Cracked micro-operations.
//!
//! The front end cracks ISA instructions ([`save_isa::Inst`]) into µops the
//! back-end structures operate on, like x86 µop cracking: a VFMA with a
//! memory operand becomes a (load µop, FMA µop) pair sharing a freshly
//! allocated physical register with no architectural name.

use save_isa::{Inst, KReg, VOperand, VReg};

/// Identifier of a physical vector register.
pub type PhysId = u32;

/// Identifier of a ROB entry slot.
pub type RobId = usize;

/// The precision of an FMA µop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FmaPrecision {
    /// 16-lane FP32 `vfmadd231ps`.
    F32,
    /// Mixed-precision `vdpbf16ps`: 32 BF16 MLs onto 16 FP32 ALs.
    Bf16,
}

/// The kind of load a load µop performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadKind {
    /// 64-byte vector load.
    Vector,
    /// 4-byte broadcast (explicit `vbroadcastss` or the load half of an
    /// embedded-broadcast VFMA).
    Broadcast,
}

/// A µop after cracking, with *logical* register names; renaming happens at
/// allocation inside the core.
#[derive(Clone, Copy, Debug)]
pub enum Uop {
    /// Load from memory into a destination.
    Load {
        /// Architectural destination, or `None` for a cracked temp (the
        /// consuming FMA references the physical register directly).
        dst: Option<VReg>,
        /// Byte address the timing model sees (the compressed image for
        /// ZCOMP-style loads).
        addr: u64,
        /// Byte address the values are read from (equals `addr` for normal
        /// loads).
        value_addr: u64,
        /// Vector or broadcast.
        kind: LoadKind,
    },
    /// Store a register to memory.
    Store {
        /// Architectural source register.
        src: VReg,
        /// Byte address.
        addr: u64,
    },
    /// FMA µop; `a`/`b` register operands may be architectural or the temp
    /// produced by the preceding cracked load (marked by `b_is_temp`).
    Fma {
        /// Precision.
        precision: FmaPrecision,
        /// Accumulator (source and destination).
        acc: VReg,
        /// Multiplicand A (always a register after cracking).
        a: VReg,
        /// Multiplicand B register, unless it comes from the cracked load.
        b: Option<VReg>,
        /// `true` when B is the temp register of the preceding cracked load.
        b_is_temp: bool,
        /// Whether the cracked load (if any) is a broadcast.
        temp_kind: Option<LoadKind>,
        /// Memory address of the cracked operand (if any).
        temp_addr: Option<u64>,
        /// Optional write mask.
        mask: Option<KReg>,
    },
    /// Zero idiom — eliminated at rename (zero-cycle), like `vxorps z,z,z`.
    Zero {
        /// Architectural destination.
        dst: VReg,
    },
    /// Write-mask setup — executes at rename with an immediate.
    SetMask {
        /// Destination mask register.
        dst: KReg,
        /// Immediate value.
        value: u16,
    },
    /// Scalar loop-overhead µop (1-cycle, completes at allocation + 1).
    Scalar,
    /// Front-end redirect bubble: stalls allocation for the given cycles
    /// (no ROB entry — it models fetch starvation, not an instruction).
    Bubble(u8),
}

/// Cracks one ISA instruction into 1 or 2 µops, pushed onto `out`.
///
/// Cracking follows x86: `BroadcastLoad`/`VecLoad`/`VecStore` are single
/// µops; a VFMA with a memory operand becomes load + FMA. We only support a
/// memory operand in position `b` (which is how the kernel generators emit
/// them); a memory operand in `a` is normalized to `b` since FMA
/// multiplication commutes.
pub fn crack(inst: &Inst, out: &mut Vec<Uop>) {
    match *inst {
        Inst::Zero { dst } => out.push(Uop::Zero { dst }),
        Inst::SetMask { dst, value } => out.push(Uop::SetMask { dst, value }),
        Inst::ScalarOp => out.push(Uop::Scalar),
        Inst::FrontEndBubble { cycles } => out.push(Uop::Bubble(cycles)),
        Inst::BroadcastLoad { dst, addr } => out.push(Uop::Load {
            dst: Some(dst),
            addr,
            value_addr: addr,
            kind: LoadKind::Broadcast,
        }),
        Inst::VecLoad { dst, addr } => out.push(Uop::Load {
            dst: Some(dst),
            addr,
            value_addr: addr,
            kind: LoadKind::Vector,
        }),
        Inst::CompressedVecLoad { dst, addr, timing_addr } => out.push(Uop::Load {
            dst: Some(dst),
            addr: timing_addr,
            value_addr: addr,
            kind: LoadKind::Vector,
        }),
        Inst::VecStore { src, addr } => out.push(Uop::Store { src, addr }),
        Inst::VfmaF32 { acc, a, b, mask } => crack_fma(FmaPrecision::F32, acc, a, b, mask, out),
        Inst::VdpBf16 { acc, a, b } => crack_fma(FmaPrecision::Bf16, acc, a, b, None, out),
    }
}

fn crack_fma(
    precision: FmaPrecision,
    acc: VReg,
    a: VOperand,
    b: VOperand,
    mask: Option<KReg>,
    out: &mut Vec<Uop>,
) {
    // Normalize: memory operand (if any) in position b.
    let (a, b) = match (a, b) {
        (VOperand::Reg(_), _) => (a, b),
        (_, VOperand::Reg(_)) => (b, a),
        _ => panic!("a VFMA may have at most one memory operand"),
    };
    let a_reg = match a {
        VOperand::Reg(r) => r,
        _ => unreachable!(),
    };
    match b {
        VOperand::Reg(r) => out.push(Uop::Fma {
            precision,
            acc,
            a: a_reg,
            b: Some(r),
            b_is_temp: false,
            temp_kind: None,
            temp_addr: None,
            mask,
        }),
        VOperand::MemBcast(addr) => {
            out.push(Uop::Load { dst: None, addr, value_addr: addr, kind: LoadKind::Broadcast });
            out.push(Uop::Fma {
                precision,
                acc,
                a: a_reg,
                b: None,
                b_is_temp: true,
                temp_kind: Some(LoadKind::Broadcast),
                temp_addr: Some(addr),
                mask,
            });
        }
        VOperand::MemVec(addr) => {
            out.push(Uop::Load { dst: None, addr, value_addr: addr, kind: LoadKind::Vector });
            out.push(Uop::Fma {
                precision,
                acc,
                a: a_reg,
                b: None,
                b_is_temp: true,
                temp_kind: Some(LoadKind::Vector),
                temp_addr: Some(addr),
                mask,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_fma_is_one_uop() {
        let mut out = Vec::new();
        crack(
            &Inst::VfmaF32 {
                acc: VReg(0),
                a: VOperand::Reg(VReg(1)),
                b: VOperand::Reg(VReg(2)),
                mask: None,
            },
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Uop::Fma { b: Some(VReg(2)), b_is_temp: false, .. }));
    }

    #[test]
    fn embedded_broadcast_cracks_into_two_uops() {
        let mut out = Vec::new();
        crack(
            &Inst::VfmaF32 {
                acc: VReg(0),
                a: VOperand::Reg(VReg(1)),
                b: VOperand::MemBcast(256),
                mask: None,
            },
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert!(matches!(
            out[0],
            Uop::Load { dst: None, addr: 256, kind: LoadKind::Broadcast, .. }
        ));
        assert!(matches!(
            out[1],
            Uop::Fma { b: None, b_is_temp: true, temp_kind: Some(LoadKind::Broadcast), .. }
        ));
    }

    #[test]
    fn memory_operand_in_a_is_normalized() {
        let mut out = Vec::new();
        crack(
            &Inst::VfmaF32 {
                acc: VReg(0),
                a: VOperand::MemVec(128),
                b: VOperand::Reg(VReg(3)),
                mask: None,
            },
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert!(matches!(out[1], Uop::Fma { a: VReg(3), b_is_temp: true, .. }));
    }

    #[test]
    fn compressed_load_cracks_with_split_addresses() {
        let mut out = Vec::new();
        crack(&Inst::CompressedVecLoad { dst: VReg(4), addr: 1024, timing_addr: 64 }, &mut out);
        assert_eq!(out.len(), 1);
        match out[0] {
            Uop::Load { dst: Some(VReg(4)), addr, value_addr, kind: LoadKind::Vector } => {
                assert_eq!(addr, 64, "timing side sees the compressed image");
                assert_eq!(value_addr, 1024, "values come from the uncompressed copy");
            }
            ref other => panic!("unexpected µop {other:?}"),
        }
    }

    #[test]
    fn bubble_cracks_to_bubble_uop() {
        let mut out = Vec::new();
        crack(&Inst::FrontEndBubble { cycles: 15 }, &mut out);
        assert!(matches!(out[0], Uop::Bubble(15)));
    }

    #[test]
    #[should_panic(expected = "at most one memory operand")]
    fn two_memory_operands_panic() {
        let mut out = Vec::new();
        crack(
            &Inst::VfmaF32 {
                acc: VReg(0),
                a: VOperand::MemVec(0),
                b: VOperand::MemBcast(64),
                mask: None,
            },
            &mut out,
        );
    }
}
