//! Functional trace record/replay: execute once, time many.
//!
//! A *functional trace* captures everything a kernel run computes that a
//! different timing configuration would have to recompute identically: the
//! per-VFMA Effectual Lane Mask (and the mixed-precision multiplicand-lane
//! mask), the per-load broadcast classification (element-zero flag and the
//! cache line's zero mask, which drive the B$ model), and the zero masks of
//! every broadcast-touched line (served to the sanitizer's freshness audit).
//! The µop stream itself is *not* stored here — replay re-executes the same
//! [`save_isa::Program`] through allocation/rename, so all addresses and
//! structural state regenerate exactly; only memory values and FMA math are
//! elided.
//!
//! Indexing is by **allocation sequence**: the k-th VFMA (respectively the
//! k-th load) allocated into the reservation station is the same static
//! operation under every timing configuration, because allocation consumes
//! the cracked µop stream strictly in program order. Stall patterns shift
//! *when* an operation allocates, never *which* operation is next.
//!
//! The replay invariant (DESIGN.md §5h): with a trace attached, every load
//! writes [`save_isa::VecF32::ZERO`], `Zero` µops write zero, and the
//! schedulers elide lane math to literal `+0.0` — which is bit-identical to
//! computing it, since `mul_add(0, 0, 0) == +0.0` and `bf16(0) == 0`. All
//! readiness bits, masks, latencies and port decisions are value-independent
//! once the ELM and load class come from the trace, so replayed cycle counts
//! and [`crate::CoreStats`] are bit-identical to direct execution.

use std::collections::HashMap;

/// Per-VFMA functional facts, indexed by FMA allocation sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FmaRec {
    /// The Effectual Lane Mask as generated (accumulator lanes for MP).
    pub elm: u16,
    /// The multiplicand-lane mask as generated (MP only; 0 for F32).
    pub ml: u32,
}

/// Per-load functional facts, indexed by load allocation sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadRec {
    /// `Some((elem_zero, line_zero_mask))` for broadcast loads — the inputs
    /// to the B$ model — `None` for vector loads.
    pub bcast: Option<(bool, u16)>,
}

/// A completed functional trace: everything replay serves in place of
/// functional memory and FMA math.
#[derive(Clone, Debug, Default)]
pub struct FuncTrace {
    /// Per-VFMA records, by FMA allocation sequence.
    pub fma: Vec<FmaRec>,
    /// Per-load records, by load allocation sequence.
    pub load: Vec<LoadRec>,
    /// Zero mask per broadcast-touched cache line (keyed by line index),
    /// served to the sanitizer's B$ freshness audit.
    pub bcast_lines: HashMap<u64, u16>,
    /// `false` when the recording detected a pattern replay cannot serve
    /// bit-identically (a store overlapping a broadcast-touched line, or an
    /// operation that never produced its record). Unreplayable traces must
    /// be discarded; callers fall back to direct execution.
    pub replayable: bool,
}

/// Accumulates a [`FuncTrace`] during a recorded run.
///
/// Recording is observationally pure: the recorder only *copies out* facts
/// the direct run computes anyway (ELMs in the MGUs, load classes in the
/// LSU), so a recording run's cycles, statistics and outputs are bit-exact
/// with a plain run — which is why a sweep can use its recording run as the
/// first timed cell ("record and use").
#[derive(Debug, Default)]
pub struct Recorder {
    fma: Vec<Option<FmaRec>>,
    load: Vec<Option<LoadRec>>,
    bcast_lines: HashMap<u64, u16>,
    poisoned: bool,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot<T>(v: &mut Vec<Option<T>>, seq: u64) -> &mut Option<T> {
        let i = seq as usize;
        if i >= v.len() {
            v.resize_with(i + 1, || None);
        }
        &mut v[i]
    }

    /// Records the generated masks of the VFMA with allocation sequence
    /// `seq`.
    pub fn record_fma(&mut self, seq: u64, elm: u16, ml: u32) {
        *Self::slot(&mut self.fma, seq) = Some(FmaRec { elm, ml });
    }

    /// Records the functional classification of the load with allocation
    /// sequence `seq` (`None` bcast payload = vector load).
    pub fn record_load(&mut self, seq: u64, bcast: Option<(bool, u16)>) {
        *Self::slot(&mut self.load, seq) = Some(LoadRec { bcast });
    }

    /// Records the zero mask of a broadcast-touched cache line (by line
    /// index). A second sighting with a different mask means the line
    /// changed between broadcast loads — unreplayable, so the trace is
    /// poisoned.
    pub fn record_bcast_line(&mut self, line: u64, mask: u16) {
        match self.bcast_lines.get(&line) {
            Some(&m) if m != mask => self.poisoned = true,
            _ => {
                self.bcast_lines.insert(line, mask);
            }
        }
    }

    /// Notes a vector store at `addr`. A store overlapping a line already
    /// recorded as broadcast-touched would make the audit masks
    /// time-varying, which replay cannot serve — the trace is poisoned.
    /// (GEMM/conv/LSTM kernels keep outputs disjoint from broadcast inputs,
    /// so this is a defensive guard, not an expected path.)
    pub fn note_store(&mut self, addr: u64) {
        let first = save_mem::line_of(addr);
        let last = save_mem::line_of(addr + (save_isa::LANES as u64 * 4) - 1);
        if self.bcast_lines.contains_key(&first) || self.bcast_lines.contains_key(&last) {
            self.poisoned = true;
        }
    }

    /// Finalizes into a [`FuncTrace`]. The trace is marked unreplayable if
    /// any allocated operation never produced its record (a run that
    /// stalled or was cancelled mid-flight) or recording was poisoned.
    pub fn finalize(self) -> FuncTrace {
        let complete =
            self.fma.iter().all(Option::is_some) && self.load.iter().all(Option::is_some);
        FuncTrace {
            fma: self.fma.into_iter().flatten().collect(),
            load: self.load.into_iter().flatten().collect(),
            bcast_lines: self.bcast_lines,
            replayable: complete && !self.poisoned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_records_index_by_sequence() {
        let mut r = Recorder::new();
        r.record_fma(2, 0b101, 0);
        r.record_fma(0, 0b111, 0);
        r.record_fma(1, 0, 0b1010);
        r.record_load(1, Some((true, 0xFFFF)));
        r.record_load(0, None);
        let t = r.finalize();
        assert!(t.replayable);
        assert_eq!(t.fma[0].elm, 0b111);
        assert_eq!(t.fma[1].ml, 0b1010);
        assert_eq!(t.fma[2].elm, 0b101);
        assert_eq!(t.load[0].bcast, None);
        assert_eq!(t.load[1].bcast, Some((true, 0xFFFF)));
    }

    #[test]
    fn missing_record_marks_unreplayable() {
        let mut r = Recorder::new();
        r.record_fma(1, 0b1, 0); // seq 0 never recorded
        assert!(!r.finalize().replayable);
    }

    #[test]
    fn store_into_broadcast_line_poisons() {
        let mut r = Recorder::new();
        r.record_bcast_line(save_mem::line_of(128), 0xF0F0);
        r.note_store(128);
        assert!(!r.finalize().replayable);

        let mut r = Recorder::new();
        r.record_bcast_line(save_mem::line_of(128), 0xF0F0);
        r.note_store(4096); // disjoint line: fine
        assert!(r.finalize().replayable);
    }

    #[test]
    fn conflicting_line_masks_poison() {
        let mut r = Recorder::new();
        r.record_bcast_line(2, 0x00FF);
        r.record_bcast_line(2, 0x00FF); // same mask: fine
        r.record_bcast_line(2, 0xFF00); // changed: poison
        assert!(!r.finalize().replayable);
    }
}
