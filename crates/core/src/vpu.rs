//! VPU execution pipeline: in-flight compacted operations.
//!
//! Functional results are computed at issue (operand lanes are guaranteed
//! ready by the select logic); this module only delays their architectural
//! write-back by the pipeline latency. SAVE keeps per-lane source-µop
//! bookkeeping while an op is in flight (§III, Table II models its cost);
//! here that bookkeeping *is* the [`LaneResult`] list.

use crate::uop::{PhysId, RobId};

/// One lane's worth of result carried by an in-flight VPU op.
#[derive(Clone, Copy, Debug)]
pub struct LaneResult {
    /// ROB entry of the owning VFMA.
    pub rob: RobId,
    /// Destination physical register.
    pub dst: PhysId,
    /// Logical lane index to write.
    pub lane: usize,
    /// The value.
    pub value: f32,
}

/// An issued, in-flight compacted VPU operation.
#[derive(Clone, Debug)]
pub struct VpuOp {
    /// Cycle at which results become architecturally visible.
    pub complete_at: u64,
    /// Lane write-backs this op performs.
    pub results: Vec<LaneResult>,
}

/// All in-flight VPU operations (across the core's VPUs — port contention
/// is enforced at select time, so the pipeline itself is just a completion
/// queue).
#[derive(Clone, Debug, Default)]
pub struct VpuPipeline {
    inflight: Vec<VpuOp>,
}

impl VpuPipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an issued op.
    pub fn issue(&mut self, op: VpuOp) {
        self.inflight.push(op);
    }

    /// Removes and returns every op completing at or before `cycle`.
    pub fn drain_completed(&mut self, cycle: u64) -> Vec<VpuOp> {
        let mut done = Vec::new();
        self.drain_completed_into(cycle, &mut done);
        done
    }

    /// Removes every op completing at or before `cycle`, appending to `out`
    /// (an allocation-free drain: the caller recycles the result payloads).
    pub fn drain_completed_into(&mut self, cycle: u64, out: &mut Vec<VpuOp>) {
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].complete_at <= cycle {
                out.push(self.inflight.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }

    /// Ops still executing.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Earliest completion cycle among in-flight ops, if any — a wake-up
    /// event for the core's fast-forward next-event derivation.
    pub fn next_completion(&self) -> Option<u64> {
        self.inflight.iter().map(|op| op.complete_at).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_in_latency_order() {
        let mut p = VpuPipeline::new();
        p.issue(VpuOp { complete_at: 5, results: vec![] });
        p.issue(VpuOp { complete_at: 3, results: vec![] });
        assert_eq!(p.in_flight(), 2);
        assert_eq!(p.drain_completed(2).len(), 0);
        assert_eq!(p.drain_completed(3).len(), 1);
        assert_eq!(p.drain_completed(10).len(), 1);
        assert_eq!(p.in_flight(), 0);
    }
}
