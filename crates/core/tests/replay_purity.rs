//! Record/replay purity at the core level.
//!
//! A *recording* run must be bit-identical to a plain run (record-and-use:
//! the recording pass doubles as one of the timed cells), and *replaying*
//! the captured functional trace through an empty memory must reproduce the
//! cycle count and every `CoreStats` counter bit-for-bit — for every
//! scheduler kind, both precisions, both broadcast patterns, and under the
//! Full sanitizer.

use save_core::{Core, CoreConfig, CoreStats, FuncTrace, SanitizeLevel, SchedulerKind};
use save_isa::Memory;
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_mem::{CoreMemory, MemConfig, Uncore, WarmLevel};
use std::sync::Arc;

fn workload(p: Precision, pat: BroadcastPattern, a: f64, b: f64) -> GemmWorkload {
    GemmWorkload::dense(
        "replay",
        GemmKernelSpec { m_tiles: 3, n_vecs: 2, pattern: pat, precision: p },
        16,
        1,
    )
    .with_sparsity(a, b)
}

/// Runs `w` under `cfg` in plain, record, or replay mode and returns
/// `(cycles, stats)`. `trace` is consumed for replay and produced by record.
fn run(
    w: &GemmWorkload,
    cfg: &CoreConfig,
    seed: u64,
    mode: Mode,
    trace: &mut Option<Arc<FuncTrace>>,
) -> (u64, CoreStats) {
    let mut built = w.build(seed);
    let size = built.mem.size() as u64;
    let mcfg = MemConfig::default();
    let mut uncore = Uncore::new(&mcfg, 1);
    let mut cmem = CoreMemory::new(0, mcfg, 1.7);
    cmem.warm(&mut uncore, 0, size, WarmLevel::L3);
    let mut core = Core::new(*cfg);
    match mode {
        Mode::Plain => {
            let out = core.run(&built.program, &mut built.mem, &mut cmem, &mut uncore);
            assert!(out.completed);
            built.verify().unwrap();
            (out.stats.cycles, out.stats)
        }
        Mode::Record => {
            core.set_record();
            let out = core.run_mut(&built.program, &mut built.mem, &mut cmem, &mut uncore);
            assert!(out.completed);
            built.verify().unwrap();
            let t = core.take_trace().expect("recorder attached");
            assert!(t.replayable, "trace must be replayable");
            *trace = Some(Arc::new(t));
            (out.stats.cycles, out.stats)
        }
        Mode::Replay => {
            core.set_replay(Arc::clone(trace.as_ref().expect("trace recorded first")));
            // Replay never touches functional memory: an empty arena stands
            // in, while the *timing* hierarchy is warmed identically.
            let mut empty = Memory::new(0);
            let out = core.run(&built.program, &mut empty, &mut cmem, &mut uncore);
            assert!(out.completed);
            (out.stats.cycles, out.stats)
        }
    }
}

#[derive(Clone, Copy)]
enum Mode {
    Plain,
    Record,
    Replay,
}

fn configs() -> Vec<(&'static str, CoreConfig)> {
    vec![
        ("baseline", CoreConfig::baseline()),
        ("save-1vpu", CoreConfig::save_1vpu()),
        ("save-2vpu", CoreConfig::save_2vpu()),
        (
            "horizontal",
            CoreConfig { scheduler: SchedulerKind::Horizontal, ..CoreConfig::save_2vpu() },
        ),
    ]
}

#[test]
fn record_is_bit_identical_to_plain_and_replay_matches() {
    for (p, pat) in [
        (Precision::F32, BroadcastPattern::Explicit),
        (Precision::F32, BroadcastPattern::Embedded),
        (Precision::Mixed, BroadcastPattern::Explicit),
        (Precision::Mixed, BroadcastPattern::Embedded),
    ] {
        let w = workload(p, pat, 0.6, 0.5);
        for (name, cfg) in configs() {
            let mut trace = None;
            let plain = run(&w, &cfg, 7, Mode::Plain, &mut trace);
            let rec = run(&w, &cfg, 7, Mode::Record, &mut trace);
            assert_eq!(plain, rec, "{name}/{p:?}/{pat:?}: recording perturbed the run");
            let rep = run(&w, &cfg, 7, Mode::Replay, &mut trace);
            assert_eq!(plain, rep, "{name}/{p:?}/{pat:?}: replay diverged from direct");
        }
    }
}

#[test]
fn replay_is_pure_under_full_sanitizer() {
    for p in [Precision::F32, Precision::Mixed] {
        let w = workload(p, BroadcastPattern::Explicit, 0.5, 0.6);
        let cfg =
            CoreConfig { sanitize: SanitizeLevel::Full, ..CoreConfig::save_2vpu() };
        let mut trace = None;
        let plain = run(&w, &cfg, 13, Mode::Plain, &mut trace);
        let rec = run(&w, &cfg, 13, Mode::Record, &mut trace);
        let rep = run(&w, &cfg, 13, Mode::Replay, &mut trace);
        assert_eq!(plain, rec, "{p:?}: sanitized recording diverged");
        assert_eq!(plain, rep, "{p:?}: sanitized replay diverged");
    }
}

/// One trace times many configs: record once under the cheapest config and
/// replay under every other; each replay must match that config's direct run.
#[test]
fn one_trace_serves_every_timing_config() {
    let w = workload(Precision::F32, BroadcastPattern::Explicit, 0.7, 0.4);
    let mut trace = None;
    // Record under baseline — functional facts are config-independent.
    let _ = run(&w, &CoreConfig::baseline(), 21, Mode::Record, &mut trace);
    for (name, cfg) in configs() {
        let mut unused = None;
        let plain = run(&w, &cfg, 21, Mode::Plain, &mut unused);
        let rep = run(&w, &cfg, 21, Mode::Replay, &mut trace);
        assert_eq!(plain, rep, "{name}: cross-config replay diverged from direct");
    }
}
