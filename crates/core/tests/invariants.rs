//! Accounting invariants of the SAVE machinery: lane conservation (every
//! effectual lane is scheduled exactly once, never dropped, never
//! duplicated), BS bookkeeping, and stall-path behaviour under tiny
//! structures.

use save_core::{Core, CoreConfig, SchedulerKind};
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision, RegionRole};
use save_mem::{CoreMemory, MemConfig, Uncore, WarmLevel};

fn run(w: &GemmWorkload, cfg: CoreConfig, seed: u64) -> save_core::CoreStats {
    let mut built = w.build(seed);
    let mcfg = MemConfig::default();
    let mut uncore = Uncore::new(&mcfg, 1);
    let mut cmem = CoreMemory::new(0, mcfg, cfg.freq_ghz);
    for r in &built.regions {
        if r.role == RegionRole::BroadcastInput {
            cmem.warm(&mut uncore, r.base, r.bytes, WarmLevel::L3);
        }
    }
    let out = Core::new(cfg).run(&built.program, &mut built.mem, &mut cmem, &mut uncore);
    assert!(out.completed);
    built.verify().unwrap_or_else(|(i, g, w)| panic!("mismatch at {i}: {g} vs {w}"));
    out.stats
}

fn spec(pattern: BroadcastPattern, precision: Precision) -> GemmKernelSpec {
    GemmKernelSpec { m_tiles: 6, n_vecs: 3, pattern, precision }
}

#[test]
fn fp32_lane_conservation() {
    // Every effectual lane the MGUs identify is issued exactly once.
    for (a, b) in [(0.0, 0.0), (0.3, 0.5), (0.7, 0.2), (0.9, 0.9)] {
        let w = GemmWorkload::dense("inv", spec(BroadcastPattern::Explicit, Precision::F32), 48, 2)
            .with_sparsity(a, b);
        for cfg in [
            CoreConfig::save_2vpu(),
            CoreConfig::save_1vpu(),
            CoreConfig { rotate: false, lane_wise: false, ..CoreConfig::save_2vpu() },
            CoreConfig { scheduler: SchedulerKind::Horizontal, ..CoreConfig::save_2vpu() },
        ] {
            let s = run(&w, cfg, 3);
            assert_eq!(
                s.lanes_issued, s.lanes_effectual,
                "every effectual lane issued exactly once (a={a}, b={b})"
            );
            assert!(s.lanes_effectual <= s.lanes_total);
        }
    }
}

#[test]
fn mp_ml_conservation() {
    // Without compression: issued AL slots equal effectual ALs. With
    // compression: consumed MLs equal the effectual MLs, and slots never
    // exceed effectual ALs.
    let w = GemmWorkload::dense("inv", spec(BroadcastPattern::Explicit, Precision::Mixed), 48, 2)
        .with_sparsity(0.4, 0.5);
    let no_c = run(&w, CoreConfig { mp_compress: false, ..CoreConfig::save_2vpu() }, 5);
    assert_eq!(no_c.lanes_issued, no_c.lanes_effectual);
    let with_c = run(&w, CoreConfig { mp_compress: true, ..CoreConfig::save_2vpu() }, 5);
    assert_eq!(
        with_c.mp_mls_issued, no_c.mp_mls_issued,
        "both modes must consume exactly the effectual MLs"
    );
    assert!(with_c.lanes_issued <= with_c.lanes_effectual);
}

#[test]
fn bs_skip_accounting() {
    // With pure broadcast sparsity (dense B), skipped VFMAs + VFMAs that
    // reached a VPU must equal the total VFMA count, and no VPU op may
    // carry a lane from a skipped VFMA (verified implicitly by lane
    // conservation + functional check).
    let w = GemmWorkload::dense("bs", spec(BroadcastPattern::Explicit, Precision::F32), 48, 2)
        .with_sparsity(0.5, 0.0);
    let s = run(&w, CoreConfig::save_2vpu(), 7);
    assert!(s.fmas_skipped_bs > 0);
    assert_eq!(s.lanes_effectual, s.lanes_issued);
    assert_eq!(
        s.lanes_effectual,
        (s.fma_uops - s.fmas_skipped_bs) * 16,
        "with dense B, surviving VFMAs are fully effectual"
    );
}

#[test]
fn commit_is_complete_and_in_order() {
    // Every allocated µop commits exactly once: committed count equals the
    // program's cracked µop count.
    let w = GemmWorkload::dense("commit", spec(BroadcastPattern::Embedded, Precision::F32), 32, 2)
        .with_sparsity(0.3, 0.3);
    let built = w.build(9);
    // Count cracked µops: embedded FMAs are 2 µops each.
    let mut uops = 0u64;
    for inst in built.program.iter() {
        uops += match inst {
            save_isa::Inst::VfmaF32 { b: save_isa::VOperand::MemBcast(_), .. } => 2,
            save_isa::Inst::VfmaF32 { a: save_isa::VOperand::MemBcast(_), .. } => 2,
            _ => 1,
        };
    }
    let s = run(&w, CoreConfig::save_2vpu(), 9);
    assert_eq!(s.uops_committed, uops);
}

#[test]
fn tiny_structures_still_drain() {
    // Pathologically small ROB/RS/PRF must stall but never deadlock or
    // corrupt results.
    let w = GemmWorkload::dense("tiny", spec(BroadcastPattern::Explicit, Precision::F32), 24, 1)
        .with_sparsity(0.4, 0.4);
    let cfg = CoreConfig {
        rob_entries: 12,
        rs_entries: 6,
        phys_regs: 40,
        ..CoreConfig::save_2vpu()
    };
    let s = run(&w, cfg, 11);
    assert!(s.alloc_stall_rob + s.alloc_stall_rs + s.alloc_stall_phys > 0, "must have stalled");
}

#[test]
fn mean_cw_approaches_accumulator_count() {
    // A 21-accumulator kernel with independent lanes should sustain a
    // combination window near its accumulator count (§III: 24-28 for the
    // larger blockings).
    let w = GemmWorkload::dense("cw", spec(BroadcastPattern::Explicit, Precision::F32), 96, 3)
        .with_sparsity(0.0, 0.5);
    let s = run(&w, CoreConfig::save_2vpu(), 13);
    let cw = s.cw_sum as f64 / s.cw_samples as f64;
    assert!(cw > 10.0, "mean CW too small: {cw:.1}");
    // The paper bounds the CW by the 32 accumulator registers under
    // vector-wise reasoning; lane-wise dependence lets two same-chain VFMAs
    // be schedulable on disjoint lanes simultaneously, so the measured mean
    // can exceed 32 slightly.
    assert!(cw <= 38.0, "CW far above the architectural register count: {cw:.1}");
}

#[test]
fn write_mask_and_zero_value_sparsity_are_equivalent_in_speed() {
    // §III: pruned weights may be expressed as write masks over dense
    // values or as zero values; SAVE exploits both identically.
    let zeros = GemmWorkload::dense("z", spec(BroadcastPattern::Explicit, Precision::F32), 48, 2)
        .with_sparsity(0.0, 0.5);
    let masked = GemmWorkload {
        use_write_masks: true,
        ..zeros.clone()
    };
    let sz = run(&zeros, CoreConfig::save_2vpu(), 15);
    let sm = run(&masked, CoreConfig::save_2vpu(), 15);
    let ratio = sz.cycles as f64 / sm.cycles as f64;
    assert!(
        (0.85..1.25).contains(&ratio),
        "mask-driven and value-driven sparsity should perform alike: {ratio:.2}"
    );
}
