//! End-to-end integration: generated GEMM kernels through the full core +
//! memory model, verified against the functional reference.

use save_core::{Core, CoreConfig, SchedulerKind};
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision, RegionRole};
use save_mem::{CoreMemory, MemConfig, Uncore, WarmLevel};

fn run(w: &GemmWorkload, cfg: CoreConfig, seed: u64) -> (save_core::core::RunOutcome, bool) {
    let mut built = w.build(seed);
    let mcfg = MemConfig::default();
    let mut uncore = Uncore::new(&mcfg, 1);
    let mut cmem = CoreMemory::new(0, mcfg, cfg.freq_ghz);
    for r in &built.regions {
        if r.role == RegionRole::BroadcastInput {
            cmem.warm(&mut uncore, r.base, r.bytes, WarmLevel::L3);
        }
    }
    let core = Core::new(cfg);
    let out = core.run(&built.program, &mut built.mem, &mut cmem, &mut uncore);
    let ok = built.verify().is_ok();
    if let Err((i, got, want)) = built.verify() {
        eprintln!("mismatch at {i}: got {got} want {want}");
    }
    (out, ok)
}

fn spec(m: usize, n: usize, pat: BroadcastPattern, prec: Precision) -> GemmKernelSpec {
    GemmKernelSpec { m_tiles: m, n_vecs: n, pattern: pat, precision: prec }
}

fn all_configs() -> Vec<(&'static str, CoreConfig)> {
    vec![
        ("baseline", CoreConfig::baseline()),
        ("save2", CoreConfig::save_2vpu()),
        ("save1", CoreConfig::save_1vpu()),
        ("vc-only", CoreConfig { rotate: false, lane_wise: false, ..CoreConfig::save_2vpu() }),
        ("rvc", CoreConfig { rotate: true, lane_wise: false, ..CoreConfig::save_2vpu() }),
        ("vc+lwd", CoreConfig { rotate: false, lane_wise: true, ..CoreConfig::save_2vpu() }),
        (
            "hc",
            CoreConfig {
                scheduler: SchedulerKind::Horizontal,
                rotate: false,
                ..CoreConfig::save_2vpu()
            },
        ),
        ("mp-nocompress", CoreConfig { mp_compress: false, ..CoreConfig::save_2vpu() }),
    ]
}

#[test]
fn every_scheduler_computes_correct_f32_explicit_gemm() {
    let w = GemmWorkload::dense("it", spec(4, 3, BroadcastPattern::Explicit, Precision::F32), 32, 2)
        .with_sparsity(0.4, 0.5);
    for (name, cfg) in all_configs() {
        let (out, ok) = run(&w, cfg, 11);
        assert!(out.completed, "{name} did not complete");
        assert!(ok, "{name} produced wrong results");
    }
}

#[test]
fn every_scheduler_computes_correct_f32_embedded_gemm() {
    let w = GemmWorkload::dense("it", spec(7, 3, BroadcastPattern::Embedded, Precision::F32), 32, 2)
        .with_sparsity(0.3, 0.6);
    for (name, cfg) in all_configs() {
        let (out, ok) = run(&w, cfg, 13);
        assert!(out.completed, "{name} did not complete");
        assert!(ok, "{name} produced wrong results");
    }
}

#[test]
fn every_scheduler_computes_correct_mixed_gemm() {
    let w = GemmWorkload::dense("it", spec(4, 2, BroadcastPattern::Explicit, Precision::Mixed), 32, 2)
        .with_sparsity(0.5, 0.5);
    for (name, cfg) in all_configs() {
        let (out, ok) = run(&w, cfg, 17);
        assert!(out.completed, "{name} did not complete");
        assert!(ok, "{name} produced wrong results");
    }
}

#[test]
fn mixed_embedded_gemm_is_correct() {
    let w = GemmWorkload::dense("it", spec(6, 2, BroadcastPattern::Embedded, Precision::Mixed), 32, 2)
        .with_sparsity(0.4, 0.4);
    for (name, cfg) in [("save2", CoreConfig::save_2vpu()), ("baseline", CoreConfig::baseline())] {
        let (out, ok) = run(&w, cfg, 19);
        assert!(out.completed, "{name} did not complete");
        assert!(ok, "{name} produced wrong results");
    }
}

#[test]
fn write_masked_gemm_is_correct_and_skips_lanes() {
    let w = GemmWorkload {
        use_write_masks: true,
        ..GemmWorkload::dense("wm", spec(4, 2, BroadcastPattern::Explicit, Precision::F32), 32, 2)
    }
    .with_sparsity(0.0, 0.5);
    let mut w = w;
    w.use_write_masks = true;
    let (out_base, ok_base) = run(&w, CoreConfig::baseline(), 23);
    let (out_save, ok_save) = run(&w, CoreConfig::save_2vpu(), 23);
    assert!(ok_base && ok_save);
    assert!(
        out_save.stats.vpu_ops < out_base.stats.vpu_ops,
        "mask-driven sparsity must reduce VPU ops: {} vs {}",
        out_save.stats.vpu_ops,
        out_base.stats.vpu_ops
    );
}

#[test]
fn baseline_dense_sustains_near_two_fmas_per_cycle() {
    let w = GemmWorkload::dense("dense", spec(6, 4, BroadcastPattern::Explicit, Precision::F32), 64, 4);
    let (out, ok) = run(&w, CoreConfig::baseline(), 29);
    assert!(ok);
    let fma_per_cycle = out.stats.vpu_ops as f64 / out.stats.cycles as f64;
    assert!(
        fma_per_cycle > 1.6,
        "compute-bound dense GEMM should keep both VPUs busy, got {fma_per_cycle:.2}"
    );
}

#[test]
fn save_speedup_grows_with_nbs() {
    let base_w =
        GemmWorkload::dense("nbs", spec(7, 3, BroadcastPattern::Explicit, Precision::F32), 64, 3);
    let (dense_out, _) = run(&base_w, CoreConfig::save_2vpu(), 31);
    let (sparse_out, _) = run(&base_w.clone().with_sparsity(0.0, 0.7), CoreConfig::save_2vpu(), 31);
    assert!(
        sparse_out.stats.cycles < dense_out.stats.cycles,
        "70% NBS must run faster than dense: {} vs {}",
        sparse_out.stats.cycles,
        dense_out.stats.cycles
    );
    let (base_sparse, _) = run(&base_w.with_sparsity(0.0, 0.7), CoreConfig::baseline(), 31);
    let speedup = base_sparse.stats.cycles as f64 / sparse_out.stats.cycles as f64;
    assert!(speedup > 1.2, "SAVE speedup at 70% NBS too low: {speedup:.2}");
}

#[test]
fn bs_skips_whole_vfmas() {
    let w = GemmWorkload::dense("bs", spec(7, 3, BroadcastPattern::Explicit, Precision::F32), 64, 3)
        .with_sparsity(0.6, 0.0);
    let (out, ok) = run(&w, CoreConfig::save_2vpu(), 37);
    assert!(ok);
    assert!(
        out.stats.fmas_skipped_bs as f64 > 0.5 * w.fma_count() as f64,
        "~60% of VFMAs should be BS-skipped, got {} of {}",
        out.stats.fmas_skipped_bs,
        w.fma_count()
    );
    let (base, _) = run(&w, CoreConfig::baseline(), 37);
    assert!(base.stats.cycles > out.stats.cycles);
}

#[test]
fn one_vpu_slower_when_dense_faster_when_sparse() {
    let w = GemmWorkload::dense("vpus", spec(6, 4, BroadcastPattern::Explicit, Precision::F32), 64, 3);
    // Dense: 1 VPU at 2.1 GHz must lose to 2 VPUs at 1.7 GHz (paper: 29%
    // slowdown at 0% sparsity).
    let (d2, _) = run(&w, CoreConfig::save_2vpu(), 41);
    let (d1, _) = run(&w, CoreConfig::save_1vpu(), 41);
    let t2 = d2.stats.cycles as f64 / 1.7;
    let t1 = d1.stats.cycles as f64 / 2.1;
    assert!(t1 > t2, "dense: 1 VPU should be slower in wall-clock ({t1:.0} vs {t2:.0})");
    // Highly sparse: 1 VPU at higher frequency should win.
    let ws = w.with_sparsity(0.5, 0.6);
    let (s2, _) = run(&ws, CoreConfig::save_2vpu(), 43);
    let (s1, _) = run(&ws, CoreConfig::save_1vpu(), 43);
    let t2 = s2.stats.cycles as f64 / 1.7;
    let t1 = s1.stats.cycles as f64 / 2.1;
    assert!(t1 < t2, "sparse: 1 VPU should win in wall-clock ({t1:.0} vs {t2:.0})");
}

#[test]
fn rotation_unblocks_register_reuse_imbalance() {
    // 28 accumulators, n_vecs = 1: every VFMA in a k-step shares the same B
    // register, so plain VC has an effective CW of 1 (Fig 18a).
    let w = GemmWorkload::dense("rot", spec(28, 1, BroadcastPattern::Embedded, Precision::F32), 64, 2)
        .with_sparsity(0.0, 0.5);
    let vc = CoreConfig { rotate: false, lane_wise: false, ..CoreConfig::save_2vpu() };
    let rvc = CoreConfig { rotate: true, lane_wise: false, ..CoreConfig::save_2vpu() };
    let (out_vc, ok1) = run(&w, vc, 47);
    let (out_rvc, ok2) = run(&w, rvc, 47);
    assert!(ok1 && ok2);
    assert!(
        out_rvc.stats.cycles < out_vc.stats.cycles,
        "rotation must help under register reuse: RVC {} vs VC {}",
        out_rvc.stats.cycles,
        out_vc.stats.cycles
    );
}

#[test]
fn mp_compression_beats_al_granularity() {
    let w = GemmWorkload::dense("mp", spec(7, 3, BroadcastPattern::Explicit, Precision::Mixed), 64, 3)
        .with_sparsity(0.0, 0.6);
    let with = CoreConfig { mp_compress: true, ..CoreConfig::save_1vpu() };
    let without = CoreConfig { mp_compress: false, ..CoreConfig::save_1vpu() };
    let (out_with, ok1) = run(&w, with, 53);
    let (out_without, ok2) = run(&w, without, 53);
    assert!(ok1 && ok2);
    assert!(
        out_with.stats.cycles < out_without.stats.cycles,
        "ML compression must exploit intra-AL sparsity: {} vs {}",
        out_with.stats.cycles,
        out_without.stats.cycles
    );
}
