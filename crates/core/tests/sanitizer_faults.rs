//! Sanitizer self-test: every checker must fire on its fault class.
//!
//! A sanitizer that has never beeped is untested. This matrix walks every
//! [`FaultKind`], injects it deterministically into an otherwise healthy
//! run, and asserts that the aborting [`SanitizerReport`] names exactly the
//! invariant [`FaultKind::expected_invariant`] says is responsible — i.e.
//! each checker both *fires* and *attributes* correctly. A companion set of
//! clean runs across scheduler configurations pins the zero-false-positive
//! side, and a determinism check pins the sanitizer's observational purity
//! (identical cycle counts with checking on or off).

use save_core::{Core, CoreConfig, FaultKind, FaultPlan, RunOutcome, SanitizeLevel};
use save_isa::{Inst, Memory, Program, VOperand, VReg};
use save_mem::{CoreMemory, MemConfig, Uncore, WarmLevel};

fn run_program(cfg: CoreConfig, program: &Program, mem: &mut Memory) -> RunOutcome {
    let mcfg = MemConfig::default();
    let mut uncore = Uncore::new(&mcfg, 1);
    let mut cmem = CoreMemory::new(0, mcfg, cfg.freq_ghz);
    cmem.warm(&mut uncore, 0, mem.size() as u64, WarmLevel::L1);
    let core = Core::new(cfg);
    core.run(program, mem, &mut cmem, &mut uncore)
}

/// A workload rich enough that every fault class has a target: four
/// accumulator chains covering all three RVC rotation states, a dense B
/// vector with distinct per-lane values (so a mis-rotated writeback always
/// changes the value), a sparse B vector (so pass-through watchers persist
/// across cycles), and broadcast loads (so the B$ holds valid entries).
fn fault_program(mem: &mut Memory, rounds: usize) -> (Program, u64) {
    let s_addr = mem.alloc(64);
    let b_dense = mem.alloc(64);
    let b_sparse_a = mem.alloc(64);
    let b_sparse_b = mem.alloc(64);
    let out = mem.alloc(256);
    mem.write_f32(s_addr, 2.0);
    mem.write_f32(s_addr + 4, 3.0);
    for i in 0..16 {
        mem.write_f32(b_dense + 4 * i, (i + 1) as f32);
        // Two complementary-ish sparsity patterns. Alternating them down
        // the acc3 chain puts each VFMA's pass-through lanes on lanes its
        // predecessor *computed* (ready only at writeback), so pass-through
        // watchers stay live for several cycles instead of draining the
        // instant they are created.
        let va = if i % 3 == 0 { 0.0 } else { (i + 2) as f32 };
        let vb = if i % 3 == 1 { 0.0 } else { (i + 3) as f32 };
        mem.write_f32(b_sparse_a + 4 * i, va);
        mem.write_f32(b_sparse_b + 4 * i, vb);
    }
    let mut p = Program::new("sanitizer-fault-matrix");
    for acc in 0..4 {
        p.push(Inst::Zero { dst: VReg(acc) });
    }
    p.push(Inst::BroadcastLoad { dst: VReg(8), addr: s_addr });
    p.push(Inst::BroadcastLoad { dst: VReg(9), addr: s_addr + 4 });
    p.push(Inst::VecLoad { dst: VReg(10), addr: b_dense });
    p.push(Inst::VecLoad { dst: VReg(11), addr: b_sparse_a });
    p.push(Inst::VecLoad { dst: VReg(12), addr: b_sparse_b });
    for r in 0..rounds {
        // VReg(0)/VReg(3): rotation state 0; VReg(1): +1; VReg(2): -1.
        let sparse = if r % 2 == 0 { 11u8 } else { 12u8 };
        for (acc, a, b) in [(0u8, 8u8, 10u8), (1, 9, 10), (2, 8, 10), (3, 9, sparse)] {
            p.push(Inst::VfmaF32 {
                acc: VReg(acc),
                a: VOperand::Reg(VReg(a)),
                b: VOperand::Reg(VReg(b)),
                mask: None,
            });
        }
    }
    for acc in 0..4u64 {
        p.push(Inst::VecStore { src: VReg(acc as u8), addr: out + 64 * acc });
    }
    (p, out)
}

fn full_save_cfg() -> CoreConfig {
    CoreConfig { sanitize: SanitizeLevel::Full, ..CoreConfig::save_2vpu() }
}

/// Per-fault-class configuration: the fault needs its target structure to
/// exist and to be observable.
fn cfg_for(kind: FaultKind) -> CoreConfig {
    let mut cfg = full_save_cfg();
    cfg.fault = Some(FaultPlan::new(kind, 20, 5));
    match kind {
        // Age order needs contention: several ready VFMAs fighting for the
        // same temp positions, which takes a single VPU.
        FaultKind::ReorderRsPick => cfg.num_vpus = 1,
        // Retire skipping needs a completed-but-uncommitted head at the
        // injection point; a commit width of 1 keeps a standing backlog.
        FaultKind::SkipRobRetire => cfg.commit_width = 1,
        _ => {}
    }
    cfg
}

#[test]
fn every_fault_class_trips_its_own_invariant() {
    for kind in FaultKind::ALL {
        let cfg = cfg_for(kind);
        let mut mem = Memory::new(0);
        let (p, _) = fault_program(&mut mem, 60);
        let out = run_program(cfg, &p, &mut mem);
        let v = out
            .violation
            .unwrap_or_else(|| panic!("{kind:?}: injected fault was never detected"));
        assert_eq!(
            v.invariant,
            kind.expected_invariant(),
            "{kind:?} must be caught by {} but the sanitizer reported: {v}",
            kind.expected_invariant()
        );
        assert!(!out.completed, "{kind:?}: a violated run must not report completion");
        assert!(v.cycle >= 1, "{kind:?}: report must carry the detection cycle");
        assert!(!v.witness.is_empty(), "{kind:?}: report must carry a witness");
    }
}

#[test]
fn faults_before_any_eligible_target_retry_until_one_exists() {
    // at_cycle 0 predates every structure (empty RS, empty B$, no watchers):
    // the injector must retry, not fizzle, and the checker must still fire.
    for kind in [FaultKind::FlipElmBit, FaultKind::CorruptBcastEntry, FaultKind::CorruptPassthrough]
    {
        let mut cfg = cfg_for(kind);
        cfg.fault = Some(FaultPlan::new(kind, 0, 5));
        let mut mem = Memory::new(0);
        let (p, _) = fault_program(&mut mem, 60);
        let out = run_program(cfg, &p, &mut mem);
        let v = out
            .violation
            .unwrap_or_else(|| panic!("{kind:?}@0: injected fault was never detected"));
        assert_eq!(v.invariant, kind.expected_invariant(), "{kind:?}@0 reported: {v}");
    }
}

#[test]
fn clean_runs_stay_clean_under_full_sanitize() {
    use save_core::SchedulerKind;
    let variants = [
        ("baseline", CoreConfig::baseline()),
        ("save-2vpu", CoreConfig::save_2vpu()),
        ("save-1vpu", CoreConfig::save_1vpu()),
        (
            "vertical-no-rotate",
            CoreConfig { rotate: false, ..CoreConfig::save_2vpu() },
        ),
        (
            "vertical-vector-wise",
            CoreConfig { lane_wise: false, ..CoreConfig::save_2vpu() },
        ),
        (
            "horizontal",
            CoreConfig {
                scheduler: SchedulerKind::Horizontal,
                rotate: false,
                ..CoreConfig::save_2vpu()
            },
        ),
    ];
    for (name, base) in variants {
        let cfg = CoreConfig { sanitize: SanitizeLevel::Full, ..base };
        let mut mem = Memory::new(0);
        let (p, _) = fault_program(&mut mem, 40);
        let out = run_program(cfg, &p, &mut mem);
        assert!(
            out.violation.is_none(),
            "{name}: healthy run reported {}",
            out.violation.unwrap()
        );
        assert!(out.completed, "{name}: healthy run must drain");
    }
}

#[test]
fn masked_and_bs_skipped_runs_stay_clean_under_full_sanitize() {
    // Write masks and whole-VFMA broadcast-sparsity skips exercise the
    // pass-through path the bs-passthrough checker audits.
    let mut mem = Memory::new(0);
    let z_addr = mem.alloc(64);
    let s_addr = mem.alloc(64);
    let b_addr = mem.alloc(64);
    let out = mem.alloc(64);
    mem.write_f32(z_addr, 0.0);
    mem.write_f32(s_addr, 4.0);
    for i in 0..16 {
        mem.write_f32(b_addr + 4 * i, (i + 1) as f32);
    }
    let mut p = Program::new("masked-bs");
    p.push(Inst::Zero { dst: VReg(0) });
    p.push(Inst::SetMask { dst: save_isa::KReg(1), value: 0x0F0F });
    p.push(Inst::BroadcastLoad { dst: VReg(8), addr: z_addr });
    p.push(Inst::BroadcastLoad { dst: VReg(9), addr: s_addr });
    p.push(Inst::VecLoad { dst: VReg(10), addr: b_addr });
    for _ in 0..10 {
        // A BS-skipped VFMA (broadcast of zero) ...
        p.push(Inst::VfmaF32 {
            acc: VReg(0),
            a: VOperand::Reg(VReg(8)),
            b: VOperand::Reg(VReg(10)),
            mask: None,
        });
        // ... interleaved with a masked one.
        p.push(Inst::VfmaF32 {
            acc: VReg(0),
            a: VOperand::Reg(VReg(9)),
            b: VOperand::Reg(VReg(10)),
            mask: Some(save_isa::KReg(1)),
        });
    }
    p.push(Inst::VecStore { src: VReg(0), addr: out });
    let cfg = CoreConfig { sanitize: SanitizeLevel::Full, ..CoreConfig::save_2vpu() };
    let out_run = run_program(cfg, &p, &mut mem);
    assert!(out_run.violation.is_none(), "reported {}", out_run.violation.unwrap());
    assert!(out_run.completed);
}

#[test]
fn sanitizer_is_observationally_pure() {
    // Same program, sanitize Off vs Full: identical simulated cycle counts
    // and identical memory results — the sanitizer observes, never steers.
    let mut mem_off = Memory::new(0);
    let (p_off, out_addr) = fault_program(&mut mem_off, 30);
    let off = run_program(
        CoreConfig { sanitize: SanitizeLevel::Off, ..CoreConfig::save_2vpu() },
        &p_off,
        &mut mem_off,
    );
    let mut mem_full = Memory::new(0);
    let (p_full, _) = fault_program(&mut mem_full, 30);
    let full = run_program(
        CoreConfig { sanitize: SanitizeLevel::Full, ..CoreConfig::save_2vpu() },
        &p_full,
        &mut mem_full,
    );
    assert!(off.completed && full.completed);
    assert!(full.violation.is_none());
    assert_eq!(off.stats.cycles, full.stats.cycles, "sanitizer changed the timing model");
    for i in 0..64u64 {
        assert_eq!(
            mem_off.read_f32(out_addr + 4 * i),
            mem_full.read_f32(out_addr + 4 * i),
            "sanitizer changed a computed value (word {i})"
        );
    }
}

#[test]
fn periodic_stride_bounds_state_scan_frequency() {
    // Periodic(n) still catches a state fault, just within a stride window
    // rather than the same cycle.
    let mut cfg = CoreConfig {
        sanitize: SanitizeLevel::Periodic(16),
        ..CoreConfig::save_2vpu()
    };
    cfg.fault = Some(FaultPlan::new(FaultKind::LeakPhysReg, 20, 5));
    let mut mem = Memory::new(0);
    let (p, _) = fault_program(&mut mem, 60);
    let out = run_program(cfg, &p, &mut mem);
    let v = out.violation.expect("Periodic must still catch a leaked register");
    assert_eq!(v.invariant, "rename-hygiene");
    assert!(v.cycle >= 20 && v.cycle <= 20 + 16, "caught at {} — outside the stride window", v.cycle);
}
