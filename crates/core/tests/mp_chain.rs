//! Directed reproduction of the paper's Fig 10/11 scenario: a chain of
//! mixed-precision VFMAs accumulating into the *same* register, with
//! partially ineffectual multiplicand lanes. SAVE's ML compression combines
//! MLs from different instructions into one VPU op, yet every intermediate
//! instruction's renamed destination must receive its architecturally
//! correct value ("Properly Writing Back Results", §V-B) — we make each
//! intermediate value observable by storing the accumulator between VFMAs.

use save_core::{Core, CoreConfig};
use save_isa::{Bf16, Inst, Memory, Program, VOperand, VReg, VecBf16, LANES, ML_LANES};
use save_mem::{CoreMemory, MemConfig, Uncore, WarmLevel};

/// Builds the Fig 11 pattern: three VDPBF16PS into C0 where I1 has only
/// ML0-of-each-AL effectual, I2 has both, I3 has only ML1. Returns
/// (program, memory, store addresses, expected per-instruction values).
fn build_chain() -> (Program, Memory, [u64; 3], [Vec<f32>; 3]) {
    let mut mem = Memory::new(0);
    let a_base = mem.alloc(3 * 64);
    let b_base = mem.alloc(3 * 64);
    let out = [mem.alloc(64), mem.alloc(64), mem.alloc(64)];

    // Multiplicand patterns per instruction: (a-even, a-odd) BF16 values.
    let patterns: [(f32, f32); 3] = [(2.0, 0.0), (1.5, -1.0), (0.0, 3.0)];
    let bvals: [(f32, f32); 3] = [(0.5, 4.0), (2.0, 1.0), (7.0, -0.5)];
    for (i, ((ae, ao), (be, bo))) in patterns.iter().zip(bvals.iter()).enumerate() {
        let mut al = [Bf16::ZERO; ML_LANES];
        let mut bl = [Bf16::ZERO; ML_LANES];
        for j in 0..LANES {
            al[2 * j] = Bf16::from_f32(*ae);
            al[2 * j + 1] = Bf16::from_f32(*ao);
            bl[2 * j] = Bf16::from_f32(*be);
            bl[2 * j + 1] = Bf16::from_f32(*bo);
        }
        mem.write_vec_bf16(a_base + 64 * i as u64, VecBf16::from_lanes(al));
        mem.write_vec_bf16(b_base + 64 * i as u64, VecBf16::from_lanes(bl));
    }

    // Expected running values after each instruction (per AL; identical
    // across lanes by construction), in strict program order per Fig 2.
    let mut run = 0.0f32;
    let mut expected: [Vec<f32>; 3] = [vec![], vec![], vec![]];
    for (i, ((ae, ao), (be, bo))) in patterns.iter().zip(bvals.iter()).enumerate() {
        run = ae.mul_add(*be, run);
        run = ao.mul_add(*bo, run);
        expected[i] = vec![run; LANES];
    }

    let mut p = Program::new("fig11 chain");
    p.push(Inst::Zero { dst: VReg(0) });
    for i in 0..3u64 {
        p.push(Inst::VecLoad { dst: VReg(1), addr: a_base + 64 * i });
        p.push(Inst::VecLoad { dst: VReg(2), addr: b_base + 64 * i });
        p.push(Inst::VdpBf16 {
            acc: VReg(0),
            a: VOperand::Reg(VReg(1)),
            b: VOperand::Reg(VReg(2)),
        });
        // Capture this instruction's architectural result.
        p.push(Inst::VecStore { src: VReg(0), addr: out[i as usize] });
    }
    (p, mem, out, expected)
}

fn run_chain(cfg: CoreConfig) {
    let (p, mut mem, out, expected) = build_chain();
    let mcfg = MemConfig::default();
    let mut uncore = Uncore::new(&mcfg, 1);
    let mut cmem = CoreMemory::new(0, mcfg, cfg.freq_ghz);
    cmem.warm(&mut uncore, 0, mem.size() as u64, WarmLevel::L1);
    let r = Core::new(cfg).run(&p, &mut mem, &mut cmem, &mut uncore);
    assert!(r.completed);
    for (i, exp) in expected.iter().enumerate() {
        for (lane, &e) in exp.iter().enumerate() {
            let got = mem.read_f32(out[i] + 4 * lane as u64);
            assert_eq!(got, e, "instruction {} lane {lane}", i + 1);
        }
    }
}

#[test]
fn intermediate_destinations_correct_with_ml_compression() {
    run_chain(CoreConfig { mp_compress: true, ..CoreConfig::save_2vpu() });
}

#[test]
fn intermediate_destinations_correct_without_ml_compression() {
    run_chain(CoreConfig { mp_compress: false, ..CoreConfig::save_2vpu() });
}

#[test]
fn intermediate_destinations_correct_on_baseline() {
    run_chain(CoreConfig::baseline());
}

#[test]
fn intermediate_destinations_correct_with_one_vpu_and_rotation() {
    run_chain(CoreConfig::save_1vpu());
}

#[test]
fn compression_reduces_vpu_ops_on_the_chain() {
    // Without stores in between (no serialization), a longer chain with
    // half-effectual ALs must need fewer VPU ops under ML compression.
    let build = |_| {
        let mut mem = Memory::new(0);
        let a_base = mem.alloc(64);
        let b_base = mem.alloc(64);
        let mut al = [Bf16::ZERO; ML_LANES];
        let bl = [Bf16::from_f32(1.0); ML_LANES];
        for j in 0..LANES {
            al[2 * j] = Bf16::from_f32(1.0); // only even MLs effectual
        }
        mem.write_vec_bf16(a_base, VecBf16::from_lanes(al));
        mem.write_vec_bf16(b_base, VecBf16::from_lanes(bl));
        let mut p = Program::new("chain");
        p.push(Inst::Zero { dst: VReg(0) });
        p.push(Inst::VecLoad { dst: VReg(1), addr: a_base });
        p.push(Inst::VecLoad { dst: VReg(2), addr: b_base });
        for _ in 0..16 {
            p.push(Inst::VdpBf16 {
                acc: VReg(0),
                a: VOperand::Reg(VReg(1)),
                b: VOperand::Reg(VReg(2)),
            });
        }
        (p, mem)
    };
    let run = |compress: bool| {
        let cfg = CoreConfig { mp_compress: compress, ..CoreConfig::save_2vpu() };
        let (p, mut mem) = build(());
        let mcfg = MemConfig::default();
        let mut uncore = Uncore::new(&mcfg, 1);
        let mut cmem = CoreMemory::new(0, mcfg, cfg.freq_ghz);
        cmem.warm(&mut uncore, 0, mem.size() as u64, WarmLevel::L1);
        let r = Core::new(cfg).run(&p, &mut mem, &mut cmem, &mut uncore);
        assert!(r.completed);
        // Functional check: every AL accumulated 16 * 1.0.
        r.stats.vpu_ops
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with < without,
        "ML compression should fuse chain MLs: {with} vs {without} VPU ops"
    );
}
