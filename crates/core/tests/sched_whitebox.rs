//! White-box scheduler tests: hand-built reservation-station states
//! reproducing the paper's worked examples — Fig 5a (vertical coalescing
//! with lane conflicts), Fig 7 (rotation vs register reuse) and Fig 8
//! (vector-wise vs lane-wise dependence) — checked directly against the
//! select logic's lane assignments.

use save_core::rename::PhysRegFile;
use save_core::rs::{FmaEntry, Rs, RsEntry, NO_FWD};
use save_core::sched;
use save_core::uop::FmaPrecision;
use save_core::{CoreConfig, CoreStats};
use save_isa::{VReg, VecF32, LANES};

struct Setup {
    rs: Rs,
    prf: PhysRegFile,
}

fn setup() -> Setup {
    Setup { rs: Rs::new(97), prf: PhysRegFile::new(128) }
}

/// Adds an FMA whose operands are ready, with the given remaining ELM and
/// rotation; returns its acc_dst physical register.
fn add_fma(s: &mut Setup, rob: usize, acc_log: u8, rot: i8, elm: u16) -> u32 {
    let a = s.prf.alloc().unwrap();
    let b = s.prf.alloc().unwrap();
    let acc_src = s.prf.alloc().unwrap();
    let acc_dst = s.prf.alloc().unwrap();
    s.prf.write_all(a, VecF32::splat(2.0));
    s.prf.write_all(b, VecF32::splat(3.0));
    s.prf.write_all(acc_src, VecF32::splat(1.0));
    s.rs.push(RsEntry::Fma(FmaEntry {
        rob,
        precision: FmaPrecision::F32,
        acc_log: VReg(acc_log),
        rot,
        acc_src,
        acc_dst,
        a,
        b,
        wm: u16::MAX,
        elm_ready: true,
        elm,
        orig_elm: elm,
        ml: 0,
        orig_ml: 0,
        chain_pred: None,
        chain_succ: None,
        fwd_base: [0.0; LANES],
        fwd_ready: [NO_FWD; LANES],
        seq: rob as u64,
    }));
    acc_dst
}

/// Old-signature convenience wrappers: refresh the window scoreboard (as
/// the core's cycle loop does) and collect the issued ops.
fn select_vertical(
    rs: &mut Rs,
    prf: &PhysRegFile,
    cfg: &CoreConfig,
    cycle: u64,
    stats: &mut CoreStats,
) -> Vec<save_core::vpu::VpuOp> {
    let mut sx = sched::SelectScratch::new();
    sched::window_masks(rs, prf, cfg.lane_wise, &mut sx);
    let mut out = Vec::new();
    sched::vertical::select(rs, prf, cfg, cycle, stats, &mut sx, &mut out, false);
    out
}

fn select_horizontal(
    rs: &mut Rs,
    prf: &PhysRegFile,
    cfg: &CoreConfig,
    cycle: u64,
    stats: &mut CoreStats,
) -> Vec<save_core::vpu::VpuOp> {
    let mut sx = sched::SelectScratch::new();
    sched::window_masks(rs, prf, cfg.lane_wise, &mut sx);
    let mut out = Vec::new();
    sched::horizontal::select(rs, prf, cfg, cycle, stats, &mut sx, &mut out, false);
    out
}

fn one_vpu() -> CoreConfig {
    CoreConfig { num_vpus: 1, ..CoreConfig::save_2vpu() }
}

#[test]
fn fig5a_vertical_coalescing_fills_per_lane_oldest_first() {
    // I1 effectual on lanes {0, 2}; I2 on {0}; I3 on {1, 2}. One VPU.
    // Vertical coalescing must take lane 0 and 2 from I1 (oldest) and lane
    // 1 from I3; I2's lane 0 and I3's lane 2 wait for the next cycle.
    let mut s = setup();
    add_fma(&mut s, 1, 0, 0, 0b101);
    add_fma(&mut s, 2, 1, 0, 0b001);
    add_fma(&mut s, 3, 2, 0, 0b110);
    let mut stats = CoreStats::default();
    let ops = select_vertical(&mut s.rs, &s.prf, &one_vpu(), 0, &mut stats);
    assert_eq!(ops.len(), 1);
    let mut got: Vec<(usize, usize)> =
        ops[0].results.iter().map(|r| (r.rob, r.lane)).collect();
    got.sort_unstable();
    assert_eq!(got, vec![(1, 0), (1, 2), (3, 1)]);
    // Remaining ELM bits: I1 empty, I2 lane 0, I3 lane 2.
    let leftover: Vec<(usize, u16)> = s
        .rs
        .iter()
        .filter_map(|e| match e {
            RsEntry::Fma(f) => Some((f.rob, f.elm)),
            _ => None,
        })
        .collect();
    assert_eq!(leftover, vec![(1, 0), (2, 0b001), (3, 0b100)]);
}

#[test]
fn fig7_rotation_breaks_shared_pattern_conflicts() {
    // Three VFMAs whose effectual lanes all sit at logical lane 0 (shared
    // non-broadcasted register, Fig 7a). Without rotation a single VPU can
    // only serve one per cycle; with the accumulator-derived rotations
    // (0, +1, -1) all three fit one temp (Fig 7b).
    let mut s = setup();
    for (rob, acc) in [(1usize, 0u8), (2, 1), (3, 2)] {
        let rot = VReg(acc).rotation_state();
        add_fma(&mut s, rob, acc, rot, 0b1);
    }
    let mut stats = CoreStats::default();
    let ops = select_vertical(&mut s.rs, &s.prf, &one_vpu(), 0, &mut stats);
    assert_eq!(ops.len(), 1);
    assert_eq!(ops[0].results.len(), 3, "rotation must de-conflict all three lanes");

    // Same state without rotation: only one lane scheduled.
    let mut s = setup();
    for (rob, acc) in [(1usize, 0u8), (2, 1), (3, 2)] {
        add_fma(&mut s, rob, acc, 0, 0b1);
    }
    let ops = select_vertical(&mut s.rs, &s.prf, &one_vpu(), 0, &mut stats);
    assert_eq!(ops[0].results.len(), 1, "without rotation the lanes conflict");
}

#[test]
fn fig8_lane_wise_dependence_unblocks_false_dependences() {
    // I1 (acc chain R_src -> R_mid) still has lane 0 outstanding; I2
    // consumes R_mid. I2's lane 1 input is ready (lane 1 of R_mid written
    // by pass-through), lane 0 is not. Under vector-wise dependence I2 must
    // wait entirely; under lane-wise dependence its lane 1 issues.
    let mut s = setup();
    let a = s.prf.alloc().unwrap();
    let b = s.prf.alloc().unwrap();
    s.prf.write_all(a, VecF32::splat(2.0));
    s.prf.write_all(b, VecF32::splat(3.0));
    let r_mid = s.prf.alloc().unwrap(); // I1's dst = I2's acc_src
    s.prf.write_lane(r_mid, 1, 1.0); // lane 1 complete, lane 0 outstanding
    let r_dst = s.prf.alloc().unwrap();
    s.rs.push(RsEntry::Fma(FmaEntry {
        rob: 2,
        precision: FmaPrecision::F32,
        acc_log: VReg(0),
        rot: 0,
        acc_src: r_mid,
        acc_dst: r_dst,
        a,
        b,
        wm: u16::MAX,
        elm_ready: true,
        elm: 0b10, // effectual on lane 1 only
        orig_elm: 0b10,
        ml: 0,
        orig_ml: 0,
        chain_pred: Some(1),
        chain_succ: None,
        fwd_base: [0.0; LANES],
        fwd_ready: [NO_FWD; LANES],
        seq: 2,
    }));
    let mut stats = CoreStats::default();

    // Vector-wise: nothing issues.
    let vw = CoreConfig { lane_wise: false, ..one_vpu() };
    let ops = select_vertical(&mut s.rs, &s.prf, &vw, 0, &mut stats);
    assert!(ops.is_empty(), "vector-wise dependence must block I2");

    // Lane-wise: lane 1 issues with the correct value 1 + 2*3.
    let lw = CoreConfig { lane_wise: true, ..one_vpu() };
    let ops = select_vertical(&mut s.rs, &s.prf, &lw, 0, &mut stats);
    assert_eq!(ops.len(), 1);
    assert_eq!(ops[0].results.len(), 1);
    assert_eq!(ops[0].results[0].lane, 1);
    assert_eq!(ops[0].results[0].value, 7.0);
}

#[test]
fn two_vpus_double_per_lane_throughput() {
    // Four entries all effectual on lane 3 only: one VPU serves one per
    // cycle, two VPUs serve two.
    for (vpus, expect) in [(1usize, 1usize), (2, 2)] {
        let mut s = setup();
        for rob in 1..=4 {
            add_fma(&mut s, rob, rob as u8 * 3, 0, 0b1000);
        }
        let cfg = CoreConfig { num_vpus: vpus, rotate: false, ..CoreConfig::save_2vpu() };
        let mut stats = CoreStats::default();
        let ops = select_vertical(&mut s.rs, &s.prf, &cfg, 0, &mut stats);
        assert_eq!(ops.len(), expect, "{vpus} VPUs");
        assert!(ops.iter().all(|o| o.results.len() == 1));
    }
}

#[test]
fn horizontal_compression_ignores_lane_positions() {
    // The same conflicting state as fig7 (all lanes at position 0, no
    // rotation): HC packs all three into one temp anyway, at the price of
    // its latency penalty.
    let mut s = setup();
    for (rob, acc) in [(1usize, 0u8), (2, 1), (3, 2)] {
        add_fma(&mut s, rob, acc, 0, 0b1);
    }
    let cfg = CoreConfig {
        scheduler: save_core::SchedulerKind::Horizontal,
        num_vpus: 1,
        ..CoreConfig::save_2vpu()
    };
    let mut stats = CoreStats::default();
    let ops = select_horizontal(&mut s.rs, &s.prf, &cfg, 10, &mut stats);
    assert_eq!(ops.len(), 1);
    assert_eq!(ops[0].results.len(), 3);
    assert_eq!(
        ops[0].complete_at,
        10 + cfg.fp32_fma_cycles + cfg.hc_penalty_cycles,
        "HC pays the crossbar latency"
    );
}
